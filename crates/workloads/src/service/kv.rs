//! Sharded key-value store with per-bucket locks.
//!
//! The classic memcached-style shape: the key space is hash-sharded into a fixed
//! set of buckets, each guarded by one lock homed on the unit that owns the
//! shard. A request locks its key's bucket, reads the value line, optionally
//! writes it back (20% of requests), and unlocks. Under Zipf-skewed traffic the
//! hottest keys concentrate onto a handful of buckets, so the per-bucket locks
//! serialize exactly where the load is — the saturation knee of the
//! `offered_load` experiment comes from this serialization, not from raw compute.

use syncron_core::request::SyncRequest;
use syncron_sim::rng::SimRng;
use syncron_sim::time::Time;
use syncron_sim::{Addr, GlobalCoreId};
use syncron_system::address::AddressSpace;
use syncron_system::config::NdpConfig;
use syncron_system::workload::{Action, CoreProgram, Workload};

use super::zipf::ZipfSampler;
use super::{service_name, LogHistogram, OpenLoop, ServiceParams, ServiceShape};

/// Lock buckets per NDP unit; total buckets = units × this.
const BUCKETS_PER_UNIT: u64 = 16;

/// Request-processing overhead (parse + hash) in instructions.
const REQUEST_INSTRS: u64 = 16;

/// Fraction of requests that write the value line back.
const WRITE_FRACTION: f64 = 0.2;

/// The sharded-KV open-loop service workload.
#[derive(Clone, Copy, Debug)]
pub struct KvService {
    params: ServiceParams,
}

impl KvService {
    /// Creates the workload.
    pub fn new(params: ServiceParams) -> Self {
        KvService { params }
    }
}

#[derive(Debug)]
struct KvProgram {
    open: OpenLoop,
    rng: SimRng,
    zipf: ZipfSampler,
    /// Per-unit lock partitions; bucket `b` lives at `locks[b % units] + (b/units)·64`.
    locks: Vec<Addr>,
    /// Per-unit value partitions; key `k` lives at `data[k % units] + (k/units)·64`.
    data: Vec<Addr>,
    units: u64,
    buckets: u64,
    phase: u8,
    lock_addr: Addr,
    key_addr: Addr,
    is_write: bool,
    completing: bool,
}

impl KvProgram {
    fn pick_request(&mut self) {
        let key = self.zipf.sample(&mut self.rng);
        let bucket = key % self.buckets;
        self.lock_addr =
            self.locks[(bucket % self.units) as usize].offset(bucket / self.units * 64);
        self.key_addr = self.data[(key % self.units) as usize].offset(key / self.units * 64);
        self.is_write = self.rng.gen_bool(WRITE_FRACTION);
    }
}

impl CoreProgram for KvProgram {
    fn step(&mut self, _core: GlobalCoreId, now: Time) -> Action {
        match self.phase {
            // Dispatch: retire the previous request, then wait for / admit the next.
            0 => {
                if self.completing {
                    self.completing = false;
                    self.open.complete(now);
                }
                if self.open.exhausted() {
                    return Action::Done;
                }
                if let Some(idle) = self.open.admit(now) {
                    return idle;
                }
                self.pick_request();
                self.phase = 1;
                Action::Compute {
                    instrs: REQUEST_INSTRS,
                }
            }
            1 => {
                self.phase = 2;
                Action::Sync(SyncRequest::LockAcquire {
                    var: self.lock_addr,
                })
            }
            2 => {
                self.phase = if self.is_write { 3 } else { 4 };
                Action::Load {
                    addr: self.key_addr,
                }
            }
            3 => {
                self.phase = 4;
                Action::Store {
                    addr: self.key_addr,
                }
            }
            _ => {
                self.phase = 0;
                self.completing = true;
                Action::Sync(SyncRequest::LockRelease {
                    var: self.lock_addr,
                })
            }
        }
    }

    fn ops_completed(&self) -> u64 {
        self.open.ops
    }

    fn latency_histogram(&self) -> Option<&LogHistogram> {
        Some(&self.open.hist)
    }
}

impl Workload for KvService {
    fn shard_safe(&self) -> bool {
        // Programs keep all state private; cores interact only through
        // simulated synchronization.
        true
    }

    fn name(&self) -> String {
        service_name(ServiceShape::Kv, &self.params)
    }

    fn build(
        &self,
        space: &mut AddressSpace,
        config: &NdpConfig,
        clients: &[GlobalCoreId],
    ) -> Vec<Box<dyn CoreProgram>> {
        let units = config.units as u64;
        let buckets = units * BUCKETS_PER_UNIT;
        let locks = space.allocate_partitioned(
            BUCKETS_PER_UNIT * Addr::LINE_BYTES,
            syncron_system::address::DataClass::SharedReadWrite,
        );
        let keys = self.params.keys.max(1);
        let data = space.allocate_partitioned(
            keys.div_ceil(units) * Addr::LINE_BYTES,
            syncron_system::address::DataClass::SharedReadWrite,
        );
        clients
            .iter()
            .enumerate()
            .map(|(i, _)| {
                Box::new(KvProgram {
                    open: OpenLoop::new(
                        self.params.arrival,
                        config.seed ^ ((i as u64) << 24) ^ 0xA221,
                        self.params.requests,
                        config.core_cycle(),
                    ),
                    rng: SimRng::seed_from(config.seed ^ ((i as u64) << 24) ^ 0x5A1F),
                    zipf: ZipfSampler::new(keys, self.params.zipf_s),
                    locks: locks.clone(),
                    data: data.clone(),
                    units,
                    buckets,
                    phase: 0,
                    lock_addr: Addr(0),
                    key_addr: Addr(0),
                    is_write: false,
                    completing: false,
                }) as Box<dyn CoreProgram>
            })
            .collect()
    }
}
