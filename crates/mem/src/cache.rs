//! Private per-core L1 cache model and software-assisted coherence policy.
//!
//! Table 5 of the paper configures each NDP core with a private 16 KB, 2-way,
//! 64 B-line L1 data cache with a 4-cycle hit latency and 23/47 pJ per hit/miss.
//! The baseline NDP system has no hardware coherence: the programmer (or OS) marks
//! data as thread-private, shared read-only, or shared read-write, and shared
//! read-write data is never cached ([`DataClass`]).

use syncron_sim::stats::Counter;
use syncron_sim::time::{Freq, Time};
use syncron_sim::Addr;

/// Software-assisted coherence data classification (Section 2.1 of the paper).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum DataClass {
    /// Thread-private data; cacheable in the owning core's L1.
    #[default]
    Private,
    /// Shared data that is only read during parallel execution; cacheable everywhere.
    SharedReadOnly,
    /// Shared read-write data; **uncacheable** under software-assisted coherence, every
    /// access goes to memory.
    SharedReadWrite,
}

impl DataClass {
    /// Whether this class of data may live in a private L1 cache.
    pub fn cacheable(self) -> bool {
        !matches!(self, DataClass::SharedReadWrite)
    }
}

/// Configuration of an L1 cache.
#[derive(Clone, Copy, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity (number of ways per set).
    pub ways: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
    /// Latency of a hit.
    pub hit_latency: Time,
    /// Energy of a hit, in picojoules.
    pub hit_pj: f64,
    /// Energy of a miss (tag probe + fill), in picojoules.
    pub miss_pj: f64,
}

impl CacheConfig {
    /// The NDP-core L1 configuration from Table 5: 16 KB, 2-way, 64 B lines, 4-cycle
    /// hit at 2.5 GHz, 23/47 pJ per hit/miss.
    pub fn ndp_l1() -> Self {
        CacheConfig {
            size_bytes: 16 * 1024,
            ways: 2,
            line_bytes: 64,
            hit_latency: Freq::ghz(2.5).cycles_to_ps(4),
            hit_pj: 23.0,
            miss_pj: 47.0,
        }
    }

    /// A larger L1 configuration used for the CPU-socket baseline of Table 1
    /// (32 KB, 8-way, typical server L1).
    pub fn cpu_l1() -> Self {
        CacheConfig {
            size_bytes: 32 * 1024,
            ways: 8,
            line_bytes: 64,
            hit_latency: Freq::ghz(2.5).cycles_to_ps(4),
            hit_pj: 30.0,
            miss_pj: 60.0,
        }
    }

    /// Number of sets implied by the configuration.
    pub fn sets(&self) -> usize {
        (self.size_bytes / self.line_bytes / self.ways).max(1)
    }
}

/// Result of a cache access.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CacheOutcome {
    /// The line was present.
    Hit,
    /// The line was absent and has been filled (possibly evicting another line).
    Miss,
}

impl CacheOutcome {
    /// Returns `true` for [`CacheOutcome::Hit`].
    pub fn is_hit(self) -> bool {
        matches!(self, CacheOutcome::Hit)
    }
}

/// Counters maintained by an [`L1Cache`].
#[derive(Clone, Copy, Debug, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CacheStats {
    /// Number of hits.
    pub hits: Counter,
    /// Number of misses.
    pub misses: Counter,
    /// Number of evictions caused by fills.
    pub evictions: Counter,
    /// Number of lines invalidated externally.
    pub invalidations: Counter,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits.get() + self.misses.get()
    }

    /// Hit ratio in `[0, 1]`, or 0 if no accesses were made.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            0.0
        } else {
            self.hits.get() as f64 / total as f64
        }
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct Way {
    tag: u64,
    valid: bool,
    lru: u64,
}

/// A set-associative, write-allocate, LRU L1 cache model.
///
/// The model tracks presence only (tags), not data contents: functional data lives in
/// the workload structures, the cache decides hit/miss latency and energy.
///
/// # Example
///
/// ```
/// use syncron_mem::cache::{CacheConfig, L1Cache};
/// use syncron_sim::Addr;
///
/// let mut l1 = L1Cache::new(CacheConfig::ndp_l1());
/// assert!(!l1.access(Addr(0x100), false).is_hit());
/// assert!(l1.access(Addr(0x104), true).is_hit()); // same 64-byte line
/// ```
#[derive(Clone, Debug)]
pub struct L1Cache {
    config: CacheConfig,
    sets: Vec<Vec<Way>>,
    stats: CacheStats,
    tick: u64,
}

impl L1Cache {
    /// Creates an empty cache.
    pub fn new(config: CacheConfig) -> Self {
        let sets = vec![vec![Way::default(); config.ways]; config.sets()];
        L1Cache {
            config,
            sets,
            stats: CacheStats::default(),
            tick: 0,
        }
    }

    /// The cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Latency of a hit.
    pub fn hit_latency(&self) -> Time {
        self.config.hit_latency
    }

    fn set_and_tag(&self, addr: Addr) -> (usize, u64) {
        let line = addr.value() / self.config.line_bytes as u64;
        let set = (line as usize) % self.sets.len();
        let tag = line / self.sets.len() as u64;
        (set, tag)
    }

    /// Performs an access (the `write` flag only affects statistics; the model is
    /// write-allocate so reads and writes fill identically). Returns hit or miss;
    /// a miss fills the line, evicting the LRU way if necessary.
    pub fn access(&mut self, addr: Addr, _write: bool) -> CacheOutcome {
        self.tick += 1;
        let (set_idx, tag) = self.set_and_tag(addr);
        let set = &mut self.sets[set_idx];
        if let Some(way) = set.iter_mut().find(|w| w.valid && w.tag == tag) {
            way.lru = self.tick;
            self.stats.hits.inc();
            return CacheOutcome::Hit;
        }
        self.stats.misses.inc();
        // Fill: choose an invalid way, else the LRU way.
        let victim = if let Some(idx) = set.iter().position(|w| !w.valid) {
            idx
        } else {
            self.stats.evictions.inc();
            set.iter()
                .enumerate()
                .min_by_key(|(_, w)| w.lru)
                .map(|(i, _)| i)
                .unwrap_or(0)
        };
        set[victim] = Way {
            tag,
            valid: true,
            lru: self.tick,
        };
        CacheOutcome::Miss
    }

    /// Probes for a line without updating LRU state or statistics.
    pub fn contains(&self, addr: Addr) -> bool {
        let (set_idx, tag) = self.set_and_tag(addr);
        self.sets[set_idx].iter().any(|w| w.valid && w.tag == tag)
    }

    /// Invalidates a line if present; returns whether it was present.
    pub fn invalidate(&mut self, addr: Addr) -> bool {
        let (set_idx, tag) = self.set_and_tag(addr);
        for way in &mut self.sets[set_idx] {
            if way.valid && way.tag == tag {
                way.valid = false;
                self.stats.invalidations.inc();
                return true;
            }
        }
        false
    }

    /// Invalidates the entire cache (used when a kernel is offloaded and the core's
    /// cached thread-private data becomes stale).
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            for way in set {
                way.valid = false;
            }
        }
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Total cache energy in picojoules (hits × hit energy + misses × miss energy).
    pub fn energy_pj(&self) -> f64 {
        self.stats.hits.get() as f64 * self.config.hit_pj
            + self.stats.misses.get() as f64 * self.config.miss_pj
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_class_cacheability_matches_paper() {
        assert!(DataClass::Private.cacheable());
        assert!(DataClass::SharedReadOnly.cacheable());
        assert!(!DataClass::SharedReadWrite.cacheable());
    }

    #[test]
    fn ndp_l1_matches_table5() {
        let cfg = CacheConfig::ndp_l1();
        assert_eq!(cfg.size_bytes, 16 * 1024);
        assert_eq!(cfg.ways, 2);
        assert_eq!(cfg.line_bytes, 64);
        assert_eq!(cfg.hit_latency, Time::from_ps(1600)); // 4 cycles @ 2.5 GHz
        assert_eq!(cfg.hit_pj, 23.0);
        assert_eq!(cfg.miss_pj, 47.0);
        assert_eq!(cfg.sets(), 128);
    }

    #[test]
    fn same_line_hits_after_fill() {
        let mut l1 = L1Cache::new(CacheConfig::ndp_l1());
        assert_eq!(l1.access(Addr(0x1000), false), CacheOutcome::Miss);
        assert_eq!(l1.access(Addr(0x103F), true), CacheOutcome::Hit);
        assert_eq!(l1.access(Addr(0x1040), false), CacheOutcome::Miss);
        assert_eq!(l1.stats().hits.get(), 1);
        assert_eq!(l1.stats().misses.get(), 2);
        assert!(l1.stats().hit_ratio() > 0.3);
    }

    #[test]
    fn lru_eviction_within_set() {
        let cfg = CacheConfig::ndp_l1();
        let mut l1 = L1Cache::new(cfg);
        let sets = cfg.sets() as u64;
        let line = |i: u64| Addr(i * sets * 64); // all map to set 0
        assert_eq!(l1.access(line(0), false), CacheOutcome::Miss);
        assert_eq!(l1.access(line(1), false), CacheOutcome::Miss);
        // Touch line 0 so line 1 becomes LRU.
        assert_eq!(l1.access(line(0), false), CacheOutcome::Hit);
        // Fill a third line: must evict line 1.
        assert_eq!(l1.access(line(2), false), CacheOutcome::Miss);
        assert!(l1.contains(line(0)));
        assert!(!l1.contains(line(1)));
        assert!(l1.contains(line(2)));
        assert_eq!(l1.stats().evictions.get(), 1);
    }

    #[test]
    fn invalidate_and_flush() {
        let mut l1 = L1Cache::new(CacheConfig::ndp_l1());
        l1.access(Addr(0), false);
        l1.access(Addr(4096), false);
        assert!(l1.invalidate(Addr(0)));
        assert!(!l1.invalidate(Addr(0)));
        assert!(!l1.contains(Addr(0)));
        assert!(l1.contains(Addr(4096)));
        l1.flush();
        assert!(!l1.contains(Addr(4096)));
        assert_eq!(l1.stats().invalidations.get(), 1);
    }

    #[test]
    fn energy_accumulates() {
        let mut l1 = L1Cache::new(CacheConfig::ndp_l1());
        l1.access(Addr(0), false); // miss: 47 pJ
        l1.access(Addr(0), false); // hit: 23 pJ
        assert!((l1.energy_pj() - 70.0).abs() < 1e-9);
    }

    #[test]
    fn working_set_larger_than_cache_thrashes() {
        let cfg = CacheConfig::ndp_l1();
        let mut l1 = L1Cache::new(cfg);
        let lines = (cfg.size_bytes / cfg.line_bytes) as u64 * 4;
        for round in 0..2 {
            for i in 0..lines {
                let outcome = l1.access(Addr(i * 64), false);
                if round == 0 {
                    assert_eq!(outcome, CacheOutcome::Miss);
                }
            }
        }
        // Working set 4x the capacity with LRU: second round also misses everywhere.
        assert_eq!(l1.stats().hits.get(), 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use syncron_sim::SimRng;

    // Deterministic stand-ins for proptest properties (no crates.io access): many
    // randomized access streams driven by the in-tree RNG.

    /// The most recently accessed line is always present afterwards, hit/miss
    /// bookkeeping matches the number of accesses, and the number of distinct
    /// resident lines never exceeds the cache capacity.
    #[test]
    fn capacity_respected() {
        for case in 0..32u64 {
            let mut rng = SimRng::seed_from(0x0CAC_4E00 + case);
            let count = 1 + rng.gen_range(499) as usize;
            let addrs: Vec<u64> = (0..count).map(|_| rng.gen_range(1 << 16)).collect();
            let cfg = CacheConfig::ndp_l1();
            let mut l1 = L1Cache::new(cfg);
            for &a in &addrs {
                l1.access(Addr(a), false);
                assert!(l1.contains(Addr(a)));
            }
            let mut distinct: Vec<u64> = addrs.iter().map(|a| Addr(*a).line_index()).collect();
            distinct.sort_unstable();
            distinct.dedup();
            let resident = distinct
                .iter()
                .filter(|&&line| l1.contains(Addr(line * 64)))
                .count();
            assert!(resident <= cfg.sets() * cfg.ways);
            assert_eq!(l1.stats().accesses(), addrs.len() as u64);
        }
    }

    /// Repeatedly accessing a working set that fits in one way of every set always
    /// hits after the first pass.
    #[test]
    fn small_working_set_always_hits() {
        for seed in (0u64..1000).step_by(37) {
            let cfg = CacheConfig::ndp_l1();
            let mut l1 = L1Cache::new(cfg);
            let lines = (cfg.sets() / 2) as u64;
            let base = seed * 64;
            for i in 0..lines {
                l1.access(Addr(base + i * 64), false);
            }
            for i in 0..lines {
                assert!(l1.access(Addr(base + i * 64), false).is_hit());
            }
        }
    }
}
