//! Micro-benchmarks of the simulator's hot kernels.
//!
//! These do not correspond to a paper figure; they keep the substrate honest (event
//! queue, Synchronization Table, L1 cache, DRAM timing, crossbar, MESI directory) so
//! that regressions in the simulator itself are caught by `cargo bench`.
//!
//! The build environment has no access to crates.io, so instead of criterion this
//! target ships a small std-only timing loop: each kernel is warmed up and then run for
//! a fixed number of batches, reporting ns/iteration (median of batches).

use std::hint::black_box;
use std::time::Instant;

use syncron_core::request::PrimitiveKind;
use syncron_core::table::SynchronizationTable;
use syncron_mem::cache::{CacheConfig, L1Cache};
use syncron_mem::dram::{DramModel, DramSpec};
use syncron_mem::mesi::{CoherentAccess, MesiDirectory, MesiParams};
use syncron_net::crossbar::{Crossbar, CrossbarConfig};
use syncron_sim::event::{EventQueue, SchedulerKind};
use syncron_sim::queueing::{md1_wait, Md1Model, Md1Table};
use syncron_sim::rng::SimRng;
use syncron_sim::{Addr, GlobalCoreId, Time, UnitId};

/// Times `iters_per_batch` iterations of `f` over `batches` batches and prints the
/// median ns/iteration.
fn bench(name: &str, iters_per_batch: u64, mut f: impl FnMut()) {
    const BATCHES: usize = 15;
    // Warm-up.
    for _ in 0..iters_per_batch.min(1_000) {
        f();
    }
    let mut per_iter_ns: Vec<f64> = Vec::with_capacity(BATCHES);
    for _ in 0..BATCHES {
        let start = Instant::now();
        for _ in 0..iters_per_batch {
            f();
        }
        per_iter_ns.push(start.elapsed().as_nanos() as f64 / iters_per_batch as f64);
    }
    per_iter_ns.sort_by(|a, b| a.total_cmp(b));
    println!("{:<32} {:>10.1} ns/iter", name, per_iter_ns[BATCHES / 2]);
}

fn bench_event_queue() {
    bench("event_queue_push_pop_1k", 200, || {
        let mut q = EventQueue::with_capacity(1024);
        for i in 0..1024u64 {
            q.push(Time::from_ps((i * 7919) % 4096), i);
        }
        let mut sum = 0u64;
        while let Some((_, e)) = q.pop() {
            sum = sum.wrapping_add(e);
        }
        black_box(sum);
    });

    // Steady-state churn at machine-like occupancy: ~4k live events (one per
    // core of a 16x256 machine), each pop rescheduling its successor a short,
    // mixed latency ahead — the pattern the run loop actually generates.
    for kind in [SchedulerKind::Calendar, SchedulerKind::Heap] {
        let mut q: EventQueue<u64> = EventQueue::with_scheduler(kind);
        let mut rng = SimRng::seed_from(0xC0FFEE);
        let mut now = Time::ZERO;
        for i in 0..4096u64 {
            q.push(Time::from_ps(rng.gen_range(40_000)), i);
        }
        bench(
            match kind {
                SchedulerKind::Calendar => "event_queue_churn_4k_calendar",
                SchedulerKind::Heap => "event_queue_churn_4k_heap",
            },
            500_000,
            || {
                let (t, e) = q.pop().expect("queue stays occupied");
                now = now.max(t);
                // Latency mix: mostly short hops, occasional long DRAM/backoff.
                let lat = if e % 31 == 0 {
                    200_000 + rng.gen_range(3_000_000)
                } else {
                    400 + rng.gen_range(40_000)
                };
                q.push(now + Time::from_ps(lat), e);
                black_box(e);
            },
        );
    }
}

fn bench_synchronization_table() {
    bench("st_allocate_lookup_release", 2_000, || {
        let mut st = SynchronizationTable::new(64);
        for i in 0..64u64 {
            st.allocate(Time::from_ns(i), Addr(i * 64), PrimitiveKind::Lock);
        }
        for i in 0..64u64 {
            black_box(st.lookup(Addr(i * 64)));
        }
        for i in 0..64u64 {
            st.release(Time::from_ns(100 + i), Addr(i * 64));
        }
        black_box(st.occupied());
    });
}

fn bench_l1_cache() {
    let mut l1 = L1Cache::new(CacheConfig::ndp_l1());
    let mut i = 0u64;
    bench("l1_cache_access_stream", 1_000_000, || {
        i = i.wrapping_add(1);
        black_box(l1.access(Addr((i * 64) % (64 * 1024)), i.is_multiple_of(3)));
    });
}

fn bench_dram() {
    let mut dram = DramModel::new(DramSpec::hbm());
    let mut i = 0u64;
    bench("dram_hbm_access", 1_000_000, || {
        i = i.wrapping_add(1);
        black_box(dram.access(Time::from_ns(i), Addr(i * 64 * 33), i.is_multiple_of(4)));
    });
}

fn bench_crossbar() {
    for model in Md1Model::ALL {
        let mut xbar = Crossbar::new(CrossbarConfig {
            md1_model: model,
            ..CrossbarConfig::default()
        });
        let mut i = 0u64;
        let name = match model {
            Md1Model::Exact => "crossbar_transfer_exact",
            Md1Model::Quantized => "crossbar_transfer_quantized",
        };
        bench(name, 1_000_000, || {
            i = i.wrapping_add(1);
            black_box(xbar.transfer(Time::from_ns(i), 64));
        });
    }
}

fn bench_md1() {
    // The isolated queueing-model kernel, outside the crossbar's rate tracker:
    // closed form (ln/exp via powf in the utilization clamp and two divides)
    // vs the quantized table (bit extraction + one fused interpolation). The
    // lambda ramp sweeps the whole utilization range so the table walk touches
    // every bucket, not one hot cache line.
    let service = Time::from_ps(1_600);
    let cap = 0.95;
    let saturation = 1.0 / 1_600.0f64;
    let mut i = 0u64;
    bench("md1_wait_exact", 1_000_000, || {
        i = i.wrapping_add(1);
        let lambda = saturation * ((i % 1024) as f64) / 1024.0;
        black_box(md1_wait(black_box(lambda), service, cap));
    });
    let table = Md1Table::new(service, cap);
    let mut j = 0u64;
    bench("md1_wait_quantized", 1_000_000, || {
        j = j.wrapping_add(1);
        let lambda = saturation * ((j % 1024) as f64) / 1024.0;
        black_box(table.wait(black_box(lambda)));
    });
}

fn bench_mesi() {
    let mut dir = MesiDirectory::new(4, 16, MesiParams::ndp_default());
    let cores: Vec<GlobalCoreId> = (0..8)
        .map(|i| GlobalCoreId::from_flat(i * 7 % 64, 16))
        .collect();
    let mut i = 0usize;
    bench("mesi_directory_rmw_pingpong", 200_000, || {
        i += 1;
        let core = cores[i % cores.len()];
        black_box(dir.access(
            Time::from_ns(i as u64),
            core,
            Addr(0x1000),
            CoherentAccess::Rmw,
            UnitId(0),
        ));
    });
}

fn main() {
    println!("simulator kernel micro-benchmarks (median of 15 batches)");
    bench_event_queue();
    bench_synchronization_table();
    bench_l1_cache();
    bench_dram();
    bench_crossbar();
    bench_md1();
    bench_mesi();
}
