//! Labelled, serializable scenarios: a system configuration plus a workload spec.
//!
//! [`ConfigSpec`] is the serializable projection of [`NdpConfig`] covering every knob
//! the paper's evaluation sweeps (mechanism, link latency, ST size, memory technology,
//! units/cores, overflow mode, fairness, coherence). [`Scenario`] pairs one concrete
//! config with one [`WorkloadSpec`] under a unique label — the key under which the
//! runner files its report.

use syncron_core::mechanism::{MechanismKind, MechanismParams, DEFAULT_ADAPTIVE_THRESHOLD};
use syncron_core::protocol::OverflowMode;
use syncron_mem::mesi::MesiParams;
use syncron_mem::MemTech;
use syncron_sim::queueing::Md1Model;
use syncron_sim::{SchedulerKind, Time};
use syncron_system::config::{CoherenceMode, FaultConfig, NdpConfig};

use crate::error::HarnessError;
use crate::json::Value;
use crate::spec::WorkloadSpec;

/// Which MESI latency profile to use when `coherence = "mesi"`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum MesiProfile {
    /// The NDP-system directory latencies (Figure 2).
    #[default]
    NdpDefault,
    /// The two-socket CPU latencies (Table 1).
    CpuTwoSocket,
}

impl MesiProfile {
    fn name(self) -> &'static str {
        match self {
            MesiProfile::NdpDefault => "ndp",
            MesiProfile::CpuTwoSocket => "cpu-two-socket",
        }
    }

    fn parse(name: &str) -> Result<Self, HarnessError> {
        match name {
            "ndp" => Ok(MesiProfile::NdpDefault),
            "cpu-two-socket" => Ok(MesiProfile::CpuTwoSocket),
            _ => Err(HarnessError::spec(format!(
                "unknown mesi profile '{name}' (expected ndp or cpu-two-socket)"
            ))),
        }
    }
}

/// Serializable system configuration covering the paper's sweep axes.
///
/// Defaults mirror [`NdpConfig::paper_default`]; [`ConfigSpec::to_ndp_config`]
/// produces the concrete machine description.
#[derive(Clone, Debug, PartialEq)]
pub struct ConfigSpec {
    /// Number of NDP units.
    pub units: usize,
    /// Cores per NDP unit.
    pub cores_per_unit: usize,
    /// Synchronization mechanism.
    pub mechanism: MechanismKind,
    /// Memory technology.
    pub mem_tech: MemTech,
    /// Inter-unit per-cache-line transfer latency in nanoseconds.
    pub link_latency_ns: u64,
    /// Synchronization Table entries per SE.
    pub st_entries: usize,
    /// ST overflow handling.
    pub overflow_mode: OverflowMode,
    /// Local-grant fairness threshold (`None` = off).
    pub fairness_threshold: Option<u32>,
    /// Contention depth at which the Adaptive mechanism escalates a variable
    /// from flat to hierarchical serving (ignored by the other kinds).
    pub adaptive_threshold: u32,
    /// Condvar signal coalescing / backoff (extension; on by default).
    pub signal_coalescing: bool,
    /// Base NACK backoff delay in nanoseconds for repeat condvar signalers.
    pub signal_backoff_ns: u64,
    /// Equal-timestamp message batching in the protocol engine (simulator
    /// optimization; reports are bit-identical either way). On by default.
    pub message_batching: bool,
    /// Column-wise processing of delivered message batches (simulator
    /// optimization layered on `message_batching`; reports are bit-identical
    /// either way). On by default.
    pub column_batching: bool,
    /// Burst-resume events for broadcast completions (simulator optimization;
    /// reports are bit-identical either way). On by default.
    pub burst_resume: bool,
    /// M/D/1 evaluation model of the crossbars (`exact` or `quantized`).
    /// Unlike the other performance knobs this changes simulated latencies —
    /// within the table's documented error bound — so the two settings are
    /// different baselines. Quantized by default.
    pub md1_model: Md1Model,
    /// Coherence mode for shared read-write data.
    pub coherence: CoherenceMode,
    /// MESI latency profile (only used with [`CoherenceMode::MesiDirectory`]).
    pub mesi: MesiProfile,
    /// Whether one core per unit is reserved as a synchronization server.
    pub reserve_server_core: bool,
    /// Deterministic workload seed.
    pub seed: u64,
    /// Event safety limit.
    pub max_events: u64,
    /// Event-queue backend (`calendar` or `heap`). Reports are bit-identical
    /// under either; the heap is the differential-testing reference and the
    /// throughput-benchmark baseline.
    pub scheduler: SchedulerKind,
    /// Inline-dispatch fairness budget of the run loop (`0` disables inlining).
    pub inline_step_budget: u32,
    /// Worker threads of the sharded (conservative-PDES) execution mode
    /// (`1` = sequential). Reports are bit-identical under any value; the
    /// machine falls back to sequential execution for configurations and
    /// workloads that cannot honor the lookahead contract.
    pub sim_threads: usize,
    /// Deterministic fault injection on inter-unit synchronization messages
    /// (`fault_injection`, `fault_drop`, `fault_dup`, `fault_jitter_ns`,
    /// `fault_stall_ns`, `fault_stall_period_ns`, `fault_drop_nth`,
    /// `fault_retry_ns`, `fault_backoff_cap`). Off by default; enabled with
    /// all probabilities zero is bit-identical to off.
    pub fault: FaultConfig,
    /// Liveness watchdog (`watchdog`; on by default). A run delivering events
    /// without core progress past the threshold aborts with a stall report.
    pub watchdog: bool,
    /// Explicit watchdog threshold in events without progress
    /// (`watchdog_events`; `0` = automatic: `max(10_000, max_events / 100)`).
    pub watchdog_events: u64,
}

impl Default for ConfigSpec {
    fn default() -> Self {
        let paper = NdpConfig::paper_default();
        ConfigSpec {
            units: paper.units,
            cores_per_unit: paper.cores_per_unit,
            mechanism: paper.mechanism.kind,
            mem_tech: paper.mem_tech,
            link_latency_ns: paper.link.transfer_latency.as_ns(),
            st_entries: paper.mechanism.st_entries,
            overflow_mode: paper.mechanism.overflow_mode,
            fairness_threshold: paper.mechanism.fairness_threshold,
            adaptive_threshold: paper.mechanism.adaptive_threshold,
            signal_coalescing: paper.mechanism.signal_coalescing,
            signal_backoff_ns: paper.mechanism.signal_backoff_ns,
            message_batching: paper.mechanism.message_batching,
            column_batching: paper.mechanism.column_batching,
            burst_resume: paper.burst_resume,
            md1_model: paper.crossbar.md1_model,
            coherence: paper.coherence,
            mesi: MesiProfile::NdpDefault,
            reserve_server_core: paper.reserve_server_core,
            seed: paper.seed,
            max_events: paper.max_events,
            scheduler: paper.scheduler,
            inline_step_budget: paper.inline_step_budget,
            sim_threads: paper.sim_threads,
            fault: paper.fault,
            watchdog: paper.watchdog,
            watchdog_events: paper.watchdog_events,
        }
    }
}

impl ConfigSpec {
    /// The paper's default configuration (alias of `Default`).
    pub fn paper_default() -> Self {
        ConfigSpec::default()
    }

    /// Sets the mechanism (builder style).
    pub fn with_mechanism(mut self, kind: MechanismKind) -> Self {
        self.mechanism = kind;
        self
    }

    /// Sets units and cores per unit (builder style).
    pub fn with_geometry(mut self, units: usize, cores_per_unit: usize) -> Self {
        self.units = units;
        self.cores_per_unit = cores_per_unit;
        self
    }

    /// Selects the event-queue backend (builder style).
    pub fn with_scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Sets the inline-dispatch fairness budget (builder style; `0` disables).
    pub fn with_inline_step_budget(mut self, budget: u32) -> Self {
        self.inline_step_budget = budget;
        self
    }

    /// Enables or disables equal-timestamp message batching (builder style).
    pub fn with_message_batching(mut self, enabled: bool) -> Self {
        self.message_batching = enabled;
        self
    }

    /// Enables or disables column-wise batch processing (builder style).
    pub fn with_column_batching(mut self, enabled: bool) -> Self {
        self.column_batching = enabled;
        self
    }

    /// Enables or disables burst-resume events (builder style).
    pub fn with_burst_resume(mut self, enabled: bool) -> Self {
        self.burst_resume = enabled;
        self
    }

    /// Selects the crossbars' M/D/1 evaluation model (builder style).
    pub fn with_md1_model(mut self, model: Md1Model) -> Self {
        self.md1_model = model;
        self
    }

    /// Sets the sharded-execution worker-thread count (builder style; `1` =
    /// sequential, results bit-identical under any value).
    pub fn with_sim_threads(mut self, threads: usize) -> Self {
        self.sim_threads = threads;
        self
    }

    /// Sets the fault-injection plan (builder style; disabled by default).
    pub fn with_fault(mut self, fault: FaultConfig) -> Self {
        self.fault = fault;
        self
    }

    /// Arms or disarms the liveness watchdog (builder style; on by default).
    pub fn with_watchdog(mut self, enabled: bool) -> Self {
        self.watchdog = enabled;
        self
    }

    /// Builds the concrete [`NdpConfig`], rejecting invalid machine geometries with
    /// an error naming the offending field.
    pub fn to_ndp_config(&self) -> Result<NdpConfig, HarnessError> {
        let mut params = MechanismParams::new(self.mechanism)
            .with_st_entries(self.st_entries)
            .with_overflow_mode(self.overflow_mode)
            .with_signal_coalescing(self.signal_coalescing)
            .with_signal_backoff_ns(self.signal_backoff_ns)
            .with_message_batching(self.message_batching)
            .with_column_batching(self.column_batching)
            .with_adaptive_threshold(self.adaptive_threshold);
        params.fairness_threshold = self.fairness_threshold;
        let mesi = match self.mesi {
            MesiProfile::NdpDefault => MesiParams::ndp_default(),
            MesiProfile::CpuTwoSocket => MesiParams::cpu_two_socket(),
        };
        NdpConfig::builder()
            .units(self.units)
            .cores_per_unit(self.cores_per_unit)
            .mem_tech(self.mem_tech)
            .mechanism_params(params)
            .link_latency(Time::from_ns(self.link_latency_ns))
            .coherence(self.coherence)
            .mesi_params(mesi)
            .reserve_server_core(self.reserve_server_core)
            .seed(self.seed)
            .max_events(self.max_events)
            .scheduler(self.scheduler)
            .inline_step_budget(self.inline_step_budget)
            .burst_resume(self.burst_resume)
            .md1_model(self.md1_model)
            .sim_threads(self.sim_threads)
            .fault(self.fault)
            .watchdog(self.watchdog)
            .watchdog_events(self.watchdog_events)
            .build()
            .map_err(|e| HarnessError::Config(e.to_string()))
    }

    /// Serializes the config into a table value (all fields, deterministic order).
    pub fn to_value(&self) -> Value {
        let mut pairs = vec![
            ("units", Value::Int(self.units as i64)),
            ("cores_per_unit", Value::Int(self.cores_per_unit as i64)),
            ("mechanism", Value::str(self.mechanism.name())),
            ("mem_tech", Value::str(self.mem_tech.name())),
            ("link_latency_ns", Value::Int(self.link_latency_ns as i64)),
            ("st_entries", Value::Int(self.st_entries as i64)),
            ("overflow_mode", Value::str(self.overflow_mode.name())),
            ("signal_coalescing", Value::Bool(self.signal_coalescing)),
            (
                "signal_backoff_ns",
                Value::Int(self.signal_backoff_ns as i64),
            ),
            ("message_batching", Value::Bool(self.message_batching)),
            ("coherence", Value::str(coherence_name(self.coherence))),
            ("mesi_profile", Value::str(self.mesi.name())),
            ("reserve_server_core", Value::Bool(self.reserve_server_core)),
            ("seed", Value::Int(self.seed as i64)),
            ("max_events", Value::Int(self.max_events as i64)),
            ("scheduler", Value::str(self.scheduler.name())),
            (
                "inline_step_budget",
                Value::Int(self.inline_step_budget as i64),
            ),
            ("sim_threads", Value::Int(self.sim_threads as i64)),
        ];
        if let Some(t) = self.fairness_threshold {
            pairs.push(("fairness_threshold", Value::Int(t as i64)));
        }
        // Emitted only when non-default so exports of the paper's four-scheme
        // sweeps stay byte-identical across the knob's introduction.
        if self.adaptive_threshold != DEFAULT_ADAPTIVE_THRESHOLD {
            pairs.push((
                "adaptive_threshold",
                Value::Int(self.adaptive_threshold as i64),
            ));
        }
        if !self.column_batching {
            pairs.push(("column_batching", Value::Bool(false)));
        }
        if !self.burst_resume {
            pairs.push(("burst_resume", Value::Bool(false)));
        }
        if self.md1_model != Md1Model::default() {
            pairs.push(("md1_model", Value::str(self.md1_model.name())));
        }
        // Fault and watchdog knobs are likewise emitted only when non-default,
        // keeping exports of pre-existing sweeps byte-identical.
        let fault_default = FaultConfig::default();
        if self.fault.enabled {
            pairs.push(("fault_injection", Value::Bool(true)));
        }
        if self.fault.drop_prob != fault_default.drop_prob {
            pairs.push(("fault_drop", Value::Float(self.fault.drop_prob)));
        }
        if self.fault.dup_prob != fault_default.dup_prob {
            pairs.push(("fault_dup", Value::Float(self.fault.dup_prob)));
        }
        if self.fault.jitter_ns != fault_default.jitter_ns {
            pairs.push(("fault_jitter_ns", Value::Int(self.fault.jitter_ns as i64)));
        }
        if self.fault.stall_ns != fault_default.stall_ns {
            pairs.push(("fault_stall_ns", Value::Int(self.fault.stall_ns as i64)));
        }
        if self.fault.stall_period_ns != fault_default.stall_period_ns {
            pairs.push((
                "fault_stall_period_ns",
                Value::Int(self.fault.stall_period_ns as i64),
            ));
        }
        if self.fault.drop_nth != fault_default.drop_nth {
            pairs.push(("fault_drop_nth", Value::Int(self.fault.drop_nth as i64)));
        }
        if self.fault.retry_timeout_ns != fault_default.retry_timeout_ns {
            pairs.push((
                "fault_retry_ns",
                Value::Int(self.fault.retry_timeout_ns as i64),
            ));
        }
        if self.fault.backoff_cap != fault_default.backoff_cap {
            pairs.push((
                "fault_backoff_cap",
                Value::Int(self.fault.backoff_cap as i64),
            ));
        }
        if !self.watchdog {
            pairs.push(("watchdog", Value::Bool(false)));
        }
        if self.watchdog_events != 0 {
            pairs.push(("watchdog_events", Value::Int(self.watchdog_events as i64)));
        }
        Value::table(pairs)
    }

    /// Deserializes a config from a table value; missing fields keep `base`'s values.
    pub fn from_value_with_base(value: &Value, base: &ConfigSpec) -> Result<Self, HarnessError> {
        let table = value
            .as_table()
            .ok_or_else(|| HarnessError::spec("config must be a table"))?;
        let mut spec = base.clone();
        for (key, v) in table {
            match key.as_str() {
                "units" => spec.units = usize_field(v, key)?,
                "cores_per_unit" => spec.cores_per_unit = usize_field(v, key)?,
                "mechanism" => spec.mechanism = parse_mechanism(str_field(v, key)?)?,
                "mem_tech" => spec.mem_tech = parse_mem_tech(str_field(v, key)?)?,
                "link_latency_ns" => spec.link_latency_ns = u64_field(v, key)?,
                "st_entries" => spec.st_entries = usize_field(v, key)?,
                "overflow_mode" => spec.overflow_mode = parse_overflow(str_field(v, key)?)?,
                "signal_coalescing" => {
                    spec.signal_coalescing = v
                        .as_bool()
                        .ok_or_else(|| HarnessError::spec("signal_coalescing must be a bool"))?
                }
                "signal_backoff_ns" => spec.signal_backoff_ns = u64_field(v, key)?,
                "message_batching" => {
                    spec.message_batching = v
                        .as_bool()
                        .ok_or_else(|| HarnessError::spec("message_batching must be a bool"))?
                }
                "column_batching" => {
                    spec.column_batching = v
                        .as_bool()
                        .ok_or_else(|| HarnessError::spec("column_batching must be a bool"))?
                }
                "burst_resume" => {
                    spec.burst_resume = v
                        .as_bool()
                        .ok_or_else(|| HarnessError::spec("burst_resume must be a bool"))?
                }
                "md1_model" => {
                    spec.md1_model = Md1Model::parse(str_field(v, key)?).ok_or_else(|| {
                        HarnessError::spec("unknown md1_model (expected 'exact' or 'quantized')")
                    })?
                }
                "fairness_threshold" => {
                    spec.fairness_threshold = match v {
                        Value::Str(s) if s == "off" => None,
                        Value::Null => None,
                        other => Some(
                            other
                                .as_u64()
                                .and_then(|n| u32::try_from(n).ok())
                                .ok_or_else(|| {
                                    HarnessError::spec(
                                        "fairness_threshold must be a u32, \"off\" or null",
                                    )
                                })?,
                        ),
                    }
                }
                "adaptive_threshold" => {
                    spec.adaptive_threshold = u64_field(v, key)?
                        .try_into()
                        .map_err(|_| HarnessError::spec("adaptive_threshold must fit in a u32"))?
                }
                "coherence" => spec.coherence = parse_coherence(str_field(v, key)?)?,
                "mesi_profile" => spec.mesi = MesiProfile::parse(str_field(v, key)?)?,
                "reserve_server_core" => {
                    spec.reserve_server_core = v
                        .as_bool()
                        .ok_or_else(|| HarnessError::spec("reserve_server_core must be a bool"))?
                }
                "seed" => spec.seed = u64_field(v, key)?,
                "max_events" => spec.max_events = u64_field(v, key)?,
                "scheduler" => spec.scheduler = parse_scheduler(str_field(v, key)?)?,
                "inline_step_budget" => {
                    spec.inline_step_budget = u64_field(v, key)?
                        .try_into()
                        .map_err(|_| HarnessError::spec("inline_step_budget must fit in a u32"))?
                }
                "sim_threads" => spec.sim_threads = usize_field(v, key)?,
                "fault_injection" => {
                    spec.fault.enabled = v
                        .as_bool()
                        .ok_or_else(|| HarnessError::spec("fault_injection must be a bool"))?
                }
                "fault_drop" => spec.fault.drop_prob = f64_field(v, key)?,
                "fault_dup" => spec.fault.dup_prob = f64_field(v, key)?,
                "fault_jitter_ns" => spec.fault.jitter_ns = u64_field(v, key)?,
                "fault_stall_ns" => spec.fault.stall_ns = u64_field(v, key)?,
                "fault_stall_period_ns" => spec.fault.stall_period_ns = u64_field(v, key)?,
                "fault_drop_nth" => spec.fault.drop_nth = u64_field(v, key)?,
                "fault_retry_ns" => spec.fault.retry_timeout_ns = u64_field(v, key)?,
                "fault_backoff_cap" => {
                    spec.fault.backoff_cap = u64_field(v, key)?
                        .try_into()
                        .map_err(|_| HarnessError::spec("fault_backoff_cap must fit in a u32"))?
                }
                "watchdog" => {
                    spec.watchdog = v
                        .as_bool()
                        .ok_or_else(|| HarnessError::spec("watchdog must be a bool"))?
                }
                "watchdog_events" => spec.watchdog_events = u64_field(v, key)?,
                other => {
                    return Err(HarnessError::spec(format!(
                        "unknown config field '{other}'"
                    )))
                }
            }
        }
        // Reject impossible machine geometries at decode time with an error naming
        // the offending field, instead of letting them reach the simulator.
        spec.to_ndp_config()?;
        Ok(spec)
    }

    /// Deserializes a config using the paper defaults as base.
    pub fn from_value(value: &Value) -> Result<Self, HarnessError> {
        ConfigSpec::from_value_with_base(value, &ConfigSpec::default())
    }
}

fn str_field<'v>(v: &'v Value, key: &str) -> Result<&'v str, HarnessError> {
    v.as_str()
        .ok_or_else(|| HarnessError::spec(format!("'{key}' must be a string")))
}

fn u64_field(v: &Value, key: &str) -> Result<u64, HarnessError> {
    v.as_u64()
        .ok_or_else(|| HarnessError::spec(format!("'{key}' must be a non-negative integer")))
}

fn usize_field(v: &Value, key: &str) -> Result<usize, HarnessError> {
    Ok(u64_field(v, key)? as usize)
}

fn f64_field(v: &Value, key: &str) -> Result<f64, HarnessError> {
    v.as_f64()
        .ok_or_else(|| HarnessError::spec(format!("'{key}' must be a number")))
}

/// Parses a mechanism name, accepting the report names (`SynCron-flat`) and common
/// spellings (case-insensitive, `-`/`_` ignored).
pub fn parse_mechanism(name: &str) -> Result<MechanismKind, HarnessError> {
    let canon: String = name
        .chars()
        .filter(|c| *c != '-' && *c != '_')
        .collect::<String>()
        .to_ascii_lowercase();
    MechanismKind::ALL
        .iter()
        .copied()
        .find(|k| {
            k.name()
                .chars()
                .filter(|c| *c != '-' && *c != '_')
                .collect::<String>()
                .to_ascii_lowercase()
                == canon
        })
        .ok_or_else(|| {
            HarnessError::spec(format!(
                "unknown mechanism '{name}' (expected Central, Hier, SynCron, SynCron-flat, \
                 MCS, Adaptive or Ideal)"
            ))
        })
}

fn parse_mem_tech(name: &str) -> Result<MemTech, HarnessError> {
    let lower = name.to_ascii_lowercase();
    MemTech::ALL
        .iter()
        .copied()
        .find(|t| t.name() == lower)
        .ok_or_else(|| {
            HarnessError::spec(format!(
                "unknown memory technology '{name}' (hbm, hmc, ddr4)"
            ))
        })
}

/// Parses a scheduler backend name (`calendar` or `heap`).
pub fn parse_scheduler(name: &str) -> Result<SchedulerKind, HarnessError> {
    SchedulerKind::ALL
        .iter()
        .copied()
        .find(|k| k.name() == name)
        .ok_or_else(|| {
            HarnessError::spec(format!(
                "unknown scheduler '{name}' (expected calendar or heap)"
            ))
        })
}

fn parse_overflow(name: &str) -> Result<OverflowMode, HarnessError> {
    [
        OverflowMode::Integrated,
        OverflowMode::MiSarCentral,
        OverflowMode::MiSarDistributed,
    ]
    .into_iter()
    .find(|m| m.name() == name)
    .ok_or_else(|| {
        HarnessError::spec(format!(
            "unknown overflow mode '{name}' (integrated, central-overflow, \
             distributed-overflow)"
        ))
    })
}

fn coherence_name(mode: CoherenceMode) -> &'static str {
    match mode {
        CoherenceMode::SoftwareAssisted => "software-assisted",
        CoherenceMode::MesiDirectory => "mesi",
    }
}

fn parse_coherence(name: &str) -> Result<CoherenceMode, HarnessError> {
    match name {
        "software-assisted" => Ok(CoherenceMode::SoftwareAssisted),
        "mesi" => Ok(CoherenceMode::MesiDirectory),
        _ => Err(HarnessError::spec(format!(
            "unknown coherence mode '{name}' (software-assisted or mesi)"
        ))),
    }
}

/// One labelled experiment: a system configuration plus a workload.
#[derive(Clone, Debug, PartialEq)]
pub struct Scenario {
    /// Unique label — the key under which the runner files this scenario's report.
    pub label: String,
    /// System configuration.
    pub config: ConfigSpec,
    /// Workload specification.
    pub workload: WorkloadSpec,
}

impl Scenario {
    /// Creates a scenario.
    pub fn new(label: impl Into<String>, config: ConfigSpec, workload: WorkloadSpec) -> Self {
        Scenario {
            label: label.into(),
            config,
            workload,
        }
    }

    /// Serializes the scenario into a table value.
    pub fn to_value(&self) -> Value {
        Value::table([
            ("label", Value::str(self.label.clone())),
            ("config", self.config.to_value()),
            ("workload", self.workload.to_value()),
        ])
    }

    /// Deserializes a scenario from a table value.
    pub fn from_value(value: &Value) -> Result<Self, HarnessError> {
        let workload = WorkloadSpec::from_value(
            value
                .get("workload")
                .ok_or_else(|| HarnessError::spec("scenario needs a 'workload' table"))?,
        )?;
        let config = match value.get("config") {
            Some(c) => ConfigSpec::from_value(c)?,
            None => ConfigSpec::default(),
        };
        let label = value
            .get("label")
            .and_then(Value::as_str)
            .map(str::to_string)
            .unwrap_or_else(|| workload.label());
        Ok(Scenario {
            label,
            config,
            workload,
        })
    }

    /// Runs this scenario synchronously on the current thread.
    pub fn run(&self) -> Result<syncron_system::RunReport, HarnessError> {
        let workload = self.workload.build()?;
        Ok(syncron_system::run_workload(
            &self.config.to_ndp_config()?,
            workload.as_ref(),
        ))
    }
}

/// Expands a table in which some scalar fields hold arrays into the cartesian product
/// of concrete tables (deterministic order: array fields expand in sorted key order,
/// earlier keys vary slowest).
pub fn expand_tables(value: &Value) -> Result<Vec<Value>, HarnessError> {
    let table = value
        .as_table()
        .ok_or_else(|| HarnessError::spec("expected a table"))?;
    let axes: Vec<(&String, &[Value])> = table
        .iter()
        .filter_map(|(k, v)| v.as_array().map(|a| (k, a)))
        .collect();
    for (key, options) in &axes {
        if options.is_empty() {
            return Err(HarnessError::spec(format!(
                "axis '{key}' expands to an empty array"
            )));
        }
    }
    let mut out = vec![table.clone()];
    for (key, options) in axes {
        let mut next = Vec::with_capacity(out.len() * options.len());
        for base in &out {
            for option in options {
                let mut concrete = base.clone();
                concrete.insert(key.clone(), option.clone());
                next.push(concrete);
            }
        }
        out = next;
    }
    Ok(out.into_iter().map(Value::Table).collect())
}

/// The keys of `value` that hold arrays (the axes [`expand_tables`] would expand),
/// in sorted order.
pub fn expansion_axes(value: &Value) -> Vec<String> {
    value
        .as_table()
        .map(|t| {
            t.iter()
                .filter(|(_, v)| matches!(v, Value::Array(_)))
                .map(|(k, _)| k.clone())
                .collect()
        })
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_spec_defaults_match_paper() {
        let spec = ConfigSpec::default();
        let cfg = spec.to_ndp_config().unwrap();
        let paper = NdpConfig::paper_default();
        assert_eq!(cfg.units, paper.units);
        assert_eq!(cfg.cores_per_unit, paper.cores_per_unit);
        assert_eq!(cfg.mechanism.kind, paper.mechanism.kind);
        assert_eq!(cfg.mechanism.st_entries, paper.mechanism.st_entries);
        assert_eq!(cfg.link.transfer_latency, paper.link.transfer_latency);
        assert_eq!(cfg.mem_tech, paper.mem_tech);
        assert_eq!(cfg.seed, paper.seed);
    }

    #[test]
    fn config_spec_round_trips() {
        let spec = ConfigSpec {
            units: 2,
            mechanism: MechanismKind::SynCronFlat,
            mem_tech: MemTech::Ddr4,
            link_latency_ns: 500,
            st_entries: 16,
            overflow_mode: OverflowMode::MiSarDistributed,
            fairness_threshold: Some(8),
            adaptive_threshold: 9,
            signal_coalescing: false,
            signal_backoff_ns: 75,
            coherence: CoherenceMode::MesiDirectory,
            mesi: MesiProfile::CpuTwoSocket,
            reserve_server_core: false,
            seed: 7,
            ..ConfigSpec::default()
        };
        let doc = spec.to_value();
        assert_eq!(ConfigSpec::from_value(&doc).unwrap(), spec);
        let ndp = spec.to_ndp_config().unwrap();
        assert!(!ndp.mechanism.signal_coalescing);
        assert_eq!(ndp.mechanism.signal_backoff_ns, 75);
        // And through JSON text.
        let text = doc.to_json();
        let back = ConfigSpec::from_value(&crate::json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn impossible_geometries_are_rejected_at_decode_time() {
        // The decode path must reject geometries the hardware IDs cannot address,
        // naming the offending field, instead of handing them to the simulator where
        // the old fixed-width waitlists would silently alias waiters.
        for (doc, field) in [
            (r#"{"cores_per_unit": 257}"#, "cores_per_unit"),
            (r#"{"units": 300}"#, "units"),
            (r#"{"units": 0}"#, "units"),
            (r#"{"cores_per_unit": 0}"#, "cores_per_unit"),
            (r#"{"st_entries": 0}"#, "st_entries"),
            (r#"{"max_events": 0}"#, "max_events"),
        ] {
            let value = crate::json::parse(doc).unwrap();
            match ConfigSpec::from_value(&value) {
                Err(HarnessError::Config(m)) => {
                    assert!(m.contains(field), "error '{m}' must name '{field}'")
                }
                other => panic!("{doc} must be rejected with a config error, got {other:?}"),
            }
        }
        // The largest ID-addressable geometry decodes fine.
        let value = crate::json::parse(r#"{"units": 256, "cores_per_unit": 256}"#).unwrap();
        let spec = ConfigSpec::from_value(&value).unwrap();
        assert_eq!(spec.to_ndp_config().unwrap().total_cores(), 65536);
    }

    #[test]
    fn message_batching_field_round_trips() {
        // On by default (a pure simulator optimization with bit-identical
        // results), serialized explicitly, decodable from TOML/JSON.
        assert!(ConfigSpec::default().message_batching);
        let spec = ConfigSpec::default().with_message_batching(false);
        let doc = spec.to_value();
        let back = ConfigSpec::from_value(&doc).unwrap();
        assert_eq!(back, spec);
        assert!(!back.to_ndp_config().unwrap().mechanism.message_batching);
        let value = crate::json::parse(r#"{"message_batching": false}"#).unwrap();
        assert!(!ConfigSpec::from_value(&value).unwrap().message_batching);
        let value = crate::json::parse(r#"{"message_batching": 3}"#).unwrap();
        assert!(ConfigSpec::from_value(&value).is_err());
    }

    #[test]
    fn fastpath_fields_round_trip_and_stay_silent_at_defaults() {
        // column_batching / burst_resume / md1_model are emitted only when
        // non-default, so exports of the paper's four-scheme sweeps stay
        // byte-identical across the knobs' introduction.
        let default_doc = ConfigSpec::default().to_value();
        let table = default_doc.as_table().unwrap();
        for silent in ["column_batching", "burst_resume", "md1_model"] {
            assert!(
                !table.iter().any(|(k, _)| k == silent),
                "{silent} must not be emitted at its default"
            );
        }

        let spec = ConfigSpec::default()
            .with_column_batching(false)
            .with_burst_resume(false)
            .with_md1_model(Md1Model::Exact);
        let back = ConfigSpec::from_value(&spec.to_value()).unwrap();
        assert_eq!(back, spec);
        let cfg = back.to_ndp_config().unwrap();
        assert!(!cfg.mechanism.column_batching);
        assert!(!cfg.burst_resume);
        assert_eq!(cfg.crossbar.md1_model, Md1Model::Exact);

        // TOML/JSON text forms, including rejection of unknown model names and
        // mistyped booleans.
        let value =
            crate::json::parse(r#"{"md1_model": "quantized", "burst_resume": true}"#).unwrap();
        let parsed = ConfigSpec::from_value(&value).unwrap();
        assert_eq!(parsed.md1_model, Md1Model::Quantized);
        assert!(parsed.burst_resume);
        let value = crate::json::parse(r#"{"md1_model": "fixedpoint"}"#).unwrap();
        assert!(ConfigSpec::from_value(&value).is_err());
        let value = crate::json::parse(r#"{"column_batching": 3}"#).unwrap();
        assert!(ConfigSpec::from_value(&value).is_err());
        let value = crate::json::parse(r#"{"burst_resume": "yes"}"#).unwrap();
        assert!(ConfigSpec::from_value(&value).is_err());
    }

    #[test]
    fn fault_and_watchdog_fields_round_trip_and_stay_silent_at_defaults() {
        // None of the fault/watchdog keys appear at their defaults, so
        // exports of pre-existing sweeps stay byte-identical.
        let default_doc = ConfigSpec::default().to_value();
        let table = default_doc.as_table().unwrap();
        for silent in [
            "fault_injection",
            "fault_drop",
            "fault_dup",
            "fault_jitter_ns",
            "fault_stall_ns",
            "fault_stall_period_ns",
            "fault_drop_nth",
            "fault_retry_ns",
            "fault_backoff_cap",
            "watchdog",
            "watchdog_events",
        ] {
            assert!(
                !table.iter().any(|(k, _)| k == silent),
                "{silent} must not be emitted at its default"
            );
        }

        let spec = ConfigSpec::default()
            .with_fault(FaultConfig {
                enabled: true,
                drop_prob: 0.05,
                dup_prob: 0.01,
                jitter_ns: 30,
                stall_ns: 100,
                stall_period_ns: 10_000,
                drop_nth: 3,
                retry_timeout_ns: 1_500,
                backoff_cap: 4,
            })
            .with_watchdog(false);
        let back = ConfigSpec::from_value(&spec.to_value()).unwrap();
        assert_eq!(back, spec);
        let cfg = back.to_ndp_config().unwrap();
        assert!(cfg.fault.enabled);
        assert_eq!(cfg.fault.drop_prob, 0.05);
        assert_eq!(cfg.fault.retry_timeout_ns, 1_500);
        assert_eq!(cfg.watchdog_limit(), 0, "disarmed watchdog");

        // Explicit watchdog threshold round-trips through JSON text too.
        let spec = ConfigSpec {
            watchdog_events: 4_321,
            ..ConfigSpec::default()
        };
        let text = spec.to_value().to_json();
        let back = ConfigSpec::from_value(&crate::json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, spec);
        assert_eq!(back.to_ndp_config().unwrap().watchdog_limit(), 4_321);

        // Integer-typed probabilities parse; out-of-domain values are rejected
        // at decode time with the config's typed error.
        let value = crate::json::parse(r#"{"fault_drop": 1}"#).unwrap();
        assert_eq!(ConfigSpec::from_value(&value).unwrap().fault.drop_prob, 1.0);
        let value = crate::json::parse(r#"{"fault_drop": 1.5}"#).unwrap();
        match ConfigSpec::from_value(&value) {
            Err(HarnessError::Config(m)) => assert!(m.contains("fault_drop"), "{m}"),
            other => panic!("out-of-range probability must be rejected, got {other:?}"),
        }
        let value = crate::json::parse(r#"{"fault_injection": "yes"}"#).unwrap();
        assert!(ConfigSpec::from_value(&value).is_err());
        let value = crate::json::parse(r#"{"watchdog": 1}"#).unwrap();
        assert!(ConfigSpec::from_value(&value).is_err());
    }

    #[test]
    fn scheduler_field_round_trips_and_rejects_unknown_names() {
        let spec = ConfigSpec {
            scheduler: SchedulerKind::Heap,
            inline_step_budget: 0,
            ..ConfigSpec::default()
        };
        let doc = spec.to_value();
        let back = ConfigSpec::from_value(&doc).unwrap();
        assert_eq!(back, spec);
        assert_eq!(back.to_ndp_config().unwrap().scheduler, SchedulerKind::Heap);
        assert_eq!(back.to_ndp_config().unwrap().inline_step_budget, 0);
        // TOML/JSON text names.
        let value = crate::json::parse(r#"{"scheduler": "calendar"}"#).unwrap();
        assert_eq!(
            ConfigSpec::from_value(&value).unwrap().scheduler,
            SchedulerKind::Calendar
        );
        let value = crate::json::parse(r#"{"scheduler": "fifo"}"#).unwrap();
        assert!(ConfigSpec::from_value(&value).is_err());
    }

    #[test]
    fn mechanism_names_parse_loosely() {
        assert_eq!(parse_mechanism("SynCron").unwrap(), MechanismKind::SynCron);
        assert_eq!(parse_mechanism("syncron").unwrap(), MechanismKind::SynCron);
        assert_eq!(
            parse_mechanism("syncron_flat").unwrap(),
            MechanismKind::SynCronFlat
        );
        assert_eq!(
            parse_mechanism("SynCron-flat").unwrap(),
            MechanismKind::SynCronFlat
        );
        assert!(parse_mechanism("quantum").is_err());
    }

    #[test]
    fn scenario_round_trips_and_runs() {
        let scenario = Scenario::new(
            "demo",
            ConfigSpec::default().with_geometry(2, 4),
            WorkloadSpec::Micro {
                primitive: syncron_workloads::micro::SyncPrimitive::Lock,
                interval: 100,
                iterations: 4,
            },
        );
        let doc = scenario.to_value();
        assert_eq!(Scenario::from_value(&doc).unwrap(), scenario);
        let report = scenario.run().unwrap();
        assert!(report.completed);
        assert!(report.total_ops > 0);
    }

    #[test]
    fn expansion_is_cartesian_and_deterministic() {
        let doc = crate::json::parse(
            r#"{"kind": "micro", "primitive": "lock", "interval": [50, 100], "iterations": [2, 4, 8]}"#,
        )
        .unwrap();
        let expanded = expand_tables(&doc).unwrap();
        assert_eq!(expanded.len(), 6);
        assert_eq!(expansion_axes(&doc), vec!["interval", "iterations"]);
        // Earlier (sorted) keys vary slowest: interval is the outer axis.
        assert_eq!(expanded[0].get("interval").unwrap().as_i64(), Some(50));
        assert_eq!(expanded[0].get("iterations").unwrap().as_i64(), Some(2));
        assert_eq!(expanded[2].get("interval").unwrap().as_i64(), Some(50));
        assert_eq!(expanded[2].get("iterations").unwrap().as_i64(), Some(8));
        assert_eq!(expanded[3].get("interval").unwrap().as_i64(), Some(100));
        let specs = WorkloadSpec::expand_from_value(&doc).unwrap();
        assert_eq!(specs.len(), 6);
    }

    #[test]
    fn empty_axis_is_rejected() {
        let doc = crate::json::parse(r#"{"interval": []}"#).unwrap();
        assert!(expand_tables(&doc).is_err());
    }
}
