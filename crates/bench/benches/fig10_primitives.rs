//! Regenerates Figure 10 of the paper (all four synchronization primitives).
fn main() {
    for table in syncron_bench::experiments::primitives::fig10_all() {
        table.print();
    }
}
