//! Motivational experiments: Table 1 and Figure 2.

use crate::{f2, run_many, scaled, Table};
use syncron_core::MechanismKind;
use syncron_mem::mesi::MesiParams;
use syncron_system::config::{CoherenceMode, NdpConfig};
use syncron_system::workload::Workload;
use syncron_workloads::spinlock::{LockedStack, Placement, SpinKind, SpinLockBench, StackLock};

fn cpu_config(units: usize, cores: usize) -> NdpConfig {
    NdpConfig::builder()
        .units(units)
        .cores_per_unit(cores)
        .coherence(CoherenceMode::MesiDirectory)
        .mesi_params(MesiParams::cpu_two_socket())
        .mechanism(MechanismKind::Ideal)
        .reserve_server_core(false)
        .build()
}

/// Table 1: throughput (operations per second, reported in millions) of two
/// coherence-based lock algorithms on a simulated two-socket CPU.
pub fn table01() -> Table {
    let iters = scaled(200, 20);
    let scenarios: Vec<(&str, usize, Placement)> = vec![
        ("1 thread single-socket", 1, Placement::Packed),
        ("14 threads single-socket", 14, Placement::Packed),
        ("2 threads same-socket", 2, Placement::Packed),
        ("2 threads different-socket", 2, Placement::Spread),
    ];
    let mut jobs: Vec<(NdpConfig, Box<dyn Workload + Send + Sync>)> = Vec::new();
    for kind in [SpinKind::Ttas, SpinKind::HierarchicalTicket] {
        for (_, threads, placement) in &scenarios {
            jobs.push((
                cpu_config(2, 14),
                Box::new(SpinLockBench::new(kind, *threads, *placement, iters)),
            ));
        }
    }
    let reports = run_many(jobs);

    let mut table = Table::new(
        "Table 1: coherence-based lock throughput (Mops/s) on a simulated 2-socket CPU",
        &[
            "lock",
            "1thr 1-socket",
            "14thr 1-socket",
            "2thr same-socket",
            "2thr diff-socket",
        ],
    );
    for (row, kind) in [SpinKind::Ttas, SpinKind::HierarchicalTicket].iter().enumerate() {
        let mut cells = vec![kind.name().to_string()];
        for col in 0..scenarios.len() {
            let report = &reports[row * scenarios.len() + col];
            let mops = report.total_ops as f64 / report.sim_time.as_secs_f64() / 1e6;
            cells.push(f2(mops));
        }
        table.push_row(cells);
    }
    table
}

/// Figure 2: slowdown of a coarse-lock stack with a MESI lock over an ideal zero-cost
/// lock, (a) varying cores within one NDP unit and (b) varying NDP units at 60 cores.
pub fn fig02() -> Table {
    let pushes = scaled(60, 10);
    let mut table = Table::new(
        "Figure 2: slowdown of a lock-based stack, mesi-lock vs ideal-lock",
        &["configuration", "cores", "units", "mesi-lock slowdown"],
    );

    // (a) 15..60 cores within a single NDP unit.
    let mut jobs: Vec<(NdpConfig, Box<dyn Workload + Send + Sync>)> = Vec::new();
    let core_counts = [15usize, 30, 45, 60];
    for &cores in &core_counts {
        let mesi_cfg = NdpConfig::builder()
            .units(1)
            .cores_per_unit(cores)
            .coherence(CoherenceMode::MesiDirectory)
            .mechanism(MechanismKind::Ideal)
            .reserve_server_core(false)
            .build();
        let ideal_cfg = NdpConfig::builder()
            .units(1)
            .cores_per_unit(cores)
            .mechanism(MechanismKind::Ideal)
            .reserve_server_core(false)
            .build();
        jobs.push((mesi_cfg, Box::new(LockedStack::new(StackLock::MesiSpin, pushes))));
        jobs.push((
            ideal_cfg,
            Box::new(LockedStack::new(StackLock::SyncPrimitive, pushes)),
        ));
    }
    // (b) 60 cores split over 1..4 NDP units.
    let unit_counts = [1usize, 2, 3, 4];
    for &units in &unit_counts {
        let cores = 60 / units;
        let mesi_cfg = NdpConfig::builder()
            .units(units)
            .cores_per_unit(cores)
            .coherence(CoherenceMode::MesiDirectory)
            .mechanism(MechanismKind::Ideal)
            .reserve_server_core(false)
            .build();
        let ideal_cfg = NdpConfig::builder()
            .units(units)
            .cores_per_unit(cores)
            .mechanism(MechanismKind::Ideal)
            .reserve_server_core(false)
            .build();
        jobs.push((mesi_cfg, Box::new(LockedStack::new(StackLock::MesiSpin, pushes))));
        jobs.push((
            ideal_cfg,
            Box::new(LockedStack::new(StackLock::SyncPrimitive, pushes)),
        ));
    }
    let reports = run_many(jobs);

    for (i, &cores) in core_counts.iter().enumerate() {
        let mesi = &reports[i * 2];
        let ideal = &reports[i * 2 + 1];
        table.push_row(vec![
            "(a) single unit".into(),
            cores.to_string(),
            "1".into(),
            f2(mesi.slowdown_over(ideal)),
        ]);
    }
    let base = core_counts.len() * 2;
    for (i, &units) in unit_counts.iter().enumerate() {
        let mesi = &reports[base + i * 2];
        let ideal = &reports[base + i * 2 + 1];
        table.push_row(vec![
            "(b) 60 cores total".into(),
            "60".into(),
            units.to_string(),
            f2(mesi.slowdown_over(ideal)),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table01_shape_matches_paper_trends() {
        std::env::set_var("SYNCRON_SCALE", "0.2");
        let t = table01();
        assert_eq!(t.rows.len(), 2);
        let parse = |s: &String| s.parse::<f64>().unwrap();
        for row in &t.rows {
            let one = parse(&row[1]);
            let fourteen = parse(&row[2]);
            let same = parse(&row[3]);
            let diff = parse(&row[4]);
            // Adding threads to one socket collapses per-lock throughput, and crossing
            // sockets is slower than staying within one (Table 1's two observations).
            assert!(fourteen < one, "{row:?}");
            assert!(diff < same, "{row:?}");
        }
    }
}
