//! The event-driven NDP machine.
//!
//! [`NdpMachine`] assembles the substrates — per-core L1 caches, per-unit crossbars and
//! DRAM devices, inter-unit links, a MESI directory (for the motivational experiments)
//! and one synchronization mechanism — and steps the client cores' programs one
//! [`Action`] at a time, charging each action's latency through the corresponding
//! models. The machine is fully deterministic: same configuration and workload seed,
//! same result.
//!
//! # The run loop
//!
//! The scheduling core is built for large geometries (thousands of cores):
//!
//! * events flow through the calendar-queue scheduler by default
//!   ([`syncron_sim::event::SchedulerKind`]; the reference heap is selectable per
//!   configuration and produces bit-identical reports);
//! * `CoreResume` events resolve cores through a precomputed dense
//!   `GlobalCoreId -> client index` table — no hashing on the hottest path, and a
//!   resume for a core that is not a client of this machine is a hard error naming
//!   the core instead of a silently dropped event;
//! * when a core's next step strictly precedes every queued event, the loop
//!   executes it inline instead of round-tripping it through the queue, bounded by
//!   the [`crate::config::NdpConfig::inline_step_budget`] fairness budget. The
//!   strict-precedence condition makes the inlined event the unique next pop, so
//!   inter-core ordering at equal timestamps — and therefore every report — is
//!   unchanged.

use crate::address::AddressSpace;
use crate::config::{CoherenceMode, NdpConfig};
use crate::report::{RunReport, SimPerf};
use crate::workload::{Action, CoreProgram, Workload};

use syncron_core::mechanism::{build_mechanism, SyncContext, SyncMechanism};
use syncron_mem::cache::L1Cache;
use syncron_mem::dram::{DramModel, DramSpec};
use syncron_mem::energy::EnergyTally;
use syncron_mem::mesi::{CoherentAccess, MesiDirectory};
use syncron_net::crossbar::Crossbar;
use syncron_net::link::InterUnitLink;
use syncron_net::traffic::TrafficStats;
use syncron_sim::event::{CalendarParams, EventQueue, SchedulerKind};
use syncron_sim::time::Time;
use syncron_sim::{Addr, GlobalCoreId, UnitId};

/// Size of a request header packet on the network, in bytes.
const HDR_BYTES: u64 = 16;
/// Size of a data (cache line) packet on the network, in bytes.
const LINE_BYTES: u64 = 64;

#[derive(Clone, Copy, Debug)]
enum Event {
    /// A client core (by dense client index) is ready for its next action.
    CoreStep(usize),
    /// A blocking synchronization request completed; the core resumes.
    CoreResume(GlobalCoreId),
    /// A token scheduled by the synchronization mechanism is due.
    SyncToken(u64),
}

/// Precomputed dense `GlobalCoreId -> client index` table.
///
/// Replaces the `HashMap` lookup that used to sit on the `CoreResume` hot path:
/// resolution is one bounds check plus one slot load. Slots covering server cores
/// (and the whole table for out-of-geometry IDs) answer `None`.
#[derive(Debug)]
struct ClientIndex {
    units: usize,
    cores_per_unit: usize,
    /// One slot per `(unit, core)` of the configured geometry; `NOT_A_CLIENT`
    /// marks reserved server cores.
    slots: Vec<u32>,
}

const NOT_A_CLIENT: u32 = u32::MAX;

impl ClientIndex {
    fn new(units: usize, cores_per_unit: usize, clients: &[GlobalCoreId]) -> Self {
        let mut slots = vec![NOT_A_CLIENT; units * cores_per_unit];
        for (index, core) in clients.iter().enumerate() {
            slots[core.flat_index(cores_per_unit)] = index as u32;
        }
        ClientIndex {
            units,
            cores_per_unit,
            slots,
        }
    }

    /// The dense client index of `core`, or `None` when the core is outside the
    /// machine geometry or is a reserved server core.
    #[inline]
    fn get(&self, core: GlobalCoreId) -> Option<usize> {
        // Guard both coordinates: a local core ID at or past `cores_per_unit`
        // would otherwise alias into the next unit's flat range.
        if core.unit.index() >= self.units || core.core.index() >= self.cores_per_unit {
            return None;
        }
        let slot = self.slots[core.flat_index(self.cores_per_unit)];
        (slot != NOT_A_CLIENT).then_some(slot as usize)
    }
}

/// The machine state the synchronization mechanism operates on: the event queue,
/// the network and memory substrates, and the address-space map.
///
/// Grouping these in one struct lets [`NdpMachine::with_mechanism`] hand the
/// mechanism a [`MechCtx`] by borrowing two fields instead of reconstructing a
/// ten-field context on every event (the per-event construction cost used to be
/// paid once per `SyncToken` and once per synchronization request).
struct Substrates {
    queue: EventQueue<Event>,
    crossbars: Vec<Crossbar>,
    links: InterUnitLink,
    drams: Vec<DramModel>,
    server_l1s: Vec<L1Cache>,
    traffic: TrafficStats,
    space: AddressSpace,
    units: usize,
    cores_per_unit: usize,
}

/// Shared mutable machine state handed to the synchronization mechanism.
struct MechCtx<'a> {
    now: Time,
    sub: &'a mut Substrates,
}

impl std::fmt::Debug for MechCtx<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MechCtx(now={})", self.now)
    }
}

impl SyncContext for MechCtx<'_> {
    fn now(&self) -> Time {
        self.now
    }

    fn schedule(&mut self, at: Time, token: u64) {
        self.sub.queue.push(at, Event::SyncToken(token));
    }

    fn schedule_stamp(&self) -> Option<u64> {
        // The machine's queue counts every push (core steps, resumes, sync
        // tokens), so the protocol's equal-timestamp batching can prove "no
        // event was scheduled in between" — the condition under which merging
        // two deliveries preserves pop order exactly.
        Some(self.sub.queue.scheduled_total())
    }

    fn local_hop(&mut self, unit: UnitId, bytes: u64) -> Time {
        self.sub.traffic.add_intra(bytes);
        self.sub.crossbars[unit.index()].transfer(self.now, bytes)
    }

    fn remote_hop(&mut self, from: UnitId, to: UnitId, bytes: u64) -> Time {
        self.sub.traffic.add_inter(bytes);
        let mut lat = self.sub.crossbars[from.index()].transfer(self.now, bytes);
        lat += self.sub.links.transfer(self.now + lat, from, to, bytes);
        lat += self.sub.crossbars[to.index()].transfer(self.now + lat, bytes);
        lat
    }

    fn sync_mem_access(&mut self, unit: UnitId, addr: Addr, write: bool, cached: bool) -> Time {
        let u = unit.index();
        let mut lat = Time::ZERO;
        if cached {
            let outcome = self.sub.server_l1s[u].access(addr, write);
            lat += self.sub.server_l1s[u].hit_latency();
            if outcome.is_hit() {
                return lat;
            }
        }
        // Miss (or uncached syncronVar access): go to the unit's local DRAM through the
        // crossbar.
        lat += self.sub.crossbars[u].transfer(self.now + lat, HDR_BYTES);
        let done = self.sub.drams[u].access(self.now + lat, addr, write);
        lat = done.saturating_sub(self.now);
        lat += self.sub.crossbars[u].transfer(self.now + lat, LINE_BYTES);
        self.sub.traffic.add_intra(HDR_BYTES + LINE_BYTES);
        lat
    }

    fn home_unit(&self, addr: Addr) -> UnitId {
        self.sub.space.home_unit(addr)
    }

    fn complete(&mut self, core: GlobalCoreId, at: Time) {
        // The machine resolves the core's dense client index from its global identity.
        self.sub
            .queue
            .push(at.max(self.now), Event::CoreResume(core));
    }

    fn units(&self) -> usize {
        self.sub.units
    }

    fn cores_per_unit(&self) -> usize {
        self.sub.cores_per_unit
    }
}

/// The simulated NDP system.
pub struct NdpMachine {
    config: NdpConfig,
    clients: Vec<GlobalCoreId>,
    client_index: ClientIndex,
    programs: Vec<Box<dyn CoreProgram>>,
    core_done: Vec<bool>,
    done_count: usize,
    last_finish: Time,
    time: Time,
    sub: Substrates,
    l1s: Vec<L1Cache>,
    mesi: Option<MesiDirectory>,
    mechanism: Option<Box<dyn SyncMechanism>>,
    mesi_network_pj: f64,
    workload_name: String,
    instructions: u64,
    loads: u64,
    stores: u64,
    sync_requests: u64,
    events_delivered: u64,
    completed: bool,
}

impl std::fmt::Debug for NdpMachine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "NdpMachine(workload={}, clients={}, time={})",
            self.workload_name,
            self.clients.len(),
            self.time
        )
    }
}

impl NdpMachine {
    /// Builds a machine for `config` running `workload`.
    ///
    /// # Panics
    ///
    /// Panics if `config` is invalid (see [`NdpConfig::validate`]; configurations
    /// from [`NdpConfig::builder`] are always valid) or if the workload returns a
    /// different number of programs than there are client cores.
    pub fn new(config: &NdpConfig, workload: &dyn Workload) -> Self {
        if let Err(e) = config.validate() {
            panic!("{e}");
        }
        let mut space = AddressSpace::new(config.units);
        let clients = config.client_cores();
        let programs = workload.build(&mut space, config, &clients);
        assert_eq!(
            programs.len(),
            clients.len(),
            "workload must provide one program per client core"
        );
        let client_index = ClientIndex::new(config.units, config.cores_per_unit, &clients);

        let dram_spec = DramSpec::for_tech(config.mem_tech);
        let mesi = match config.coherence {
            CoherenceMode::SoftwareAssisted => None,
            CoherenceMode::MesiDirectory => Some(MesiDirectory::new(
                config.units,
                config.cores_per_unit,
                config.mesi,
            )),
        };
        let mechanism = build_mechanism(&config.mechanism, config.units, config.cores_per_unit);

        // Pre-size for the steady state so large geometries (thousands of cores)
        // never reallocate mid-run: every client can have a step or resume event
        // in flight plus a few mechanism tokens each. For the calendar queue the
        // buckets are sized so one core cycle maps to one bucket and the reserve
        // pre-allocates the far-future overflow heap.
        let mut queue = match config.scheduler {
            SchedulerKind::Calendar => {
                EventQueue::calendar(CalendarParams::for_cycle(config.core_cycle()))
            }
            SchedulerKind::Heap => EventQueue::with_scheduler(SchedulerKind::Heap),
        };
        queue.reserve(clients.len() * 8 + 64);

        let mut machine = NdpMachine {
            config: *config,
            core_done: vec![false; clients.len()],
            done_count: 0,
            last_finish: Time::ZERO,
            time: Time::ZERO,
            sub: Substrates {
                queue,
                crossbars: (0..config.units)
                    .map(|_| Crossbar::new(config.crossbar))
                    .collect(),
                links: InterUnitLink::new(config.link, config.units),
                drams: (0..config.units)
                    .map(|_| DramModel::new(dram_spec))
                    .collect(),
                server_l1s: (0..config.units).map(|_| L1Cache::new(config.l1)).collect(),
                traffic: TrafficStats::new(),
                space,
                units: config.units,
                cores_per_unit: config.cores_per_unit,
            },
            l1s: clients.iter().map(|_| L1Cache::new(config.l1)).collect(),
            mesi,
            mechanism: Some(mechanism),
            mesi_network_pj: 0.0,
            workload_name: workload.name(),
            instructions: 0,
            loads: 0,
            stores: 0,
            sync_requests: 0,
            events_delivered: 0,
            completed: false,
            clients,
            client_index,
            programs,
        };
        for i in 0..machine.programs.len() {
            machine.sub.queue.push(Time::ZERO, Event::CoreStep(i));
        }
        machine
    }

    /// Resolves a resumed core to its dense client index.
    ///
    /// # Panics
    ///
    /// Panics — naming the core — when the core is not a client of this machine
    /// (outside the configured geometry, or a reserved server core). A resume for
    /// such a core is always a mechanism bug; it used to be silently dropped,
    /// which turned protocol bugs into unexplainable deadlocks.
    fn resolve_client(&self, core: GlobalCoreId) -> usize {
        self.client_index.get(core).unwrap_or_else(|| {
            panic!(
                "CoreResume for core {core}, which is not a client of this machine \
                 ({} units x {} cores, {} clients): either the core is outside the \
                 geometry or it is a reserved server core",
                self.config.units,
                self.config.cores_per_unit,
                self.clients.len()
            )
        })
    }

    /// Runs the machine until every client core has finished (or the event safety
    /// limit is reached) and returns the report.
    pub fn run(&mut self) -> RunReport {
        let wall_start = std::time::Instant::now();
        'outer: while let Some((at, event)) = self.sub.queue.pop() {
            let mut inline_budget = self.config.inline_step_budget;
            let mut current = (at, event);
            loop {
                let (at, event) = current;
                self.time = self.time.max(at);
                self.events_delivered += 1;
                if self.events_delivered > self.config.max_events {
                    self.completed = false;
                    return self.build_report(wall_start.elapsed());
                }
                let next_step = match event {
                    Event::CoreStep(idx) => self.step_core(idx).map(|t| (t, idx)),
                    Event::CoreResume(core) => {
                        let idx = self.resolve_client(core);
                        self.step_core(idx).map(|t| (t, idx))
                    }
                    Event::SyncToken(token) => {
                        self.with_mechanism(|mech, ctx| mech.deliver(ctx, token));
                        None
                    }
                };
                if self.done_count == self.programs.len() {
                    self.completed = true;
                    break 'outer;
                }
                let Some((t, idx)) = next_step else { break };
                // Inline dispatch: when the core's next step strictly precedes
                // every queued event it is the unique next pop, so executing it
                // without the queue round-trip is behaviour-preserving. The
                // fairness budget bounds how long one pop may monopolize the loop.
                if inline_budget > 0 && self.sub.queue.peek_time().is_none_or(|p| t < p) {
                    inline_budget -= 1;
                    current = (t, Event::CoreStep(idx));
                } else {
                    self.sub.queue.push(t, Event::CoreStep(idx));
                    break;
                }
            }
        }
        // If the queue drained without every core reporting Done, the workload
        // deadlocked (e.g. a lock never released); report it as incomplete.
        if self.done_count == self.programs.len() {
            self.completed = true;
        }
        self.build_report(wall_start.elapsed())
    }

    /// Executes one step of client `idx`. Returns the absolute time at which the
    /// same core wants its next `CoreStep`, or `None` when the core finished,
    /// blocked on a synchronization request, or was already done.
    fn step_core(&mut self, idx: usize) -> Option<Time> {
        if self.core_done[idx] {
            return None;
        }
        let core = self.clients[idx];
        let now = self.time;
        let action = self.programs[idx].step(core, now);
        match action {
            Action::Compute { instrs } => {
                self.instructions += instrs;
                let latency = self.config.core_cycle().saturating_mul(instrs.max(1));
                Some(now + latency)
            }
            Action::Load { addr } => {
                self.loads += 1;
                let latency = self.data_access(idx, core, addr, CoherentAccess::Read);
                Some(now + latency)
            }
            Action::Store { addr } => {
                self.stores += 1;
                let latency = self.data_access(idx, core, addr, CoherentAccess::Write);
                Some(now + latency)
            }
            Action::Rmw { addr } => {
                self.loads += 1;
                self.stores += 1;
                let latency = self.data_access(idx, core, addr, CoherentAccess::Rmw);
                Some(now + latency)
            }
            Action::Sync(req) => {
                self.sync_requests += 1;
                // The mechanism decides whether the request blocks: beyond the
                // ISA-level req_sync/req_async split, delayed-grant replies (condvar
                // signal coalescing ACK/NACKs) also stall the issuing core.
                let blocking = self
                    .mechanism
                    .as_ref()
                    .map(|m| m.blocks_core(&req))
                    .unwrap_or_else(|| req.is_blocking());
                self.with_mechanism(|mech, ctx| mech.request(ctx, core, req));
                if !blocking {
                    // req_async commits as soon as the message is issued.
                    Some(now + self.config.core_cycle())
                } else {
                    // Blocking requests resume when the mechanism completes them.
                    None
                }
            }
            Action::Done => {
                self.core_done[idx] = true;
                self.done_count += 1;
                self.last_finish = self.last_finish.max(now);
                None
            }
        }
    }

    /// Latency of a data access by client `idx` to `addr`.
    fn data_access(
        &mut self,
        idx: usize,
        core: GlobalCoreId,
        addr: Addr,
        kind: CoherentAccess,
    ) -> Time {
        let class = self.sub.space.class_of(addr);
        let home = self.sub.space.home_unit(addr);
        let now = self.time;

        // Coherent shared read-write data under the MESI mode goes through the
        // directory protocol (Figure 2 / Table 1 baselines only).
        if let Some(mesi) = self.mesi.as_mut() {
            if !class.cacheable() {
                let out = mesi.access(now, core, addr, kind, home);
                // Account the protocol's traffic and energy analytically: control
                // messages are header-sized, every message moves through the crossbars
                // (and the links when crossing units).
                let intra_bytes = u64::from(out.intra_msgs) * 2 * HDR_BYTES;
                let inter_bytes = u64::from(out.inter_msgs) * (HDR_BYTES + LINE_BYTES) / 2;
                if intra_bytes > 0 {
                    self.sub.traffic.add_intra(intra_bytes);
                }
                if inter_bytes > 0 {
                    self.sub.traffic.add_inter(inter_bytes);
                }
                self.mesi_network_pj += intra_bytes as f64
                    * 8.0
                    * self.config.crossbar.pj_per_bit_hop
                    * self.config.crossbar.hops as f64
                    + inter_bytes as f64 * 8.0 * self.config.link.pj_per_bit;
                for _ in 0..out.mem_accesses {
                    self.sub.drams[home.index()].access(now, addr, kind != CoherentAccess::Read);
                }
                // The requester's L1 energy for the probe/fill.
                self.l1s[idx].access(addr, kind != CoherentAccess::Read);
                return out.latency;
            }
        }

        let write = kind != CoherentAccess::Read;
        let mut lat = Time::ZERO;
        if class.cacheable() {
            let outcome = self.l1s[idx].access(addr, write);
            lat += self.l1s[idx].hit_latency();
            if outcome.is_hit() {
                return lat;
            }
        }

        // Miss or uncacheable: fetch/update the line in the home unit's DRAM.
        let local = core.unit == home;
        lat += self.sub.crossbars[core.unit.index()].transfer(now + lat, HDR_BYTES);
        if !local {
            lat += self
                .sub
                .links
                .transfer(now + lat, core.unit, home, HDR_BYTES);
            lat += self.sub.crossbars[home.index()].transfer(now + lat, HDR_BYTES);
        }
        let dram_done = self.sub.drams[home.index()].access(now + lat, addr, write);
        lat = dram_done.saturating_sub(now);
        lat += self.sub.crossbars[home.index()].transfer(now + lat, LINE_BYTES);
        if !local {
            lat += self
                .sub
                .links
                .transfer(now + lat, home, core.unit, LINE_BYTES);
            lat += self.sub.crossbars[core.unit.index()].transfer(now + lat, LINE_BYTES);
            self.sub.traffic.add_inter(HDR_BYTES + LINE_BYTES);
        } else {
            self.sub.traffic.add_intra(HDR_BYTES + LINE_BYTES);
        }
        // An atomic RMW under software-assisted coherence performs its update at the
        // memory side; charge one extra core cycle for the returned old value check.
        if kind == CoherentAccess::Rmw {
            lat += self.config.core_cycle();
        }
        lat
    }

    fn with_mechanism<R>(
        &mut self,
        f: impl FnOnce(&mut dyn SyncMechanism, &mut MechCtx<'_>) -> R,
    ) -> R {
        let mut mech = self.mechanism.take().expect("mechanism in use");
        let mut ctx = MechCtx {
            now: self.time,
            sub: &mut self.sub,
        };
        let result = f(mech.as_mut(), &mut ctx);
        self.mechanism = Some(mech);
        result
    }

    /// The configuration this machine runs.
    pub fn config(&self) -> &NdpConfig {
        &self.config
    }

    /// Current simulation time.
    pub fn now(&self) -> Time {
        self.time
    }

    fn build_report(&mut self, wall: std::time::Duration) -> RunReport {
        let end = if self.last_finish > Time::ZERO {
            self.last_finish
        } else {
            self.time
        };
        let mut energy = EnergyTally::new();
        let mut l1_hits = 0u64;
        let mut l1_accesses = 0u64;
        for l1 in self.l1s.iter().chain(self.sub.server_l1s.iter()) {
            energy.add_cache(l1.energy_pj());
            l1_hits += l1.stats().hits.get();
            l1_accesses += l1.stats().accesses();
        }
        let mut dram_accesses = 0u64;
        for dram in &self.sub.drams {
            energy.add_memory(dram.energy_pj());
            dram_accesses += dram.stats().total_accesses();
        }
        for xbar in &self.sub.crossbars {
            energy.add_network(xbar.energy_pj());
        }
        energy.add_network(self.sub.links.energy_pj());
        energy.add_network(self.mesi_network_pj);

        let total_ops: u64 = self.programs.iter().map(|p| p.ops_completed()).sum();
        // Open-loop workloads expose per-core latency histograms; merge them into
        // one machine-wide tail-latency summary. Closed-loop programs expose none
        // and the report keeps `latency: None`.
        let mut latency_hist = syncron_sim::stats::LogHistogram::new();
        for program in &self.programs {
            if let Some(hist) = program.latency_histogram() {
                latency_hist.merge(hist);
            }
        }
        let latency = crate::report::LatencyReport::from_histogram(&latency_hist);
        let sync = self
            .mechanism
            .as_ref()
            .map(|m| m.stats(end))
            .unwrap_or_default();
        let mechanism_name = self
            .mechanism
            .as_ref()
            .map(|m| m.name().to_string())
            .unwrap_or_default();

        RunReport {
            workload: self.workload_name.clone(),
            mechanism: mechanism_name,
            sim_time: end,
            completed: self.completed,
            total_ops,
            instructions: self.instructions,
            loads: self.loads,
            stores: self.stores,
            sync_requests: self.sync_requests,
            energy,
            traffic: self.sub.traffic,
            sync,
            dram_accesses,
            l1_hit_ratio: if l1_accesses == 0 {
                0.0
            } else {
                l1_hits as f64 / l1_accesses as f64
            },
            latency,
            perf: SimPerf {
                wall_seconds: wall.as_secs_f64(),
                events_delivered: self.events_delivered,
            },
        }
    }
}

/// Convenience wrapper: builds a machine for `config`, runs `workload` to completion
/// and returns the report.
pub fn run_workload(config: &NdpConfig, workload: &dyn Workload) -> RunReport {
    NdpMachine::new(config, workload).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::DataClass;
    use syncron_core::request::{BarrierScope, SyncRequest};
    use syncron_core::MechanismKind;
    use syncron_sim::{CoreId, UnitId};

    /// Each core increments a per-core counter `iterations` times, protected by one
    /// global lock, mixing compute, memory and synchronization actions.
    struct CounterWorkload {
        iterations: u32,
    }

    struct CounterProgram {
        lock: Addr,
        slot: Addr,
        remaining: u32,
        phase: u8,
        ops: u64,
    }

    impl CoreProgram for CounterProgram {
        fn step(&mut self, _core: GlobalCoreId, _now: Time) -> Action {
            if self.remaining == 0 {
                return Action::Done;
            }
            let action = match self.phase {
                0 => Action::Compute { instrs: 50 },
                1 => Action::Sync(SyncRequest::LockAcquire { var: self.lock }),
                2 => Action::Load { addr: self.slot },
                3 => Action::Store { addr: self.slot },
                4 => Action::Sync(SyncRequest::LockRelease { var: self.lock }),
                _ => unreachable!(),
            };
            if self.phase == 4 {
                self.phase = 0;
                self.remaining -= 1;
                self.ops += 1;
            } else {
                self.phase += 1;
            }
            action
        }

        fn ops_completed(&self) -> u64 {
            self.ops
        }
    }

    impl Workload for CounterWorkload {
        fn name(&self) -> String {
            "counter".into()
        }

        fn build(
            &self,
            space: &mut AddressSpace,
            _config: &NdpConfig,
            clients: &[GlobalCoreId],
        ) -> Vec<Box<dyn CoreProgram>> {
            let lock = space.allocate_shared_rw(64, UnitId(0));
            let slots = space.allocate_shared_rw(64 * clients.len() as u64, UnitId(0));
            clients
                .iter()
                .enumerate()
                .map(|(i, _)| {
                    Box::new(CounterProgram {
                        lock,
                        slot: slots.offset(64 * i as u64),
                        remaining: self.iterations,
                        phase: 0,
                        ops: 0,
                    }) as Box<dyn CoreProgram>
                })
                .collect()
        }
    }

    /// All cores synchronize on a global barrier a few times.
    struct BarrierWorkload {
        rounds: u32,
    }

    struct BarrierProgram {
        bar: Addr,
        participants: u32,
        remaining: u32,
        compute_next: bool,
    }

    impl CoreProgram for BarrierProgram {
        fn step(&mut self, _core: GlobalCoreId, _now: Time) -> Action {
            if self.remaining == 0 {
                return Action::Done;
            }
            if self.compute_next {
                self.compute_next = false;
                Action::Compute { instrs: 100 }
            } else {
                self.compute_next = true;
                self.remaining -= 1;
                Action::Sync(SyncRequest::BarrierWait {
                    var: self.bar,
                    participants: self.participants,
                    scope: BarrierScope::AcrossUnits,
                })
            }
        }

        fn ops_completed(&self) -> u64 {
            1
        }
    }

    impl Workload for BarrierWorkload {
        fn name(&self) -> String {
            "barrier".into()
        }

        fn build(
            &self,
            space: &mut AddressSpace,
            _config: &NdpConfig,
            clients: &[GlobalCoreId],
        ) -> Vec<Box<dyn CoreProgram>> {
            let bar = space.allocate_shared_rw(64, UnitId(0));
            clients
                .iter()
                .map(|_| {
                    Box::new(BarrierProgram {
                        bar,
                        participants: clients.len() as u32,
                        remaining: self.rounds,
                        compute_next: true,
                    }) as Box<dyn CoreProgram>
                })
                .collect()
        }
    }

    fn small_config(kind: MechanismKind) -> NdpConfig {
        NdpConfig::builder()
            .units(2)
            .cores_per_unit(4)
            .mechanism(kind)
            .build()
            .unwrap()
    }

    #[test]
    fn counter_workload_completes_under_every_mechanism() {
        for kind in MechanismKind::ALL {
            let report = run_workload(&small_config(kind), &CounterWorkload { iterations: 5 });
            assert!(report.completed, "{kind:?} did not complete");
            assert_eq!(report.total_ops, 5 * 6, "{kind:?}");
            assert!(report.sim_time > Time::ZERO);
            assert!(report.sync_requests > 0);
        }
    }

    #[test]
    fn ideal_is_fastest_and_uses_least_energy() {
        let workload = CounterWorkload { iterations: 10 };
        let ideal = run_workload(&small_config(MechanismKind::Ideal), &workload);
        for kind in [
            MechanismKind::Central,
            MechanismKind::Hier,
            MechanismKind::SynCron,
        ] {
            let other = run_workload(&small_config(kind), &workload);
            assert!(
                other.sim_time >= ideal.sim_time,
                "{kind:?} ({}) beat Ideal ({})",
                other.sim_time,
                ideal.sim_time
            );
            assert!(other.energy.total_pj() >= ideal.energy.total_pj());
        }
    }

    #[test]
    fn syncron_beats_central_under_contention() {
        let workload = CounterWorkload { iterations: 20 };
        let central = run_workload(&small_config(MechanismKind::Central), &workload);
        let syncron = run_workload(&small_config(MechanismKind::SynCron), &workload);
        assert!(
            syncron.sim_time < central.sim_time,
            "SynCron {} should beat Central {}",
            syncron.sim_time,
            central.sim_time
        );
    }

    #[test]
    fn barrier_workload_completes() {
        for kind in [
            MechanismKind::SynCron,
            MechanismKind::Hier,
            MechanismKind::Ideal,
        ] {
            let report = run_workload(&small_config(kind), &BarrierWorkload { rounds: 4 });
            assert!(report.completed, "{kind:?}");
        }
    }

    #[test]
    fn report_accounts_energy_and_traffic() {
        let report = run_workload(
            &small_config(MechanismKind::SynCron),
            &CounterWorkload { iterations: 5 },
        );
        assert!(report.energy.total_pj() > 0.0);
        assert!(report.traffic.total_bytes() > 0);
        assert!(report.dram_accesses > 0);
        assert!(report.instructions > 0);
        assert!(report.loads > 0 && report.stores > 0);
    }

    #[test]
    fn deterministic_across_runs() {
        let cfg = small_config(MechanismKind::SynCron);
        let a = run_workload(&cfg, &CounterWorkload { iterations: 8 });
        let b = run_workload(&cfg, &CounterWorkload { iterations: 8 });
        assert_eq!(a.sim_time, b.sim_time);
        assert_eq!(a.traffic, b.traffic);
    }

    #[test]
    fn schedulers_and_inline_dispatch_agree_bit_for_bit() {
        // The determinism contract of the rework: the calendar queue (with and
        // without inline dispatch) and the reference heap produce the same report,
        // field for field, for every mechanism.
        for kind in MechanismKind::ALL {
            let base = small_config(kind);
            let reference = {
                let mut cfg = base;
                cfg.scheduler = SchedulerKind::Heap;
                cfg.inline_step_budget = 0;
                run_workload(&cfg, &CounterWorkload { iterations: 8 })
            };
            for (scheduler, budget) in [
                (SchedulerKind::Heap, 64),
                (SchedulerKind::Calendar, 0),
                (SchedulerKind::Calendar, 64),
                (SchedulerKind::Calendar, 1),
            ] {
                let mut cfg = base;
                cfg.scheduler = scheduler;
                cfg.inline_step_budget = budget;
                let report = run_workload(&cfg, &CounterWorkload { iterations: 8 });
                if let Some(field) = reference.divergence_from(&report) {
                    panic!("{kind:?} under {scheduler:?}/budget={budget} diverged: {field}");
                }
            }
        }
    }

    #[test]
    fn report_carries_simulator_perf() {
        let report = run_workload(
            &small_config(MechanismKind::SynCron),
            &CounterWorkload { iterations: 5 },
        );
        assert!(report.perf.events_delivered > 0);
        // Wall time resolution is host-dependent, but the counter must at least
        // cover one event per delivered action.
        assert!(report.perf.events_delivered >= report.instructions.min(1));
    }

    #[test]
    fn resume_for_unknown_core_is_a_hard_error() {
        // A CoreResume for a core outside the geometry (or for a reserved server
        // core) is a mechanism bug; it used to be silently ignored.
        let machine = NdpMachine::new(
            &small_config(MechanismKind::SynCron),
            &CounterWorkload { iterations: 1 },
        );
        // In-geometry client cores resolve to their dense index.
        assert_eq!(
            machine.resolve_client(GlobalCoreId::new(UnitId(0), CoreId(0))),
            0
        );
        assert_eq!(
            machine.resolve_client(GlobalCoreId::new(UnitId(1), CoreId(0))),
            machine.config.clients_per_unit()
        );
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            machine.resolve_client(GlobalCoreId::new(UnitId(7), CoreId(3)))
        }));
        let message = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(
            message.contains("U7.c3"),
            "panic must name the core: {message}"
        );
        assert!(message.contains("not a client"));
    }

    #[test]
    fn server_cores_and_aliasing_ids_are_not_clients() {
        // cores_per_unit = 4 with a reserved server core: local core 3 serves.
        let machine = NdpMachine::new(
            &small_config(MechanismKind::SynCron),
            &CounterWorkload { iterations: 1 },
        );
        let index = &machine.client_index;
        assert_eq!(index.get(GlobalCoreId::new(UnitId(0), CoreId(3))), None);
        // A local core ID at or past cores_per_unit must not alias into the next
        // unit's flat range (U0.c4 would otherwise resolve to U1.c0's slot).
        assert_eq!(index.get(GlobalCoreId::new(UnitId(0), CoreId(4))), None);
        assert_eq!(index.get(GlobalCoreId::new(UnitId(2), CoreId(0))), None);
        assert_eq!(
            index.get(GlobalCoreId::new(UnitId(1), CoreId(0))),
            Some(machine.config.clients_per_unit())
        );
    }

    #[test]
    fn remote_data_costs_more_than_local() {
        // A single core reading shared data homed locally vs remotely.
        struct OneReader {
            home: UnitId,
        }
        struct ReaderProgram {
            addr: Addr,
            remaining: u32,
        }
        impl CoreProgram for ReaderProgram {
            fn step(&mut self, _c: GlobalCoreId, _n: Time) -> Action {
                if self.remaining == 0 {
                    return Action::Done;
                }
                self.remaining -= 1;
                Action::Load { addr: self.addr }
            }
        }
        impl Workload for OneReader {
            fn name(&self) -> String {
                "one-reader".into()
            }
            fn build(
                &self,
                space: &mut AddressSpace,
                _c: &NdpConfig,
                clients: &[GlobalCoreId],
            ) -> Vec<Box<dyn CoreProgram>> {
                let addr = space.allocate(4096, DataClass::SharedReadWrite, self.home);
                clients
                    .iter()
                    .enumerate()
                    .map(|(i, _)| {
                        Box::new(ReaderProgram {
                            addr: addr.offset(64 * i as u64),
                            remaining: if i == 0 { 100 } else { 0 },
                        }) as Box<dyn CoreProgram>
                    })
                    .collect()
            }
        }
        let cfg = small_config(MechanismKind::Ideal);
        let local = run_workload(&cfg, &OneReader { home: UnitId(0) });
        let remote = run_workload(&cfg, &OneReader { home: UnitId(1) });
        assert!(remote.sim_time > local.sim_time);
        assert!(remote.traffic.inter_unit_bytes > local.traffic.inter_unit_bytes);
    }

    #[test]
    fn deadlocked_workload_reports_incomplete() {
        // A core that acquires a lock twice without releasing deadlocks itself.
        struct Deadlock;
        struct DeadlockProgram {
            lock: Addr,
            acquired: u32,
        }
        impl CoreProgram for DeadlockProgram {
            fn step(&mut self, _c: GlobalCoreId, _n: Time) -> Action {
                self.acquired += 1;
                Action::Sync(SyncRequest::LockAcquire { var: self.lock })
            }
        }
        impl Workload for Deadlock {
            fn name(&self) -> String {
                "deadlock".into()
            }
            fn build(
                &self,
                space: &mut AddressSpace,
                _c: &NdpConfig,
                clients: &[GlobalCoreId],
            ) -> Vec<Box<dyn CoreProgram>> {
                let lock = space.allocate_shared_rw(64, UnitId(0));
                clients
                    .iter()
                    .map(|_| {
                        Box::new(DeadlockProgram { lock, acquired: 0 }) as Box<dyn CoreProgram>
                    })
                    .collect()
            }
        }
        let report = run_workload(&small_config(MechanismKind::SynCron), &Deadlock);
        assert!(!report.completed);
    }

    #[test]
    fn mesi_mode_runs_rmw_workload() {
        struct SpinWorkload;
        struct SpinProgram {
            lock: Addr,
            remaining: u32,
            holding: bool,
        }
        impl CoreProgram for SpinProgram {
            fn step(&mut self, _c: GlobalCoreId, _n: Time) -> Action {
                if self.remaining == 0 {
                    return Action::Done;
                }
                if self.holding {
                    self.holding = false;
                    self.remaining -= 1;
                    Action::Store { addr: self.lock }
                } else {
                    self.holding = true;
                    Action::Rmw { addr: self.lock }
                }
            }
            fn ops_completed(&self) -> u64 {
                1
            }
        }
        impl Workload for SpinWorkload {
            fn name(&self) -> String {
                "spin".into()
            }
            fn build(
                &self,
                space: &mut AddressSpace,
                _c: &NdpConfig,
                clients: &[GlobalCoreId],
            ) -> Vec<Box<dyn CoreProgram>> {
                let lock = space.allocate_shared_rw(64, UnitId(0));
                clients
                    .iter()
                    .map(|_| {
                        Box::new(SpinProgram {
                            lock,
                            remaining: 10,
                            holding: false,
                        }) as Box<dyn CoreProgram>
                    })
                    .collect()
            }
        }
        let cfg = NdpConfig::builder()
            .units(2)
            .cores_per_unit(4)
            .coherence(CoherenceMode::MesiDirectory)
            .mechanism(MechanismKind::Ideal)
            .reserve_server_core(false)
            .build()
            .unwrap();
        let report = run_workload(&cfg, &SpinWorkload);
        assert!(report.completed);
        assert!(report.traffic.total_bytes() > 0);
    }
}
