//! Figures 12–15 and Table 7: the real applications (graph analytics and time series).

use crate::{expect_speedup, f2, run_scenarios, scaled, RunSet, Sweep, Table, WorkloadSpec};
use syncron_core::MechanismKind;
use syncron_workloads::graph::{GraphAlgo, GraphInput, Partitioning};

/// One application–input combination of the paper's real-application set.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AppCombo {
    /// Application name ("bfs" … "tc", or "ts").
    pub app: &'static str,
    /// Input name ("wk", "sl", "sx", "co", "air", "pow").
    pub input: &'static str,
}

impl AppCombo {
    /// Label in the paper's `app.input` format (also the workload-spec label).
    pub fn label(&self) -> String {
        format!("{}.{}", self.app, self.input)
    }
}

/// All 26 application–input combinations of Figure 12 (6 graph apps × 4 graphs + time
/// series × 2 datasets).
pub fn all_combos() -> Vec<AppCombo> {
    let mut combos = Vec::new();
    for algo in GraphAlgo::ALL {
        for input in GraphInput::ALL {
            combos.push(AppCombo {
                app: algo.name(),
                input: input.name,
            });
        }
    }
    combos.push(AppCombo {
        app: "ts",
        input: "air",
    });
    combos.push(AppCombo {
        app: "ts",
        input: "pow",
    });
    combos
}

/// The eight representative combinations used by Figures 13, 14 and 15.
pub fn highlighted_combos() -> Vec<AppCombo> {
    [
        ("bfs", "sl"),
        ("cc", "sx"),
        ("sssp", "co"),
        ("pr", "wk"),
        ("tf", "sl"),
        ("tc", "sx"),
        ("ts", "air"),
        ("ts", "pow"),
    ]
    .iter()
    .map(|&(app, input)| AppCombo { app, input })
    .collect()
}

/// The workload spec for one combination (time-series work is scaled with
/// `SYNCRON_SCALE` like everything else).
pub fn workload_spec(combo: &AppCombo) -> WorkloadSpec {
    if combo.app == "ts" {
        WorkloadSpec::TimeSeries {
            input: combo.input.to_string(),
            diagonals_per_core: scaled(6, 2),
        }
    } else {
        WorkloadSpec::Graph {
            algo: GraphAlgo::by_name(combo.app).expect("known graph algorithm"),
            input: combo.input.to_string(),
            partitioning: Partitioning::Striped,
        }
    }
}

/// Runs a set of combinations under every compared scheme at the paper-default system
/// size; results are keyed `{name}/{app.input}/mech={scheme}`.
pub fn run_combos(name: &str, combos: &[AppCombo]) -> RunSet {
    let sweep = Sweep::new(name)
        .workloads(combos.iter().map(workload_spec))
        .compared_mechanisms();
    run_scenarios(&sweep.scenarios().expect("valid sweep"))
}

fn combo_label(name: &str, combo: &AppCombo, kind: MechanismKind) -> String {
    format!("{name}/{}/mech={}", combo.label(), kind.name())
}

/// Figure 12: speedup of every scheme over Central for all 26 combinations.
pub fn fig12() -> Table {
    let combos = all_combos();
    let results = run_combos("fig12", &combos);
    let mut table = Table::new(
        "Figure 12: real-application speedup over Central",
        &["app.input", "Central", "Hier", "SynCron", "Ideal"],
    );
    let mut geo = [1.0f64; 4];
    for combo in &combos {
        let central = combo_label("fig12", combo, MechanismKind::Central);
        let mut cells = vec![combo.label()];
        for (j, kind) in MechanismKind::COMPARED.iter().enumerate() {
            let speedup = expect_speedup(&results, &combo_label("fig12", combo, *kind), &central);
            geo[j] *= speedup;
            cells.push(f2(speedup));
        }
        table.push_row(cells);
    }
    let n = combos.len() as f64;
    table.push_row(vec![
        "GEOMEAN".into(),
        f2(geo[0].powf(1.0 / n)),
        f2(geo[1].powf(1.0 / n)),
        f2(geo[2].powf(1.0 / n)),
        f2(geo[3].powf(1.0 / n)),
    ]);
    table
}

/// Figure 13: scalability of SynCron from 1 to 4 NDP units for the highlighted
/// combinations (speedup over the 1-unit run).
pub fn fig13() -> Table {
    let combos = highlighted_combos();
    let unit_steps = [1usize, 2, 3, 4];
    let sweep = Sweep::new("fig13")
        .workloads(combos.iter().map(workload_spec))
        .units(unit_steps);
    let results = run_scenarios(&sweep.scenarios().expect("valid sweep"));

    let mut table = Table::new(
        "Figure 13: SynCron scalability (speedup over 1 NDP unit)",
        &["app.input", "1 unit", "2 units", "3 units", "4 units"],
    );
    let mut avg = [0.0f64; 4];
    for combo in &combos {
        let one_unit = format!("fig13/{}/u=1", combo.label());
        let mut cells = vec![combo.label()];
        for (j, &units) in unit_steps.iter().enumerate() {
            let label = format!("fig13/{}/u={units}", combo.label());
            let speedup = expect_speedup(&results, &label, &one_unit);
            avg[j] += speedup;
            cells.push(f2(speedup));
        }
        table.push_row(cells);
    }
    table.push_row(vec![
        "AVG".into(),
        f2(avg[0] / combos.len() as f64),
        f2(avg[1] / combos.len() as f64),
        f2(avg[2] / combos.len() as f64),
        f2(avg[3] / combos.len() as f64),
    ]);
    table
}

/// Figure 14: energy breakdown (cache / network / memory) normalized to Central.
pub fn fig14() -> Table {
    let combos = highlighted_combos();
    let results = run_combos("fig14", &combos);
    let mut table = Table::new(
        "Figure 14: energy normalized to Central (cache/network/memory fractions)",
        &[
            "app.input",
            "scheme",
            "total vs Central",
            "cache",
            "network",
            "memory",
        ],
    );
    for combo in &combos {
        let central_energy = results
            .report(&combo_label("fig14", combo, MechanismKind::Central))
            .expect("swept")
            .energy
            .total_pj();
        for kind in MechanismKind::COMPARED {
            let report = results
                .report(&combo_label("fig14", combo, kind))
                .expect("swept");
            let (c, n, m) = report.energy.breakdown();
            table.push_row(vec![
                combo.label(),
                kind.name().into(),
                f2(report.energy.total_pj() / central_energy),
                f2(c),
                f2(n),
                f2(m),
            ]);
        }
    }
    table
}

/// Figure 15: data movement (inside / across NDP units) normalized to Central.
pub fn fig15() -> Table {
    let combos = highlighted_combos();
    let results = run_combos("fig15", &combos);
    let mut table = Table::new(
        "Figure 15: data movement normalized to Central",
        &[
            "app.input",
            "scheme",
            "total vs Central",
            "inside-unit bytes",
            "across-unit bytes",
        ],
    );
    for combo in &combos {
        let central_bytes = results
            .report(&combo_label("fig15", combo, MechanismKind::Central))
            .expect("swept")
            .traffic
            .total_bytes() as f64;
        for kind in MechanismKind::COMPARED {
            let report = results
                .report(&combo_label("fig15", combo, kind))
                .expect("swept");
            table.push_row(vec![
                combo.label(),
                kind.name().into(),
                f2(report.traffic.total_bytes() as f64 / central_bytes),
                report.traffic.intra_unit_bytes.to_string(),
                report.traffic.inter_unit_bytes.to_string(),
            ]);
        }
    }
    table
}

/// Table 7: maximum and average ST occupancy of SynCron for every combination.
pub fn table07() -> Table {
    let combos = all_combos();
    let sweep = Sweep::new("table07").workloads(combos.iter().map(workload_spec));
    let results = run_scenarios(&sweep.scenarios().expect("valid sweep"));
    let mut table = Table::new(
        "Table 7: ST occupancy in real applications (percent of 64 entries)",
        &["app.input", "max %", "avg %"],
    );
    for combo in &combos {
        let report = results
            .report(&format!("table07/{}", combo.label()))
            .expect("swept");
        table.push_row(vec![
            combo.label(),
            f2(report.sync.st_max_occupancy * 100.0),
            f2(report.sync.st_avg_occupancy * 100.0),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combo_sets_match_paper_counts() {
        assert_eq!(all_combos().len(), 26);
        assert_eq!(highlighted_combos().len(), 8);
        assert_eq!(all_combos()[0].label(), "bfs.wk");
    }

    #[test]
    fn workloads_build_for_every_combo() {
        for combo in all_combos() {
            let spec = workload_spec(&combo);
            assert_eq!(spec.label(), combo.label());
            let wl = spec.build().expect("known combo");
            assert!(!wl.name().is_empty());
        }
    }
}
