//! Figures 11, 16 and 23: pointer-chasing data structures.

use crate::{f2, run_many, scaled, Table};
use syncron_core::mechanism::MechanismParams;
use syncron_core::protocol::OverflowMode;
use syncron_core::MechanismKind;
use syncron_sim::Time;
use syncron_system::config::NdpConfig;
use syncron_system::workload::Workload;
use syncron_workloads::datastructures::{self, DsConfig};

fn config_with_units(kind: MechanismKind, units: usize) -> NdpConfig {
    NdpConfig::builder().units(units).cores_per_unit(16).mechanism(kind).build()
}

/// Figure 11: throughput (operations/ms) of the nine data structures as the number of
/// NDP cores grows from 15 to 60 (one NDP unit added per step), for each scheme.
pub fn fig11() -> Vec<Table> {
    let ops = scaled(40, 8);
    let schemes = MechanismKind::COMPARED;
    let unit_steps = [1usize, 2, 3, 4];
    datastructures::ALL_NAMES
        .iter()
        .map(|&name| {
            let mut jobs: Vec<(NdpConfig, Box<dyn Workload + Send + Sync>)> = Vec::new();
            for &units in &unit_steps {
                for kind in schemes {
                    jobs.push((
                        config_with_units(kind, units),
                        datastructures::by_name(name, ops).expect("known structure"),
                    ));
                }
            }
            let reports = run_many(jobs);
            let mut table = Table::new(
                format!("Figure 11 ({name}): throughput in operations/ms vs NDP cores"),
                &["cores", "Central", "Hier", "SynCron", "Ideal"],
            );
            for (i, &units) in unit_steps.iter().enumerate() {
                let base = i * schemes.len();
                let mut cells = vec![(units * 15).to_string()];
                for j in 0..schemes.len() {
                    cells.push(f2(reports[base + j].ops_per_ms()));
                }
                table.push_row(cells);
            }
            table
        })
        .collect()
}

/// Figure 16: throughput of the stack and the priority queue (operations/µs) as the
/// inter-unit link transfer latency grows from 40 ns to 9 µs (high contention).
pub fn fig16() -> Vec<Table> {
    let ops = scaled(40, 8);
    let latencies_ns: [u64; 8] = [40, 100, 200, 500, 1_000, 2_000, 4_500, 9_000];
    let schemes = MechanismKind::COMPARED;
    ["stack", "priority-queue"]
        .iter()
        .map(|&name| {
            let mut jobs: Vec<(NdpConfig, Box<dyn Workload + Send + Sync>)> = Vec::new();
            for &lat in &latencies_ns {
                for kind in schemes {
                    let config = NdpConfig::builder()
                        .mechanism(kind)
                        .link_latency(Time::from_ns(lat))
                        .build();
                    jobs.push((config, datastructures::by_name(name, ops).expect("known")));
                }
            }
            let reports = run_many(jobs);
            let mut table = Table::new(
                format!("Figure 16 ({name}): operations/us vs inter-unit link transfer latency"),
                &["latency_ns", "Central", "Hier", "SynCron", "Ideal"],
            );
            for (i, &lat) in latencies_ns.iter().enumerate() {
                let base = i * schemes.len();
                let mut cells = vec![lat.to_string()];
                for j in 0..schemes.len() {
                    cells.push(format!("{:.3}", reports[base + j].ops_per_us()));
                }
                table.push_row(cells);
            }
            table
        })
        .collect()
}

/// Figure 23: throughput of BST_FG under the three overflow-management schemes as the
/// ST size varies, plus the fraction of overflowed requests.
pub fn fig23() -> Table {
    let ops = scaled(30, 6);
    let st_sizes = [16usize, 32, 48, 64, 128, 256];
    let modes = [
        ("SynCron", OverflowMode::Integrated),
        ("SynCron_CentralOvrfl", OverflowMode::MiSarCentral),
        ("SynCron_DistribOvrfl", OverflowMode::MiSarDistributed),
    ];
    let mut jobs: Vec<(NdpConfig, Box<dyn Workload + Send + Sync>)> = Vec::new();
    for &st in &st_sizes {
        for (_, mode) in &modes {
            let params = MechanismParams::new(MechanismKind::SynCron)
                .with_st_entries(st)
                .with_overflow_mode(*mode);
            let config = NdpConfig::builder().mechanism_params(params).build();
            jobs.push((
                config,
                datastructures::by_name("bst-fg", ops).expect("bst-fg"),
            ));
        }
    }
    let reports = run_many(jobs);
    let mut table = Table::new(
        "Figure 23: BST_FG throughput (operations/ms) under different overflow schemes",
        &[
            "ST entries",
            "SynCron",
            "SynCron_CentralOvrfl",
            "SynCron_DistribOvrfl",
            "overflowed %",
        ],
    );
    for (i, &st) in st_sizes.iter().enumerate() {
        let base = i * modes.len();
        let mut cells = vec![st.to_string()];
        for j in 0..modes.len() {
            cells.push(f2(reports[base + j].ops_per_ms()));
        }
        cells.push(f2(reports[base].sync.overflow_fraction() * 100.0));
        table.push_row(cells);
    }
    table
}

/// Building block shared by tests and quick examples: runs one structure under one
/// scheme at the paper's default system size.
pub fn run_structure(name: &str, kind: MechanismKind, ops: u32) -> syncron_system::RunReport {
    let wl = datastructures::by_name(name, ops).expect("known structure");
    syncron_system::run_workload(&config_with_units(kind, 4), wl.as_ref())
}

/// Default data-structure sizing used by examples.
pub fn example_config(initial: usize, ops: u32) -> DsConfig {
    DsConfig::new(initial, ops)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stack_throughput_ranks_schemes_like_the_paper() {
        let central = run_structure("stack", MechanismKind::Central, 20);
        let syncron = run_structure("stack", MechanismKind::SynCron, 20);
        let ideal = run_structure("stack", MechanismKind::Ideal, 20);
        assert!(syncron.ops_per_ms() > central.ops_per_ms());
        assert!(ideal.ops_per_ms() >= syncron.ops_per_ms());
    }

    #[test]
    fn bst_fg_overflows_small_sts() {
        let params = MechanismParams::new(MechanismKind::SynCron).with_st_entries(16);
        let config = NdpConfig::builder().mechanism_params(params).build();
        let wl = datastructures::by_name("bst-fg", 10).unwrap();
        let report = syncron_system::run_workload(&config, wl.as_ref());
        assert!(report.completed);
        assert!(
            report.sync.overflow_fraction() > 0.0,
            "a 16-entry ST should overflow under BST_FG"
        );
    }
}
