//! Energy accounting.
//!
//! The paper reports system energy broken down into three components (Figure 14):
//! cache accesses, network transfers, and memory accesses. [`EnergyTally`] accumulates
//! these in picojoules; the system crate fills it from the cache, crossbar/link and
//! DRAM models, and the report formats it.

/// Accumulated energy in picojoules, broken down the way Figure 14 of the paper does.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EnergyTally {
    /// Energy spent in L1 caches (hits and misses).
    pub cache_pj: f64,
    /// Energy spent moving bits through the intra-unit crossbars and inter-unit links.
    pub network_pj: f64,
    /// Energy spent in DRAM accesses.
    pub memory_pj: f64,
}

impl EnergyTally {
    /// Creates an empty tally.
    pub fn new() -> Self {
        EnergyTally::default()
    }

    /// Adds cache energy.
    pub fn add_cache(&mut self, pj: f64) {
        self.cache_pj += pj;
    }

    /// Adds network energy.
    pub fn add_network(&mut self, pj: f64) {
        self.network_pj += pj;
    }

    /// Adds memory energy.
    pub fn add_memory(&mut self, pj: f64) {
        self.memory_pj += pj;
    }

    /// Total energy in picojoules.
    pub fn total_pj(&self) -> f64 {
        self.cache_pj + self.network_pj + self.memory_pj
    }

    /// Total energy in microjoules.
    pub fn total_uj(&self) -> f64 {
        self.total_pj() / 1e6
    }

    /// Fraction of the total spent in each component `(cache, network, memory)`.
    /// Returns `(0, 0, 0)` if the tally is empty.
    pub fn breakdown(&self) -> (f64, f64, f64) {
        let total = self.total_pj();
        if total <= 0.0 {
            (0.0, 0.0, 0.0)
        } else {
            (
                self.cache_pj / total,
                self.network_pj / total,
                self.memory_pj / total,
            )
        }
    }

    /// Merges another tally into this one.
    pub fn merge(&mut self, other: &EnergyTally) {
        self.cache_pj += other.cache_pj;
        self.network_pj += other.network_pj;
        self.memory_pj += other.memory_pj;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_and_totals() {
        let mut e = EnergyTally::new();
        e.add_cache(10.0);
        e.add_network(30.0);
        e.add_memory(60.0);
        assert_eq!(e.total_pj(), 100.0);
        assert!((e.total_uj() - 1e-4).abs() < 1e-12);
        let (c, n, m) = e.breakdown();
        assert!((c - 0.1).abs() < 1e-9);
        assert!((n - 0.3).abs() < 1e-9);
        assert!((m - 0.6).abs() < 1e-9);
    }

    #[test]
    fn empty_breakdown_is_zero() {
        assert_eq!(EnergyTally::new().breakdown(), (0.0, 0.0, 0.0));
    }

    #[test]
    fn merge_sums_components() {
        let mut a = EnergyTally {
            cache_pj: 1.0,
            network_pj: 2.0,
            memory_pj: 3.0,
        };
        let b = EnergyTally {
            cache_pj: 10.0,
            network_pj: 20.0,
            memory_pj: 30.0,
        };
        a.merge(&b);
        assert_eq!(a.cache_pj, 11.0);
        assert_eq!(a.network_pj, 22.0);
        assert_eq!(a.memory_pj, 33.0);
    }
}
