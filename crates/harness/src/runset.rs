//! Keyed result sets with comparison and export helpers.
//!
//! A [`RunSet`] is the output of [`crate::runner::Runner::run`]: one
//! ([`Scenario`], [`RunReport`]) entry per scenario, indexed by the scenario label.
//! Experiments look results up by key ([`RunSet::get`]) or by structured predicate
//! ([`RunSet::find`]) instead of reconstructing input order, and export the whole set
//! as JSON or CSV.

use std::collections::BTreeMap;
use std::path::Path;

use syncron_system::{IncompleteReason, RunReport};

use crate::error::HarnessError;
use crate::json::Value;
use crate::scenario::{ConfigSpec, Scenario};

/// One scenario together with its report.
#[derive(Clone, Debug)]
pub struct RunEntry {
    /// The scenario that was run.
    pub scenario: Scenario,
    /// Its simulation report.
    pub report: RunReport,
}

/// The results of one runner invocation, keyed by scenario label.
#[derive(Clone, Debug, Default)]
pub struct RunSet {
    entries: Vec<RunEntry>,
    index: BTreeMap<String, usize>,
}

impl RunSet {
    /// An empty set.
    pub fn empty() -> Self {
        RunSet::default()
    }

    /// Builds a set from (scenario, report) pairs, rejecting duplicate labels.
    pub fn from_pairs(
        pairs: impl IntoIterator<Item = (Scenario, RunReport)>,
    ) -> Result<Self, HarnessError> {
        let mut set = RunSet::default();
        for (scenario, report) in pairs {
            if set.index.contains_key(&scenario.label) {
                return Err(HarnessError::DuplicateLabel(scenario.label));
            }
            set.index.insert(scenario.label.clone(), set.entries.len());
            set.entries.push(RunEntry { scenario, report });
        }
        Ok(set)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the set holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All entries in execution-submission order.
    pub fn entries(&self) -> &[RunEntry] {
        &self.entries
    }

    /// Looks an entry up by its scenario label.
    pub fn get(&self, label: &str) -> Option<&RunEntry> {
        self.index.get(label).map(|&i| &self.entries[i])
    }

    /// The report for `label`.
    pub fn report(&self, label: &str) -> Option<&RunReport> {
        self.get(label).map(|e| &e.report)
    }

    /// First entry whose scenario satisfies `predicate` (submission order).
    pub fn find(&self, predicate: impl Fn(&Scenario) -> bool) -> Option<&RunEntry> {
        self.entries.iter().find(|e| predicate(&e.scenario))
    }

    /// All entries whose scenario satisfies `predicate` (submission order).
    pub fn select(&self, predicate: impl Fn(&Scenario) -> bool) -> Vec<&RunEntry> {
        self.entries
            .iter()
            .filter(|e| predicate(&e.scenario))
            .collect()
    }

    /// Speedup of `label` over `baseline_label` (`> 1` means `label` is faster).
    ///
    /// Returns `None` when either label is missing **or either run is incomplete**
    /// (it hit `max_events`): a truncated run's simulated time is a lower bound, not
    /// a result, so comparing against it would silently overstate speedups.
    pub fn speedup_over(&self, label: &str, baseline_label: &str) -> Option<f64> {
        let (run, base) = self.comparable(label, baseline_label)?;
        Some(run.speedup_over(base))
    }

    /// Slowdown of `label` over `baseline_label` (`> 1` means `label` is slower).
    ///
    /// Returns `None` when either label is missing or either run is incomplete, for
    /// the same reason as [`RunSet::speedup_over`].
    pub fn slowdown_over(&self, label: &str, baseline_label: &str) -> Option<f64> {
        let (run, base) = self.comparable(label, baseline_label)?;
        Some(run.slowdown_over(base))
    }

    /// Looks up both reports and filters out pairs in which either run hit the event
    /// safety limit (partial runs are not valid comparison points).
    fn comparable(&self, label: &str, baseline_label: &str) -> Option<(&RunReport, &RunReport)> {
        let run = self.report(label)?;
        let base = self.report(baseline_label)?;
        if !run.completed || !base.completed {
            return None;
        }
        Some((run, base))
    }

    /// Total events the simulator delivered across every entry.
    pub fn total_events_delivered(&self) -> u64 {
        self.entries
            .iter()
            .map(|e| e.report.perf.events_delivered)
            .sum()
    }

    /// Total wall-clock seconds the simulator spent across every entry.
    ///
    /// Under a parallel [`crate::runner::Runner`] this is accumulated busy time,
    /// not elapsed time — runs overlap.
    pub fn total_wall_seconds(&self) -> f64 {
        self.entries
            .iter()
            .map(|e| e.report.perf.wall_seconds)
            .sum()
    }

    /// Aggregate simulator throughput: total delivered events over total wall
    /// time, in events per second (`0.0` for an empty set or unresolvable clock).
    pub fn aggregate_events_per_sec(&self) -> f64 {
        let wall = self.total_wall_seconds();
        if wall > 0.0 {
            self.total_events_delivered() as f64 / wall
        } else {
            0.0
        }
    }

    /// Serializes the set as a JSON value: an array of
    /// `{label, config, workload, report}` tables.
    pub fn to_json_value(&self) -> Value {
        Value::Array(
            self.entries
                .iter()
                .map(|e| {
                    Value::table([
                        ("label", Value::str(e.scenario.label.clone())),
                        ("config", e.scenario.config.to_value()),
                        ("workload", e.scenario.workload.to_value()),
                        ("report", report_to_value(&e.report)),
                    ])
                })
                .collect(),
        )
    }

    /// Serializes the set as pretty-printed JSON.
    pub fn to_json_string(&self) -> String {
        self.to_json_value().to_json_pretty()
    }

    /// Serializes the set as CSV (one row per entry, fixed column set).
    pub fn to_csv_string(&self) -> String {
        let mut out = String::from(CSV_HEADER);
        out.push('\n');
        for e in &self.entries {
            out.push_str(&csv_row(&e.scenario.label, &e.scenario.config, &e.report));
            out.push('\n');
        }
        out
    }

    /// Writes the JSON export to `path`.
    pub fn write_json(&self, path: impl AsRef<Path>) -> Result<(), HarnessError> {
        std::fs::write(path.as_ref(), self.to_json_string())
            .map_err(|e| HarnessError::io(format!("{}: {e}", path.as_ref().display())))
    }

    /// Writes the CSV export to `path`.
    pub fn write_csv(&self, path: impl AsRef<Path>) -> Result<(), HarnessError> {
        std::fs::write(path.as_ref(), self.to_csv_string())
            .map_err(|e| HarnessError::io(format!("{}: {e}", path.as_ref().display())))
    }
}

const CSV_HEADER: &str = "label,workload,mechanism,units,cores_per_unit,mem_tech,link_latency_ns,\
st_entries,completed,sim_time_ps,total_ops,ops_per_ms,instructions,loads,stores,sync_requests,\
energy_cache_pj,energy_network_pj,energy_memory_pj,energy_total_pj,intra_unit_bytes,\
inter_unit_bytes,sync_local_messages,sync_global_messages,sync_mem_accesses,\
overflow_fraction,st_max_occupancy,st_avg_occupancy,dram_accesses,l1_hit_ratio,\
latency_ops,latency_mean_ns,latency_p50_ns,latency_p99_ns,latency_p999_ns,latency_max_ns,\
wall_seconds,events_delivered,events_per_sec,incomplete_reason";

fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

fn csv_row(label: &str, config: &ConfigSpec, r: &RunReport) -> String {
    [
        csv_field(label),
        csv_field(&r.workload),
        csv_field(&r.mechanism),
        config.units.to_string(),
        config.cores_per_unit.to_string(),
        config.mem_tech.name().to_string(),
        config.link_latency_ns.to_string(),
        config.st_entries.to_string(),
        r.completed.to_string(),
        r.sim_time.as_ps().to_string(),
        r.total_ops.to_string(),
        format!("{:.3}", r.ops_per_ms()),
        r.instructions.to_string(),
        r.loads.to_string(),
        r.stores.to_string(),
        r.sync_requests.to_string(),
        format!("{:.1}", r.energy.cache_pj),
        format!("{:.1}", r.energy.network_pj),
        format!("{:.1}", r.energy.memory_pj),
        format!("{:.1}", r.energy.total_pj()),
        r.traffic.intra_unit_bytes.to_string(),
        r.traffic.inter_unit_bytes.to_string(),
        r.sync.local_messages.to_string(),
        r.sync.global_messages.to_string(),
        r.sync.mem_accesses.to_string(),
        format!("{:.4}", r.sync.overflow_fraction()),
        format!("{:.4}", r.sync.st_max_occupancy),
        format!("{:.4}", r.sync.st_avg_occupancy),
        r.dram_accesses.to_string(),
        format!("{:.4}", r.l1_hit_ratio),
        // Tail-latency columns are only populated for open-loop runs; closed-loop
        // rows keep them empty so the column set stays fixed.
        r.latency.map_or(String::new(), |l| l.ops.to_string()),
        r.latency
            .map_or(String::new(), |l| format!("{:.1}", l.mean_ns)),
        r.latency
            .map_or(String::new(), |l| format!("{:.1}", l.p50_ns)),
        r.latency
            .map_or(String::new(), |l| format!("{:.1}", l.p99_ns)),
        r.latency
            .map_or(String::new(), |l| format!("{:.1}", l.p999_ns)),
        r.latency.map_or(String::new(), |l| l.max_ns.to_string()),
        format!("{:.6}", r.perf.wall_seconds),
        r.perf.events_delivered.to_string(),
        format!("{:.0}", r.perf.events_per_sec()),
        // Empty for clean runs; a stable diagnosis label otherwise
        // ("event-budget", "stalled-deadlock", "stalled-no-progress", "panicked").
        r.incomplete
            .as_ref()
            .map_or(String::new(), |i| i.label().to_string()),
    ]
    .join(",")
}

/// Serializes a [`RunReport`] into a table value (the JSON mirror of the report
/// struct, with derived throughput added for convenience).
pub fn report_to_value(r: &RunReport) -> Value {
    let mut table = Value::table([
        ("workload", Value::str(r.workload.clone())),
        ("mechanism", Value::str(r.mechanism.clone())),
        ("sim_time_ps", Value::Int(r.sim_time.as_ps() as i64)),
        ("completed", Value::Bool(r.completed)),
        ("total_ops", Value::Int(r.total_ops as i64)),
        ("ops_per_ms", Value::Float(r.ops_per_ms())),
        ("instructions", Value::Int(r.instructions as i64)),
        ("loads", Value::Int(r.loads as i64)),
        ("stores", Value::Int(r.stores as i64)),
        ("sync_requests", Value::Int(r.sync_requests as i64)),
        (
            "energy_pj",
            Value::table([
                ("cache", Value::Float(r.energy.cache_pj)),
                ("network", Value::Float(r.energy.network_pj)),
                ("memory", Value::Float(r.energy.memory_pj)),
                ("total", Value::Float(r.energy.total_pj())),
            ]),
        ),
        (
            "traffic",
            Value::table([
                (
                    "intra_unit_bytes",
                    Value::Int(r.traffic.intra_unit_bytes as i64),
                ),
                (
                    "inter_unit_bytes",
                    Value::Int(r.traffic.inter_unit_bytes as i64),
                ),
                (
                    "intra_unit_msgs",
                    Value::Int(r.traffic.intra_unit_msgs as i64),
                ),
                (
                    "inter_unit_msgs",
                    Value::Int(r.traffic.inter_unit_msgs as i64),
                ),
            ]),
        ),
        (
            "sync",
            Value::table([
                ("requests", Value::Int(r.sync.requests as i64)),
                ("completions", Value::Int(r.sync.completions as i64)),
                ("local_messages", Value::Int(r.sync.local_messages as i64)),
                ("global_messages", Value::Int(r.sync.global_messages as i64)),
                (
                    "overflow_messages",
                    Value::Int(r.sync.overflow_messages as i64),
                ),
                ("mem_accesses", Value::Int(r.sync.mem_accesses as i64)),
                (
                    "overflowed_requests",
                    Value::Int(r.sync.overflowed_requests as i64),
                ),
                (
                    "overflow_fraction",
                    Value::Float(r.sync.overflow_fraction()),
                ),
                ("st_max_occupancy", Value::Float(r.sync.st_max_occupancy)),
                ("st_avg_occupancy", Value::Float(r.sync.st_avg_occupancy)),
                (
                    "delivered_signals",
                    Value::Int(r.sync.delivered_signals as i64),
                ),
                (
                    "coalesced_signals",
                    Value::Int(r.sync.coalesced_signals as i64),
                ),
                (
                    "consumed_signals",
                    Value::Int(r.sync.consumed_signals as i64),
                ),
                ("signal_nacks", Value::Int(r.sync.signal_nacks as i64)),
                (
                    "max_pending_signals",
                    Value::Int(r.sync.max_pending_signals as i64),
                ),
            ]),
        ),
        ("dram_accesses", Value::Int(r.dram_accesses as i64)),
        ("l1_hit_ratio", Value::Float(r.l1_hit_ratio)),
        (
            "perf",
            Value::table([
                ("wall_seconds", Value::Float(r.perf.wall_seconds)),
                (
                    "events_delivered",
                    Value::Int(r.perf.events_delivered as i64),
                ),
                ("events_per_sec", Value::Float(r.perf.events_per_sec())),
                ("shards", Value::Int(r.perf.shards as i64)),
            ]),
        ),
    ]);
    // Open-loop runs carry a latency summary; closed-loop reports omit the key
    // entirely rather than emitting a table of nulls.
    if let (Some(l), Value::Table(map)) = (r.latency, &mut table) {
        map.insert(
            "latency".to_string(),
            Value::table([
                ("ops", Value::Int(l.ops as i64)),
                ("mean_ns", Value::Float(l.mean_ns)),
                ("p50_ns", Value::Float(l.p50_ns)),
                ("p99_ns", Value::Float(l.p99_ns)),
                ("p999_ns", Value::Float(l.p999_ns)),
                ("max_ns", Value::Int(l.max_ns as i64)),
            ]),
        );
    }
    // Incomplete runs carry a diagnosis; clean reports omit the keys entirely.
    if let (Some(reason), Value::Table(map)) = (&r.incomplete, &mut table) {
        map.insert("incomplete_reason".to_string(), Value::str(reason.label()));
        match reason {
            IncompleteReason::Panicked(msg) => {
                map.insert("panic_message".to_string(), Value::str(msg.clone()));
            }
            IncompleteReason::Stalled(stall) => {
                map.insert(
                    "stall".to_string(),
                    Value::table([
                        ("blocked_total", Value::Int(stall.blocked_total as i64)),
                        ("unfinished", Value::Int(stall.unfinished as i64)),
                        (
                            "blocked",
                            Value::Array(
                                stall
                                    .blocked
                                    .iter()
                                    .map(|b| {
                                        Value::table([
                                            ("unit", Value::Int(b.unit as i64)),
                                            ("core", Value::Int(b.core as i64)),
                                            ("addr", Value::Int(b.addr as i64)),
                                        ])
                                    })
                                    .collect(),
                            ),
                        ),
                    ]),
                );
            }
            IncompleteReason::EventBudget => {}
        }
    }
    // Fault-injection counters ride along only when the fault substrate was on,
    // so faults-off exports stay byte-identical to older documents.
    if let (Some(f), Value::Table(map)) = (&r.faults, &mut table) {
        map.insert(
            "faults".to_string(),
            Value::table([
                ("dropped", Value::Int(f.dropped as i64)),
                ("retransmitted", Value::Int(f.retransmitted as i64)),
                ("duplicated", Value::Int(f.duplicated as i64)),
                ("dup_discarded", Value::Int(f.dup_discarded as i64)),
                ("delayed", Value::Int(f.delayed as i64)),
                ("stalled", Value::Int(f.stalled as i64)),
            ]),
        );
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::Runner;
    use crate::spec::WorkloadSpec;
    use crate::sweep::Sweep;
    use syncron_core::MechanismKind;
    use syncron_workloads::micro::SyncPrimitive;

    fn small_set() -> RunSet {
        let scenarios = Sweep::new("t")
            .base(ConfigSpec::default().with_geometry(2, 4))
            .workload(WorkloadSpec::Micro {
                primitive: SyncPrimitive::Lock,
                interval: 100,
                iterations: 4,
            })
            .compared_mechanisms()
            .scenarios()
            .unwrap();
        Runner::new().run(&scenarios).unwrap()
    }

    #[test]
    fn keyed_lookup_and_comparisons() {
        let set = small_set();
        assert_eq!(set.len(), 4);
        let syncron = "t/lock-micro.i100/mech=SynCron";
        let central = "t/lock-micro.i100/mech=Central";
        assert!(set.get(syncron).is_some());
        assert!(set.get("nope").is_none());
        let speedup = set.speedup_over(syncron, central).unwrap();
        assert!(speedup > 0.0);
        let slowdown = set.slowdown_over(central, syncron).unwrap();
        assert!((speedup - slowdown).abs() < 1e-9);
        // Structured lookup.
        let ideal = set
            .find(|s| s.config.mechanism == MechanismKind::Ideal)
            .unwrap();
        assert_eq!(ideal.report.mechanism, "Ideal");
        assert_eq!(
            set.select(|s| s.config.units == 2).len(),
            4,
            "all four scenarios share the base geometry"
        );
    }

    #[test]
    fn incomplete_runs_are_not_valid_comparison_points() {
        // A scenario truncated by max_events reports a lower bound on its simulated
        // time; speedups computed against it are meaningless and must come back None
        // in both directions.
        let make = |label: &str, max_events: u64| {
            let mut config = ConfigSpec::default().with_geometry(2, 4);
            config.max_events = max_events;
            let scenario = Scenario::new(
                label,
                config,
                WorkloadSpec::Micro {
                    primitive: SyncPrimitive::Lock,
                    interval: 100,
                    iterations: 8,
                },
            );
            let report = scenario.run().unwrap();
            (scenario, report)
        };
        let ok = make("ok", 50_000_000);
        let other = make("other", 50_000_000);
        let truncated = make("truncated", 60);
        assert!(ok.1.completed && other.1.completed);
        assert!(!truncated.1.completed);
        let set = RunSet::from_pairs([ok, other, truncated]).unwrap();
        assert!(set.speedup_over("ok", "other").is_some());
        assert_eq!(set.speedup_over("ok", "truncated"), None);
        assert_eq!(set.speedup_over("truncated", "ok"), None);
        assert_eq!(set.slowdown_over("truncated", "ok"), None);
        // The partial run is still exported — flagged by its completed column.
        let csv = set.to_csv_string();
        let truncated_row = csv.lines().find(|l| l.starts_with("truncated")).unwrap();
        assert!(truncated_row.contains(",false,"));
    }

    #[test]
    fn json_export_parses_back_and_carries_reports() {
        let set = small_set();
        let text = set.to_json_string();
        let doc = crate::json::parse(&text).unwrap();
        let rows = doc.as_array().unwrap();
        assert_eq!(rows.len(), 4);
        for row in rows {
            assert!(row.get("label").unwrap().as_str().is_some());
            let report = row.get("report").unwrap();
            assert!(report.get("sim_time_ps").unwrap().as_i64().unwrap() > 0);
            assert_eq!(report.get("completed").unwrap().as_bool(), Some(true));
            // Scenario part round-trips.
            let scenario = Scenario::from_value(row).unwrap();
            assert!(set.get(&scenario.label).is_some());
        }
    }

    #[test]
    fn csv_export_has_header_and_one_row_per_entry() {
        let set = small_set();
        let csv = set.to_csv_string();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 1 + set.len());
        assert!(lines[0].starts_with("label,workload,mechanism"));
        assert_eq!(
            lines[0].split(',').count(),
            lines[1].split(',').count(),
            "header and rows must have the same column count"
        );
        // Simulator-throughput and diagnosis columns ride along in both formats.
        assert!(
            lines[0].ends_with("wall_seconds,events_delivered,events_per_sec,incomplete_reason")
        );
        // Clean runs leave the diagnosis column empty.
        assert!(lines[1].ends_with(','), "{}", lines[1]);
        let doc = crate::json::parse(&set.to_json_string()).unwrap();
        let perf = doc.as_array().unwrap()[0]
            .get("report")
            .unwrap()
            .get("perf")
            .unwrap();
        assert!(perf.get("events_delivered").unwrap().as_i64().unwrap() > 0);
        assert!(perf.get("wall_seconds").is_some());
        assert!(perf.get("events_per_sec").is_some());
    }

    #[test]
    fn latency_columns_populated_for_open_loop_and_empty_for_closed_loop() {
        use syncron_workloads::service::{ArrivalProcess, ServiceShape};
        let scenarios = Sweep::new("lat")
            .base(ConfigSpec::default().with_geometry(2, 4))
            .workload(WorkloadSpec::Service {
                shape: ServiceShape::Kv,
                arrival: ArrivalProcess::Poisson { rate_per_us: 0.05 },
                keys: 10_000,
                zipf_s: 0.99,
                requests: 8,
            })
            .workload(WorkloadSpec::Micro {
                primitive: SyncPrimitive::Lock,
                interval: 100,
                iterations: 4,
            })
            .mechanisms([MechanismKind::SynCron])
            .scenarios()
            .unwrap();
        let set = Runner::new().run(&scenarios).unwrap();
        let open = set.find(|s| s.workload.kind() == "service").unwrap();
        let closed = set.find(|s| s.workload.kind() == "micro").unwrap();
        assert!(open.report.latency.is_some());
        assert!(closed.report.latency.is_none());

        let csv = set.to_csv_string();
        let header: Vec<&str> = csv.lines().next().unwrap().split(',').collect();
        let ops_col = header.iter().position(|c| *c == "latency_ops").unwrap();
        let p999_col = header.iter().position(|c| *c == "latency_p999_ns").unwrap();
        for line in csv.lines().skip(1) {
            let cells: Vec<&str> = line.split(',').collect();
            assert_eq!(cells.len(), header.len());
            if line.contains("svc-kv") {
                assert!(cells[ops_col].parse::<u64>().unwrap() > 0);
                assert!(cells[p999_col].parse::<f64>().unwrap() > 0.0);
            } else {
                assert!(cells[ops_col].is_empty() && cells[p999_col].is_empty());
            }
        }

        // JSON mirrors the same presence/absence.
        let doc = crate::json::parse(&set.to_json_string()).unwrap();
        for row in doc.as_array().unwrap() {
            let report = row.get("report").unwrap();
            let is_service = row
                .get("workload")
                .unwrap()
                .get("kind")
                .unwrap()
                .as_str()
                .unwrap()
                == "service";
            assert_eq!(report.get("latency").is_some(), is_service);
            if let Some(lat) = report.get("latency") {
                assert!(lat.get("ops").unwrap().as_i64().unwrap() > 0);
                let p50 = lat.get("p50_ns").unwrap().as_f64().unwrap();
                let p99 = lat.get("p99_ns").unwrap().as_f64().unwrap();
                let p999 = lat.get("p999_ns").unwrap().as_f64().unwrap();
                assert!(p50 <= p99 && p99 <= p999);
                assert!(lat.get("max_ns").unwrap().as_i64().unwrap() > 0);
            }
        }
    }

    #[test]
    fn incomplete_reason_round_trips_through_csv_and_json() {
        use syncron_system::{BlockedCore, StallKind, StallReport};

        // A real event-budget truncation...
        let mut config = ConfigSpec::default().with_geometry(2, 4);
        config.max_events = 60;
        let budget = Scenario::new(
            "budget",
            config,
            WorkloadSpec::Micro {
                primitive: SyncPrimitive::Lock,
                interval: 100,
                iterations: 8,
            },
        );
        let budget_report = budget.run().unwrap();
        assert!(!budget_report.completed);

        // ...plus synthesized panic and stall diagnoses (the runner and the
        // watchdog produce these shapes; here we only test the export).
        let panicked = Scenario::new(
            "panicked",
            ConfigSpec::default().with_geometry(2, 4),
            WorkloadSpec::Micro {
                primitive: SyncPrimitive::Lock,
                interval: 50,
                iterations: 8,
            },
        );
        let panicked_report = syncron_system::RunReport::failed(
            "lock-micro",
            "SynCron",
            syncron_system::IncompleteReason::Panicked("boom".into()),
        );
        let stalled = Scenario::new(
            "stalled",
            ConfigSpec::default().with_geometry(2, 4),
            WorkloadSpec::Micro {
                primitive: SyncPrimitive::Lock,
                interval: 75,
                iterations: 8,
            },
        );
        let stalled_report = syncron_system::RunReport::failed(
            "lock-micro",
            "SynCron",
            syncron_system::IncompleteReason::Stalled(StallReport {
                kind: StallKind::EmptyFrontier,
                blocked: vec![BlockedCore {
                    unit: 0,
                    core: 1,
                    addr: 64,
                }],
                blocked_total: 1,
                unfinished: 2,
            }),
        );
        let set = RunSet::from_pairs([
            (budget, budget_report),
            (panicked, panicked_report),
            (stalled, stalled_report),
        ])
        .unwrap();

        // CSV: the last column carries the stable diagnosis label.
        let csv = set.to_csv_string();
        let row = |label: &str| csv.lines().find(|l| l.starts_with(label)).unwrap();
        assert!(row("budget").ends_with(",event-budget"));
        assert!(row("panicked").ends_with(",panicked"));
        assert!(row("stalled").ends_with(",stalled-deadlock"));

        // JSON: reason + structured detail survive a parse round trip.
        let doc = crate::json::parse(&set.to_json_string()).unwrap();
        let report_of = |label: &str| {
            doc.as_array()
                .unwrap()
                .iter()
                .find(|row| row.get("label").unwrap().as_str() == Some(label))
                .unwrap()
                .get("report")
                .unwrap()
                .clone()
        };
        let budget = report_of("budget");
        assert_eq!(
            budget.get("incomplete_reason").unwrap().as_str(),
            Some("event-budget")
        );
        assert!(budget.get("panic_message").is_none());
        assert!(budget.get("stall").is_none());
        let panicked = report_of("panicked");
        assert_eq!(
            panicked.get("incomplete_reason").unwrap().as_str(),
            Some("panicked")
        );
        assert_eq!(
            panicked.get("panic_message").unwrap().as_str(),
            Some("boom")
        );
        let stalled = report_of("stalled");
        assert_eq!(
            stalled.get("incomplete_reason").unwrap().as_str(),
            Some("stalled-deadlock")
        );
        let stall = stalled.get("stall").unwrap();
        assert_eq!(stall.get("blocked_total").unwrap().as_i64(), Some(1));
        assert_eq!(stall.get("unfinished").unwrap().as_i64(), Some(2));
        let blocked = stall.get("blocked").unwrap().as_array().unwrap();
        assert_eq!(blocked.len(), 1);
        assert_eq!(blocked[0].get("unit").unwrap().as_i64(), Some(0));
        assert_eq!(blocked[0].get("core").unwrap().as_i64(), Some(1));
        assert_eq!(blocked[0].get("addr").unwrap().as_i64(), Some(64));

        // Clean runs: no diagnosis key anywhere, and an empty CSV cell.
        let clean = small_set();
        let doc = crate::json::parse(&clean.to_json_string()).unwrap();
        for row in doc.as_array().unwrap() {
            assert!(row
                .get("report")
                .unwrap()
                .get("incomplete_reason")
                .is_none());
        }
    }

    #[test]
    fn fault_counters_are_exported_only_when_injection_is_on() {
        let fault = syncron_system::FaultConfig {
            enabled: true,
            drop_nth: 1,
            ..syncron_system::FaultConfig::default()
        };
        let faulted = Scenario::new(
            "faulted",
            ConfigSpec::default()
                .with_geometry(2, 4)
                .with_mechanism(MechanismKind::Central)
                .with_fault(fault),
            WorkloadSpec::Micro {
                primitive: SyncPrimitive::Lock,
                interval: 100,
                iterations: 4,
            },
        );
        let report = faulted.run().unwrap();
        assert!(report.completed);
        let faults = report.faults.expect("fault stats when injection is on");
        assert!(faults.dropped >= 1);

        let set = RunSet::from_pairs([(faulted, report)]).unwrap();
        let doc = crate::json::parse(&set.to_json_string()).unwrap();
        let exported = doc.as_array().unwrap()[0]
            .get("report")
            .unwrap()
            .get("faults")
            .unwrap();
        assert!(exported.get("dropped").unwrap().as_i64().unwrap() >= 1);
        assert_eq!(
            exported.get("retransmitted").unwrap().as_i64(),
            exported.get("dropped").unwrap().as_i64(),
        );

        // Faults-off exports don't even carry the key.
        let clean = small_set();
        let doc = crate::json::parse(&clean.to_json_string()).unwrap();
        for row in doc.as_array().unwrap() {
            assert!(row.get("report").unwrap().get("faults").is_none());
        }
    }

    #[test]
    fn aggregates_sum_perf_across_entries() {
        let set = small_set();
        let events: u64 = set
            .entries()
            .iter()
            .map(|e| e.report.perf.events_delivered)
            .sum();
        assert!(events > 0);
        assert_eq!(set.total_events_delivered(), events);
        assert!(set.total_wall_seconds() >= 0.0);
        if set.total_wall_seconds() > 0.0 {
            assert!(set.aggregate_events_per_sec() > 0.0);
        }
        assert_eq!(RunSet::empty().aggregate_events_per_sec(), 0.0);
    }
}
