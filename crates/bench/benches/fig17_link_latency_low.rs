//! Regenerates Figure 17 of the paper (low-contention link-latency sensitivity).
fn main() {
    syncron_bench::experiments::sensitivity::fig17().print();
}
