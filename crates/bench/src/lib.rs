//! # syncron-bench
//!
//! The evaluation harness of the SynCron (HPCA 2021) reproduction.
//!
//! Every table and figure of the paper's evaluation has a corresponding function in
//! [`experiments`] and a bench target under `benches/` (run with
//! `cargo bench -p syncron-bench --bench <name>`); the bench target simply runs the
//! experiment and prints the regenerated table. `EXPERIMENTS.md` at the repository root
//! records the paper-reported numbers next to the values measured with this harness.
//!
//! Experiments are expressed against the `syncron-harness` scenario API: each builds a
//! labelled [`syncron_harness::Sweep`] (or an explicit scenario list), executes it on
//! the parallel [`syncron_harness::Runner`], and reads results back from the keyed
//! [`syncron_harness::RunSet`] — no positional job lists. The same sweeps are
//! available declaratively to `syncron-cli` through the files under `scenarios/`.
//!
//! All experiments respect the `SYNCRON_SCALE` environment variable (default `1.0`):
//! values below 1 shrink the workloads for quick smoke runs, values above 1 grow them
//! towards the paper's full sizes at the cost of simulation time.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod experiments;

pub use syncron_harness::{ConfigSpec, RunSet, Runner, Scenario, Sweep, WorkloadSpec};

/// A simple text table: the output format of every experiment.
#[derive(Clone, Debug, Default)]
pub struct Table {
    /// Table title (the paper's table/figure number and caption).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of formatted cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with a title and headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push_row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Renders the table as aligned plain text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i >= widths.len() {
                    widths.push(cell.len());
                } else {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let mut out = String::new();
        out.push_str(&format!("\n=== {} ===\n", self.title));
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    format!(
                        "{:<width$}",
                        c,
                        width = widths.get(i).copied().unwrap_or(8) + 2
                    )
                })
                .collect::<String>()
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().map(|w| w + 2).sum::<usize>().max(8)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

/// Returns the global workload scale factor from `SYNCRON_SCALE` (default 1.0, clamped
/// to a sane range).
pub fn scale() -> f64 {
    std::env::var("SYNCRON_SCALE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(1.0)
        .clamp(0.05, 100.0)
}

/// Scales an integer quantity by [`scale`], keeping at least `min`.
pub fn scaled(base: u32, min: u32) -> u32 {
    ((base as f64 * scale()).round() as u32).max(min)
}

/// Runs a scenario list on the parallel runner.
///
/// Experiments construct their scenarios internally, so failures here are programming
/// errors (duplicate labels, unknown workload names) — panic with the harness error.
pub fn run_scenarios(scenarios: &[Scenario]) -> RunSet {
    Runner::new()
        .run(scenarios)
        .unwrap_or_else(|e| panic!("experiment scenarios failed to run: {e}"))
}

/// Formats a floating-point cell with two decimals.
pub fn f2(value: f64) -> String {
    format!("{value:.2}")
}

/// Speedup of `label` over `baseline`, panicking with a diagnostic that names the
/// offending run. [`RunSet::speedup_over`] returns `None` both for a missing label
/// and for a run truncated by `max_events`; experiments must not blame a key-lookup
/// bug when a run was actually incomplete.
pub fn expect_speedup(results: &RunSet, label: &str, baseline: &str) -> f64 {
    results
        .speedup_over(label, baseline)
        .unwrap_or_else(|| panic!("{}", comparison_failure(results, label, baseline)))
}

/// Slowdown of `label` over `baseline`; see [`expect_speedup`] for the panic policy.
pub fn expect_slowdown(results: &RunSet, label: &str, baseline: &str) -> f64 {
    results
        .slowdown_over(label, baseline)
        .unwrap_or_else(|| panic!("{}", comparison_failure(results, label, baseline)))
}

fn comparison_failure(results: &RunSet, label: &str, baseline: &str) -> String {
    for l in [label, baseline] {
        match results.report(l) {
            None => return format!("no run labelled '{l}' in the result set"),
            Some(r) if !r.completed => {
                return format!(
                    "run '{l}' hit its max_events budget (completed = false); a partial \
                     run cannot be a comparison point — raise max_events or shrink the \
                     workload"
                )
            }
            Some(_) => {}
        }
    }
    unreachable!("comparison failed although both runs are present and complete")
}

#[cfg(test)]
mod tests {
    use super::*;
    use syncron_core::MechanismKind;
    use syncron_workloads::micro::SyncPrimitive;

    #[test]
    fn table_renders_alignment() {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.push_row(vec!["a".into(), "1.00".into()]);
        t.push_row(vec!["longer-name".into(), "2.00".into()]);
        let s = t.render();
        assert!(s.contains("Demo"));
        assert!(s.contains("longer-name"));
        assert!(s.lines().count() >= 5);
    }

    #[test]
    fn scale_is_sane() {
        let s = scale();
        assert!((0.05..=100.0).contains(&s));
        assert!(scaled(100, 5) >= 5);
    }

    #[test]
    fn run_scenarios_keys_results_by_label() {
        let scenarios = Sweep::new("t")
            .base(ConfigSpec::default().with_geometry(1, 3))
            .workloads([WorkloadSpec::Micro {
                primitive: SyncPrimitive::Lock,
                interval: 100,
                iterations: 3,
            }])
            .units([1, 2])
            .scenarios()
            .unwrap();
        let set = run_scenarios(&scenarios);
        assert_eq!(set.len(), 2);
        let one = set.get("t/lock-micro.i100/u=1").unwrap();
        let two = set.get("t/lock-micro.i100/u=2").unwrap();
        assert_eq!(one.scenario.config.mechanism, MechanismKind::SynCron);
        // Twice the units, twice the clients, twice the total operations.
        assert!(one.report.total_ops < two.report.total_ops);
    }
}
