//! Full-machine differential tests of the scheduler rework.
//!
//! The calendar-queue scheduler (with inline dispatch) and the reference
//! `BinaryHeap` scheduler (without it) must produce **bit-identical** reports for
//! every scenario in the bundled corpus: same simulated time, ops, traffic,
//! energy, synchronization statistics — everything except the host-side
//! [`SimPerf`] counters, which depend on the wall clock.
//!
//! The corpus is the real scenario files under `scenarios/` (the paper's
//! Figure 10 sweeps plus the 4096-core scale-out), loaded through the same TOML
//! path the CLI uses, so the test also covers the `scheduler` /
//! `inline_step_budget` config plumbing end to end.

use syncron::harness::toml;
use syncron::prelude::*;
use syncron::system::report::SimPerf;

/// Loads the `[sweep]` scenarios of a bundled file.
fn load_sweep(name: &str) -> Vec<Scenario> {
    let path = format!("{}/scenarios/{name}", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
    let doc = toml::parse(&text).unwrap_or_else(|e| panic!("{path}: {e}"));
    Sweep::scenarios_from_value(doc.get("sweep").expect("sweep table"))
        .unwrap_or_else(|e| panic!("{path}: {e}"))
}

/// Runs one scenario under both schedulers and asserts report equality.
fn assert_schedulers_agree(scenario: &Scenario) -> RunReport {
    let mut calendar = scenario.clone();
    calendar.config = calendar
        .config
        .with_scheduler(SchedulerKind::Calendar)
        .with_inline_step_budget(64);
    let mut heap = scenario.clone();
    heap.config = heap
        .config
        .with_scheduler(SchedulerKind::Heap)
        .with_inline_step_budget(0);

    let calendar_report = calendar.run().expect("calendar run");
    let heap_report = heap.run().expect("heap run");
    if let Some(field) = heap_report.divergence_from(&calendar_report) {
        panic!(
            "{}: calendar scheduler diverged from the heap reference in {field}",
            scenario.label
        );
    }
    // The event-count semantics are shared too: inline-dispatched steps count
    // exactly like queue round-trips, so both runs deliver the same events.
    assert_eq!(
        heap_report.perf.events_delivered, calendar_report.perf.events_delivered,
        "{}: delivered-event accounting diverged",
        scenario.label
    );
    calendar_report
}

/// Runs one scenario with message batching on and off and asserts report
/// equality. Batching merges equal-timestamp messages scheduled back to back
/// for one engine into a single queued event, so the *delivered-event count*
/// legitimately shrinks — but the simulation itself (time, ops, traffic,
/// energy, synchronization statistics) must not move by a bit.
fn assert_batching_is_invisible(scenario: &Scenario) -> RunReport {
    let mut batched = scenario.clone();
    batched.config = batched.config.with_message_batching(true);
    let mut unbatched = scenario.clone();
    unbatched.config = unbatched.config.with_message_batching(false);

    let batched_report = batched.run().expect("batched run");
    let unbatched_report = unbatched.run().expect("unbatched run");
    if let Some(field) = unbatched_report.divergence_from(&batched_report) {
        panic!(
            "{}: message batching diverged from the per-message reference in {field}",
            scenario.label
        );
    }
    assert!(
        batched_report.perf.events_delivered <= unbatched_report.perf.events_delivered,
        "{}: batching must never deliver more events",
        scenario.label
    );
    batched_report
}

#[test]
fn fig10_corpus_is_batching_invariant() {
    // The four Figure 10 microbenchmark sweeps at paper scale, with message
    // batching on vs off: reports must be bit-identical (the condvar sweep in
    // particular exercises the broadcast/wake bursts batching collapses).
    let mut total = 0;
    let mut saved = 0u64;
    for file in [
        "fig10_lock.toml",
        "fig10_barrier.toml",
        "fig10_semaphore.toml",
        "fig10_condvar.toml",
    ] {
        for scenario in load_sweep(file) {
            let report = assert_batching_is_invisible(&scenario);
            assert!(report.completed, "{} did not complete", scenario.label);
            total += 1;
            saved += report.perf.events_delivered;
        }
    }
    assert!(total >= 40, "corpus unexpectedly small: {total} scenarios");
    assert!(saved > 0, "no events delivered across the corpus");
}

#[test]
fn fig10_corpus_is_scheduler_invariant() {
    // The four Figure 10 microbenchmark sweeps at paper scale: lock, barrier,
    // semaphore and condition variable under all four schemes.
    let mut total = 0;
    for file in [
        "fig10_lock.toml",
        "fig10_barrier.toml",
        "fig10_semaphore.toml",
        "fig10_condvar.toml",
    ] {
        for scenario in load_sweep(file) {
            let report = assert_schedulers_agree(&scenario);
            assert!(report.completed, "{} did not complete", scenario.label);
            total += 1;
        }
    }
    assert!(total >= 40, "corpus unexpectedly small: {total} scenarios");
}

#[test]
fn service_openloop_corpus_is_scheduler_and_batching_invariant() {
    // The open-loop service corpus: all three service shapes under all three
    // arrival processes. Unlike the closed-loop sweeps, these scenarios carry a
    // latency summary in the report; `divergence_from` compares it bit-for-bit,
    // so this also proves the admission clock, the Zipf sampler and the
    // latency histogram are scheduler- and batching-independent.
    let scenarios = load_sweep("service_kv_openloop.toml");
    assert!(
        scenarios.len() >= 18,
        "corpus unexpectedly small: {} scenarios",
        scenarios.len()
    );
    for scenario in scenarios {
        let report = assert_schedulers_agree(&scenario);
        assert!(report.completed, "{} did not complete", scenario.label);
        let latency = report.latency.unwrap_or_else(|| {
            panic!("{}: open-loop run lost its latency summary", scenario.label)
        });
        assert!(latency.ops > 0, "{}: no requests measured", scenario.label);
        assert!(
            latency.p50_ns <= latency.p99_ns && latency.p99_ns <= latency.p999_ns,
            "{}: quantiles out of order",
            scenario.label
        );
        assert_batching_is_invisible(&scenario);
    }
}

#[test]
fn scale_64x64_is_scheduler_invariant() {
    // 4096 cores across 64 units: the geometry the calendar queue and dense
    // dispatch were built for. Keep the event budget bounded but identical on
    // both sides; equality must hold for truncated runs too.
    let scenarios = load_sweep("scale_64x64.toml");
    assert_eq!(scenarios.len(), 4, "one scenario per scheme");
    for scenario in scenarios {
        assert_schedulers_agree(&scenario);
    }
}

/// Runs one scenario under the sharded (conservative-PDES) executor at several
/// worker counts, with message batching on and off, and asserts every report is
/// bit-identical to the sequential reference.
///
/// `shard_safe` says whether the scenario's workload opts into sharding; the
/// condvar microbenchmark does not (its signalers poll shared state outside
/// simulated critical sections), so every `sim_threads > 1` request must fall
/// back to sequential execution — as must the Ideal mechanism, which completes
/// synchronization without cross-unit messages and therefore without lookahead.
/// Fallbacks are pinned via `SimPerf::shards` (host-side, not part of the
/// compared report), and redundant worker counts are skipped for them: a
/// fallback at 4 workers is byte-for-byte the same computation at 2 or 8.
fn assert_sharding_is_invisible(scenario: &Scenario, shard_safe: bool) -> RunReport {
    let mut sequential = scenario.clone();
    sequential.config = sequential.config.with_sim_threads(1);
    let reference = sequential.run().expect("sequential run");
    assert_eq!(
        reference.perf.shards, 1,
        "{}: sequential run must use one shard",
        scenario.label
    );

    let shards_expected = |workers: usize| -> usize {
        if shard_safe && scenario.config.mechanism != MechanismKind::Ideal {
            workers.min(scenario.config.units)
        } else {
            1
        }
    };
    let falls_back = shards_expected(usize::MAX) == 1;
    let worker_counts: &[usize] = if falls_back { &[4] } else { &[2, 4, 8] };
    let batching_modes: &[bool] = if falls_back { &[true] } else { &[true, false] };

    for &workers in worker_counts {
        for &batching in batching_modes {
            let mut sharded = scenario.clone();
            sharded.config = sharded
                .config
                .with_sim_threads(workers)
                .with_message_batching(batching);
            let report = sharded.run().expect("sharded run");
            assert_eq!(
                report.perf.shards,
                shards_expected(workers),
                "{}: unexpected shard count at {workers} workers",
                scenario.label
            );
            if let Some(field) = reference.divergence_from(&report) {
                panic!(
                    "{}: sharded run ({workers} workers, batching {batching}) diverged \
                     from the sequential reference in {field}",
                    scenario.label
                );
            }
        }
    }
    reference
}

#[test]
fn fig10_corpus_is_sharding_invariant() {
    // The four Figure 10 sweeps at paper scale under the sharded executor:
    // bit-identical to sequential at every worker count, with batching on and
    // off. The condvar sweep pins the shard-unsafe fallback instead.
    let mut total = 0;
    for (file, shard_safe) in [
        ("fig10_lock.toml", true),
        ("fig10_barrier.toml", true),
        ("fig10_semaphore.toml", true),
        ("fig10_condvar.toml", false),
    ] {
        for scenario in load_sweep(file) {
            let report = assert_sharding_is_invisible(&scenario, shard_safe);
            assert!(report.completed, "{} did not complete", scenario.label);
            total += 1;
        }
    }
    assert!(total >= 40, "corpus unexpectedly small: {total} scenarios");
}

#[test]
fn service_openloop_corpus_is_sharding_invariant() {
    // The open-loop service corpus under the sharded executor. The latency
    // summary is part of the compared report, so this also proves the
    // admission clock, the Zipf sampler and the per-request histograms are
    // untouched by shard count and window placement.
    let scenarios = load_sweep("service_kv_openloop.toml");
    assert!(
        scenarios.len() >= 18,
        "corpus unexpectedly small: {} scenarios",
        scenarios.len()
    );
    for scenario in scenarios {
        let report = assert_sharding_is_invisible(&scenario, true);
        assert!(report.completed, "{} did not complete", scenario.label);
        assert!(
            report.latency.is_some(),
            "{}: open-loop run lost its latency summary",
            scenario.label
        );
    }
}

#[test]
fn scale_64x64_is_sharding_invariant() {
    // 4096 cores across 64 units with a bounded event budget: the budget gate
    // fires at a window boundary, so even *truncated* runs must be
    // bit-identical to sequential at every worker count.
    let scenarios = load_sweep("scale_64x64.toml");
    assert_eq!(scenarios.len(), 4, "one scenario per scheme");
    for scenario in scenarios {
        assert_sharding_is_invisible(&scenario, true);
    }
}

/// Runs one scenario with every combination of the burst-resume and
/// column-batching fast paths and asserts each report is bit-identical to the
/// both-off reference. Burst resume collapses same-timestamp wake-ups for one
/// unit into a single queued event, so the delivered-event count legitimately
/// shrinks; everything the report compares (time, ops, traffic, energy,
/// synchronization statistics, latency summaries) must not move by a bit.
fn assert_fastpath_is_invisible(scenario: &Scenario) -> RunReport {
    let mut plain = scenario.clone();
    plain.config = plain
        .config
        .with_burst_resume(false)
        .with_column_batching(false);
    let reference = plain.run().expect("reference run");

    for (burst, column) in [(true, false), (false, true), (true, true)] {
        let mut fast = scenario.clone();
        fast.config = fast
            .config
            .with_burst_resume(burst)
            .with_column_batching(column);
        let report = fast.run().expect("fast-path run");
        if let Some(field) = reference.divergence_from(&report) {
            panic!(
                "{}: fast path (burst_resume {burst}, column_batching {column}) \
                 diverged from the both-off reference in {field}",
                scenario.label
            );
        }
        if burst {
            assert!(
                report.perf.events_delivered <= reference.perf.events_delivered,
                "{}: burst resume must never deliver more events",
                scenario.label
            );
        } else {
            assert_eq!(
                report.perf.events_delivered, reference.perf.events_delivered,
                "{}: column batching alone must not change event accounting",
                scenario.label
            );
        }
    }
    reference
}

#[test]
fn fig10_corpus_is_fastpath_invariant() {
    // The four Figure 10 sweeps with the burst-resume and column-batching fast
    // paths toggled in every combination: reports must be bit-identical to the
    // both-off reference. The barrier and condvar sweeps are the interesting
    // ones — broadcast releases are exactly the wake bursts the resume path
    // collapses, and their notification fan-out feeds the column batcher runs
    // of same-variable messages.
    let mut total = 0;
    for file in [
        "fig10_lock.toml",
        "fig10_barrier.toml",
        "fig10_semaphore.toml",
        "fig10_condvar.toml",
    ] {
        for scenario in load_sweep(file) {
            let report = assert_fastpath_is_invisible(&scenario);
            assert!(report.completed, "{} did not complete", scenario.label);
            total += 1;
        }
    }
    assert!(total >= 40, "corpus unexpectedly small: {total} scenarios");
}

#[test]
fn service_openloop_corpus_is_fastpath_invariant() {
    // The open-loop service corpus under the fast-path toggles. The latency
    // summary is part of the compared report, so per-request timing must be
    // untouched by how wake-ups are queued or how batch members resolve slots.
    let scenarios = load_sweep("service_kv_openloop.toml");
    assert!(
        scenarios.len() >= 18,
        "corpus unexpectedly small: {} scenarios",
        scenarios.len()
    );
    for scenario in scenarios {
        let report = assert_fastpath_is_invisible(&scenario);
        assert!(report.completed, "{} did not complete", scenario.label);
        assert!(
            report.latency.is_some(),
            "{}: open-loop run lost its latency summary",
            scenario.label
        );
    }
}

#[test]
fn md1_exact_model_is_sharding_invariant_and_matches_quantized_on_corpus() {
    // The quantized M/D/1 table is the default; the `exact` closed form stays
    // available as the re-baseline reference. Two things must hold: (a) the
    // exact model is still deterministic under the sharded executor at every
    // worker count, and (b) on the committed corpus the quantized table agrees
    // with the closed form bit-for-bit — the ≤1 ps interpolation error rounds
    // away at the corpus's utilization caps, which is exactly why the
    // re-baseline did not move the pinned figures. Aliveness of the knob (the
    // two models *do* diverge at extreme caps) is pinned separately below.
    for scenario in load_sweep("fig10_barrier.toml") {
        let mut exact = scenario.clone();
        exact.config = exact.config.with_md1_model(Md1Model::Exact);
        let exact_report = assert_sharding_is_invisible(&exact, true);
        assert!(exact_report.completed, "{} did not complete", exact.label);

        let quantized = scenario.run().expect("quantized run");
        if let Some(field) = quantized.divergence_from(&exact_report) {
            panic!(
                "{}: quantized M/D/1 moved the pinned corpus in {field} — \
                 re-baseline EXPERIMENTS.md before changing the table",
                scenario.label
            );
        }
    }

    // Knob aliveness: at an extreme utilization cap the table's chords round
    // differently from the closed form for some arrival rate, so a config that
    // selects `exact` is observably different from one that selects
    // `quantized` — the enum is not dead code.
    use syncron::sim::queueing::{md1_wait, Md1Table};
    let service = Time::from_ps(1600);
    let cap = 0.999;
    let table = Md1Table::new(service, cap);
    let saturation = 1.0 / 1600.0;
    let distinct = (1..=4000).any(|i| {
        let lambda = saturation * (i as f64) / 4000.0;
        table.wait(lambda) != md1_wait(lambda, service, cap)
    });
    assert!(
        distinct,
        "quantized and exact M/D/1 agreed everywhere even at cap 0.999 — \
         the table is the closed form in disguise and the knob is dead"
    );
}

/// Runs one scenario with the fault substrate fully off and again with it
/// *enabled but all probabilities zero*, asserting the reports are
/// bit-identical. This is the knob-aliveness half of the fault matrix: the
/// enabled run takes the fault code path (every mechanism message rolls a
/// verdict, carries a dedup tag budget, and could retransmit) yet must
/// schedule exactly the events of the fast path.
fn assert_zero_probability_faults_are_invisible(scenario: &Scenario) -> RunReport {
    let reference = scenario.run().expect("faults-off run");
    let mut zero = scenario.clone();
    zero.config = zero.config.with_fault(FaultConfig {
        enabled: true,
        ..FaultConfig::default()
    });
    let report = zero.run().expect("zero-probability run");
    if let Some(field) = reference.divergence_from(&report) {
        panic!(
            "{}: enabling fault injection with zero probabilities moved {field}",
            scenario.label
        );
    }
    assert_eq!(
        reference.perf.events_delivered, report.perf.events_delivered,
        "{}: zero-probability injection changed event accounting",
        scenario.label
    );
    let stats = report.faults.expect("enabled run reports fault stats");
    assert_eq!(
        stats.dropped
            + stats.retransmitted
            + stats.duplicated
            + stats.dup_discarded
            + stats.delayed
            + stats.stalled,
        0,
        "{}: zero-probability injection produced faults",
        scenario.label
    );
    reference
}

#[test]
fn fig10_corpus_is_invariant_under_zero_probability_faults() {
    // The four Figure 10 sweeps with the fault substrate off vs enabled-with-
    // zero-probabilities: bit-identical reports across the whole corpus.
    let mut total = 0;
    for file in [
        "fig10_lock.toml",
        "fig10_barrier.toml",
        "fig10_semaphore.toml",
        "fig10_condvar.toml",
    ] {
        for scenario in load_sweep(file) {
            let report = assert_zero_probability_faults_are_invisible(&scenario);
            assert!(report.completed, "{} did not complete", scenario.label);
            total += 1;
        }
    }
    assert!(total >= 40, "corpus unexpectedly small: {total} scenarios");
}

#[test]
fn faulted_runs_are_seed_deterministic_and_shard_invariant() {
    // The other half of the fault matrix: with drops, duplicates and jitter
    // actually firing, runs must still (a) complete via timeout/retransmission,
    // (b) be bit-identical across repeated invocations (the fault plan is a
    // pure function of the scenario seed), and (c) be bit-identical between
    // the sequential and sharded executors (per-link fault state lives with
    // the shard that owns the sending unit).
    let fault = FaultConfig {
        enabled: true,
        drop_prob: 0.05,
        dup_prob: 0.05,
        jitter_ns: 30,
        ..FaultConfig::default()
    };
    let mut injected_somewhere = false;
    for scenario in load_sweep("fig10_lock.toml") {
        let mut faulted = scenario.clone();
        faulted.config = faulted.config.with_fault(fault);

        let first = faulted.run().expect("faulted run");
        assert!(
            first.completed,
            "{}: faulted run did not recover to completion",
            scenario.label
        );
        let again = faulted.run().expect("repeat faulted run");
        if let Some(field) = first.divergence_from(&again) {
            panic!(
                "{}: repeated faulted run diverged in {field} — the fault plan \
                 is not a pure function of the seed",
                scenario.label
            );
        }

        let mut sharded = faulted.clone();
        sharded.config = sharded.config.with_sim_threads(4);
        let sharded_report = sharded.run().expect("sharded faulted run");
        if let Some(field) = first.divergence_from(&sharded_report) {
            panic!(
                "{}: sharded faulted run diverged from sequential in {field}",
                scenario.label
            );
        }

        let stats = first.faults.expect("enabled run reports fault stats");
        assert_eq!(
            stats.dropped, stats.retransmitted,
            "{}: every dropped message must be retransmitted exactly once",
            scenario.label
        );
        assert_eq!(
            stats.duplicated, stats.dup_discarded,
            "{}: every duplicate must be discarded by receiver dedup",
            scenario.label
        );
        injected_somewhere |= stats.dropped + stats.duplicated + stats.delayed > 0;
    }
    assert!(
        injected_somewhere,
        "no faults fired across the whole lock sweep — the substrate is dead"
    );
}

#[test]
fn inline_budget_values_do_not_change_results() {
    // The fairness budget bounds how long one pop may monopolize the loop; any
    // value (including 1 and "effectively unbounded") must leave results
    // untouched because inlining only fires on strict precedence.
    let base = load_sweep("fig10_lock.toml")
        .into_iter()
        .next()
        .expect("at least one scenario");
    let reference = base.run().expect("reference run");
    for budget in [0u32, 1, 7, u32::MAX] {
        let mut variant = base.clone();
        variant.config = variant.config.with_inline_step_budget(budget);
        let report = variant.run().expect("variant run");
        if let Some(field) = reference.divergence_from(&report) {
            panic!("inline budget {budget} changed {field}");
        }
    }
}

#[test]
fn perf_counters_populate_without_affecting_results() {
    let scenario = load_sweep("fig10_barrier.toml")
        .into_iter()
        .next()
        .expect("scenario");
    let report = scenario.run().expect("run");
    assert!(report.perf.events_delivered > 0);
    assert!(report.perf.wall_seconds >= 0.0);
    assert!(report.perf.events_per_sec() >= 0.0);
    // Two runs of the same scenario: identical simulation, independent perf.
    let again = scenario.run().expect("run");
    assert!(report.same_simulation(&again));
    assert_eq!(
        report.perf.events_delivered,
        again.perf.events_delivered,
        "event counts are simulation-determined even though SimPerf is not \
         compared: {:?} vs {:?}",
        SimPerf::default(),
        again.perf
    );
}
