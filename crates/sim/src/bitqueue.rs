//! A growable, allocation-light bit queue for waiter tracking.
//!
//! The Synchronization Table of the paper (Section 4.2.2) tracks waiters as hardware
//! bit vectors: one bit per NDP core of a unit in the *local* waiting list, one bit
//! per SE of the system in the *global* waiting list. The original reproduction
//! modelled both as a single `u64`, which silently capped the simulated machine at 64
//! cores per unit / 64 units: `1u64 << index` with `index >= 64` panics in debug
//! builds and wraps the shift amount in release builds, aliasing distinct waiters
//! onto the same bit.
//!
//! [`BitQueue`] removes that cap. Indices below 64 use an inline word — no heap
//! allocation, the common case for the paper's 4×16 geometry — and larger indices
//! spill to a boxed word slice sized for the highest bit seen. A queue can also be
//! pre-sized with [`BitQueue::with_capacity`] so that hot paths (the pop/wake path of
//! the synchronization engines) never allocate per event: growth happens at most once
//! per waitlist, at construction or on the first out-of-line `set`.

use core::fmt;

/// Bits per storage word.
const WORD_BITS: usize = 64;

/// A growable set of small integers (waiter indices), stored as a bit vector.
///
/// Semantically this is a FIFO-by-index queue: [`BitQueue::first`] /
/// [`BitQueue::pop_first`] always return the *lowest* set index, matching the
/// fixed-priority selection of the hardware bit queues it models.
///
/// # Example
///
/// ```
/// use syncron_sim::bitqueue::BitQueue;
///
/// let mut q = BitQueue::new();
/// q.set(3);
/// q.set(4096); // beyond the hardware word: spills, no aliasing
/// assert!(q.contains(3) && q.contains(4096));
/// assert_eq!(q.pop_first(), Some(3));
/// assert_eq!(q.pop_first(), Some(4096));
/// assert!(q.is_empty());
/// ```
#[derive(Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BitQueue {
    words: Words,
}

#[derive(Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
enum Words {
    /// Indices 0..64 — the common case, stored without heap allocation.
    Inline(u64),
    /// Indices beyond the hardware word, spilled to a boxed word slice.
    Spilled(Box<[u64]>),
}

impl BitQueue {
    /// An empty queue (inline storage, no allocation).
    pub const EMPTY: BitQueue = BitQueue {
        words: Words::Inline(0),
    };

    /// Creates an empty queue with inline storage.
    pub fn new() -> Self {
        Self::EMPTY
    }

    /// Creates an empty queue pre-sized to hold indices `0..bits` without further
    /// allocation. Queues for at most 64 waiters stay inline.
    pub fn with_capacity(bits: usize) -> Self {
        if bits <= WORD_BITS {
            Self::EMPTY
        } else {
            BitQueue {
                words: Words::Spilled(vec![0u64; bits.div_ceil(WORD_BITS)].into_boxed_slice()),
            }
        }
    }

    /// Number of indices the current storage can hold without growing.
    pub fn capacity(&self) -> usize {
        self.words().len() * WORD_BITS
    }

    fn words(&self) -> &[u64] {
        match &self.words {
            Words::Inline(w) => core::slice::from_ref(w),
            Words::Spilled(w) => w,
        }
    }

    /// Grows the storage so `index` is addressable, preserving the current bits.
    fn grow_for(&mut self, index: usize) {
        let needed = index / WORD_BITS + 1;
        let mut new = vec![0u64; needed].into_boxed_slice();
        match &self.words {
            Words::Inline(w) => new[0] = *w,
            Words::Spilled(w) => new[..w.len()].copy_from_slice(w),
        }
        self.words = Words::Spilled(new);
    }

    /// Sets the bit for `index`, growing the storage if needed.
    pub fn set(&mut self, index: usize) {
        let (word, bit) = (index / WORD_BITS, index % WORD_BITS);
        match &mut self.words {
            Words::Inline(w) if word == 0 => *w |= 1u64 << bit,
            Words::Spilled(w) if word < w.len() => w[word] |= 1u64 << bit,
            _ => {
                self.grow_for(index);
                self.set(index);
            }
        }
    }

    /// Clears the bit for `index` (a no-op beyond the current capacity).
    pub fn clear(&mut self, index: usize) {
        let (word, bit) = (index / WORD_BITS, index % WORD_BITS);
        match &mut self.words {
            Words::Inline(w) if word == 0 => *w &= !(1u64 << bit),
            Words::Spilled(w) if word < w.len() => w[word] &= !(1u64 << bit),
            _ => {}
        }
    }

    /// Returns whether the bit for `index` is set.
    pub fn contains(&self, index: usize) -> bool {
        let (word, bit) = (index / WORD_BITS, index % WORD_BITS);
        self.words()
            .get(word)
            .is_some_and(|w| w & (1u64 << bit) != 0)
    }

    /// Returns `true` if no bits are set.
    pub fn is_empty(&self) -> bool {
        self.words().iter().all(|&w| w == 0)
    }

    /// Number of set bits.
    pub fn count(&self) -> u32 {
        self.words().iter().map(|w| w.count_ones()).sum()
    }

    /// Index of the lowest set bit, if any (the next waiter to serve).
    pub fn first(&self) -> Option<usize> {
        self.words()
            .iter()
            .enumerate()
            .find(|(_, &w)| w != 0)
            .map(|(i, &w)| i * WORD_BITS + w.trailing_zeros() as usize)
    }

    /// Removes and returns the lowest set bit. Never allocates.
    pub fn pop_first(&mut self) -> Option<usize> {
        let first = self.first()?;
        self.clear(first);
        Some(first)
    }

    /// Iterates over the set bits in ascending index order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words().iter().enumerate().flat_map(|(i, &word)| {
            let mut w = word;
            core::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let bit = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(i * WORD_BITS + bit)
                }
            })
        })
    }
}

impl Default for BitQueue {
    fn default() -> Self {
        Self::EMPTY
    }
}

/// Equality ignores storage representation: an inline queue equals a spilled queue
/// whose extra words are all zero.
impl PartialEq for BitQueue {
    fn eq(&self, other: &Self) -> bool {
        let (a, b) = (self.words(), other.words());
        let common = a.len().min(b.len());
        a[..common] == b[..common]
            && a[common..].iter().all(|&w| w == 0)
            && b[common..].iter().all(|&w| w == 0)
    }
}

impl Eq for BitQueue {}

impl fmt::Debug for BitQueue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("BitQueue")?;
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<usize> for BitQueue {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut q = BitQueue::new();
        for index in iter {
            q.set(index);
        }
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_set_clear_pop() {
        let mut q = BitQueue::new();
        assert!(q.is_empty());
        q.set(3);
        q.set(7);
        assert!(q.contains(3));
        assert!(!q.contains(4));
        assert_eq!(q.count(), 2);
        assert_eq!(q.first(), Some(3));
        assert_eq!(q.pop_first(), Some(3));
        assert_eq!(q.pop_first(), Some(7));
        assert_eq!(q.pop_first(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn indices_beyond_the_hardware_word_do_not_alias() {
        // Regression for the fixed-width Waitlist: with a u64 bitmask, index 64 wraps
        // onto index 0 in release builds (and panics in debug builds). Each of these
        // pairs aliased under the old masked shift.
        for (lo, hi) in [(0usize, 64usize), (1, 65), (0, 128), (63, 127), (0, 4096)] {
            let mut q = BitQueue::new();
            q.set(hi);
            assert!(q.contains(hi));
            assert!(!q.contains(lo), "bit {hi} aliased onto {lo}");
            q.set(lo);
            assert_eq!(q.count(), 2);
            q.clear(lo);
            assert!(q.contains(hi), "clearing {lo} must not clear {hi}");
            assert_eq!(q.pop_first(), Some(hi));
            assert!(q.is_empty());
        }
    }

    #[test]
    fn pop_order_is_ascending_across_words() {
        let mut q = BitQueue::new();
        for i in [4096usize, 65, 3, 64, 200] {
            q.set(i);
        }
        let mut popped = Vec::new();
        while let Some(i) = q.pop_first() {
            popped.push(i);
        }
        assert_eq!(popped, vec![3, 64, 65, 200, 4096]);
    }

    #[test]
    fn with_capacity_pre_sizes_storage() {
        let q = BitQueue::with_capacity(4096);
        assert!(q.capacity() >= 4096);
        assert!(q.is_empty());
        let inline = BitQueue::with_capacity(64);
        assert_eq!(inline.capacity(), 64);
        // Setting within a pre-sized queue does not change the capacity.
        let mut q = BitQueue::with_capacity(130);
        let cap = q.capacity();
        q.set(129);
        assert_eq!(q.capacity(), cap);
    }

    #[test]
    fn growth_preserves_existing_bits() {
        let mut q = BitQueue::new();
        q.set(5);
        q.set(63);
        q.set(300);
        assert!(q.contains(5) && q.contains(63) && q.contains(300));
        assert_eq!(q.count(), 3);
    }

    #[test]
    fn clear_beyond_capacity_is_a_noop() {
        let mut q = BitQueue::new();
        q.set(1);
        q.clear(9999);
        assert_eq!(q.count(), 1);
        assert_eq!(q.capacity(), 64, "clear must not grow the storage");
    }

    #[test]
    fn equality_ignores_storage_representation() {
        let mut spilled = BitQueue::with_capacity(1024);
        spilled.set(7);
        let mut inline = BitQueue::new();
        inline.set(7);
        assert_eq!(spilled, inline);
        assert_eq!(inline, spilled);
        inline.set(80);
        assert_ne!(spilled, inline);
        assert_eq!(BitQueue::with_capacity(512), BitQueue::EMPTY);
    }

    #[test]
    fn iter_yields_sorted_indices() {
        let q: BitQueue = [100usize, 2, 65, 63].into_iter().collect();
        assert_eq!(q.iter().collect::<Vec<_>>(), vec![2, 63, 65, 100]);
        assert_eq!(format!("{q:?}"), "BitQueue{2, 63, 65, 100}");
    }

    #[test]
    fn matches_a_model_set_under_random_ops() {
        use crate::SimRng;
        for case in 0..32u64 {
            let mut rng = SimRng::seed_from(0xB17_0000 + case);
            let mut q = BitQueue::new();
            let mut model = std::collections::BTreeSet::new();
            for _ in 0..400 {
                // Indices span several words, crossing the 64-bit boundary often.
                let idx = rng.gen_range(200) as usize;
                if rng.gen_bool(0.5) {
                    q.set(idx);
                    model.insert(idx);
                } else {
                    q.clear(idx);
                    model.remove(&idx);
                }
                assert_eq!(q.count() as usize, model.len());
                assert_eq!(q.first(), model.iter().next().copied());
            }
            assert_eq!(
                q.iter().collect::<Vec<_>>(),
                model.into_iter().collect::<Vec<_>>()
            );
        }
    }
}
