//! End-to-end tests of the scenario subsystem through the public `syncron` facade:
//! TOML text → sweep expansion → parallel runner → keyed results → JSON export →
//! parse-back, plus the determinism guarantees the harness promises.

use syncron::harness::{json, toml};
use syncron::prelude::*;

const FIG10_MINI: &str = r#"
[sweep]
label = "mini"

[sweep.config]
units = 2
cores_per_unit = 4
mechanism = ["Central", "SynCron"]

[sweep.workload]
kind = "micro"
primitive = "lock"
interval = [100, 500]
iterations = 6
"#;

fn mini_scenarios() -> Vec<Scenario> {
    let doc = toml::parse(FIG10_MINI).expect("valid TOML");
    Sweep::scenarios_from_value(doc.get("sweep").expect("sweep table")).expect("valid sweep")
}

#[test]
fn toml_sweep_to_keyed_results() {
    let scenarios = mini_scenarios();
    assert_eq!(scenarios.len(), 4, "2 intervals x 2 mechanisms");

    let results = Runner::new().run(&scenarios).expect("runs");
    assert_eq!(results.len(), 4);
    let speedup = results
        .speedup_over(
            "mini/lock-micro.i100/mechanism=SynCron",
            "mini/lock-micro.i100/mechanism=Central",
        )
        .expect("keyed lookup");
    assert!(speedup > 1.0, "SynCron should beat Central: {speedup:.2}");
}

#[test]
fn json_export_round_trips_scenarios() {
    let scenarios = mini_scenarios();
    let results = Runner::new().threads(2).run(&scenarios).expect("runs");

    let text = results.to_json_string();
    let doc = json::parse(&text).expect("export is valid JSON");
    let rows = doc.as_array().expect("array of entries");
    assert_eq!(rows.len(), scenarios.len());
    for (row, original) in rows.iter().zip(&scenarios) {
        let parsed = Scenario::from_value(row).expect("scenario parses back");
        assert_eq!(
            &parsed, original,
            "export must preserve the scenario exactly"
        );
        assert!(
            row.get("report")
                .unwrap()
                .get("completed")
                .unwrap()
                .as_bool()
                == Some(true)
        );
    }
}

#[test]
fn scenario_files_and_code_sweeps_agree() {
    // The same sweep expressed in code must produce the same configs and workloads as
    // the TOML document (labels differ only in axis naming).
    let from_toml = mini_scenarios();
    let base = ConfigSpec::default().with_geometry(2, 4);
    let from_code = Sweep::new("mini")
        .base(base)
        .workloads([100u64, 500].map(|interval| WorkloadSpec::Micro {
            primitive: syncron::workloads::micro::SyncPrimitive::Lock,
            interval,
            iterations: 6,
        }))
        .mechanisms([
            syncron::core::MechanismKind::Central,
            syncron::core::MechanismKind::SynCron,
        ])
        .scenarios()
        .expect("valid sweep");
    assert_eq!(from_toml.len(), from_code.len());
    for (a, b) in from_toml.iter().zip(&from_code) {
        assert_eq!(a.config, b.config);
        assert_eq!(a.workload, b.workload);
    }
}

#[test]
fn same_seed_and_scenario_are_deterministic_across_runs_and_thread_counts() {
    let scenarios = mini_scenarios();
    let runs = [
        Runner::new().threads(1).run(&scenarios).expect("runs"),
        Runner::new().threads(1).run(&scenarios).expect("runs"),
        Runner::new().threads(4).run(&scenarios).expect("runs"),
    ];
    for scenario in &scenarios {
        let baseline = &runs[0].get(&scenario.label).unwrap().report;
        for run in &runs[1..] {
            let report = &run.get(&scenario.label).unwrap().report;
            assert_eq!(report.sim_time, baseline.sim_time, "{}", scenario.label);
            assert_eq!(report.total_ops, baseline.total_ops);
            assert_eq!(report.sync_requests, baseline.sync_requests);
            assert_eq!(report.traffic, baseline.traffic);
        }
    }
    // A different seed must (in general) change the timeline of a seeded workload.
    let mut reseeded = scenarios[0].clone();
    reseeded.config.seed ^= 0xDEAD_BEEF;
    let a = scenarios[0].run().unwrap();
    let b = reseeded.run().unwrap();
    assert_eq!(a.total_ops, b.total_ops, "work amount is seed-independent");
}
