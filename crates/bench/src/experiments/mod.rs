//! One module per group of paper experiments.
//!
//! | Module | Paper artifacts |
//! |--------|-----------------|
//! | [`motivation`] | Table 1, Figure 2 |
//! | [`primitives`] | Figure 10 |
//! | [`datastructures`] | Figures 11, 16, 23 |
//! | [`realapps`] | Figures 12–15, Table 7 |
//! | [`sensitivity`] | Figures 17–22, 24 (fairness extension), scaling beyond Fig 13 |
//! | [`hwcost`] | Table 8 |
//! | [`simcore`] | Simulator-throughput trajectory (`BENCH_simcore.json`; not a paper figure) |
//! | [`service`] | Offered load vs. saturation (open-loop extension; not a paper figure) |

pub mod datastructures;
pub mod hwcost;
pub mod motivation;
pub mod primitives;
pub mod realapps;
pub mod sensitivity;
pub mod service;
pub mod simcore;
