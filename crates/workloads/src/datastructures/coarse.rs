//! Coarse-grained-lock data structures: stack, queue, array map, priority queue.
//!
//! These four benchmarks protect the entire structure (or, for the Michael–Scott
//! queue, each end of it) with a single lock, so all cores contend for one or two
//! synchronization variables — the *high-contention* group of Figure 11.

use std::collections::VecDeque;
use std::sync::Arc;
use std::sync::Mutex;

use crate::datastructures::{DsConfig, NodePool};
use crate::script::{build, OpGenerator, ScriptProgram};
use syncron_sim::{Addr, GlobalCoreId, UnitId};
use syncron_system::address::AddressSpace;
use syncron_system::config::NdpConfig;
use syncron_system::workload::{Action, CoreProgram, Workload};

/// A stack protected by one coarse-grained lock; every core performs `ops_per_core`
/// push operations (Table 6: 100 K initial elements, 100% push).
#[derive(Clone, Copy, Debug)]
pub struct Stack {
    /// Sizing parameters.
    pub config: DsConfig,
}

impl Stack {
    /// Creates the benchmark.
    pub fn new(config: DsConfig) -> Self {
        Stack { config }
    }
}

#[derive(Debug)]
struct StackShared {
    top: u64,
}

struct StackGen {
    cfg: DsConfig,
    lock: Addr,
    top_addr: Addr,
    pool: NodePool,
    shared: Arc<Mutex<StackShared>>,
    remaining: u32,
}

impl OpGenerator for StackGen {
    fn next_op(&mut self, _core: GlobalCoreId, script: &mut VecDeque<Action>) -> bool {
        if self.remaining == 0 {
            return false;
        }
        self.remaining -= 1;
        let mut shared = self.shared.lock().expect("workload state poisoned");
        shared.top += 1;
        let node = self.pool.node(shared.top);
        build::compute(script, self.cfg.think_instrs);
        build::lock(script, self.lock);
        build::load(script, self.top_addr);
        build::store(script, node);
        build::store(script, self.top_addr);
        build::unlock(script, self.lock);
        true
    }
}

impl Workload for Stack {
    fn name(&self) -> String {
        "stack".into()
    }

    fn build(
        &self,
        space: &mut AddressSpace,
        _config: &NdpConfig,
        clients: &[GlobalCoreId],
    ) -> Vec<Box<dyn CoreProgram>> {
        let lock = space.allocate_shared_rw(64, UnitId(0));
        let top_addr = space.allocate_shared_rw(64, UnitId(0));
        let pool = NodePool::allocate(
            space,
            self.config.initial_size + clients.len() * self.config.ops_per_core as usize,
            false,
        );
        let shared = Arc::new(Mutex::new(StackShared {
            top: self.config.initial_size as u64,
        }));
        clients
            .iter()
            .map(|_| {
                Box::new(ScriptProgram::new(StackGen {
                    cfg: self.config,
                    lock,
                    top_addr,
                    pool: pool.clone(),
                    shared: Arc::clone(&shared),
                    remaining: self.config.ops_per_core,
                })) as Box<dyn CoreProgram>
            })
            .collect()
    }
}

/// A two-lock Michael–Scott queue; every core performs `ops_per_core` pop operations
/// (Table 6: 100 K initial elements, 100% pop).
#[derive(Clone, Copy, Debug)]
pub struct Queue {
    /// Sizing parameters.
    pub config: DsConfig,
}

impl Queue {
    /// Creates the benchmark.
    pub fn new(config: DsConfig) -> Self {
        Queue { config }
    }
}

#[derive(Debug)]
struct QueueShared {
    head: u64,
}

struct QueueGen {
    cfg: DsConfig,
    head_lock: Addr,
    head_addr: Addr,
    pool: NodePool,
    shared: Arc<Mutex<QueueShared>>,
    remaining: u32,
}

impl OpGenerator for QueueGen {
    fn next_op(&mut self, _core: GlobalCoreId, script: &mut VecDeque<Action>) -> bool {
        if self.remaining == 0 {
            return false;
        }
        self.remaining -= 1;
        let mut shared = self.shared.lock().expect("workload state poisoned");
        let node = self.pool.node(shared.head);
        shared.head += 1;
        let next = self.pool.node(shared.head);
        build::compute(script, self.cfg.think_instrs);
        build::lock(script, self.head_lock);
        build::load(script, self.head_addr);
        build::load(script, node);
        build::load(script, next);
        build::store(script, self.head_addr);
        build::unlock(script, self.head_lock);
        true
    }
}

impl Workload for Queue {
    fn name(&self) -> String {
        "queue".into()
    }

    fn build(
        &self,
        space: &mut AddressSpace,
        _config: &NdpConfig,
        clients: &[GlobalCoreId],
    ) -> Vec<Box<dyn CoreProgram>> {
        let head_lock = space.allocate_shared_rw(64, UnitId(0));
        let head_addr = space.allocate_shared_rw(64, UnitId(0));
        // Tail lock and pointer exist in the structure; the 100%-pop workload of the
        // paper never touches them, but allocating them keeps the layout faithful.
        let _tail_lock = space.allocate_shared_rw(64, UnitId(0));
        let _tail_addr = space.allocate_shared_rw(64, UnitId(0));
        let pool = NodePool::allocate(
            space,
            self.config.initial_size + clients.len() * self.config.ops_per_core as usize + 1,
            false,
        );
        let shared = Arc::new(Mutex::new(QueueShared { head: 0 }));
        clients
            .iter()
            .map(|_| {
                Box::new(ScriptProgram::new(QueueGen {
                    cfg: self.config,
                    head_lock,
                    head_addr,
                    pool: pool.clone(),
                    shared: Arc::clone(&shared),
                    remaining: self.config.ops_per_core,
                })) as Box<dyn CoreProgram>
            })
            .collect()
    }
}

/// A small array map (10 entries in Table 6) protected by one lock; lookups scan the
/// whole array inside the critical section, making it the longest critical section of
/// the group (and the least scalable structure in Figure 11).
#[derive(Clone, Copy, Debug)]
pub struct ArrayMap {
    /// Sizing parameters (`initial_size` is the number of array entries).
    pub config: DsConfig,
}

impl ArrayMap {
    /// Creates the benchmark.
    pub fn new(config: DsConfig) -> Self {
        ArrayMap { config }
    }
}

struct ArrayMapGen {
    cfg: DsConfig,
    lock: Addr,
    entries: Addr,
    remaining: u32,
}

impl OpGenerator for ArrayMapGen {
    fn next_op(&mut self, _core: GlobalCoreId, script: &mut VecDeque<Action>) -> bool {
        if self.remaining == 0 {
            return false;
        }
        self.remaining -= 1;
        build::compute(script, self.cfg.think_instrs);
        build::lock(script, self.lock);
        for i in 0..self.cfg.initial_size as u64 {
            build::load(script, self.entries.offset(i * Addr::LINE_BYTES));
        }
        build::unlock(script, self.lock);
        true
    }
}

impl Workload for ArrayMap {
    fn name(&self) -> String {
        "array-map".into()
    }

    fn build(
        &self,
        space: &mut AddressSpace,
        _config: &NdpConfig,
        clients: &[GlobalCoreId],
    ) -> Vec<Box<dyn CoreProgram>> {
        let lock = space.allocate_shared_rw(64, UnitId(0));
        let entries =
            space.allocate_shared_rw(self.config.initial_size.max(1) as u64 * 64, UnitId(0));
        clients
            .iter()
            .map(|_| {
                Box::new(ScriptProgram::new(ArrayMapGen {
                    cfg: self.config,
                    lock,
                    entries,
                    remaining: self.config.ops_per_core,
                })) as Box<dyn CoreProgram>
            })
            .collect()
    }
}

/// A binary-heap priority queue protected by one lock; every core performs
/// `ops_per_core` deleteMin operations (Table 6: 20 K elements, 100% deleteMin).
#[derive(Clone, Copy, Debug)]
pub struct PriorityQueue {
    /// Sizing parameters.
    pub config: DsConfig,
}

impl PriorityQueue {
    /// Creates the benchmark.
    pub fn new(config: DsConfig) -> Self {
        PriorityQueue { config }
    }
}

#[derive(Debug)]
struct PqShared {
    size: u64,
}

struct PqGen {
    cfg: DsConfig,
    lock: Addr,
    size_addr: Addr,
    pool: NodePool,
    shared: Arc<Mutex<PqShared>>,
    remaining: u32,
}

impl OpGenerator for PqGen {
    fn next_op(&mut self, _core: GlobalCoreId, script: &mut VecDeque<Action>) -> bool {
        if self.remaining == 0 {
            return false;
        }
        self.remaining -= 1;
        let mut shared = self.shared.lock().expect("workload state poisoned");
        let size = shared.size.max(2);
        shared.size = shared.size.saturating_sub(1).max(2);
        build::compute(script, self.cfg.think_instrs);
        build::lock(script, self.lock);
        build::load(script, self.size_addr);
        build::load(script, self.pool.node(0));
        // Sift-down along one root-to-leaf path: the critical section grows with
        // log2(size), which is what makes the priority queue scale poorly.
        let mut idx = 0u64;
        while 2 * idx + 2 < size {
            let left = 2 * idx + 1;
            let right = 2 * idx + 2;
            build::load(script, self.pool.node(left));
            build::load(script, self.pool.node(right));
            build::store(script, self.pool.node(idx));
            idx = left;
        }
        build::store(script, self.size_addr);
        build::unlock(script, self.lock);
        true
    }
}

impl Workload for PriorityQueue {
    fn name(&self) -> String {
        "priority-queue".into()
    }

    fn build(
        &self,
        space: &mut AddressSpace,
        _config: &NdpConfig,
        clients: &[GlobalCoreId],
    ) -> Vec<Box<dyn CoreProgram>> {
        let lock = space.allocate_shared_rw(64, UnitId(0));
        let size_addr = space.allocate_shared_rw(64, UnitId(0));
        let pool = NodePool::allocate(space, self.config.initial_size.max(4), false);
        let shared = Arc::new(Mutex::new(PqShared {
            size: self.config.initial_size as u64,
        }));
        clients
            .iter()
            .map(|_| {
                Box::new(ScriptProgram::new(PqGen {
                    cfg: self.config,
                    lock,
                    size_addr,
                    pool: pool.clone(),
                    shared: Arc::clone(&shared),
                    remaining: self.config.ops_per_core,
                })) as Box<dyn CoreProgram>
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use syncron_core::MechanismKind;
    use syncron_system::run_workload;

    fn config(kind: MechanismKind) -> NdpConfig {
        NdpConfig::builder()
            .units(2)
            .cores_per_unit(4)
            .mechanism(kind)
            .build()
            .expect("valid config")
    }

    #[test]
    fn stack_completes_and_counts_pushes() {
        let report = run_workload(
            &config(MechanismKind::SynCron),
            &Stack::new(DsConfig::new(1000, 15)),
        );
        assert!(report.completed);
        assert_eq!(report.total_ops, 6 * 15);
        assert!(report.sync_requests >= 2 * report.total_ops);
    }

    #[test]
    fn queue_and_arraymap_complete_under_all_mechanisms() {
        for kind in MechanismKind::COMPARED {
            let q = run_workload(&config(kind), &Queue::new(DsConfig::new(500, 10)));
            assert!(q.completed, "queue under {kind:?}");
            let m = run_workload(&config(kind), &ArrayMap::new(DsConfig::new(10, 10)));
            assert!(m.completed, "array map under {kind:?}");
        }
    }

    #[test]
    fn priority_queue_critical_section_grows_with_size() {
        let small = run_workload(
            &config(MechanismKind::Ideal),
            &PriorityQueue::new(DsConfig::new(64, 10)),
        );
        let large = run_workload(
            &config(MechanismKind::Ideal),
            &PriorityQueue::new(DsConfig::new(4096, 10)),
        );
        assert!(large.sim_time > small.sim_time);
        assert!(large.loads > small.loads);
    }

    #[test]
    fn high_contention_favors_hierarchical_schemes() {
        // The stack is the paper's canonical high-contention benchmark: SynCron should
        // beat Central clearly (Figure 11, first row).
        let central = run_workload(
            &config(MechanismKind::Central),
            &Stack::new(DsConfig::new(1000, 25)),
        );
        let syncron = run_workload(
            &config(MechanismKind::SynCron),
            &Stack::new(DsConfig::new(1000, 25)),
        );
        assert!(
            syncron.sim_time < central.sim_time,
            "SynCron {} vs Central {}",
            syncron.sim_time,
            central.sim_time
        );
    }

    #[test]
    fn array_map_scales_worst_of_the_group() {
        // Longer critical sections serialize the cores: throughput per op should be
        // lower than the stack's under the same scheme.
        let stack = run_workload(
            &config(MechanismKind::SynCron),
            &Stack::new(DsConfig::new(1000, 20)),
        );
        let map = run_workload(
            &config(MechanismKind::SynCron),
            &ArrayMap::new(DsConfig::new(10, 20)),
        );
        assert!(map.ops_per_ms() < stack.ops_per_ms());
    }
}
