//! Regenerates Figure 12 of the paper (real-application speedups).
fn main() {
    syncron_bench::experiments::realapps::fig12().print();
}
