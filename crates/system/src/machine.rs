//! The event-driven NDP machine.
//!
//! [`NdpMachine`] assembles the substrates — per-core L1 caches, per-unit crossbars and
//! DRAM devices, inter-unit links, a MESI directory (for the motivational experiments)
//! and one synchronization mechanism — and steps the client cores' programs one
//! [`Action`] at a time, charging each action's latency through the corresponding
//! models. The machine is fully deterministic: same configuration and workload seed,
//! same result — independent of [`crate::config::NdpConfig::sim_threads`].
//!
//! # The run loop
//!
//! The machine partitions its units into shards (one for a sequential run, up
//! to `sim_threads` for a sharded one; see the private `shard_plan`). Every
//! shard owns
//! the substrates of a contiguous unit range — event queue, crossbars, DRAMs,
//! server caches, a full synchronization-mechanism instance — and the programs
//! and L1s of the client cores in that range. Shards advance in lock-step
//! **windows** of a conservative parallel discrete-event simulation:
//!
//! * each round, the [`WindowGate`] reduces every shard's earliest pending
//!   timestamp into the global minimum `T_min` and opens the window
//!   `[T_min, T_min + lookahead)`, where the lookahead is the minimum latency
//!   of the inter-unit link (every cross-shard interaction crosses that link);
//! * shards process only events strictly inside the window. Anything they send
//!   across shard boundaries arrives at least one lookahead later — at or past
//!   the window end — so no shard ever receives an event for a time it has
//!   already passed. Cross-shard sends travel through [`mailboxes`] and are
//!   drained between the two gate phases of the next round;
//! * equal-timestamp ordering is pinned by [`event_key`]: every event carries a
//!   `(origin unit, per-unit counter)` tiebreak key, so pop order within one
//!   timestamp is a property of the simulation, not of host thread timing. A
//!   single-shard run uses the same keys, the same windows and the same code
//!   path — the sequential mode is the `shards == 1` special case, and a
//!   sharded run reproduces its reports bit for bit
//!   ([`crate::report::RunReport::divergence_from`]).
//!
//! Within a window the scheduling core keeps its fast paths: the calendar-queue
//! scheduler by default ([`syncron_sim::event::SchedulerKind`]), a precomputed
//! dense `GlobalCoreId -> client index` table on the resume path, and inline
//! dispatch of a core's next step when it strictly precedes every queued event
//! (bounded by [`crate::config::NdpConfig::inline_step_budget`]; the inlined
//! step still consumes its event key, so the key stream is identical whether a
//! step is inlined or queued).

use crate::address::AddressSpace;
use crate::config::{CoherenceMode, NdpConfig};
use crate::report::{BlockedCore, IncompleteReason, RunReport, SimPerf, StallKind, StallReport};
use crate::workload::{Action, CoreProgram, Workload};

use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::mpsc::{Receiver, Sender};

use syncron_core::mechanism::{
    build_mechanism, MechanismKind, RemotePayload, SyncContext, SyncMechanism, SyncMechanismStats,
};
use syncron_core::protocol::OverflowMode;
use syncron_mem::cache::L1Cache;
use syncron_mem::dram::{DramModel, DramSpec};
use syncron_mem::energy::EnergyTally;
use syncron_mem::mesi::{CoherentAccess, MesiDirectory};
use syncron_net::crossbar::Crossbar;
use syncron_net::fault::{DedupSet, FaultEngine, FaultStats};
use syncron_net::link::InterUnitLink;
use syncron_net::traffic::TrafficStats;
use syncron_sim::event::{CalendarParams, EventQueue, SchedulerKind};
use syncron_sim::shard::{
    event_key, mailboxes, AbortCause, Mail, RoundDecision, RoundReport, ShardMap, WindowGate,
};
use syncron_sim::time::Time;
use syncron_sim::{Addr, BitQueue, CoreId, GlobalCoreId, UnitId};

/// Size of a request header packet on the network, in bytes.
const HDR_BYTES: u64 = 16;
/// Size of a data (cache line) packet on the network, in bytes.
const LINE_BYTES: u64 = 64;

#[derive(Clone, Copy, Debug)]
enum Event {
    /// A client core (by dense global client index) is ready for its next action.
    CoreStep(usize),
    /// A blocking synchronization request completed; the core resumes.
    CoreResume(GlobalCoreId),
    /// A broadcast release completed several cores of one unit at one time;
    /// they resume in ascending core order from one queued event. `token`
    /// indexes the shard's burst slab ([`Substrates::bursts`]). Replaces
    /// O(waiters) `CoreResume` events with one, without changing the resume
    /// order by a single bit (see [`Substrates::complete`]).
    CoreResumeBurst { token: u32 },
    /// A token scheduled by the synchronization mechanism for the engine of
    /// `unit` is due.
    SyncToken { unit: UnitId, token: u64 },
    /// A cross-unit mechanism message arrives at the engine of `to`.
    RemoteSync { to: UnitId, payload: RemotePayload },
    /// A fault-injected copy of a cross-unit mechanism message. `tag` is
    /// unique per transmission; the receiver's [`DedupSet`] pairs duplicate
    /// copies so exactly one of them is delivered. Only the fault path emits
    /// this variant — faults-off runs never see it.
    RemoteSyncTagged {
        to: UnitId,
        payload: RemotePayload,
        tag: u64,
    },
    /// The retransmission timer of a dropped mechanism message fired on the
    /// sending unit `from`; the message is re-sent with the next attempt
    /// number (bounded exponential backoff, see
    /// [`syncron_net::fault::FaultConfig::retry_delay`]).
    FaultRetry {
        from: UnitId,
        to: UnitId,
        bytes: u64,
        payload: RemotePayload,
        attempt: u32,
    },
    /// A remote data request from client `idx` reaches the home unit of `addr`.
    DataReq {
        idx: usize,
        home: UnitId,
        addr: Addr,
        write: bool,
        rmw: bool,
    },
    /// The data line returns to client `idx`'s unit; the core's access completes.
    DataReply { idx: usize, rmw: bool },
}

/// Precomputed dense `GlobalCoreId -> client index` table.
///
/// Replaces the `HashMap` lookup that used to sit on the `CoreResume` hot path:
/// resolution is one bounds check plus one slot load. Slots covering server cores
/// (and the whole table for out-of-geometry IDs) answer `None`.
#[derive(Clone, Debug)]
struct ClientIndex {
    units: usize,
    cores_per_unit: usize,
    /// One slot per `(unit, core)` of the configured geometry; `NOT_A_CLIENT`
    /// marks reserved server cores.
    slots: Vec<u32>,
}

const NOT_A_CLIENT: u32 = u32::MAX;

impl ClientIndex {
    fn new(units: usize, cores_per_unit: usize, clients: &[GlobalCoreId]) -> Self {
        let mut slots = vec![NOT_A_CLIENT; units * cores_per_unit];
        for (index, core) in clients.iter().enumerate() {
            slots[core.flat_index(cores_per_unit)] = index as u32;
        }
        ClientIndex {
            units,
            cores_per_unit,
            slots,
        }
    }

    /// The dense client index of `core`, or `None` when the core is outside the
    /// machine geometry or is a reserved server core.
    #[inline]
    fn get(&self, core: GlobalCoreId) -> Option<usize> {
        // Guard both coordinates: a local core ID at or past `cores_per_unit`
        // would otherwise alias into the next unit's flat range.
        if core.unit.index() >= self.units || core.core.index() >= self.cores_per_unit {
            return None;
        }
        let slot = self.slots[core.flat_index(self.cores_per_unit)];
        (slot != NOT_A_CLIENT).then_some(slot as usize)
    }
}

/// Resolves a resumed core to its dense client index.
///
/// # Panics
///
/// Panics — naming the core — when the core is not a client of this machine
/// (outside the configured geometry, or a reserved server core). A resume for
/// such a core is always a mechanism bug; it used to be silently dropped,
/// which turned protocol bugs into unexplainable deadlocks.
fn resolve_client_in(index: &ClientIndex, core: GlobalCoreId, clients_total: usize) -> usize {
    index.get(core).unwrap_or_else(|| {
        panic!(
            "CoreResume for core {core}, which is not a client of this machine \
             ({} units x {} cores, {} clients): either the core is outside the \
             geometry or it is a reserved server core",
            index.units, index.cores_per_unit, clients_total
        )
    })
}

/// One shard's share of the machine substrates, plus the clock and event queue.
///
/// The struct implements [`SyncContext`] directly: the synchronization mechanism
/// operates on the shard's own crossbars, DRAMs and queue, and every latency or
/// traffic charge lands on the shard that owns the acting unit. Per-unit vectors
/// are indexed by `unit - unit_lo`; the accessors assert ownership so a message
/// routed to a foreign unit is a hard error naming the unit, never silent
/// corruption of another unit's state.
/// A pending [`Event::CoreResumeBurst`]: the cores of `unit` resuming together
/// at one timestamp. Slab-allocated so the `Copy` event stays one word.
#[derive(Clone, Debug, Default)]
struct ResumeBurst {
    unit: UnitId,
    /// Local core indices of the burst members; iterated (and therefore
    /// resumed) in ascending order.
    cores: BitQueue,
    live: bool,
}

/// Watermark for appending to the most recently opened resume burst.
///
/// A completion may merge into the open burst only when nothing that could
/// order between them has happened since it was opened: same target `unit`,
/// same resume time `at`, no event key drawn from the executing unit's counter
/// since the burst event was pushed (`stamp`, mirroring
/// [`SyncContext::schedule_stamp`]'s batching proof), and a strictly ascending
/// core index (`last_core`) so the burst's ascending-order delivery is exactly
/// the order the individual `CoreResume` events would have popped in.
#[derive(Clone, Copy, Debug)]
struct OpenBurst {
    token: u32,
    unit: usize,
    at: Time,
    stamp: u64,
    last_core: usize,
}

struct Substrates {
    queue: EventQueue<Event>,
    /// Crossbars of the owned units, indexed by `unit - unit_lo`.
    crossbars: Vec<Crossbar>,
    /// The link model covers the full geometry; a directed channel `(from, to)`
    /// is only ever used by the shard owning `from` (requests by the sender's
    /// shard, replies by the home's shard), so per-shard instances never race
    /// and their byte counters sum exactly.
    links: InterUnitLink,
    /// DRAM devices of the owned units, indexed by `unit - unit_lo`.
    drams: Vec<DramModel>,
    /// Server-core caches of the owned units, indexed by `unit - unit_lo`.
    server_l1s: Vec<L1Cache>,
    traffic: TrafficStats,
    space: AddressSpace,
    map: ShardMap,
    /// One mailbox sender per peer shard; installed by [`NdpMachine::run`].
    senders: Vec<Sender<Mail<Event>>>,
    /// Per-owned-unit event-key counters, indexed by `unit - unit_lo`.
    key_counters: Vec<u64>,
    unit_lo: usize,
    unit_hi: usize,
    /// Unit of the event currently being dispatched; every key pushed while it
    /// runs is drawn from this unit's counter.
    cur_unit: usize,
    now: Time,
    units: usize,
    cores_per_unit: usize,
    /// Whether broadcast completions coalesce into [`Event::CoreResumeBurst`]
    /// events (the `burst_resume` knob; results are bit-identical either way).
    burst_resume: bool,
    /// Slab of pending resume bursts, indexed by the event's `token`.
    bursts: Vec<ResumeBurst>,
    /// Free slots of the burst slab.
    burst_free: Vec<u32>,
    /// The most recently opened burst still eligible for appends.
    open_burst: Option<OpenBurst>,
    /// Fault oracle for this shard's outbound mechanism messages; `Some` iff
    /// fault injection is enabled. Verdicts are pure functions of
    /// `(seed, link, sequence)`, so they are shard-count-invariant.
    fault: Option<FaultEngine>,
    /// Receiver-side pairing of duplicated (tagged) message copies.
    dedup: DedupSet,
}

impl Substrates {
    #[inline]
    fn owns(&self, unit: usize) -> bool {
        (self.unit_lo..self.unit_hi).contains(&unit)
    }

    #[inline]
    fn local(&self, unit: UnitId, what: &str) -> usize {
        let u = unit.index();
        assert!(
            self.owns(u),
            "{what} touched unit U{u}, which this shard (units U{}..U{}) does not own",
            self.unit_lo,
            self.unit_hi
        );
        u - self.unit_lo
    }

    #[inline]
    fn xbar_at(&mut self, unit: UnitId) -> &mut Crossbar {
        let i = self.local(unit, "a crossbar transfer");
        &mut self.crossbars[i]
    }

    #[inline]
    fn dram_at(&mut self, unit: UnitId) -> &mut DramModel {
        let i = self.local(unit, "a DRAM access");
        &mut self.drams[i]
    }

    /// Draws the next event key from the current execution unit's counter.
    ///
    /// Called exactly once per scheduled event *and* once per inlined step, so
    /// the per-unit key streams evolve identically whatever the shard count and
    /// whatever the inline-dispatch decisions.
    #[inline]
    fn next_key(&mut self) -> u64 {
        let slot = &mut self.key_counters[self.cur_unit - self.unit_lo];
        let key = event_key(self.cur_unit, *slot);
        *slot += 1;
        key
    }

    /// Schedules `event` at `at` on the shard owning `unit`: locally when this
    /// shard owns it, through the mailbox fabric otherwise. The key is drawn
    /// from the *originating* (current) unit either way, so the tiebreak order
    /// is a property of the simulation. Routing to a unit outside the geometry
    /// is a hard error naming the unit (see [`ShardMap::shard_of`]).
    fn route(&mut self, at: Time, unit: usize, event: Event) {
        let key = self.next_key();
        if self.owns(unit) {
            self.queue.push_keyed(at, key, event);
        } else {
            let dest = self.map.shard_of(unit);
            self.senders[dest]
                .send((at, key, event))
                .expect("cross-shard mailbox closed while the simulation is running");
        }
    }

    /// The fault-injecting send path for cross-unit mechanism messages
    /// (`attempt` is 0 for the original transmission, `k` for the k-th
    /// retransmission).
    ///
    /// Every transmission — kept or dropped — loads the network exactly like
    /// the fast path: the bytes are accounted and charged through the sender's
    /// crossbar and the link, so contention under faults is real. A dropped
    /// transmission schedules only a local [`Event::FaultRetry`] on the
    /// sending unit (bounded exponential backoff); a kept one arrives after
    /// any injected jitter plus the destination SE's stall-window deferral.
    /// Duplicates arrive as two [`Event::RemoteSyncTagged`] copies sharing a
    /// tag; the receiver delivers exactly one. With all fault probabilities
    /// zero every verdict is clean and this path schedules exactly the events
    /// the fast path would, with the same keys — the knob-aliveness contract.
    fn send_remote_faulted(
        &mut self,
        at: Time,
        from: UnitId,
        to: UnitId,
        bytes: u64,
        payload: RemotePayload,
        attempt: u32,
    ) {
        let engine = self
            .fault
            .as_mut()
            .expect("fault send path without a fault engine");
        let verdict = engine.verdict(from.index(), to.index(), attempt);
        if attempt > 0 {
            engine.stats.retransmitted += 1;
        }
        let retry_delay = engine.config().retry_delay(attempt);
        self.traffic.add_inter(bytes);
        let mut lat = self.xbar_at(from).transfer(at, bytes);
        lat += self.links.transfer(at + lat, from, to, bytes);
        if verdict.dropped {
            self.fault.as_mut().expect("fault engine").stats.dropped += 1;
            self.route(
                at + retry_delay,
                from.index(),
                Event::FaultRetry {
                    from,
                    to,
                    bytes,
                    payload,
                    attempt: attempt + 1,
                },
            );
            return;
        }
        let mut arrival = at + lat;
        if verdict.jitter > Time::ZERO {
            self.fault.as_mut().expect("fault engine").stats.delayed += 1;
            arrival += verdict.jitter;
        }
        let defer = self
            .fault
            .as_ref()
            .expect("fault engine")
            .stall_defer(to.index(), arrival);
        if defer > Time::ZERO {
            self.fault.as_mut().expect("fault engine").stats.stalled += 1;
            arrival += defer;
        }
        if verdict.duplicated {
            self.fault.as_mut().expect("fault engine").stats.duplicated += 1;
            let tag = verdict.tag;
            self.route(
                arrival,
                to.index(),
                Event::RemoteSyncTagged { to, payload, tag },
            );
            self.route(
                arrival + verdict.dup_offset,
                to.index(),
                Event::RemoteSyncTagged { to, payload, tag },
            );
        } else {
            self.route(arrival, to.index(), Event::RemoteSync { to, payload });
        }
    }
}

impl SyncContext for Substrates {
    fn now(&self) -> Time {
        self.now
    }

    fn schedule(&mut self, at: Time, unit: UnitId, token: u64) {
        let u = unit.index();
        assert!(
            self.owns(u),
            "mechanism scheduled a token for unit U{u}, which this shard \
             (units U{}..U{}) does not own: engine tokens must stay on the engine's shard",
            self.unit_lo,
            self.unit_hi
        );
        let key = self.next_key();
        self.queue
            .push_keyed(at, key, Event::SyncToken { unit, token });
    }

    fn schedule_stamp(&self) -> Option<u64> {
        // The next key the current unit would draw. It changes on every push
        // from this unit and advances by exactly one per `schedule` call, so
        // the protocol's equal-timestamp batching can prove "no event was
        // scheduled in between" — and because the key encodes the origin unit,
        // the watermark can never be confused with another unit's pushes.
        let counter = self.key_counters[self.cur_unit - self.unit_lo];
        Some(event_key(self.cur_unit, counter))
    }

    fn local_hop(&mut self, unit: UnitId, bytes: u64) -> Time {
        self.traffic.add_intra(bytes);
        let now = self.now;
        self.xbar_at(unit).transfer(now, bytes)
    }

    fn send_remote(
        &mut self,
        at: Time,
        from: UnitId,
        to: UnitId,
        bytes: u64,
        payload: RemotePayload,
    ) {
        if self.fault.is_some() {
            self.send_remote_faulted(at, from, to, bytes, payload, 0);
            return;
        }
        self.traffic.add_inter(bytes);
        let mut lat = self.xbar_at(from).transfer(at, bytes);
        lat += self.links.transfer(at + lat, from, to, bytes);
        // The arrival is at least the link's minimum latency after `at` — the
        // lookahead bound the window barrier relies on.
        self.route(at + lat, to.index(), Event::RemoteSync { to, payload });
    }

    fn recv_hop(&mut self, unit: UnitId, bytes: u64) -> Time {
        // Traffic was accounted at the send side; this is only the
        // destination-crossbar leg of the remote message.
        let now = self.now;
        self.xbar_at(unit).transfer(now, bytes)
    }

    fn sync_mem_access(&mut self, unit: UnitId, addr: Addr, write: bool, cached: bool) -> Time {
        let u = self.local(unit, "a synchronization memory access");
        let mut lat = Time::ZERO;
        if cached {
            let outcome = self.server_l1s[u].access(addr, write);
            lat += self.server_l1s[u].hit_latency();
            if outcome.is_hit() {
                return lat;
            }
        }
        // Miss (or uncached syncronVar access): go to the unit's local DRAM through the
        // crossbar.
        lat += self.crossbars[u].transfer(self.now + lat, HDR_BYTES);
        let done = self.drams[u].access(self.now + lat, addr, write);
        lat = done.saturating_sub(self.now);
        lat += self.crossbars[u].transfer(self.now + lat, LINE_BYTES);
        self.traffic.add_intra(HDR_BYTES + LINE_BYTES);
        lat
    }

    fn home_unit(&self, addr: Addr) -> UnitId {
        self.space.home_unit(addr)
    }

    fn complete(&mut self, core: GlobalCoreId, at: Time) {
        let u = core.unit.index();
        assert!(
            self.owns(u),
            "mechanism completed a request for core {core} of unit U{u}, which this \
             shard (units U{}..U{}) does not own: completions must be delivered \
             through send_remote to the core's shard",
            self.unit_lo,
            self.unit_hi
        );
        let at = at.max(self.now);
        if !self.burst_resume {
            let key = self.next_key();
            self.queue.push_keyed(at, key, Event::CoreResume(core));
            return;
        }
        // Burst path: a broadcast release completes many cores back to back at
        // one timestamp. Without bursting each completion pushes its own
        // CoreResume, drawing consecutive keys from the executing unit's
        // counter — so they pop contiguously, in completion order. Appending to
        // the open burst reproduces exactly that order as long as (a) no key
        // was drawn from the executing unit since the burst event was pushed
        // (the `stamp` check — any interleaving push would have ordered between
        // the individual resumes), (b) the target unit and resume time match,
        // and (c) the core index is strictly ascending, because the burst
        // delivers its members in ascending order. Any break in those
        // conditions simply opens a fresh burst: correctness never depends on
        // the completion pattern.
        let (unit, core_ix) = (core.unit.index(), core.core.index());
        if let Some(open) = self.open_burst {
            let counter = self.key_counters[self.cur_unit - self.unit_lo];
            if open.unit == unit
                && open.at == at
                && open.stamp == event_key(self.cur_unit, counter)
                && core_ix > open.last_core
            {
                let burst = &mut self.bursts[open.token as usize];
                debug_assert!(burst.live && burst.unit == core.unit);
                burst.cores.set(core_ix);
                self.open_burst = Some(OpenBurst {
                    last_core: core_ix,
                    ..open
                });
                return;
            }
        }
        let key = self.next_key();
        let token = match self.burst_free.pop() {
            Some(token) => token,
            None => {
                self.bursts.push(ResumeBurst::default());
                (self.bursts.len() - 1) as u32
            }
        };
        let burst = &mut self.bursts[token as usize];
        debug_assert!(!burst.live && burst.cores.is_empty());
        burst.unit = core.unit;
        burst.cores.set(core_ix);
        burst.live = true;
        self.queue
            .push_keyed(at, key, Event::CoreResumeBurst { token });
        // The watermark is the next key the executing unit would draw *after*
        // the burst event's own push.
        let counter = self.key_counters[self.cur_unit - self.unit_lo];
        self.open_burst = Some(OpenBurst {
            token,
            unit,
            at,
            stamp: event_key(self.cur_unit, counter),
            last_core: core_ix,
        });
    }

    fn units(&self) -> usize {
        self.units
    }

    fn cores_per_unit(&self) -> usize {
        self.cores_per_unit
    }
}

/// One worker's worth of the machine: a contiguous unit range, its substrates,
/// the programs and L1s of its client cores, and a full mechanism instance.
struct Shard {
    sub: Substrates,
    mechanism: Option<Box<dyn SyncMechanism>>,
    /// Programs of this shard's clients, indexed by `global index - client_lo`.
    programs: Vec<Box<dyn CoreProgram>>,
    l1s: Vec<L1Cache>,
    core_done: Vec<bool>,
    /// For each local client, the sync-variable address its pending blocking
    /// request targets — `Some` while the core is parked in the mechanism,
    /// cleared the moment it resumes. Feeds the watchdog's [`StallReport`].
    blocked_on: Vec<Option<Addr>>,
    /// Global core IDs of this shard's clients (same local indexing).
    client_ids: Vec<GlobalCoreId>,
    /// Global client index of this shard's first client.
    client_lo: usize,
    clients_total: usize,
    client_index: ClientIndex,
    /// MESI directory; present only in the single-shard configuration (the
    /// directory is centralized, so [`shard_plan`] forces `shards == 1`).
    mesi: Option<MesiDirectory>,
    mesi_network_pj: f64,
    config: NdpConfig,
    done_count: usize,
    /// Programs finished since the last gate report.
    done_round: u64,
    /// Events delivered since the last gate report.
    events_round: u64,
    /// Forward-progress units since the last gate report: program actions
    /// consumed by client cores. Mechanism chatter (tokens, remote messages,
    /// retransmissions) does not count, so a retransmission storm that wakes
    /// no core is visible to the watchdog as zero progress.
    progress_round: u64,
    events_delivered: u64,
    /// Set when one window exceeded the runaway backstop; forces an abort at
    /// the next gate round.
    runaway: bool,
    last_finish: Time,
    instructions: u64,
    loads: u64,
    stores: u64,
    sync_requests: u64,
}

impl Shard {
    /// The unit whose state `event` operates on (and whose key counter feeds
    /// everything it schedules).
    fn unit_of(&self, event: &Event) -> usize {
        match *event {
            Event::CoreStep(idx) | Event::DataReply { idx, .. } => {
                self.client_ids[idx - self.client_lo].unit.index()
            }
            Event::CoreResume(core) => core.unit.index(),
            Event::CoreResumeBurst { token } => self.sub.bursts[token as usize].unit.index(),
            Event::SyncToken { unit, .. } => unit.index(),
            Event::RemoteSync { to, .. } | Event::RemoteSyncTagged { to, .. } => to.index(),
            Event::FaultRetry { from, .. } => from.index(),
            Event::DataReq { home, .. } => home.index(),
        }
    }

    /// Delivers one popped event, then chases the core's next steps inline
    /// while they strictly precede every queued event (and stay inside the
    /// window). An inlined step consumes its event key exactly as a queued one
    /// would, so the key streams — and therefore all reports — are independent
    /// of the inline decisions.
    fn dispatch(&mut self, at: Time, event: Event, window_end: Time) {
        let mut inline_budget = self.config.inline_step_budget;
        let mut current = (at, event);
        loop {
            let (at, event) = current;
            self.sub.now = self.sub.now.max(at);
            self.events_delivered += 1;
            self.events_round += 1;
            self.sub.cur_unit = self.unit_of(&event);
            let next_step: Option<(Time, usize)> = match event {
                Event::CoreStep(idx) => self.step_core(idx - self.client_lo).map(|t| (t, idx)),
                Event::CoreResume(core) => {
                    let idx = resolve_client_in(&self.client_index, core, self.clients_total);
                    let local = idx - self.client_lo;
                    assert!(
                        !self.core_done[local],
                        "CoreResume for core {core}, which already finished: the \
                         mechanism completed the same request twice"
                    );
                    self.step_core(local).map(|t| (t, idx))
                }
                Event::CoreResumeBurst { token } => {
                    // Close the open burst first: a completion scheduled while
                    // the members run must not append to this already-popped
                    // token.
                    if self.sub.open_burst.is_some_and(|open| open.token == token) {
                        self.sub.open_burst = None;
                    }
                    let burst = &mut self.sub.bursts[token as usize];
                    debug_assert!(burst.live);
                    burst.live = false;
                    let unit = burst.unit;
                    // Swap the member set out so the slab entry never aliases
                    // the walk; it goes back (drained, allocation intact) when
                    // the token returns to the free list below.
                    let mut cores = std::mem::take(&mut burst.cores);
                    // Ascending-core iteration is exactly the order the
                    // individual CoreResume events would have popped in (the
                    // append guard admits only ascending indices). Each
                    // member's next step is routed, never inlined — routing
                    // draws the same one key inlining would have consumed, so
                    // the key streams cannot tell the difference.
                    while let Some(core_ix) = cores.pop_first() {
                        let core = GlobalCoreId::new(unit, CoreId(core_ix as u8));
                        let idx = resolve_client_in(&self.client_index, core, self.clients_total);
                        let local = idx - self.client_lo;
                        assert!(
                            !self.core_done[local],
                            "CoreResume for core {core}, which already finished: the \
                             mechanism completed the same request twice"
                        );
                        if let Some(t) = self.step_core(local) {
                            let unit = core.unit.index();
                            self.sub.route(t, unit, Event::CoreStep(idx));
                        }
                    }
                    // Hand the (now empty) word buffer back to the slab so a
                    // recycled token resumes with its capacity instead of
                    // reallocating per wake-up.
                    self.sub.bursts[token as usize].cores = cores;
                    self.sub.burst_free.push(token);
                    None
                }
                Event::SyncToken { token, .. } => {
                    self.with_mechanism(|mech, ctx| mech.deliver(ctx, token));
                    None
                }
                Event::RemoteSync { payload, .. } => {
                    self.with_mechanism(|mech, ctx| mech.deliver_remote(ctx, payload));
                    None
                }
                Event::RemoteSyncTagged { payload, tag, .. } => {
                    // A tagged copy delivers once: the first copy of a pair is
                    // handed to the mechanism, its twin is discarded here —
                    // duplicates are idempotent without the protocol knowing.
                    if self.sub.dedup.discard(tag) {
                        if let Some(engine) = self.sub.fault.as_mut() {
                            engine.stats.dup_discarded += 1;
                        }
                    } else {
                        self.with_mechanism(|mech, ctx| mech.deliver_remote(ctx, payload));
                    }
                    None
                }
                Event::FaultRetry {
                    from,
                    to,
                    bytes,
                    payload,
                    attempt,
                } => {
                    let now = self.sub.now;
                    self.sub
                        .send_remote_faulted(now, from, to, bytes, payload, attempt);
                    None
                }
                Event::DataReq {
                    idx,
                    home,
                    addr,
                    write,
                    rmw,
                } => {
                    self.serve_data_req(idx, home, addr, write, rmw);
                    None
                }
                Event::DataReply { idx, rmw } => self
                    .serve_data_reply(idx - self.client_lo, rmw)
                    .map(|t| (t, idx)),
            };
            let Some((t, idx)) = next_step else { return };
            // Inline dispatch: when the core's next step strictly precedes
            // every queued event (and falls inside the current window) it is
            // the unique next pop, so executing it without the queue
            // round-trip is behaviour-preserving. The fairness budget bounds
            // how long one pop may monopolize the loop.
            if inline_budget > 0
                && t < window_end
                && self.sub.queue.peek_time().is_none_or(|p| t < p)
            {
                inline_budget -= 1;
                // Consume the key the queued event would have carried, keeping
                // the per-unit key streams identical either way.
                let _ = self.sub.next_key();
                current = (t, Event::CoreStep(idx));
            } else {
                let unit = self.client_ids[idx - self.client_lo].unit.index();
                self.sub.route(t, unit, Event::CoreStep(idx));
                return;
            }
        }
    }

    /// Executes one step of the shard-local client `local`. Returns the absolute
    /// time at which the same core wants its next `CoreStep`, or `None` when the
    /// core finished, blocked on a synchronization request, is waiting for a
    /// remote data reply, or was already done.
    fn step_core(&mut self, local: usize) -> Option<Time> {
        if self.core_done[local] {
            return None;
        }
        // The watchdog's definition of forward progress: a client core
        // consumed one program action.
        self.progress_round += 1;
        self.blocked_on[local] = None;
        let core = self.client_ids[local];
        let now = self.sub.now;
        let action = self.programs[local].step(core, now);
        match action {
            Action::Compute { instrs } => {
                self.instructions += instrs;
                let latency = self.config.core_cycle().saturating_mul(instrs.max(1));
                Some(now + latency)
            }
            Action::Load { addr } => {
                self.loads += 1;
                self.data_access(local, core, addr, CoherentAccess::Read)
            }
            Action::Store { addr } => {
                self.stores += 1;
                self.data_access(local, core, addr, CoherentAccess::Write)
            }
            Action::Rmw { addr } => {
                self.loads += 1;
                self.stores += 1;
                self.data_access(local, core, addr, CoherentAccess::Rmw)
            }
            Action::Sync(req) => {
                self.sync_requests += 1;
                // The mechanism decides whether the request blocks: beyond the
                // ISA-level req_sync/req_async split, delayed-grant replies (condvar
                // signal coalescing ACK/NACKs) also stall the issuing core.
                let blocking = self
                    .mechanism
                    .as_ref()
                    .map(|m| m.blocks_core(&req))
                    .unwrap_or_else(|| req.is_blocking());
                let var = req.var();
                self.with_mechanism(|mech, ctx| mech.request(ctx, core, req));
                if !blocking {
                    // req_async commits as soon as the message is issued.
                    Some(now + self.config.core_cycle())
                } else {
                    // Blocking requests resume when the mechanism completes them.
                    self.blocked_on[local] = Some(var);
                    None
                }
            }
            Action::Done => {
                self.core_done[local] = true;
                self.done_count += 1;
                self.done_round += 1;
                self.last_finish = self.last_finish.max(now);
                None
            }
        }
    }

    /// A data access by client `local` to `addr`. Returns the absolute completion
    /// time, or `None` for a remote access whose request is now in flight to the
    /// home unit (the eventual [`Event::DataReply`] resumes the core).
    fn data_access(
        &mut self,
        local: usize,
        core: GlobalCoreId,
        addr: Addr,
        kind: CoherentAccess,
    ) -> Option<Time> {
        let class = self.sub.space.class_of(addr);
        let home = self.sub.space.home_unit(addr);
        let now = self.sub.now;

        // Coherent shared read-write data under the MESI mode goes through the
        // directory protocol (Figure 2 / Table 1 baselines only; always single-shard).
        if let Some(mesi) = self.mesi.as_mut().filter(|_| !class.cacheable()) {
            let out = mesi.access(now, core, addr, kind, home);
            // Account the protocol's traffic and energy analytically: control
            // messages are header-sized, every message moves through the crossbars
            // (and the links when crossing units).
            let intra_bytes = u64::from(out.intra_msgs) * 2 * HDR_BYTES;
            let inter_bytes = u64::from(out.inter_msgs) * (HDR_BYTES + LINE_BYTES) / 2;
            if intra_bytes > 0 {
                self.sub.traffic.add_intra(intra_bytes);
            }
            if inter_bytes > 0 {
                self.sub.traffic.add_inter(inter_bytes);
            }
            self.mesi_network_pj += intra_bytes as f64
                * 8.0
                * self.config.crossbar.pj_per_bit_hop
                * self.config.crossbar.hops as f64
                + inter_bytes as f64 * 8.0 * self.config.link.pj_per_bit;
            for _ in 0..out.mem_accesses {
                self.sub
                    .dram_at(home)
                    .access(now, addr, kind != CoherentAccess::Read);
            }
            // The requester's L1 energy for the probe/fill.
            self.l1s[local].access(addr, kind != CoherentAccess::Read);
            return Some(now + out.latency);
        }

        let write = kind != CoherentAccess::Read;
        let mut lat = Time::ZERO;
        if class.cacheable() {
            let outcome = self.l1s[local].access(addr, write);
            lat += self.l1s[local].hit_latency();
            if outcome.is_hit() {
                return Some(now + lat);
            }
        }

        if core.unit == home {
            // Miss or uncacheable, homed locally: fetch/update the line in this
            // unit's DRAM.
            lat += self.sub.xbar_at(core.unit).transfer(now + lat, HDR_BYTES);
            let dram_done = self.sub.dram_at(home).access(now + lat, addr, write);
            lat = dram_done.saturating_sub(now);
            lat += self.sub.xbar_at(home).transfer(now + lat, LINE_BYTES);
            self.sub.traffic.add_intra(HDR_BYTES + LINE_BYTES);
            // An atomic RMW under software-assisted coherence performs its update at
            // the memory side; charge one extra core cycle for the returned old
            // value check.
            if kind == CoherentAccess::Rmw {
                lat += self.config.core_cycle();
            }
            Some(now + lat)
        } else {
            // Remote home: the request header crosses the local crossbar and the
            // inter-unit link, and the rest of the access runs as events on the
            // home unit's shard (so the home-side crossbar and DRAM contention is
            // charged by the shard that owns them).
            lat += self.sub.xbar_at(core.unit).transfer(now + lat, HDR_BYTES);
            self.sub.traffic.add_inter(HDR_BYTES);
            lat += self
                .sub
                .links
                .transfer(now + lat, core.unit, home, HDR_BYTES);
            self.sub.route(
                now + lat,
                home.index(),
                Event::DataReq {
                    idx: self.client_lo + local,
                    home,
                    addr,
                    write,
                    rmw: kind == CoherentAccess::Rmw,
                },
            );
            None
        }
    }

    /// Home-unit half of a remote data access: crossbar, DRAM, crossbar, then the
    /// line travels back over the link to the requester's unit.
    fn serve_data_req(&mut self, idx: usize, home: UnitId, addr: Addr, write: bool, rmw: bool) {
        let t = self.sub.now;
        let mut lat = self.sub.xbar_at(home).transfer(t, HDR_BYTES);
        let dram_done = self.sub.dram_at(home).access(t + lat, addr, write);
        lat = dram_done.saturating_sub(t);
        lat += self.sub.xbar_at(home).transfer(t + lat, LINE_BYTES);
        self.sub.traffic.add_inter(LINE_BYTES);
        let cu = UnitId((idx / self.config.clients_per_unit()) as u8);
        lat += self.sub.links.transfer(t + lat, home, cu, LINE_BYTES);
        self.sub
            .route(t + lat, cu.index(), Event::DataReply { idx, rmw });
    }

    /// Requester-unit tail of a remote data access: the returning line crosses the
    /// local crossbar (plus the RMW check cycle) and the core resumes.
    fn serve_data_reply(&mut self, local: usize, rmw: bool) -> Option<Time> {
        let core = self.client_ids[local];
        let t = self.sub.now;
        let mut lat = self.sub.xbar_at(core.unit).transfer(t, LINE_BYTES);
        if rmw {
            lat += self.config.core_cycle();
        }
        Some(t + lat)
    }

    fn with_mechanism<R>(
        &mut self,
        f: impl FnOnce(&mut dyn SyncMechanism, &mut dyn SyncContext) -> R,
    ) -> R {
        let mut mech = self.mechanism.take().expect("mechanism in use");
        let result = f(mech.as_mut(), &mut self.sub);
        self.mechanism = Some(mech);
        result
    }

    /// Processes every queued event strictly before `window_end`.
    fn run_window(&mut self, window_end: Time) {
        // One window of a healthy simulation can never outgrow the whole-run
        // budget by much; a window that does is a livelock (events rescheduling
        // each other without advancing time). Break out and force an abort at
        // the gate instead of spinning forever inside the window.
        let backstop = self.config.max_events.saturating_mul(2).max(1_000_000);
        while let Some(t) = self.sub.queue.peek_time() {
            if t >= window_end {
                break;
            }
            let (at, event) = self.sub.queue.pop().expect("peeked event disappeared");
            self.dispatch(at, event, window_end);
            if self.events_round > backstop {
                self.runaway = true;
                break;
            }
        }
    }

    /// The shard's run loop: window rounds against the shared gate until the
    /// simulation finishes or aborts. Returns `Ok(aborted)` — or, when this
    /// shard panicked while processing a window, `Err(payload)` after keeping
    /// the gate protocol alive long enough for every peer to stop (a worker
    /// that just unwound would leave the others blocked on the barrier
    /// forever).
    fn run_rounds(
        &mut self,
        gate: &WindowGate,
        rx: &Receiver<Mail<Event>>,
    ) -> Result<Option<AbortCause>, Box<dyn Any + Send>> {
        // Exclusive upper bound of the previous window: no incoming message may
        // be timestamped before it (the lookahead invariant).
        let mut floor = Time::ZERO;
        let mut poison: Option<Box<dyn Any + Send>> = None;
        let mut violation: Option<String> = None;
        loop {
            // Phase 1: all sends of the previous window are visible after this.
            gate.arrive();
            while let Ok((at, key, event)) = rx.try_recv() {
                if at < floor && violation.is_none() {
                    // Record now, panic inside the catch region below: an unwind
                    // between the two gate phases would deadlock the peers.
                    violation = Some(format!(
                        "lookahead invariant violated: shard of units U{}..U{} received \
                         a cross-shard message timestamped {at}, before its window \
                         floor {floor}",
                        self.sub.unit_lo, self.sub.unit_hi
                    ));
                }
                self.sub.queue.push_keyed(at, key, event);
            }
            let mut report = RoundReport {
                local_min: if poison.is_some() {
                    None
                } else {
                    self.sub.queue.peek_time()
                },
                events_delta: std::mem::take(&mut self.events_round),
                done_delta: std::mem::take(&mut self.done_round),
                progress_delta: std::mem::take(&mut self.progress_round),
            };
            if poison.is_some() || self.runaway {
                // Overflow the global budget so the gate's next decision is an
                // abort every shard observes.
                report.events_delta = report
                    .events_delta
                    .saturating_add(self.config.max_events)
                    .saturating_add(1);
            }
            // Phase 2: reduce all reports into one decision.
            match gate.resolve(report) {
                RoundDecision::Finished => {
                    return match poison.take() {
                        Some(p) => Err(p),
                        None => Ok(None),
                    }
                }
                RoundDecision::Aborted { cause } => {
                    return match poison.take() {
                        Some(p) => Err(p),
                        None => Ok(Some(cause)),
                    }
                }
                RoundDecision::Continue { window_end } => {
                    if poison.is_none() {
                        let outcome = catch_unwind(AssertUnwindSafe(|| {
                            if let Some(v) = violation.take() {
                                panic!("{v}");
                            }
                            self.run_window(window_end);
                        }));
                        if let Err(p) = outcome {
                            poison = Some(p);
                        }
                    }
                    floor = window_end;
                }
            }
        }
    }
}

/// Decides how many shards a run uses and the window lookahead.
///
/// The lookahead is the minimum latency of the inter-unit link (controller
/// in/out plus wire latency, with zero serialization/contention): every
/// cross-shard interaction — mechanism messages and remote data requests —
/// crosses that link, so nothing sent during a window can arrive before the
/// window's end.
///
/// Falls back to one shard (returning the reason) when the configuration or
/// workload cannot honor the lookahead contract:
/// the centralized MESI directory, the zero-latency Ideal mechanism,
/// the Adaptive policy (its escalation set is fed by contention observed
/// across all units, which a sharded run would partition),
/// non-integrated overflow modes (their fallback servers bypass `send_remote`),
/// workloads sharing program state outside simulated synchronization
/// ([`Workload::shard_safe`]), and zero-latency links.
fn shard_plan(config: &NdpConfig, shard_safe: bool) -> (usize, Time, Option<&'static str>) {
    let controller = config
        .link
        .clock
        .cycles_to_ps(config.link.controller_cycles);
    let lookahead = Time::from_ps(
        config
            .link
            .transfer_latency
            .as_ps()
            .saturating_add(controller.as_ps().saturating_mul(2)),
    );
    let requested = config.sim_threads.min(config.units).max(1);
    if requested <= 1 {
        return (1, lookahead, None);
    }
    let reason = if config.coherence == CoherenceMode::MesiDirectory {
        Some("the MESI directory is centralized state shards cannot partition")
    } else if config.mechanism.kind == MechanismKind::Ideal {
        Some("the Ideal mechanism completes cross-unit requests with zero latency, below any lookahead")
    } else if config.mechanism.kind == MechanismKind::Adaptive {
        Some(
            "the adaptive policy escalates per-variable topology from globally observed contention",
        )
    } else if config.mechanism.overflow_mode != OverflowMode::Integrated {
        Some("non-integrated overflow modes serialize through a central fallback path")
    } else if !shard_safe {
        Some("the workload shares program state outside simulated synchronization")
    } else if lookahead == Time::ZERO {
        Some("the inter-unit link has zero minimum latency, leaving no lookahead window")
    } else {
        None
    };
    match reason {
        Some(r) => (1, lookahead, Some(r)),
        None => (requested, lookahead, None),
    }
}

/// The simulated NDP system.
pub struct NdpMachine {
    config: NdpConfig,
    clients: Vec<GlobalCoreId>,
    /// Pristine copy of the per-shard resolution tables (test hook).
    #[cfg_attr(not(test), allow(dead_code))]
    client_index: ClientIndex,
    map: ShardMap,
    lookahead: Time,
    fallback: Option<&'static str>,
    shards: Vec<Shard>,
    workload_name: String,
    completed: bool,
    /// Why the last run ended incomplete; `None` after a completed run.
    incomplete: Option<IncompleteReason>,
}

impl std::fmt::Debug for NdpMachine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "NdpMachine(workload={}, clients={}, shards={}, time={})",
            self.workload_name,
            self.clients.len(),
            self.shards.len(),
            self.now()
        )
    }
}

impl NdpMachine {
    /// Builds a machine for `config` running `workload`.
    ///
    /// # Panics
    ///
    /// Panics if `config` is invalid (see [`NdpConfig::validate`]; configurations
    /// from [`NdpConfig::builder`] are always valid) or if the workload returns a
    /// different number of programs than there are client cores.
    pub fn new(config: &NdpConfig, workload: &dyn Workload) -> Self {
        if let Err(e) = config.validate() {
            panic!("{e}");
        }
        let mut space = AddressSpace::new(config.units);
        let clients = config.client_cores();
        let mut programs = workload.build(&mut space, config, &clients);
        assert_eq!(
            programs.len(),
            clients.len(),
            "workload must provide one program per client core"
        );
        let client_index = ClientIndex::new(config.units, config.cores_per_unit, &clients);
        let (shard_count, lookahead, fallback) = shard_plan(config, workload.shard_safe());
        let map = ShardMap::new(config.units, shard_count);

        let dram_spec = DramSpec::for_tech(config.mem_tech);
        let per_unit = config.clients_per_unit();
        let mut programs = programs.drain(..);
        let mut shards = Vec::with_capacity(map.shards());
        for s in 0..map.shards() {
            let range = map.range(s);
            let owned = range.len();
            let client_lo = range.start * per_unit;
            let chunk: Vec<Box<dyn CoreProgram>> =
                programs.by_ref().take(owned * per_unit).collect();
            let client_ids = clients[client_lo..client_lo + chunk.len()].to_vec();
            let mesi = match config.coherence {
                CoherenceMode::SoftwareAssisted => None,
                // shard_plan forces a single shard for the MESI mode.
                CoherenceMode::MesiDirectory => Some(MesiDirectory::new(
                    config.units,
                    config.cores_per_unit,
                    config.mesi,
                )),
            };
            // Pre-size for the steady state so large geometries (thousands of
            // cores) never reallocate mid-run: every client can have a step or
            // resume event in flight plus a few mechanism tokens each. For the
            // calendar queue the buckets are sized so one core cycle maps to one
            // bucket and the reserve pre-allocates the far-future overflow heap.
            let mut queue = match config.scheduler {
                SchedulerKind::Calendar => {
                    EventQueue::calendar(CalendarParams::for_cycle(config.core_cycle()))
                }
                SchedulerKind::Heap => EventQueue::with_scheduler(SchedulerKind::Heap),
            };
            queue.reserve(chunk.len() * 8 + 64);
            shards.push(Shard {
                sub: Substrates {
                    queue,
                    crossbars: (0..owned).map(|_| Crossbar::new(config.crossbar)).collect(),
                    links: InterUnitLink::new(config.link, config.units),
                    drams: (0..owned).map(|_| DramModel::new(dram_spec)).collect(),
                    server_l1s: (0..owned).map(|_| L1Cache::new(config.l1)).collect(),
                    traffic: TrafficStats::new(),
                    space: space.clone(),
                    map: map.clone(),
                    senders: Vec::new(),
                    key_counters: vec![0; owned],
                    unit_lo: range.start,
                    unit_hi: range.end,
                    cur_unit: range.start,
                    now: Time::ZERO,
                    units: config.units,
                    cores_per_unit: config.cores_per_unit,
                    burst_resume: config.burst_resume,
                    bursts: Vec::new(),
                    burst_free: Vec::new(),
                    open_burst: None,
                    fault: config
                        .fault
                        .enabled
                        .then(|| FaultEngine::new(config.fault, config.seed, config.units)),
                    dedup: DedupSet::new(),
                },
                mechanism: Some(build_mechanism(
                    &config.mechanism,
                    config.units,
                    config.cores_per_unit,
                )),
                l1s: client_ids.iter().map(|_| L1Cache::new(config.l1)).collect(),
                core_done: vec![false; chunk.len()],
                blocked_on: vec![None; chunk.len()],
                programs: chunk,
                client_ids,
                client_lo,
                clients_total: clients.len(),
                client_index: client_index.clone(),
                mesi,
                mesi_network_pj: 0.0,
                config: *config,
                done_count: 0,
                done_round: 0,
                events_round: 0,
                progress_round: 0,
                events_delivered: 0,
                runaway: false,
                last_finish: Time::ZERO,
                instructions: 0,
                loads: 0,
                stores: 0,
                sync_requests: 0,
            });
        }
        // Seed the initial steps in global client order so every core's first
        // event carries its unit's first keys, identically under any sharding.
        for (i, core) in clients.iter().enumerate() {
            let shard = &mut shards[map.shard_of(core.unit.index())];
            shard.sub.cur_unit = core.unit.index();
            let key = shard.sub.next_key();
            shard
                .sub
                .queue
                .push_keyed(Time::ZERO, key, Event::CoreStep(i));
        }
        NdpMachine {
            config: *config,
            clients,
            client_index,
            map,
            lookahead,
            fallback,
            shards,
            workload_name: workload.name(),
            completed: false,
            incomplete: None,
        }
    }

    /// Resolves a resumed core to its dense client index (test hook; the run
    /// loop resolves through the owning shard's copy of the same table).
    #[cfg(test)]
    fn resolve_client(&self, core: GlobalCoreId) -> usize {
        resolve_client_in(&self.client_index, core, self.clients.len())
    }

    /// Runs the machine until every client core has finished (or the event safety
    /// limit is reached) and returns the report.
    pub fn run(&mut self) -> RunReport {
        let wall_start = std::time::Instant::now();
        let parties = self.shards.len();
        // A single shard needs no cross-shard safety margin, so a zero lookahead
        // (zero-latency link) only has to be widened enough for windows to make
        // progress; multi-shard runs keep the exact lookahead so the window
        // sequence is identical to a single-shard run of the same configuration.
        let stride = if parties == 1 {
            self.lookahead.max(Time::from_ps(1))
        } else {
            self.lookahead
        };
        let gate = WindowGate::new(
            parties,
            stride,
            self.config.max_events,
            self.config.watchdog_limit(),
        );
        let (txs, mut rxs) = mailboxes::<Event>(parties);
        for (shard, row) in self.shards.iter_mut().zip(txs) {
            shard.sub.senders = row;
        }
        let mut abort: Option<AbortCause> = None;
        if parties == 1 {
            let rx = rxs.pop().expect("one mailbox per shard");
            match self.shards[0].run_rounds(&gate, &rx) {
                Ok(a) => abort = a,
                Err(p) => resume_unwind(p),
            }
        } else {
            let gate = &gate;
            let outcomes: Vec<Result<Option<AbortCause>, Box<dyn Any + Send>>> =
                std::thread::scope(|scope| {
                    let handles: Vec<_> = self
                        .shards
                        .iter_mut()
                        .zip(rxs.drain(..))
                        .map(|(shard, rx)| scope.spawn(move || shard.run_rounds(gate, &rx)))
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| {
                            h.join()
                                .expect("shard worker panicked outside its catch region")
                        })
                        .collect()
                });
            for outcome in outcomes {
                match outcome {
                    Ok(a) => abort = abort.or(a),
                    Err(p) => resume_unwind(p),
                }
            }
        }
        // Disconnect the mailbox fabric; a fresh one is built per run.
        for shard in &mut self.shards {
            shard.sub.senders = Vec::new();
        }
        let done: usize = self.shards.iter().map(|s| s.done_count).sum();
        self.completed = abort.is_none() && done == self.clients.len();
        self.incomplete = if self.completed {
            None
        } else {
            Some(match abort {
                Some(AbortCause::Budget) => IncompleteReason::EventBudget,
                // The gate saw events circulating without any core consuming a
                // program action: a livelock.
                Some(AbortCause::Stall) => {
                    IncompleteReason::Stalled(self.stall_report(StallKind::NoProgress))
                }
                // Every queue drained (the run "finished") with unfinished
                // cores still parked: a deadlock.
                None => IncompleteReason::Stalled(self.stall_report(StallKind::EmptyFrontier)),
            })
        };
        self.build_report(wall_start.elapsed())
    }

    /// Diagnoses a stalled run: walks the shards in global order collecting
    /// the unfinished cores and the sync-variable addresses their pending
    /// blocking requests name.
    fn stall_report(&self, kind: StallKind) -> StallReport {
        let mut blocked = Vec::new();
        let mut blocked_total = 0usize;
        let mut unfinished = 0usize;
        for shard in &self.shards {
            for (local, core) in shard.client_ids.iter().enumerate() {
                if shard.core_done[local] {
                    continue;
                }
                unfinished += 1;
                if let Some(addr) = shard.blocked_on[local] {
                    blocked_total += 1;
                    if blocked.len() < StallReport::BLOCKED_CAP {
                        blocked.push(BlockedCore {
                            unit: core.unit.index(),
                            core: core.core.index(),
                            addr: addr.0,
                        });
                    }
                }
            }
        }
        StallReport {
            kind,
            blocked,
            blocked_total,
            unfinished,
        }
    }

    /// The configuration this machine runs.
    pub fn config(&self) -> &NdpConfig {
        &self.config
    }

    /// Current simulation time (the furthest shard's clock).
    pub fn now(&self) -> Time {
        self.shards
            .iter()
            .map(|s| s.sub.now)
            .max()
            .unwrap_or(Time::ZERO)
    }

    /// Number of shards this machine executes with (`1` = sequential).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Why a `sim_threads > 1` request fell back to sequential execution, if it
    /// did. `None` when sharding is active or was never requested.
    pub fn sequential_fallback(&self) -> Option<&'static str> {
        self.fallback
    }

    /// The conservative-PDES lookahead derived from the inter-unit link.
    pub fn lookahead(&self) -> Time {
        self.lookahead
    }

    fn build_report(&mut self, wall: std::time::Duration) -> RunReport {
        let last_finish = self
            .shards
            .iter()
            .map(|s| s.last_finish)
            .max()
            .unwrap_or(Time::ZERO);
        let end = if last_finish > Time::ZERO {
            last_finish
        } else {
            self.now()
        };
        // All floating-point merges below run in a fixed global order (client
        // L1s, then server L1s, then per-unit devices, shard by shard — which
        // is exactly global unit order, since shards own contiguous ranges), so
        // the sums associate identically whatever the shard count.
        let mut energy = EnergyTally::new();
        let mut l1_hits = 0u64;
        let mut l1_accesses = 0u64;
        for l1 in self
            .shards
            .iter()
            .flat_map(|s| s.l1s.iter())
            .chain(self.shards.iter().flat_map(|s| s.sub.server_l1s.iter()))
        {
            energy.add_cache(l1.energy_pj());
            l1_hits += l1.stats().hits.get();
            l1_accesses += l1.stats().accesses();
        }
        let mut dram_accesses = 0u64;
        for dram in self.shards.iter().flat_map(|s| s.sub.drams.iter()) {
            energy.add_memory(dram.energy_pj());
            dram_accesses += dram.stats().total_accesses();
        }
        for xbar in self.shards.iter().flat_map(|s| s.sub.crossbars.iter()) {
            energy.add_network(xbar.energy_pj());
        }
        // Link energy is a pure function of the byte count, so summing the
        // per-shard counters first and converting once is exact.
        let link_bytes: u64 = self
            .shards
            .iter()
            .map(|s| s.sub.links.stats().bytes.get())
            .sum();
        energy.add_network(self.config.link.energy_pj_of_bytes(link_bytes));
        energy.add_network(self.shards.iter().map(|s| s.mesi_network_pj).sum());

        let total_ops: u64 = self
            .shards
            .iter()
            .flat_map(|s| s.programs.iter())
            .map(|p| p.ops_completed())
            .sum();
        // Open-loop workloads expose per-core latency histograms; merge them into
        // one machine-wide tail-latency summary. Closed-loop programs expose none
        // and the report keeps `latency: None`.
        let mut latency_hist = syncron_sim::stats::LogHistogram::new();
        for program in self.shards.iter().flat_map(|s| s.programs.iter()) {
            if let Some(hist) = program.latency_histogram() {
                latency_hist.merge(hist);
            }
        }
        let latency = crate::report::LatencyReport::from_histogram(&latency_hist);

        let mut traffic = TrafficStats::new();
        let mut sync = SyncMechanismStats::default();
        for shard in &self.shards {
            traffic.merge(&shard.sub.traffic);
            if let Some(m) = shard.mechanism.as_ref() {
                let s = m.stats(end);
                sync.requests += s.requests;
                sync.completions += s.completions;
                sync.local_messages += s.local_messages;
                sync.global_messages += s.global_messages;
                sync.overflow_messages += s.overflow_messages;
                sync.mem_accesses += s.mem_accesses;
                sync.overflowed_requests += s.overflowed_requests;
                sync.acquire_requests += s.acquire_requests;
                sync.delivered_signals += s.delivered_signals;
                sync.coalesced_signals += s.coalesced_signals;
                sync.consumed_signals += s.consumed_signals;
                sync.signal_nacks += s.signal_nacks;
                sync.max_pending_signals = sync.max_pending_signals.max(s.max_pending_signals);
            }
        }
        // ST occupancy is recomputed from per-unit values in global unit order
        // (each asked of the shard owning the unit), so the f64 reduction
        // associates exactly as in a single-shard run. Mechanisms without
        // per-unit tables (server-based schemes, ideal) answer `None` for every
        // unit; their whole-run stats carry the (uniform) values instead.
        let mut any_unit = false;
        let mut occ_sum = 0.0f64;
        let mut occ_max = 0.0f64;
        for unit in 0..self.config.units {
            let shard = &self.shards[self.map.shard_of(unit)];
            if let Some((avg, max)) = shard
                .mechanism
                .as_ref()
                .and_then(|m| m.st_unit_occupancy(end, unit))
            {
                any_unit = true;
                occ_sum += avg;
                occ_max = occ_max.max(max);
            }
        }
        if any_unit {
            sync.st_avg_occupancy = occ_sum / self.config.units as f64;
            sync.st_max_occupancy = occ_max;
        } else if let Some(m) = self.shards[0].mechanism.as_ref() {
            let s = m.stats(end);
            sync.st_avg_occupancy = s.st_avg_occupancy;
            sync.st_max_occupancy = s.st_max_occupancy;
        }
        let mechanism_name = self.shards[0]
            .mechanism
            .as_ref()
            .map(|m| m.name().to_string())
            .unwrap_or_default();

        // `Some` iff fault injection is enabled — an enabled run with zero
        // faults reports all-zero counters, which report divergence treats as
        // equal to `None` (the knob-aliveness contract). Shards merge in
        // global order; the counters are u64 sums, so the total is exact.
        let faults = self.config.fault.enabled.then(|| {
            let mut stats = FaultStats::default();
            for shard in &self.shards {
                if let Some(engine) = shard.sub.fault.as_ref() {
                    stats.merge(&engine.stats);
                }
            }
            stats
        });

        RunReport {
            workload: self.workload_name.clone(),
            mechanism: mechanism_name,
            sim_time: end,
            completed: self.completed,
            total_ops,
            instructions: self.shards.iter().map(|s| s.instructions).sum(),
            loads: self.shards.iter().map(|s| s.loads).sum(),
            stores: self.shards.iter().map(|s| s.stores).sum(),
            sync_requests: self.shards.iter().map(|s| s.sync_requests).sum(),
            energy,
            traffic,
            sync,
            dram_accesses,
            l1_hit_ratio: if l1_accesses == 0 {
                0.0
            } else {
                l1_hits as f64 / l1_accesses as f64
            },
            latency,
            incomplete: self.incomplete.clone(),
            faults,
            perf: SimPerf {
                wall_seconds: wall.as_secs_f64(),
                events_delivered: self.shards.iter().map(|s| s.events_delivered).sum(),
                shards: self.shards.len(),
            },
        }
    }
}

/// Convenience wrapper: builds a machine for `config`, runs `workload` to completion
/// and returns the report.
pub fn run_workload(config: &NdpConfig, workload: &dyn Workload) -> RunReport {
    NdpMachine::new(config, workload).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::DataClass;
    use syncron_core::request::{BarrierScope, SyncRequest};
    use syncron_core::MechanismKind;
    use syncron_sim::{CoreId, UnitId};

    /// Each core increments a per-core counter `iterations` times, protected by one
    /// global lock, mixing compute, memory and synchronization actions.
    struct CounterWorkload {
        iterations: u32,
    }

    struct CounterProgram {
        lock: Addr,
        slot: Addr,
        remaining: u32,
        phase: u8,
        ops: u64,
    }

    impl CoreProgram for CounterProgram {
        fn step(&mut self, _core: GlobalCoreId, _now: Time) -> Action {
            if self.remaining == 0 {
                return Action::Done;
            }
            let action = match self.phase {
                0 => Action::Compute { instrs: 50 },
                1 => Action::Sync(SyncRequest::LockAcquire { var: self.lock }),
                2 => Action::Load { addr: self.slot },
                3 => Action::Store { addr: self.slot },
                4 => Action::Sync(SyncRequest::LockRelease { var: self.lock }),
                _ => unreachable!(),
            };
            if self.phase == 4 {
                self.phase = 0;
                self.remaining -= 1;
                self.ops += 1;
            } else {
                self.phase += 1;
            }
            action
        }

        fn ops_completed(&self) -> u64 {
            self.ops
        }
    }

    impl Workload for CounterWorkload {
        fn name(&self) -> String {
            "counter".into()
        }

        fn build(
            &self,
            space: &mut AddressSpace,
            _config: &NdpConfig,
            clients: &[GlobalCoreId],
        ) -> Vec<Box<dyn CoreProgram>> {
            let lock = space.allocate_shared_rw(64, UnitId(0));
            let slots = space.allocate_shared_rw(64 * clients.len() as u64, UnitId(0));
            clients
                .iter()
                .enumerate()
                .map(|(i, _)| {
                    Box::new(CounterProgram {
                        lock,
                        slot: slots.offset(64 * i as u64),
                        remaining: self.iterations,
                        phase: 0,
                        ops: 0,
                    }) as Box<dyn CoreProgram>
                })
                .collect()
        }

        fn shard_safe(&self) -> bool {
            // Programs share nothing outside the simulated lock.
            true
        }
    }

    /// All cores synchronize on a global barrier a few times.
    struct BarrierWorkload {
        rounds: u32,
    }

    struct BarrierProgram {
        bar: Addr,
        participants: u32,
        remaining: u32,
        compute_next: bool,
    }

    impl CoreProgram for BarrierProgram {
        fn step(&mut self, _core: GlobalCoreId, _now: Time) -> Action {
            if self.remaining == 0 {
                return Action::Done;
            }
            if self.compute_next {
                self.compute_next = false;
                Action::Compute { instrs: 100 }
            } else {
                self.compute_next = true;
                self.remaining -= 1;
                Action::Sync(SyncRequest::BarrierWait {
                    var: self.bar,
                    participants: self.participants,
                    scope: BarrierScope::AcrossUnits,
                })
            }
        }

        fn ops_completed(&self) -> u64 {
            1
        }
    }

    impl Workload for BarrierWorkload {
        fn name(&self) -> String {
            "barrier".into()
        }

        fn build(
            &self,
            space: &mut AddressSpace,
            _config: &NdpConfig,
            clients: &[GlobalCoreId],
        ) -> Vec<Box<dyn CoreProgram>> {
            let bar = space.allocate_shared_rw(64, UnitId(0));
            clients
                .iter()
                .map(|_| {
                    Box::new(BarrierProgram {
                        bar,
                        participants: clients.len() as u32,
                        remaining: self.rounds,
                        compute_next: true,
                    }) as Box<dyn CoreProgram>
                })
                .collect()
        }

        fn shard_safe(&self) -> bool {
            true
        }
    }

    fn small_config(kind: MechanismKind) -> NdpConfig {
        NdpConfig::builder()
            .units(2)
            .cores_per_unit(4)
            .mechanism(kind)
            .build()
            .unwrap()
    }

    #[test]
    fn counter_workload_completes_under_every_mechanism() {
        for kind in MechanismKind::ALL {
            let report = run_workload(&small_config(kind), &CounterWorkload { iterations: 5 });
            assert!(report.completed, "{kind:?} did not complete");
            assert_eq!(report.total_ops, 5 * 6, "{kind:?}");
            assert!(report.sim_time > Time::ZERO);
            assert!(report.sync_requests > 0);
        }
    }

    #[test]
    fn ideal_is_fastest_and_uses_least_energy() {
        let workload = CounterWorkload { iterations: 10 };
        let ideal = run_workload(&small_config(MechanismKind::Ideal), &workload);
        for kind in [
            MechanismKind::Central,
            MechanismKind::Hier,
            MechanismKind::SynCron,
        ] {
            let other = run_workload(&small_config(kind), &workload);
            assert!(
                other.sim_time >= ideal.sim_time,
                "{kind:?} ({}) beat Ideal ({})",
                other.sim_time,
                ideal.sim_time
            );
            assert!(other.energy.total_pj() >= ideal.energy.total_pj());
        }
    }

    #[test]
    fn syncron_beats_central_under_contention() {
        let workload = CounterWorkload { iterations: 20 };
        let central = run_workload(&small_config(MechanismKind::Central), &workload);
        let syncron = run_workload(&small_config(MechanismKind::SynCron), &workload);
        assert!(
            syncron.sim_time < central.sim_time,
            "SynCron {} should beat Central {}",
            syncron.sim_time,
            central.sim_time
        );
    }

    #[test]
    fn barrier_workload_completes() {
        for kind in [
            MechanismKind::SynCron,
            MechanismKind::Hier,
            MechanismKind::Ideal,
        ] {
            let report = run_workload(&small_config(kind), &BarrierWorkload { rounds: 4 });
            assert!(report.completed, "{kind:?}");
        }
    }

    #[test]
    fn report_accounts_energy_and_traffic() {
        let report = run_workload(
            &small_config(MechanismKind::SynCron),
            &CounterWorkload { iterations: 5 },
        );
        assert!(report.energy.total_pj() > 0.0);
        assert!(report.traffic.total_bytes() > 0);
        assert!(report.dram_accesses > 0);
        assert!(report.instructions > 0);
        assert!(report.loads > 0 && report.stores > 0);
    }

    #[test]
    fn deterministic_across_runs() {
        let cfg = small_config(MechanismKind::SynCron);
        let a = run_workload(&cfg, &CounterWorkload { iterations: 8 });
        let b = run_workload(&cfg, &CounterWorkload { iterations: 8 });
        assert_eq!(a.sim_time, b.sim_time);
        assert_eq!(a.traffic, b.traffic);
    }

    #[test]
    fn schedulers_and_inline_dispatch_agree_bit_for_bit() {
        // The determinism contract of the rework: the calendar queue (with and
        // without inline dispatch) and the reference heap produce the same report,
        // field for field, for every mechanism.
        for kind in MechanismKind::ALL {
            let base = small_config(kind);
            let reference = {
                let mut cfg = base;
                cfg.scheduler = SchedulerKind::Heap;
                cfg.inline_step_budget = 0;
                run_workload(&cfg, &CounterWorkload { iterations: 8 })
            };
            for (scheduler, budget) in [
                (SchedulerKind::Heap, 64),
                (SchedulerKind::Calendar, 0),
                (SchedulerKind::Calendar, 64),
                (SchedulerKind::Calendar, 1),
            ] {
                let mut cfg = base;
                cfg.scheduler = scheduler;
                cfg.inline_step_budget = budget;
                let report = run_workload(&cfg, &CounterWorkload { iterations: 8 });
                if let Some(field) = reference.divergence_from(&report) {
                    panic!("{kind:?} under {scheduler:?}/budget={budget} diverged: {field}");
                }
            }
        }
    }

    #[test]
    fn sharded_runs_match_sequential_bit_for_bit() {
        // The tentpole contract: a sharded run reproduces the sequential report
        // bit for bit (everything except wall-clock perf), for every mechanism
        // that shards, every shard count, and both workload shapes.
        for kind in [
            MechanismKind::Central,
            MechanismKind::Hier,
            MechanismKind::SynCron,
            MechanismKind::SynCronFlat,
        ] {
            let base = NdpConfig::builder()
                .units(4)
                .cores_per_unit(4)
                .mechanism(kind)
                .build()
                .unwrap();
            let counter = CounterWorkload { iterations: 6 };
            let barrier = BarrierWorkload { rounds: 3 };
            let ref_counter = run_workload(&base, &counter);
            let ref_barrier = run_workload(&base, &barrier);
            for threads in [2usize, 3, 4, 8] {
                let mut cfg = base;
                cfg.sim_threads = threads;
                let mut machine = NdpMachine::new(&cfg, &counter);
                assert_eq!(machine.shard_count(), threads.min(4), "{kind:?}");
                assert_eq!(machine.sequential_fallback(), None, "{kind:?}");
                let report = machine.run();
                if let Some(field) = ref_counter.divergence_from(&report) {
                    panic!("{kind:?} counter with {threads} shards diverged: {field}");
                }
                let report = run_workload(&cfg, &barrier);
                if let Some(field) = ref_barrier.divergence_from(&report) {
                    panic!("{kind:?} barrier with {threads} shards diverged: {field}");
                }
            }
        }
    }

    #[test]
    fn sharded_deterministic_across_runs() {
        let mut cfg = NdpConfig::builder()
            .units(4)
            .cores_per_unit(4)
            .build()
            .unwrap();
        cfg.sim_threads = 4;
        let a = run_workload(&cfg, &CounterWorkload { iterations: 8 });
        let b = run_workload(&cfg, &CounterWorkload { iterations: 8 });
        if let Some(field) = a.divergence_from(&b) {
            panic!("two identical sharded runs diverged: {field}");
        }
    }

    #[test]
    fn shard_fallbacks_are_sequential() {
        let counter = CounterWorkload { iterations: 2 };

        // The Ideal mechanism has no lookahead.
        let cfg = NdpConfig::builder()
            .units(4)
            .cores_per_unit(4)
            .mechanism(MechanismKind::Ideal)
            .sim_threads(4)
            .build()
            .unwrap();
        let m = NdpMachine::new(&cfg, &counter);
        assert_eq!(m.shard_count(), 1);
        assert!(m.sequential_fallback().unwrap().contains("Ideal"));

        // Workloads keep the shard-unsafe default unless they opt in.
        struct UnsafeCounter(CounterWorkload);
        impl Workload for UnsafeCounter {
            fn name(&self) -> String {
                self.0.name()
            }
            fn build(
                &self,
                space: &mut AddressSpace,
                config: &NdpConfig,
                clients: &[GlobalCoreId],
            ) -> Vec<Box<dyn CoreProgram>> {
                self.0.build(space, config, clients)
            }
            // shard_safe stays at the false default.
        }
        let cfg = NdpConfig::builder()
            .units(4)
            .cores_per_unit(4)
            .sim_threads(4)
            .build()
            .unwrap();
        let m = NdpMachine::new(&cfg, &UnsafeCounter(CounterWorkload { iterations: 2 }));
        assert_eq!(m.shard_count(), 1);
        assert!(m
            .sequential_fallback()
            .unwrap()
            .contains("outside simulated synchronization"));

        // The MESI directory is centralized.
        let cfg = NdpConfig::builder()
            .units(4)
            .cores_per_unit(4)
            .coherence(CoherenceMode::MesiDirectory)
            .mechanism(MechanismKind::Ideal)
            .reserve_server_core(false)
            .sim_threads(4)
            .build()
            .unwrap();
        let m = NdpMachine::new(&cfg, &counter);
        assert_eq!(m.shard_count(), 1);
        assert!(m.sequential_fallback().unwrap().contains("MESI"));

        // A zero-latency link leaves no lookahead.
        let mut cfg = NdpConfig::builder()
            .units(4)
            .cores_per_unit(4)
            .sim_threads(4)
            .build()
            .unwrap();
        cfg.link.transfer_latency = Time::ZERO;
        cfg.link.controller_cycles = 0;
        let m = NdpMachine::new(&cfg, &counter);
        assert_eq!(m.shard_count(), 1);
        assert_eq!(m.lookahead(), Time::ZERO);
        assert!(m.sequential_fallback().unwrap().contains("lookahead"));
        // The zero-lookahead sequential run still completes (windows are
        // widened to the minimum stride).
        let report = run_workload(&cfg, &counter);
        assert!(report.completed);

        // One unit cannot shard; that is not a "fallback", just the geometry.
        let cfg = NdpConfig::builder()
            .units(1)
            .cores_per_unit(4)
            .sim_threads(8)
            .build()
            .unwrap();
        let m = NdpMachine::new(&cfg, &counter);
        assert_eq!(m.shard_count(), 1);
        assert_eq!(m.sequential_fallback(), None);
    }

    #[test]
    fn tokens_for_foreign_units_are_hard_errors() {
        let cfg = NdpConfig::builder()
            .units(2)
            .cores_per_unit(4)
            .sim_threads(2)
            .build()
            .unwrap();
        let mut machine = NdpMachine::new(&cfg, &CounterWorkload { iterations: 1 });
        assert_eq!(machine.shard_count(), 2);
        let shard = &mut machine.shards[0];
        // A token for a unit owned by the peer shard names the unit and range.
        let err = catch_unwind(AssertUnwindSafe(|| {
            shard.sub.schedule(Time::from_ns(1), UnitId(1), 0);
        }))
        .unwrap_err();
        let msg = *err.downcast::<String>().unwrap();
        assert!(msg.contains("U1"), "panic must name the unit: {msg}");
        assert!(
            msg.contains("U0..U1"),
            "panic must name the owned range: {msg}"
        );
        // A unit outside the geometry is equally fatal.
        let err = catch_unwind(AssertUnwindSafe(|| {
            shard.sub.schedule(Time::from_ns(1), UnitId(7), 0);
        }))
        .unwrap_err();
        let msg = *err.downcast::<String>().unwrap();
        assert!(msg.contains("U7"), "panic must name the unit: {msg}");
        // And a message routed to a unit no shard owns panics in the shard map.
        let err = catch_unwind(AssertUnwindSafe(|| {
            machine.map.shard_of(9);
        }))
        .unwrap_err();
        let msg = *err.downcast::<String>().unwrap();
        assert!(msg.contains("U9"), "panic must name the unit: {msg}");
    }

    #[test]
    fn duplicate_completion_is_a_hard_error() {
        let mut machine = NdpMachine::new(
            &small_config(MechanismKind::SynCron),
            &CounterWorkload { iterations: 1 },
        );
        let shard = &mut machine.shards[0];
        shard.core_done[0] = true;
        shard.done_count = 1;
        let core = shard.client_ids[0];
        let err = catch_unwind(AssertUnwindSafe(|| {
            shard.dispatch(Time::ZERO, Event::CoreResume(core), Time::from_ns(1_000));
        }))
        .unwrap_err();
        let msg = *err.downcast::<String>().unwrap();
        assert!(
            msg.contains("already finished") && msg.contains("twice"),
            "panic must explain the double completion: {msg}"
        );
    }

    #[test]
    fn report_carries_simulator_perf() {
        let report = run_workload(
            &small_config(MechanismKind::SynCron),
            &CounterWorkload { iterations: 5 },
        );
        assert!(report.perf.events_delivered > 0);
        // Wall time resolution is host-dependent, but the counter must at least
        // cover one event per delivered action.
        assert!(report.perf.events_delivered >= report.instructions.min(1));
    }

    #[test]
    fn resume_for_unknown_core_is_a_hard_error() {
        // A CoreResume for a core outside the geometry (or for a reserved server
        // core) is a mechanism bug; it used to be silently ignored.
        let machine = NdpMachine::new(
            &small_config(MechanismKind::SynCron),
            &CounterWorkload { iterations: 1 },
        );
        // In-geometry client cores resolve to their dense index.
        assert_eq!(
            machine.resolve_client(GlobalCoreId::new(UnitId(0), CoreId(0))),
            0
        );
        assert_eq!(
            machine.resolve_client(GlobalCoreId::new(UnitId(1), CoreId(0))),
            machine.config.clients_per_unit()
        );
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            machine.resolve_client(GlobalCoreId::new(UnitId(7), CoreId(3)))
        }));
        let message = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(
            message.contains("U7.c3"),
            "panic must name the core: {message}"
        );
        assert!(message.contains("not a client"));
    }

    #[test]
    fn server_cores_and_aliasing_ids_are_not_clients() {
        // cores_per_unit = 4 with a reserved server core: local core 3 serves.
        let machine = NdpMachine::new(
            &small_config(MechanismKind::SynCron),
            &CounterWorkload { iterations: 1 },
        );
        let index = &machine.client_index;
        assert_eq!(index.get(GlobalCoreId::new(UnitId(0), CoreId(3))), None);
        // A local core ID at or past cores_per_unit must not alias into the next
        // unit's flat range (U0.c4 would otherwise resolve to U1.c0's slot).
        assert_eq!(index.get(GlobalCoreId::new(UnitId(0), CoreId(4))), None);
        assert_eq!(index.get(GlobalCoreId::new(UnitId(2), CoreId(0))), None);
        assert_eq!(
            index.get(GlobalCoreId::new(UnitId(1), CoreId(0))),
            Some(machine.config.clients_per_unit())
        );
    }

    #[test]
    fn remote_data_costs_more_than_local() {
        // A single core reading shared data homed locally vs remotely.
        struct OneReader {
            home: UnitId,
        }
        struct ReaderProgram {
            addr: Addr,
            remaining: u32,
        }
        impl CoreProgram for ReaderProgram {
            fn step(&mut self, _c: GlobalCoreId, _n: Time) -> Action {
                if self.remaining == 0 {
                    return Action::Done;
                }
                self.remaining -= 1;
                Action::Load { addr: self.addr }
            }
        }
        impl Workload for OneReader {
            fn name(&self) -> String {
                "one-reader".into()
            }
            fn build(
                &self,
                space: &mut AddressSpace,
                _c: &NdpConfig,
                clients: &[GlobalCoreId],
            ) -> Vec<Box<dyn CoreProgram>> {
                let addr = space.allocate(4096, DataClass::SharedReadWrite, self.home);
                clients
                    .iter()
                    .enumerate()
                    .map(|(i, _)| {
                        Box::new(ReaderProgram {
                            addr: addr.offset(64 * i as u64),
                            remaining: if i == 0 { 100 } else { 0 },
                        }) as Box<dyn CoreProgram>
                    })
                    .collect()
            }
        }
        let cfg = small_config(MechanismKind::Ideal);
        let local = run_workload(&cfg, &OneReader { home: UnitId(0) });
        let remote = run_workload(&cfg, &OneReader { home: UnitId(1) });
        assert!(remote.sim_time > local.sim_time);
        assert!(remote.traffic.inter_unit_bytes > local.traffic.inter_unit_bytes);
    }

    #[test]
    fn deadlocked_workload_reports_incomplete() {
        // A core that acquires a lock twice without releasing deadlocks itself.
        struct Deadlock;
        struct DeadlockProgram {
            lock: Addr,
            acquired: u32,
        }
        impl CoreProgram for DeadlockProgram {
            fn step(&mut self, _c: GlobalCoreId, _n: Time) -> Action {
                self.acquired += 1;
                Action::Sync(SyncRequest::LockAcquire { var: self.lock })
            }
        }
        impl Workload for Deadlock {
            fn name(&self) -> String {
                "deadlock".into()
            }
            fn build(
                &self,
                space: &mut AddressSpace,
                _c: &NdpConfig,
                clients: &[GlobalCoreId],
            ) -> Vec<Box<dyn CoreProgram>> {
                let lock = space.allocate_shared_rw(64, UnitId(0));
                clients
                    .iter()
                    .map(|_| {
                        Box::new(DeadlockProgram { lock, acquired: 0 }) as Box<dyn CoreProgram>
                    })
                    .collect()
            }
        }
        let config = small_config(MechanismKind::SynCron);
        let report = run_workload(&config, &Deadlock);
        assert!(!report.completed);
        // The stall is diagnosed within ~1% of the event budget, with a
        // structured report naming the blocked cores and the lock address.
        assert!(
            report.perf.events_delivered <= config.max_events / 100,
            "stall diagnosis burned {} of {} events",
            report.perf.events_delivered,
            config.max_events
        );
        let Some(IncompleteReason::Stalled(stall)) = report.incomplete.as_ref() else {
            panic!("expected a stall diagnosis, got {:?}", report.incomplete);
        };
        assert_eq!(stall.unfinished, config.total_clients());
        assert!(stall.blocked_total > 0, "no core was seen blocked");
        assert!(!stall.blocked.is_empty());
        // Every blocked core waits on the one self-deadlocked lock, which the
        // workload allocated on unit 0's shared heap.
        let lock = stall.blocked[0].addr;
        assert!(stall.blocked.iter().all(|b| b.addr == lock));
        assert!(
            stall.blocked.iter().any(|b| b.unit == 0 && b.core == 0),
            "core U0.c0 must be listed"
        );
    }

    #[test]
    fn total_message_loss_is_diagnosed_as_a_livelock() {
        // drop_prob = 1.0 loses every mechanism message: the senders
        // retransmit forever, events keep circulating, and no core ever
        // resumes. The watchdog must call this a no-progress stall — and do it
        // within ~1% of the event budget instead of burning all of it.
        let mut cfg = small_config(MechanismKind::SynCron);
        cfg.fault.enabled = true;
        cfg.fault.drop_prob = 1.0;
        let report = run_workload(&cfg, &CounterWorkload { iterations: 3 });
        assert!(!report.completed);
        assert!(
            report.perf.events_delivered <= cfg.max_events / 50,
            "livelock diagnosis burned {} events",
            report.perf.events_delivered
        );
        let Some(IncompleteReason::Stalled(stall)) = report.incomplete.as_ref() else {
            panic!("expected a stall diagnosis, got {:?}", report.incomplete);
        };
        assert_eq!(stall.kind, StallKind::NoProgress);
        let faults = report.faults.expect("fault stats present when enabled");
        assert!(faults.dropped > 0);
        assert!(faults.retransmitted > 0);
    }

    #[test]
    fn zero_probability_faults_are_bit_invisible() {
        // The knob-aliveness contract at machine level: enabling fault
        // injection with every probability zero must reproduce the faults-off
        // run bit for bit, sequentially and sharded.
        for threads in [1usize, 4] {
            let mut base = NdpConfig::builder()
                .units(4)
                .cores_per_unit(4)
                .sim_threads(threads)
                .build()
                .unwrap();
            let reference = run_workload(&base, &CounterWorkload { iterations: 6 });
            assert!(reference.faults.is_none());
            base.fault.enabled = true;
            let report = run_workload(&base, &CounterWorkload { iterations: 6 });
            assert_eq!(report.faults, Some(FaultStats::default()));
            if let Some(field) = reference.divergence_from(&report) {
                panic!("zero-probability faults diverged ({threads} threads): {field}");
            }
        }
    }

    #[test]
    fn single_drop_recovers_through_retransmission() {
        // Deterministically drop the first original message on every link; the
        // timeout/retry path must still drive the run to completion, with the
        // same simulated result under sequential and sharded execution.
        let mut cfg = NdpConfig::builder()
            .units(4)
            .cores_per_unit(4)
            .build()
            .unwrap();
        cfg.fault.enabled = true;
        cfg.fault.drop_nth = 1;
        let reference = run_workload(&cfg, &CounterWorkload { iterations: 4 });
        assert!(reference.completed, "run did not recover from drops");
        let faults = reference.faults.expect("fault stats present");
        assert!(faults.dropped > 0, "no message was dropped");
        assert_eq!(faults.retransmitted, faults.dropped);
        cfg.sim_threads = 4;
        let sharded = run_workload(&cfg, &CounterWorkload { iterations: 4 });
        if let Some(field) = reference.divergence_from(&sharded) {
            panic!("faulted run diverged under sharding: {field}");
        }
    }

    #[test]
    fn mesi_mode_runs_rmw_workload() {
        struct SpinWorkload;
        struct SpinProgram {
            lock: Addr,
            remaining: u32,
            holding: bool,
        }
        impl CoreProgram for SpinProgram {
            fn step(&mut self, _c: GlobalCoreId, _n: Time) -> Action {
                if self.remaining == 0 {
                    return Action::Done;
                }
                if self.holding {
                    self.holding = false;
                    self.remaining -= 1;
                    Action::Store { addr: self.lock }
                } else {
                    self.holding = true;
                    Action::Rmw { addr: self.lock }
                }
            }
            fn ops_completed(&self) -> u64 {
                1
            }
        }
        impl Workload for SpinWorkload {
            fn name(&self) -> String {
                "spin".into()
            }
            fn build(
                &self,
                space: &mut AddressSpace,
                _c: &NdpConfig,
                clients: &[GlobalCoreId],
            ) -> Vec<Box<dyn CoreProgram>> {
                let lock = space.allocate_shared_rw(64, UnitId(0));
                clients
                    .iter()
                    .map(|_| {
                        Box::new(SpinProgram {
                            lock,
                            remaining: 10,
                            holding: false,
                        }) as Box<dyn CoreProgram>
                    })
                    .collect()
            }
        }
        let cfg = NdpConfig::builder()
            .units(2)
            .cores_per_unit(4)
            .coherence(CoherenceMode::MesiDirectory)
            .mechanism(MechanismKind::Ideal)
            .reserve_server_core(false)
            .build()
            .unwrap();
        let report = run_workload(&cfg, &SpinWorkload);
        assert!(report.completed);
        assert!(report.traffic.total_bytes() > 0);
    }
}
