//! Concurrent data structures on the simulated NDP system: throughput of a
//! high-contention stack, a medium-contention hash table and the lock-heavy
//! fine-grained BST under every synchronization scheme (the paper's Figure 11
//! scenario), plus an ST-overflow demonstration (Figure 23).
//!
//! ```bash
//! cargo run --release --example concurrent_data_structures
//! ```

use syncron::core::mechanism::MechanismParams;
use syncron::core::protocol::OverflowMode;
use syncron::prelude::*;
use syncron::workloads::datastructures;

fn main() {
    println!("Pointer-chasing data structures, 4 NDP units x 16 cores, 40 ops per core\n");
    for name in ["stack", "hash-table", "bst-fg"] {
        println!("--- {name} ---");
        for kind in MechanismKind::COMPARED {
            let config = NdpConfig::builder()
                .mechanism(kind)
                .build()
                .expect("valid config");
            let workload = datastructures::by_name(name, 40).expect("known structure");
            let report = syncron::system::run_workload(&config, workload.as_ref());
            println!(
                "  {:<12} {:>10.1} ops/ms   sync requests={:<8} overflowed={:.1}%",
                kind.name(),
                report.ops_per_ms(),
                report.sync_requests,
                report.sync.overflow_fraction() * 100.0,
            );
        }
    }

    println!("\nST overflow management on bst-fg with a deliberately small 16-entry ST:");
    for (label, mode) in [
        ("integrated (SynCron)", OverflowMode::Integrated),
        ("MiSAR-style central", OverflowMode::MiSarCentral),
        ("MiSAR-style distributed", OverflowMode::MiSarDistributed),
    ] {
        let params = MechanismParams::new(MechanismKind::SynCron)
            .with_st_entries(16)
            .with_overflow_mode(mode);
        let config = NdpConfig::builder()
            .mechanism_params(params)
            .build()
            .expect("valid config");
        let workload = datastructures::by_name("bst-fg", 40).expect("bst-fg");
        let report = syncron::system::run_workload(&config, workload.as_ref());
        println!(
            "  {:<24} {:>10.1} ops/ms   overflowed={:.1}%",
            label,
            report.ops_per_ms(),
            report.sync.overflow_fraction() * 100.0,
        );
    }
}
