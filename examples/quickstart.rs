//! Quickstart: build an NDP system, run a lock microbenchmark under every
//! synchronization scheme, and compare the results.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use syncron::prelude::*;
use syncron::workloads::micro::LockMicrobench;

fn main() {
    println!("SynCron quickstart: 4 NDP units x 16 cores, HBM, one contended lock\n");

    // Every core computes for 200 instructions, then acquires and releases a single
    // global lock (an empty critical section) — the paper's Figure 10 setup.
    let workload = LockMicrobench::new(200, 20);

    let mut central_time = None;
    for kind in MechanismKind::COMPARED {
        let config = NdpConfig::builder()
            .units(4)
            .cores_per_unit(16)
            .mechanism(kind)
            .build()
            .expect("valid config");
        let report = syncron::system::run_workload(&config, &workload);
        let speedup = central_time
            .map(|t: Time| t.as_ps() as f64 / report.sim_time.as_ps() as f64)
            .unwrap_or(1.0);
        if kind == MechanismKind::Central {
            central_time = Some(report.sim_time);
        }
        println!(
            "{:<12} time={:<12} speedup-vs-Central={:<6.2} energy={:>10.1} uJ  sync messages={}",
            kind.name(),
            report.sim_time.to_string(),
            speedup,
            report.energy.total_uj(),
            report.sync.local_messages + report.sync.global_messages,
        );
    }

    println!("\nSynCron should land between Hier and the zero-overhead Ideal scheme.");
}
