//! Strongly-typed identifiers for the simulated NDP system.
//!
//! The paper's system (Table 5) has 4 NDP units with 16 cores each. Cores are
//! addressed in two ways that mirror the hardware of Section 4.2.2:
//!
//! * a **local** ID within an NDP unit ([`CoreId`]) — what the *local waiting list*
//!   of a Synchronization Table entry tracks, and
//! * a **global** ID ([`GlobalCoreId`]) — the `(unit, local core)` pair used by the
//!   rest of the system.

use core::fmt;

/// Identifier of an NDP unit (a memory stack plus its compute die).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct UnitId(pub u8);

impl UnitId {
    /// Maximum number of NDP units addressable by the 8-bit unit ID. Machine
    /// geometries are validated against this bound when a configuration is built.
    pub const MAX_COUNT: usize = u8::MAX as usize + 1;

    /// Returns the unit index as a `usize`, for indexing per-unit vectors.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for UnitId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "U{}", self.0)
    }
}

/// Identifier of an NDP core **within** its NDP unit (the "local ID" of the paper).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CoreId(pub u8);

impl CoreId {
    /// Maximum number of cores per NDP unit addressable by the 8-bit local core ID.
    /// Machine geometries are validated against this bound when a configuration is
    /// built.
    pub const MAX_COUNT: usize = u8::MAX as usize + 1;

    /// Returns the core index as a `usize`, for indexing per-core vectors.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// System-global identifier of an NDP core: the pair of its NDP unit and its local ID.
///
/// # Example
///
/// ```
/// use syncron_sim::ids::{GlobalCoreId, UnitId, CoreId};
/// let c = GlobalCoreId::new(UnitId(2), CoreId(5));
/// assert_eq!(c.flat_index(16), 2 * 16 + 5);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct GlobalCoreId {
    /// The NDP unit the core resides in.
    pub unit: UnitId,
    /// The local ID of the core within its unit.
    pub core: CoreId,
}

impl GlobalCoreId {
    /// Creates a global core identifier from a unit and a local core ID.
    #[inline]
    pub fn new(unit: UnitId, core: CoreId) -> Self {
        GlobalCoreId { unit, core }
    }

    /// Flattens the identifier into a dense index, given the number of cores per unit.
    #[inline]
    pub fn flat_index(self, cores_per_unit: usize) -> usize {
        self.unit.index() * cores_per_unit + self.core.index()
    }

    /// Reconstructs a `GlobalCoreId` from a dense index produced by [`flat_index`].
    ///
    /// [`flat_index`]: GlobalCoreId::flat_index
    #[inline]
    pub fn from_flat(index: usize, cores_per_unit: usize) -> Self {
        GlobalCoreId {
            unit: UnitId((index / cores_per_unit) as u8),
            core: CoreId((index % cores_per_unit) as u8),
        }
    }
}

impl fmt::Display for GlobalCoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.unit, self.core)
    }
}

/// A physical address in the shared NDP address space.
///
/// Addresses are plain 64-bit values. The system crate's address space maps address
/// ranges onto home NDP units and data classes; this crate only needs the ability to
/// derive cache lines and bank/counter indices from an address.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Addr(pub u64);

impl Addr {
    /// Size of a cache line / memory access granule in bytes (Table 5: 64 B lines).
    pub const LINE_BYTES: u64 = 64;

    /// Returns the address of the cache line containing this address.
    #[inline]
    pub fn line(self) -> Addr {
        Addr(self.0 & !(Self::LINE_BYTES - 1))
    }

    /// Returns the cache-line index (address divided by the line size).
    #[inline]
    pub fn line_index(self) -> u64 {
        self.0 / Self::LINE_BYTES
    }

    /// Returns the raw address value.
    #[inline]
    pub fn value(self) -> u64 {
        self.0
    }

    /// Returns the `n` least-significant bits of the address, used by the
    /// Synchronization Engine's indexing counters (Section 4.2.3 uses the 8 LSBs).
    #[inline]
    pub fn low_bits(self, n: u32) -> u64 {
        if n >= 64 {
            self.0
        } else {
            self.0 & ((1u64 << n) - 1)
        }
    }

    /// Returns a new address offset by `bytes`.
    #[inline]
    pub fn offset(self, bytes: u64) -> Addr {
        Addr(self.0 + bytes)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_index_round_trips() {
        for unit in 0..4u8 {
            for core in 0..16u8 {
                let id = GlobalCoreId::new(UnitId(unit), CoreId(core));
                let flat = id.flat_index(16);
                assert_eq!(GlobalCoreId::from_flat(flat, 16), id);
            }
        }
    }

    #[test]
    fn flat_index_is_dense_and_ordered() {
        let a = GlobalCoreId::new(UnitId(0), CoreId(15)).flat_index(16);
        let b = GlobalCoreId::new(UnitId(1), CoreId(0)).flat_index(16);
        assert_eq!(a + 1, b);
    }

    #[test]
    fn addr_line_masks_low_bits() {
        let a = Addr(0x1234);
        assert_eq!(a.line(), Addr(0x1200));
        assert_eq!(a.line_index(), 0x1234 / 64);
        assert_eq!(Addr(63).line(), Addr(0));
        assert_eq!(Addr(64).line(), Addr(64));
    }

    #[test]
    fn addr_low_bits() {
        let a = Addr(0xABCD);
        assert_eq!(a.low_bits(8), 0xCD);
        assert_eq!(a.low_bits(4), 0xD);
        assert_eq!(a.low_bits(64), 0xABCD);
    }

    #[test]
    fn addr_offset() {
        assert_eq!(Addr(0x100).offset(0x40), Addr(0x140));
    }

    #[test]
    fn display_formats() {
        let c = GlobalCoreId::new(UnitId(3), CoreId(7));
        assert_eq!(format!("{c}"), "U3.c7");
        assert_eq!(format!("{}", Addr(0x40)), "0x40");
    }
}
