//! # syncron-core
//!
//! The SynCron synchronization mechanism (HPCA 2021) and the baseline mechanisms it is
//! evaluated against.
//!
//! SynCron adds one **Synchronization Engine (SE)** to the compute die of each NDP
//! unit. NDP cores issue synchronization requests (locks, barriers, semaphores,
//! condition variables — Table 2 of the paper) to their *local* SE with hardware
//! messages; SEs coordinate among themselves hierarchically, with the **Master SE**
//! (the SE of the unit that owns the variable's address) arbitrating globally.
//! Synchronization variables are buffered directly in a 64-entry **Synchronization
//! Table (ST)** inside each SE, so no memory accesses are needed on the fast path;
//! when the ST overflows, a hardware-only scheme falls back to an in-memory
//! `syncronVar` structure tracked by per-SE indexing counters.
//!
//! This crate implements:
//!
//! * [`message`] — the message encoding and the full opcode set of Table 3;
//! * [`request`] — the core-facing request API (the semantics of Table 2's
//!   programming interface) and its `req_sync` / `req_async` classification;
//! * [`table`] — the Synchronization Table and its waiting-list bit queues;
//! * [`counters`] — the indexing counters used during ST overflow;
//! * [`syncvar`] — the in-memory `syncronVar` structure of Section 4.3.1;
//! * [`mechanism`] — the [`SyncMechanism`] / [`SyncContext`] interface the NDP
//!   system drives, and the [`MechanismKind`] selector;
//! * [`ideal`] — the zero-overhead *Ideal* baseline;
//! * [`protocol`] — the message-passing protocol engine that implements **SynCron**
//!   (hierarchical or flat, with integrated or MiSAR-style overflow management) as
//!   well as the *Central* and *Hier* server-core baselines of Section 5, plus the
//!   condvar signal-coalescing / backoff extension (see the module docs);
//! * [`hw_cost`] — the area/power model behind Table 8.
//!
//! Internally the engine-backed mechanisms share one *ownership-of-state* layer
//! (per-primitive component tables over arena slots, `components`) and differ
//! only in a small *policy* object (`policy`): where requests are served, how
//! locks arbitrate, and whether the placement adapts at runtime. The MCS queue
//! lock and the adaptive Central↔Hier scheme are policy modules over the same
//! tables; see `ARCHITECTURE.md` for the split.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod components;
pub mod counters;
pub mod hw_cost;
pub mod ideal;
pub mod mechanism;
pub mod message;
mod policy;
pub mod protocol;
pub mod request;
pub mod syncvar;
pub mod table;

pub use mechanism::{
    build_mechanism, MechanismKind, SyncContext, SyncMechanism, SyncMechanismStats,
};
pub use message::{MessageScope, SyncMessage, SyncOpcode};
pub use protocol::{OverflowMode, ProtocolConfig, ProtocolMechanism};
pub use request::{BarrierScope, PrimitiveKind, SyncRequest};
pub use table::{StEntry, SynchronizationTable};
