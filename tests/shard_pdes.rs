//! Property, stress and determinism tests of the sharded conservative-PDES
//! executor.
//!
//! The executor proves its own safety invariant at runtime: every cross-shard
//! message is checked against the receiving shard's window floor during the
//! mailbox drain, and a message timestamped below the floor is a hard panic
//! naming the shard and times. These tests drive *randomized* workloads —
//! scripted mixes of computation, local/remote data accesses and paired
//! lock/semaphore sections generated from a seed — through the sharded
//! executor at several worker counts, so completing without a panic exercises
//! the lookahead invariant on irregular traffic, and the report comparison
//! pins bit-exactness against the sequential reference on the same build.
//!
//! Also covered: shards whose event queues drain early must keep the window
//! barrier moving (no deadlock), and JSON exports must be byte-identical
//! run-over-run and across shard counts.

use syncron::core::request::SyncRequest;
use syncron::harness::report_to_value;
use syncron::prelude::*;
use syncron::system::address::{AddressSpace, DataClass};
use syncron::system::report::SimPerf;
use syncron::workloads::micro::SyncPrimitive;

/// SplitMix64: a tiny, high-quality seeded generator for the action scripts.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// A core that replays a pre-generated action script and then goes idle.
///
/// The script is generated at build time from the workload seed, so the
/// program carries no state shared with any other core — stepping order
/// cannot be observed, which is exactly what `shard_safe` promises.
struct ScriptedCore {
    actions: Vec<Action>,
    pc: usize,
}

impl CoreProgram for ScriptedCore {
    fn step(&mut self, _core: GlobalCoreId, _now: Time) -> Action {
        let action = self.actions.get(self.pc).copied().unwrap_or(Action::Done);
        self.pc += 1;
        action
    }

    fn ops_completed(&self) -> u64 {
        self.pc.min(self.actions.len()) as u64
    }
}

/// Randomized mix of computation, data accesses homed on every unit, and
/// properly paired lock / semaphore sections.
///
/// Blocking requests are always emitted in safe pairs (acquire → body →
/// release), so every script terminates under every mechanism; the remote
/// accesses and randomly-homed synchronization variables generate the
/// irregular cross-shard traffic the lookahead invariant has to survive.
struct RandomMix {
    seed: u64,
    ops_per_core: usize,
    /// Cores of this unit get an empty script, draining that shard's queue
    /// immediately while the rest of the machine keeps sending it work.
    idle_unit: Option<UnitId>,
}

impl RandomMix {
    fn new(seed: u64) -> Self {
        RandomMix {
            seed,
            ops_per_core: 16,
            idle_unit: None,
        }
    }
}

impl Workload for RandomMix {
    fn name(&self) -> String {
        format!("random-mix.s{}", self.seed)
    }

    fn shard_safe(&self) -> bool {
        true
    }

    fn build(
        &self,
        space: &mut AddressSpace,
        config: &NdpConfig,
        clients: &[GlobalCoreId],
    ) -> Vec<Box<dyn CoreProgram>> {
        let data = space.allocate_partitioned(4096, DataClass::SharedReadWrite);
        let locks: Vec<Addr> = (0..config.units)
            .map(|u| space.allocate_shared_rw(64, UnitId(u as u8)))
            .collect();
        let sems: Vec<Addr> = (0..config.units)
            .map(|u| space.allocate_shared_rw(64, UnitId(u as u8)))
            .collect();
        let pick_addr = |rng: &mut SplitMix64| {
            let region = data[rng.below(data.len() as u64) as usize];
            Addr(region.0 + 64 * rng.below(32))
        };

        clients
            .iter()
            .enumerate()
            .map(|(i, core)| {
                let mut actions = Vec::new();
                if Some(core.unit) != self.idle_unit {
                    let mut rng = SplitMix64(self.seed ^ (i as u64).wrapping_mul(0x0D1B_54A3));
                    for _ in 0..self.ops_per_core {
                        match rng.below(6) {
                            0 => actions.push(Action::Compute {
                                instrs: 1 + rng.below(200),
                            }),
                            1 => actions.push(Action::Load {
                                addr: pick_addr(&mut rng),
                            }),
                            2 => actions.push(Action::Store {
                                addr: pick_addr(&mut rng),
                            }),
                            3 => actions.push(Action::Rmw {
                                addr: pick_addr(&mut rng),
                            }),
                            4 => {
                                let var = locks[rng.below(locks.len() as u64) as usize];
                                actions.push(Action::Sync(SyncRequest::LockAcquire { var }));
                                actions.push(Action::Store {
                                    addr: pick_addr(&mut rng),
                                });
                                actions.push(Action::Sync(SyncRequest::LockRelease { var }));
                            }
                            _ => {
                                let var = sems[rng.below(sems.len() as u64) as usize];
                                actions
                                    .push(Action::Sync(SyncRequest::SemWait { var, initial: 2 }));
                                actions.push(Action::Compute {
                                    instrs: 1 + rng.below(50),
                                });
                                actions.push(Action::Sync(SyncRequest::SemPost { var }));
                            }
                        }
                    }
                }
                Box::new(ScriptedCore { actions, pc: 0 }) as Box<dyn CoreProgram>
            })
            .collect()
    }
}

/// Runs `workload` sequentially and at every worker count in `threads`,
/// asserting completion, the expected shard count, and bit-identical reports.
/// Any lookahead-floor violation or routing error panics inside the executor,
/// failing the test with the offending shard named.
fn assert_sharded_matches_sequential(
    units: usize,
    cores_per_unit: usize,
    kind: MechanismKind,
    workload: &RandomMix,
    threads: &[usize],
) {
    let base = NdpConfig::builder()
        .units(units)
        .cores_per_unit(cores_per_unit)
        .mechanism(kind)
        .build()
        .unwrap();
    let reference = run_workload(&base, workload);
    assert!(
        reference.completed,
        "{:?} {units}x{cores_per_unit} seed {} did not complete sequentially",
        kind, workload.seed
    );
    assert_eq!(reference.perf.shards, 1);

    for &workers in threads {
        let cfg = NdpConfig::builder()
            .units(units)
            .cores_per_unit(cores_per_unit)
            .mechanism(kind)
            .sim_threads(workers)
            .build()
            .unwrap();
        let report = run_workload(&cfg, workload);
        assert_eq!(
            report.perf.shards,
            workers.min(units),
            "{kind:?} {units}x{cores_per_unit}: sharding unexpectedly fell back"
        );
        if let Some(field) = reference.divergence_from(&report) {
            panic!(
                "{kind:?} {units}x{cores_per_unit} seed {} with {workers} workers \
                 diverged from sequential in {field}",
                workload.seed
            );
        }
    }
}

#[test]
fn randomized_mixes_uphold_the_lookahead_invariant() {
    // Irregular cross-shard traffic from seeded random scripts: remote loads,
    // stores and RMWs homed on every unit, plus lock and semaphore sections
    // whose variables live on random units. The executor hard-panics on any
    // message below a window floor, so every completing run is a property
    // check; the report comparison additionally pins bit-exactness.
    for (units, cores_per_unit) in [(2, 2), (4, 3), (8, 2)] {
        for seed in [1, 0xC0FFEE] {
            let workload = RandomMix::new(seed);
            for kind in [
                MechanismKind::Central,
                MechanismKind::Hier,
                MechanismKind::SynCron,
                MechanismKind::SynCronFlat,
            ] {
                assert_sharded_matches_sequential(
                    units,
                    cores_per_unit,
                    kind,
                    &workload,
                    &[2, 3, 4, 8],
                );
            }
        }
    }
}

#[test]
fn drained_shards_keep_the_window_barrier_moving() {
    // Unit 0's cores finish instantly, so its shard's queue drains in the
    // first window while every other shard keeps routing data requests and
    // lock traffic *to* unit 0 (partitioned data and unit-0-homed variables).
    // The drained shard must keep arriving at the window barrier and serving
    // its mailbox — a shard that stops participating deadlocks the gate, and
    // this test hangs instead of passing.
    let workload = RandomMix {
        seed: 42,
        ops_per_core: 24,
        idle_unit: Some(UnitId(0)),
    };
    assert_sharded_matches_sequential(4, 4, MechanismKind::SynCron, &workload, &[2, 4]);
}

#[test]
fn sharded_exports_are_byte_identical() {
    // Determinism stress at the export layer: the same (scenario, seed,
    // shard-count) triple run three times in one process must serialize to
    // byte-identical JSON, and every shard count must serialize to the same
    // bytes as the sequential run. Host-side perf counters (wall clock,
    // executed shard count) are zeroed before export — they are the one
    // documented nondeterministic surface.
    let scenario = Scenario::new(
        "det-barrier",
        ConfigSpec::default()
            .with_geometry(4, 8)
            .with_sim_threads(4),
        WorkloadSpec::Micro {
            primitive: SyncPrimitive::Barrier,
            interval: 100,
            iterations: 8,
        },
    );

    let normalized = |threads: usize| -> String {
        let mut variant = scenario.clone();
        variant.config = variant.config.with_sim_threads(threads);
        let mut report = variant.run().expect("run");
        assert!(report.completed);
        assert_eq!(report.perf.shards, threads.min(4));
        report.perf = SimPerf::default();
        report_to_value(&report).to_json_pretty()
    };

    let first = {
        let mut report = scenario.run().expect("run");
        report.perf = SimPerf::default();
        let set = RunSet::from_pairs([(scenario.clone(), report)]).expect("set");
        set.to_json_string()
    };
    for _ in 0..2 {
        let mut report = scenario.run().expect("run");
        report.perf = SimPerf::default();
        let set = RunSet::from_pairs([(scenario.clone(), report)]).expect("set");
        assert_eq!(
            first,
            set.to_json_string(),
            "same scenario, same shard count: JSON export moved between runs"
        );
    }

    let sequential = normalized(1);
    for threads in [2, 4, 8] {
        assert_eq!(
            sequential,
            normalized(threads),
            "JSON export moved between shard counts 1 and {threads}"
        );
    }
}
