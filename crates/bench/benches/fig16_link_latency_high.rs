//! Regenerates Figure 16 of the paper (high-contention link-latency sensitivity).
fn main() {
    for table in syncron_bench::experiments::datastructures::fig16() {
        table.print();
    }
}
