//! Figures 17–22 and the fairness extension (Figure 24 in this reproduction).

use crate::experiments::realapps::{app_config, build_workload, AppCombo};
use crate::{f2, run_many, scaled, Table};
use syncron_core::mechanism::MechanismParams;
use syncron_core::MechanismKind;
use syncron_mem::MemTech;
use syncron_sim::Time;
use syncron_system::config::NdpConfig;
use syncron_system::workload::Workload;
use syncron_workloads::datastructures::{self};
use syncron_workloads::graph::{GraphAlgo, GraphApp, GraphInput, Partitioning};
use syncron_workloads::micro::LockMicrobench;

/// Figure 17: slowdown over Ideal of each scheme for pr.wk as the inter-unit link
/// latency grows (low contention).
pub fn fig17() -> Table {
    let latencies_ns = [40u64, 100, 200, 500];
    let schemes = MechanismKind::COMPARED;
    let combo = AppCombo { app: "pr", input: "wk" };
    let mut jobs: Vec<(NdpConfig, Box<dyn Workload + Send + Sync>)> = Vec::new();
    for &lat in &latencies_ns {
        for kind in schemes {
            let mut config = app_config(kind, 4);
            config.link.transfer_latency = Time::from_ns(lat);
            jobs.push((config, build_workload(&combo)));
        }
    }
    let reports = run_many(jobs);
    let mut table = Table::new(
        "Figure 17: pr.wk slowdown over Ideal vs inter-unit link latency",
        &["latency_ns", "Ideal", "SynCron", "Hier", "Central"],
    );
    for (i, &lat) in latencies_ns.iter().enumerate() {
        let base = i * schemes.len();
        // COMPARED order is Central, Hier, SynCron, Ideal; the figure lists the
        // reverse, normalized to Ideal.
        let ideal = &reports[base + 3];
        table.push_row(vec![
            lat.to_string(),
            f2(1.0),
            f2(reports[base + 2].slowdown_over(ideal)),
            f2(reports[base + 1].slowdown_over(ideal)),
            f2(reports[base].slowdown_over(ideal)),
        ]);
    }
    table
}

/// Figure 18: speedup over Central of each scheme for cc.wk, pr.wk and ts.pow under
/// HBM, HMC and DDR4 memory.
pub fn fig18() -> Table {
    let combos = [
        AppCombo { app: "cc", input: "wk" },
        AppCombo { app: "pr", input: "wk" },
        AppCombo { app: "ts", input: "pow" },
    ];
    let techs = [MemTech::Hbm, MemTech::Hmc, MemTech::Ddr4];
    let schemes = MechanismKind::COMPARED;
    let mut jobs: Vec<(NdpConfig, Box<dyn Workload + Send + Sync>)> = Vec::new();
    for combo in &combos {
        for &tech in &techs {
            for kind in schemes {
                let mut config = app_config(kind, 4);
                config.mem_tech = tech;
                jobs.push((config, build_workload(combo)));
            }
        }
    }
    let reports = run_many(jobs);
    let mut table = Table::new(
        "Figure 18: speedup over Central under different memory technologies",
        &["app.input", "memory", "Central", "Hier", "SynCron", "Ideal"],
    );
    let mut idx = 0;
    for combo in &combos {
        for &tech in &techs {
            let central = &reports[idx];
            let mut cells = vec![combo.label(), tech.name().to_string()];
            for j in 0..schemes.len() {
                cells.push(f2(reports[idx + j].speedup_over(central)));
            }
            table.push_row(cells);
            idx += schemes.len();
        }
    }
    table
}

/// Figure 19: effect of a better graph partitioning (greedy min-cut stand-in for Metis)
/// on PageRank, plus SynCron's maximum ST occupancy.
pub fn fig19() -> Table {
    let schemes = MechanismKind::COMPARED;
    let partitionings = [("striped", Partitioning::Striped), ("greedy", Partitioning::Greedy)];
    let mut jobs: Vec<(NdpConfig, Box<dyn Workload + Send + Sync>)> = Vec::new();
    for input in GraphInput::ALL {
        for (_, partitioning) in &partitionings {
            for kind in schemes {
                let wl = GraphApp::new(GraphAlgo::Pr, input).with_partitioning(*partitioning);
                jobs.push((app_config(kind, 4), Box::new(wl)));
            }
        }
    }
    let reports = run_many(jobs);
    let mut table = Table::new(
        "Figure 19: PageRank speedup over Central(striped) with better data placement",
        &[
            "input",
            "placement",
            "Central",
            "Hier",
            "SynCron",
            "Ideal",
            "SynCron max ST occupancy %",
        ],
    );
    let mut idx = 0;
    for input in GraphInput::ALL {
        let striped_central = reports[idx].clone();
        for (pname, _) in &partitionings {
            let mut cells = vec![format!("pr.{}", input.name), pname.to_string()];
            for j in 0..schemes.len() {
                cells.push(f2(reports[idx + j].speedup_over(&striped_central)));
            }
            // SynCron is the third scheme in COMPARED order.
            cells.push(f2(reports[idx + 2].sync.st_max_occupancy * 100.0));
            table.push_row(cells);
            idx += schemes.len();
        }
    }
    table
}

/// Figure 20: SynCron vs its flat variant for the graph applications (low contention,
/// synchronization non-intensive), 40 ns links.
pub fn fig20() -> Table {
    let mut combos = Vec::new();
    for algo in GraphAlgo::ALL {
        for input in GraphInput::ALL {
            combos.push(AppCombo {
                app: algo.name(),
                input: input.name,
            });
        }
    }
    let kinds = [MechanismKind::SynCronFlat, MechanismKind::SynCron];
    let mut jobs: Vec<(NdpConfig, Box<dyn Workload + Send + Sync>)> = Vec::new();
    for combo in &combos {
        for &kind in &kinds {
            jobs.push((app_config(kind, 4), build_workload(combo)));
        }
    }
    let reports = run_many(jobs);
    let mut table = Table::new(
        "Figure 20: SynCron speedup over flat (graph applications, 40ns links)",
        &["app.input", "speedup vs flat"],
    );
    let mut sum = 0.0;
    for (i, combo) in combos.iter().enumerate() {
        let flat = &reports[i * 2];
        let hier = &reports[i * 2 + 1];
        let speedup = hier.speedup_over(flat);
        sum += speedup;
        table.push_row(vec![combo.label(), f2(speedup)]);
    }
    table.push_row(vec!["AVG".into(), f2(sum / combos.len() as f64)]);
    table
}

/// Figure 21: SynCron vs flat under (a) a synchronization-intensive low-contention
/// workload (time series) and (b) a high-contention workload (queue), sweeping the
/// inter-unit link latency.
pub fn fig21() -> Table {
    let latencies_ns = [40u64, 100, 200, 500];
    let mut table = Table::new(
        "Figure 21: SynCron speedup over flat vs link latency",
        &["workload", "latency_ns", "speedup vs flat"],
    );

    // (a) time series, 4 NDP units.
    let mut jobs: Vec<(NdpConfig, Box<dyn Workload + Send + Sync>)> = Vec::new();
    for ts in ["air", "pow"] {
        for &lat in &latencies_ns {
            for kind in [MechanismKind::SynCronFlat, MechanismKind::SynCron] {
                let mut config = app_config(kind, 4);
                config.link.transfer_latency = Time::from_ns(lat);
                jobs.push((config, build_workload(&AppCombo { app: "ts", input: ts })));
            }
        }
    }
    // (b) queue data structure with 30 and 60 cores.
    let ops = scaled(40, 8);
    for &units in &[2usize, 4] {
        for &lat in &latencies_ns {
            for kind in [MechanismKind::SynCronFlat, MechanismKind::SynCron] {
                let config = NdpConfig::builder()
                    .units(units)
                    .cores_per_unit(16)
                    .mechanism(kind)
                    .link_latency(Time::from_ns(lat))
                    .build();
                jobs.push((config, datastructures::by_name("queue", ops).expect("queue")));
            }
        }
    }
    let reports = run_many(jobs);

    let mut idx = 0;
    for ts in ["ts.air", "ts.pow"] {
        for &lat in &latencies_ns {
            let flat = &reports[idx];
            let hier = &reports[idx + 1];
            table.push_row(vec![ts.into(), lat.to_string(), f2(hier.speedup_over(flat))]);
            idx += 2;
        }
    }
    for cores in ["queue.30cores", "queue.60cores"] {
        for &lat in &latencies_ns {
            let flat = &reports[idx];
            let hier = &reports[idx + 1];
            table.push_row(vec![cores.into(), lat.to_string(), f2(hier.speedup_over(flat))]);
            idx += 2;
        }
    }
    table
}

/// Figure 22: slowdown of SynCron with smaller STs (normalized to the 64-entry ST) and
/// the fraction of overflowed requests, for cc.wk, pr.wk, ts.air and ts.pow.
pub fn fig22() -> Table {
    let combos = [
        AppCombo { app: "cc", input: "wk" },
        AppCombo { app: "pr", input: "wk" },
        AppCombo { app: "ts", input: "air" },
        AppCombo { app: "ts", input: "pow" },
    ];
    let st_sizes = [64usize, 48, 32, 16, 8];
    let mut jobs: Vec<(NdpConfig, Box<dyn Workload + Send + Sync>)> = Vec::new();
    for combo in &combos {
        for &st in &st_sizes {
            let params = MechanismParams::new(MechanismKind::SynCron).with_st_entries(st);
            let config = NdpConfig::builder().mechanism_params(params).build();
            jobs.push((config, build_workload(combo)));
        }
    }
    let reports = run_many(jobs);
    let mut table = Table::new(
        "Figure 22: slowdown vs ST size (normalized to 64 entries) and overflowed requests",
        &["app.input", "ST entries", "slowdown", "overflowed %"],
    );
    let mut idx = 0;
    for combo in &combos {
        let baseline = reports[idx].clone();
        for &st in &st_sizes {
            let report = &reports[idx];
            table.push_row(vec![
                combo.label(),
                st.to_string(),
                f2(report.slowdown_over(&baseline)),
                f2(report.sync.overflow_fraction() * 100.0),
            ]);
            idx += 1;
        }
    }
    table
}

/// Fairness extension (Section 4.4.2): effect of the local-grant threshold on a
/// high-contention lock microbenchmark. This experiment goes beyond the paper's
/// evaluation, which leaves fairness exploration to future work.
pub fn fig24_fairness() -> Table {
    let thresholds: [Option<u32>; 4] = [None, Some(32), Some(8), Some(2)];
    let iterations = scaled(30, 6);
    let mut jobs: Vec<(NdpConfig, Box<dyn Workload + Send + Sync>)> = Vec::new();
    for &threshold in &thresholds {
        let mut params = MechanismParams::new(MechanismKind::SynCron);
        params.fairness_threshold = threshold;
        let config = NdpConfig::builder().mechanism_params(params).build();
        jobs.push((config, Box::new(LockMicrobench::new(100, iterations))));
    }
    let reports = run_many(jobs);
    let mut table = Table::new(
        "Fairness extension: lock microbenchmark vs local-grant threshold",
        &["threshold", "total time (us)", "ops/ms", "remote messages"],
    );
    for (i, &threshold) in thresholds.iter().enumerate() {
        let report = &reports[i];
        table.push_row(vec![
            threshold.map_or("off".to_string(), |t| t.to_string()),
            f2(report.sim_time.as_us_f64()),
            f2(report.ops_per_ms()),
            report.sync.global_messages.to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig22_baseline_row_is_unity() {
        std::env::set_var("SYNCRON_SCALE", "0.2");
        let t = fig22();
        // Every first row of each block is the 64-entry baseline → slowdown 1.00.
        assert!(t.rows.iter().step_by(5).all(|r| r[2] == "1.00"));
    }

    #[test]
    fn fairness_thresholds_increase_remote_messages() {
        std::env::set_var("SYNCRON_SCALE", "0.2");
        let t = fig24_fairness();
        let off: u64 = t.rows[0][3].parse().unwrap();
        let aggressive: u64 = t.rows[3][3].parse().unwrap();
        assert!(aggressive >= off, "fairness hand-offs should add global traffic");
    }
}
