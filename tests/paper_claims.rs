//! End-to-end checks of the paper's headline claims at reduced scale.
//!
//! These tests assert the *direction and rough magnitude* of the paper's key results —
//! not absolute numbers, which depend on the substrate (see `EXPERIMENTS.md`).

use syncron::core::mechanism::MechanismParams;
use syncron::core::protocol::OverflowMode;
use syncron::prelude::*;
use syncron::workloads::datastructures::{self};
use syncron::workloads::micro::LockMicrobench;
use syncron::workloads::timeseries::TimeSeries;

fn paper_config(kind: MechanismKind) -> NdpConfig {
    NdpConfig::builder()
        .units(4)
        .cores_per_unit(16)
        .mechanism(kind)
        .build()
        .expect("valid config")
}

#[test]
fn claim_syncron_outperforms_prior_schemes_under_high_contention() {
    // Section 1: "SynCron improves performance by 1.27x on average (up to 1.78x) under
    // high-contention scenarios" over prior schemes (Central/Hier-like).
    let wl = LockMicrobench::new(200, 25);
    let central = syncron::system::run_workload(&paper_config(MechanismKind::Central), &wl);
    let hier = syncron::system::run_workload(&paper_config(MechanismKind::Hier), &wl);
    let syncron = syncron::system::run_workload(&paper_config(MechanismKind::SynCron), &wl);
    assert!(
        syncron.speedup_over(&central) > 1.2,
        "vs Central: {:.2}",
        syncron.speedup_over(&central)
    );
    assert!(
        syncron.speedup_over(&hier) > 1.0,
        "vs Hier: {:.2}",
        syncron.speedup_over(&hier)
    );
}

#[test]
fn claim_syncron_approaches_ideal_on_low_contention_apps() {
    // Section 6.1.3: SynCron comes within ~10% of Ideal for real applications; at our
    // reduced scale we accept a looser bound but require it to be much closer to Ideal
    // than Central is.
    //
    // Calibration note: `ts.air` is the paper's *most* synchronization-intense
    // application, and at this reduced scale it issues roughly one sync request per
    // ten instructions — far denser than the real dataset. The sharded-execution
    // re-baseline (see ARCHITECTURE.md, "Re-baselined event semantics") charges
    // home-side crossbar/DRAM contention at the packet's arrival time instead of the
    // requester's issue time; that deflated the artificial data-access queueing which
    // previously dominated *every* mechanism's runtime and masked the sync cost, so
    // the absolute gap bound is looser than before while the relative claim —
    // SynCron is several times closer to Ideal than Central — is asserted harder.
    let ts = TimeSeries::air().with_diagonals_per_core(3);
    let central = syncron::system::run_workload(&paper_config(MechanismKind::Central), &ts);
    let syncron = syncron::system::run_workload(&paper_config(MechanismKind::SynCron), &ts);
    let ideal = syncron::system::run_workload(&paper_config(MechanismKind::Ideal), &ts);
    let syncron_gap = syncron.slowdown_over(&ideal);
    let central_gap = central.slowdown_over(&ideal);
    assert!(
        syncron_gap < 2.5,
        "SynCron should stay near Ideal even at artificially dense sync, gap {syncron_gap:.2}"
    );
    assert!(
        central_gap > syncron_gap * 2.0,
        "Central gap {central_gap:.2} vs SynCron gap {syncron_gap:.2}"
    );
}

#[test]
fn claim_syncron_reduces_energy() {
    // Section 1: "SynCron reduces system energy consumption by 2.08x on average" over
    // prior schemes. Check that it is clearly lower on a sync-intensive workload.
    let ts = TimeSeries::pow().with_diagonals_per_core(2);
    let central = syncron::system::run_workload(&paper_config(MechanismKind::Central), &ts);
    let syncron = syncron::system::run_workload(&paper_config(MechanismKind::SynCron), &ts);
    let ratio = central.energy.total_pj() / syncron.energy.total_pj();
    assert!(ratio > 1.2, "energy reduction vs Central only {ratio:.2}x");
}

#[test]
fn claim_integrated_overflow_degrades_gracefully() {
    // Section 6.7.3: with the integrated scheme, ST overflow costs only a few percent;
    // the MiSAR-style fallbacks cost more.
    let ops = 20;
    let run = |st: usize, mode: OverflowMode| {
        let params = MechanismParams::new(MechanismKind::SynCron)
            .with_st_entries(st)
            .with_overflow_mode(mode);
        let config = NdpConfig::builder()
            .mechanism_params(params)
            .build()
            .expect("valid config");
        let wl = datastructures::by_name("bst-fg", ops).unwrap();
        syncron::system::run_workload(&config, wl.as_ref())
    };
    let no_overflow = run(256, OverflowMode::Integrated);
    let integrated = run(16, OverflowMode::Integrated);
    let misar = run(16, OverflowMode::MiSarCentral);
    assert!(
        integrated.sync.overflow_fraction() > 0.0,
        "16-entry ST must overflow"
    );
    let integrated_slowdown = integrated.slowdown_over(&no_overflow);
    let misar_slowdown = misar.slowdown_over(&no_overflow);
    assert!(
        misar_slowdown > integrated_slowdown,
        "MiSAR-style overflow ({misar_slowdown:.2}x) should cost more than integrated ({integrated_slowdown:.2}x)"
    );
}

#[test]
fn claim_se_hardware_cost_is_modest() {
    // Table 8: the SE is an order of magnitude smaller and lower-power than even a
    // small ARM core.
    let se = syncron::core::hw_cost::SeCost::paper_default();
    assert!(se.total_mm2() < 0.05);
    assert!(se.area_vs_cortex_a7() < 0.15);
    assert!(se.power_vs_cortex_a7() < 0.05);
}
