//! Fine-grained key-value store: one lock per key, range-scan requests.
//!
//! The [`kv`](super::kv) shape hash-shards its key space into 16 buckets per
//! unit, so its sync-variable population is fixed and always fits the 64-entry
//! Synchronization Table. This shape drops the sharding: every key carries its
//! own lock, and a request is a short *range scan* — it locks [`SCAN_KEYS`]
//! consecutive keys in ascending key order (two-phase locking, so lock
//! acquisition order is globally consistent and deadlock-free), reads each
//! value line, then releases them all. The live sync-variable population is
//! therefore `clients × SCAN_KEYS` held locks drawn from a key space of
//! thousands — far past `st_entries` per engine — so under Zipf-skewed scan
//! starts the head of the key space stays ST-resident while the tail
//! continuously allocates, overflows and recycles entries. That is precisely
//! the regime the overflow machinery (indexing counters, in-memory
//! `syncronVar` images, slot recycling) exists for and one the bucketed shape
//! can never reach.

use syncron_core::request::SyncRequest;
use syncron_sim::rng::SimRng;
use syncron_sim::time::Time;
use syncron_sim::{Addr, GlobalCoreId};
use syncron_system::address::AddressSpace;
use syncron_system::config::NdpConfig;
use syncron_system::workload::{Action, CoreProgram, Workload};

use super::zipf::ZipfSampler;
use super::{service_name, LogHistogram, OpenLoop, ServiceParams, ServiceShape};

/// Consecutive keys locked by one range-scan request.
pub const SCAN_KEYS: usize = 8;

/// Request-processing overhead (parse + plan) in instructions.
const REQUEST_INSTRS: u64 = 16;

/// The per-key-lock range-scan open-loop service workload.
#[derive(Clone, Copy, Debug)]
pub struct FineKvService {
    params: ServiceParams,
}

impl FineKvService {
    /// Creates the workload.
    pub fn new(params: ServiceParams) -> Self {
        FineKvService { params }
    }
}

#[derive(Debug)]
struct FineKvProgram {
    open: OpenLoop,
    rng: SimRng,
    zipf: ZipfSampler,
    /// Per-unit lock partitions; key `k`'s lock lives at `locks[k % units] + (k/units)·64`.
    locks: Vec<Addr>,
    /// Per-unit value partitions; key `k` lives at `data[k % units] + (k/units)·64`.
    data: Vec<Addr>,
    units: u64,
    keys: u64,
    /// The scan's key set, ascending (deduplicated if the key space wraps).
    scan: Vec<u64>,
    idx: usize,
    phase: u8,
    completing: bool,
}

impl FineKvProgram {
    fn pick_request(&mut self) {
        let start = self.zipf.sample(&mut self.rng);
        self.scan.clear();
        for j in 0..SCAN_KEYS as u64 {
            self.scan.push((start + j) % self.keys);
        }
        // Ascending key order is the global lock order shared by every client
        // (two-phase locking): wrap-around scans must re-sort, and a key space
        // smaller than the scan must deduplicate to avoid self-deadlock.
        self.scan.sort_unstable();
        self.scan.dedup();
        self.idx = 0;
    }

    fn lock_addr(&self, key: u64) -> Addr {
        self.locks[(key % self.units) as usize].offset(key / self.units * 64)
    }

    fn data_addr(&self, key: u64) -> Addr {
        self.data[(key % self.units) as usize].offset(key / self.units * 64)
    }
}

impl CoreProgram for FineKvProgram {
    fn step(&mut self, _core: GlobalCoreId, now: Time) -> Action {
        match self.phase {
            // Dispatch: retire the previous request, then wait for / admit the next.
            0 => {
                if self.completing {
                    self.completing = false;
                    self.open.complete(now);
                }
                if self.open.exhausted() {
                    return Action::Done;
                }
                if let Some(idle) = self.open.admit(now) {
                    return idle;
                }
                self.pick_request();
                self.phase = 1;
                Action::Compute {
                    instrs: REQUEST_INSTRS,
                }
            }
            // Growing phase: acquire every scan lock in ascending key order.
            1 => {
                let var = self.lock_addr(self.scan[self.idx]);
                self.idx += 1;
                if self.idx == self.scan.len() {
                    self.phase = 2;
                    self.idx = 0;
                }
                Action::Sync(SyncRequest::LockAcquire { var })
            }
            // Read each value line under the locks.
            2 => {
                let addr = self.data_addr(self.scan[self.idx]);
                self.idx += 1;
                if self.idx == self.scan.len() {
                    self.phase = 3;
                    self.idx = 0;
                }
                Action::Load { addr }
            }
            // Shrinking phase: release everything; the last release retires the
            // request at the next dispatch.
            _ => {
                let var = self.lock_addr(self.scan[self.idx]);
                self.idx += 1;
                if self.idx == self.scan.len() {
                    self.phase = 0;
                    self.idx = 0;
                    self.completing = true;
                }
                Action::Sync(SyncRequest::LockRelease { var })
            }
        }
    }

    fn ops_completed(&self) -> u64 {
        self.open.ops
    }

    fn latency_histogram(&self) -> Option<&LogHistogram> {
        Some(&self.open.hist)
    }
}

impl Workload for FineKvService {
    fn shard_safe(&self) -> bool {
        // Programs keep all state private; cores interact only through
        // simulated synchronization.
        true
    }

    fn name(&self) -> String {
        service_name(ServiceShape::KvFine, &self.params)
    }

    fn build(
        &self,
        space: &mut AddressSpace,
        config: &NdpConfig,
        clients: &[GlobalCoreId],
    ) -> Vec<Box<dyn CoreProgram>> {
        let units = config.units as u64;
        let keys = self.params.keys.max(1);
        // One lock line and one value line per key, both hash-partitioned over
        // the units: the sync-variable population scales with the key space.
        let locks = space.allocate_partitioned(
            keys.div_ceil(units) * Addr::LINE_BYTES,
            syncron_system::address::DataClass::SharedReadWrite,
        );
        let data = space.allocate_partitioned(
            keys.div_ceil(units) * Addr::LINE_BYTES,
            syncron_system::address::DataClass::SharedReadWrite,
        );
        clients
            .iter()
            .enumerate()
            .map(|(i, _)| {
                Box::new(FineKvProgram {
                    open: OpenLoop::new(
                        self.params.arrival,
                        config.seed ^ ((i as u64) << 24) ^ 0xF1E,
                        self.params.requests,
                        config.core_cycle(),
                    ),
                    rng: SimRng::seed_from(config.seed ^ ((i as u64) << 24) ^ 0x9B3D),
                    zipf: ZipfSampler::new(keys, self.params.zipf_s),
                    locks: locks.clone(),
                    data: data.clone(),
                    units,
                    keys,
                    scan: Vec::with_capacity(SCAN_KEYS),
                    idx: 0,
                    phase: 0,
                    completing: false,
                }) as Box<dyn CoreProgram>
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::super::{ArrivalProcess, KvService, ServiceParams};
    use super::*;
    use syncron_core::MechanismKind;
    use syncron_system::run_workload;

    fn params(keys: u64) -> ServiceParams {
        ServiceParams {
            arrival: ArrivalProcess::Poisson { rate_per_us: 0.5 },
            keys,
            zipf_s: 0.99,
            requests: 24,
        }
    }

    fn config() -> NdpConfig {
        NdpConfig::builder()
            .units(2)
            .cores_per_unit(16)
            .mechanism(MechanismKind::SynCron)
            .build()
            .expect("valid config")
    }

    #[test]
    fn per_key_locks_overflow_the_synchronization_table() {
        // 30 clients × 8 held locks per scan ≈ 240 concurrently live sync
        // variables over 2 engines: the 64-entry STs must overflow — the
        // regime the bucketed KV shape (16 locks/unit) can never produce.
        let fine = run_workload(&config(), &FineKvService::new(params(4096)));
        assert!(fine.completed);
        assert!(
            fine.sync.overflowed_requests > 0,
            "per-key scan locks must push the live variable population past st_entries"
        );
        let coarse = run_workload(&config(), &KvService::new(params(4096)));
        assert!(coarse.completed);
        assert_eq!(
            coarse.sync.overflowed_requests, 0,
            "the bucketed shape's 16 locks/unit never overflow"
        );
    }

    #[test]
    fn tiny_key_spaces_deduplicate_instead_of_self_deadlocking() {
        // A key space smaller than the scan width wraps onto itself; the scan
        // must deduplicate (locking a key twice would self-deadlock).
        let report = run_workload(&config(), &FineKvService::new(params(3)));
        assert!(report.completed);
        assert!(report.total_ops > 0);
    }
}
