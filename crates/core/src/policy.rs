//! Synchronization *policies*: the per-mechanism decision layer.
//!
//! The protocol engine in [`crate::protocol`] owns all mechanics — message
//! delivery, engine serialization, the synchronization table, and the shared
//! per-primitive state in [`crate::components::ComponentTables`]. What differs
//! between mechanism kinds is only a handful of *decisions*, captured here as
//! the [`SyncPolicy`] trait:
//!
//! - **where** a request is served ([`SyncPolicy::topology`] /
//!   [`SyncPolicy::master_of`]): hierarchically via the requester's local
//!   engine, or flat, straight at the variable's master engine;
//! - **how** locks arbitrate ([`SyncPolicy::lock_variant`]): the
//!   ownership-passing local/global protocol, or the MCS-style hardware queue
//!   with per-waiter next pointers and O(1) handoff;
//! - **whether the policy adapts** ([`SyncPolicy::observe_contention`]):
//!   stateful policies watch master-side queue depths and may re-decide
//!   per variable at runtime.
//!
//! What a policy may *not* do: touch component state, send messages, or charge
//! costs — those stay in the engine, which is how the existing four mechanisms
//! stay bit-exact while new schemes slot in as one small module each. Note the
//! deliberate split from [`ProtocolConfig::backend`]: the policy decides where
//! a request goes, the backend decides what hardware serves it there (SE vs.
//! server core, ST vs. memory), and the two compose freely.

use crate::protocol::ProtocolConfig;
use syncron_sim::{Addr, FxHashSet, UnitId};

use crate::mechanism::{MechanismKind, SyncContext};
use crate::protocol::Topology;

/// Which lock arbitration protocol the engines run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum LockVariant {
    /// The ownership-passing protocol: unit-local grant queues plus a global
    /// owner/waiting queue at the master (Central/Hier/SynCron family).
    Ownership,
    /// MCS-style hardware queue lock: a tail pointer at the master, per-waiter
    /// next pointers at the waiters' engines, direct waiter→waiter handoff.
    McsQueue,
}

/// A mechanism's decision layer over the shared component tables.
pub(crate) trait SyncPolicy: std::fmt::Debug + Send {
    /// Where requests for `var` are served: `Hierarchical` routes them through
    /// the requester's local engine (unit-level aggregation), `Flat` sends them
    /// straight to the master engine.
    fn topology(&self, var: Addr) -> Topology;

    /// The engine that arbitrates `var` globally.
    fn master_of(&self, ctx: &dyn SyncContext, var: Addr) -> UnitId {
        ctx.home_unit(var)
    }

    /// The lock arbitration protocol this policy runs.
    fn lock_variant(&self) -> LockVariant {
        LockVariant::Ownership
    }

    /// Whether the engine should feed master-side contention observations to
    /// [`SyncPolicy::observe_contention`]. Static policies skip the probe.
    fn observes_contention(&self) -> bool {
        false
    }

    /// A master engine finished serving a lock message for `var` with `depth`
    /// grantees still queued globally. Adaptive policies may re-decide here;
    /// the engine calls this only for lock-primitive traffic, so barrier
    /// rounds never see their topology change mid-round.
    fn observe_contention(&mut self, var: Addr, depth: u32) {
        let _ = (var, depth);
    }
}

/// Centralized: every variable is served flat at one fixed server unit.
#[derive(Debug)]
pub(crate) struct CentralPolicy {
    server: UnitId,
}

impl SyncPolicy for CentralPolicy {
    fn topology(&self, _var: Addr) -> Topology {
        Topology::Flat
    }

    fn master_of(&self, _ctx: &dyn SyncContext, _var: Addr) -> UnitId {
        self.server
    }
}

/// Hierarchical server-core scheme: local aggregation, home-unit masters.
#[derive(Debug)]
pub(crate) struct HierPolicy;

impl SyncPolicy for HierPolicy {
    fn topology(&self, _var: Addr) -> Topology {
        Topology::Hierarchical
    }
}

/// SynCron proper: hierarchical like [`HierPolicy`] (the SE backend and ST are
/// backend concerns, not placement decisions).
#[derive(Debug)]
pub(crate) struct SynCronPolicy;

impl SyncPolicy for SynCronPolicy {
    fn topology(&self, _var: Addr) -> Topology {
        Topology::Hierarchical
    }
}

/// SynCron's flat ablation: SE backend, but every request goes to the master.
#[derive(Debug)]
pub(crate) struct SynCronFlatPolicy;

impl SyncPolicy for SynCronFlatPolicy {
    fn topology(&self, _var: Addr) -> Topology {
        Topology::Flat
    }
}

/// MCS-style hardware queue lock. Locks run the queue protocol (per-waiter
/// next-pointer components, O(1) handoff, no broadcast wake); the other
/// primitives behave exactly as under [`SynCronPolicy`].
#[derive(Debug)]
pub(crate) struct McsPolicy;

impl SyncPolicy for McsPolicy {
    fn topology(&self, _var: Addr) -> Topology {
        Topology::Hierarchical
    }

    fn lock_variant(&self) -> LockVariant {
        LockVariant::McsQueue
    }
}

/// Adaptive Central↔Hier: every variable starts flat (minimum-latency,
/// Central-style at its home unit) and escalates — stickily, per variable — to
/// hierarchical aggregation once the master observes a global lock queue at
/// least `threshold` deep. Low-contention variables keep the two-hop flat
/// path; hot ones buy the local-aggregation protocol that amortizes global
/// traffic.
#[derive(Debug)]
pub(crate) struct AdaptivePolicy {
    threshold: u32,
    escalated: FxHashSet<Addr>,
}

impl SyncPolicy for AdaptivePolicy {
    fn topology(&self, var: Addr) -> Topology {
        if self.escalated.contains(&var) {
            Topology::Hierarchical
        } else {
            Topology::Flat
        }
    }

    fn observes_contention(&self) -> bool {
        true
    }

    fn observe_contention(&mut self, var: Addr, depth: u32) {
        if depth >= self.threshold {
            self.escalated.insert(var);
        }
    }
}

/// Builds the policy object for a protocol configuration.
pub(crate) fn policy_for(config: &ProtocolConfig) -> Box<dyn SyncPolicy> {
    match config.kind {
        MechanismKind::Central => Box::new(CentralPolicy {
            server: config.fixed_server.unwrap_or(UnitId(0)),
        }),
        MechanismKind::Hier => Box::new(HierPolicy),
        MechanismKind::SynCron => Box::new(SynCronPolicy),
        MechanismKind::SynCronFlat => Box::new(SynCronFlatPolicy),
        MechanismKind::Mcs => Box::new(McsPolicy),
        MechanismKind::Adaptive => Box::new(AdaptivePolicy {
            threshold: config.adaptive_threshold.max(1),
            escalated: FxHashSet::default(),
        }),
        MechanismKind::Ideal => {
            unreachable!("Ideal bypasses the protocol engine and has no policy")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use syncron_sim::Time;

    struct NoCtx;
    impl SyncContext for NoCtx {
        fn now(&self) -> Time {
            Time::ZERO
        }
        fn schedule(&mut self, _at: Time, _unit: UnitId, _token: u64) {}
        fn local_hop(&mut self, _unit: UnitId, _bytes: u64) -> Time {
            Time::ZERO
        }
        fn send_remote(
            &mut self,
            _at: Time,
            _from: UnitId,
            _to: UnitId,
            _bytes: u64,
            _payload: crate::protocol::RemotePayload,
        ) {
        }
        fn recv_hop(&mut self, _unit: UnitId, _bytes: u64) -> Time {
            Time::ZERO
        }
        fn sync_mem_access(
            &mut self,
            _unit: UnitId,
            _addr: Addr,
            _write: bool,
            _cached: bool,
        ) -> Time {
            Time::ZERO
        }
        fn home_unit(&self, addr: Addr) -> UnitId {
            UnitId((addr.0 % 7) as u8)
        }
        fn complete(&mut self, _core: syncron_sim::GlobalCoreId, _at: Time) {}
        fn units(&self) -> usize {
            8
        }
        fn cores_per_unit(&self) -> usize {
            4
        }
    }

    #[test]
    fn every_engine_backed_kind_builds_its_policy() {
        for kind in MechanismKind::ALL {
            if kind == MechanismKind::Ideal {
                continue;
            }
            let config = ProtocolConfig::for_kind(kind, 8, 4);
            let policy = policy_for(&config);
            // The static topology decision matches the config the kind ships.
            let probe = Addr(0x40);
            if !policy.observes_contention() {
                assert_eq!(policy.topology(probe), config.topology, "{kind}");
            }
        }
    }

    #[test]
    fn central_pins_the_fixed_server() {
        let config = ProtocolConfig::for_kind(MechanismKind::Central, 8, 4);
        let policy = policy_for(&config);
        for addr in [0x40u64, 0x80, 0x1234_5678] {
            assert_eq!(policy.master_of(&NoCtx, Addr(addr)), UnitId(0));
        }
    }

    #[test]
    fn adaptive_escalates_stickily_at_threshold() {
        let config =
            ProtocolConfig::for_kind(MechanismKind::Adaptive, 8, 4).with_adaptive_threshold(3);
        let mut policy = policy_for(&config);
        let hot = Addr(0x40);
        let cold = Addr(0x80);
        assert_eq!(policy.topology(hot), Topology::Flat);
        policy.observe_contention(hot, 2);
        assert_eq!(policy.topology(hot), Topology::Flat, "below threshold");
        policy.observe_contention(hot, 3);
        assert_eq!(policy.topology(hot), Topology::Hierarchical, "escalated");
        policy.observe_contention(hot, 0);
        assert_eq!(
            policy.topology(hot),
            Topology::Hierarchical,
            "escalation is sticky"
        );
        assert_eq!(policy.topology(cold), Topology::Flat, "per-variable");
    }

    #[test]
    fn mcs_runs_the_queue_variant_for_locks_only() {
        let config = ProtocolConfig::for_kind(MechanismKind::Mcs, 8, 4);
        let policy = policy_for(&config);
        assert_eq!(policy.lock_variant(), LockVariant::McsQueue);
        assert_eq!(policy.topology(Addr(0x40)), Topology::Hierarchical);
    }
}
