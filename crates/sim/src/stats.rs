//! Statistics primitives used by the evaluation reports.
//!
//! The paper reports execution time, energy broken down into cache / network / memory,
//! data movement inside and across NDP units, and Synchronization Table occupancy
//! (Table 7). The types in this module are the building blocks those reports are
//! assembled from.

use crate::time::Time;
use core::fmt;

/// A simple monotonically increasing event counter.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Counter(pub u64);

impl Counter {
    /// Creates a counter starting at zero.
    pub fn new() -> Self {
        Counter(0)
    }

    /// Increments by one.
    #[inline]
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Increments by `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Returns the current count.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Running scalar statistics: count, sum, mean, min and max.
///
/// # Example
///
/// ```
/// use syncron_sim::stats::Running;
/// let mut r = Running::new();
/// for x in [2.0, 4.0, 6.0] { r.record(x); }
/// assert_eq!(r.mean(), 4.0);
/// assert_eq!(r.max(), 6.0);
/// ```
#[derive(Clone, Copy, Debug, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Running {
    count: u64,
    sum: f64,
    sum_sq: f64,
    min: f64,
    max: f64,
}

impl Running {
    /// Creates an empty statistic.
    pub fn new() -> Self {
        Running {
            count: 0,
            sum: 0.0,
            sum_sq: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        self.sum_sq += x * x;
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of the samples, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Population variance of the samples, or 0.0 if empty.
    pub fn variance(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let mean = self.mean();
        (self.sum_sq / self.count as f64 - mean * mean).max(0.0)
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample, or 0.0 if empty.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample, or 0.0 if empty.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Merges another running statistic into this one.
    pub fn merge(&mut self, other: &Running) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.sum_sq += other.sum_sq;
        if other.min < self.min {
            self.min = other.min;
        }
        if other.max > self.max {
            self.max = other.max;
        }
    }
}

/// A time-weighted average of a piecewise-constant quantity, e.g. the number of
/// occupied Synchronization Table entries over the course of a run (Table 7 of the
/// paper reports both the average and the maximum occupancy).
///
/// Call [`TimeWeighted::update`] every time the quantity changes; the integral is
/// accumulated between updates.
#[derive(Clone, Copy, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TimeWeighted {
    last_time: Time,
    last_value: f64,
    integral: f64,
    max: f64,
    started: bool,
}

impl Default for TimeWeighted {
    fn default() -> Self {
        Self::new()
    }
}

impl TimeWeighted {
    /// Creates an empty time-weighted average starting at value 0 at time 0.
    pub fn new() -> Self {
        TimeWeighted {
            last_time: Time::ZERO,
            last_value: 0.0,
            integral: 0.0,
            max: 0.0,
            started: false,
        }
    }

    /// Records that the tracked quantity changed to `value` at time `now`.
    ///
    /// Updates arriving out of chronological order are clamped: the elapsed interval
    /// is treated as zero (the new value still takes effect).
    pub fn update(&mut self, now: Time, value: f64) {
        if self.started && now > self.last_time {
            let dt = (now - self.last_time).as_ps() as f64;
            self.integral += self.last_value * dt;
        }
        self.last_time = self.last_time.max(now);
        self.last_value = value;
        self.started = true;
        if value > self.max {
            self.max = value;
        }
    }

    /// Returns the time-weighted average of the quantity from time 0 to `end`.
    pub fn average_until(&self, end: Time) -> f64 {
        if end == Time::ZERO {
            return 0.0;
        }
        let mut integral = self.integral;
        if end > self.last_time {
            integral += self.last_value * (end - self.last_time).as_ps() as f64;
        }
        integral / end.as_ps() as f64
    }

    /// Returns the maximum value ever recorded.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Returns the most recently recorded value.
    pub fn current(&self) -> f64 {
        self.last_value
    }
}

/// A fixed-bucket histogram over `u64` samples (linear buckets).
#[derive(Clone, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Histogram {
    bucket_width: u64,
    buckets: Vec<u64>,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with `buckets` linear buckets of width `bucket_width`.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_width` is zero or `buckets` is zero.
    pub fn new(bucket_width: u64, buckets: usize) -> Self {
        assert!(bucket_width > 0 && buckets > 0);
        Histogram {
            bucket_width,
            buckets: vec![0; buckets],
            overflow: 0,
            total: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.total += 1;
        let idx = (value / self.bucket_width) as usize;
        if idx < self.buckets.len() {
            self.buckets[idx] += 1;
        } else {
            self.overflow += 1;
        }
    }

    /// Number of samples recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of samples that fell beyond the last bucket.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Returns the count in bucket `i`.
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets.get(i).copied().unwrap_or(0)
    }

    /// Returns the value below which `q` (0..=1) of the samples fall, approximated at
    /// bucket granularity. Returns `None` if the histogram is empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64;
        let mut acc = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            acc += c;
            if acc >= target {
                return Some((i as u64 + 1) * self.bucket_width);
            }
        }
        Some(self.buckets.len() as u64 * self.bucket_width)
    }
}

/// Number of sub-bucket bits of a [`LogHistogram`]: every power-of-two range is
/// split into `2^LOG_HIST_SUB_BITS` equal sub-buckets, bounding the relative
/// quantization error to `2^-LOG_HIST_SUB_BITS` (~3%).
pub const LOG_HIST_SUB_BITS: u32 = 5;

const LOG_SUB_BUCKETS: u64 = 1 << LOG_HIST_SUB_BITS;

/// An HDR-style log2-bucketed histogram over `u64` samples.
///
/// Unlike the linear [`Histogram`], whose fixed `bucket_width` loses all tail
/// resolution once samples span several orders of magnitude, this histogram keeps a
/// bounded *relative* error everywhere: values below `2^LOG_HIST_SUB_BITS` get exact
/// unit-width buckets, and every higher power-of-two range is split into
/// `2^LOG_HIST_SUB_BITS` sub-buckets. The whole `u64` range fits in fewer than 2048
/// buckets, allocated lazily, so per-core instances stay cheap at large geometries.
///
/// Quantiles are interpolated linearly inside the resolved bucket and clamped to the
/// recorded min/max, which makes p50/p99/p999 usable for tail-latency reporting.
/// All arithmetic is integer or exactly-reproducible `f64`, so two runs recording
/// the same samples report bit-identical quantiles.
///
/// # Example
///
/// ```
/// use syncron_sim::stats::LogHistogram;
/// let mut h = LogHistogram::new();
/// for v in 1..=1000u64 {
///     h.record(v);
/// }
/// let p50 = h.quantile(0.5).unwrap();
/// assert!((p50 - 500.0).abs() / 500.0 < 0.05);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LogHistogram {
    buckets: Vec<u64>,
    total: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl LogHistogram {
    /// Creates an empty histogram. All instances share one bucket geometry
    /// ([`LOG_HIST_SUB_BITS`]), so any two histograms can be [merged](Self::merge).
    pub fn new() -> Self {
        LogHistogram {
            buckets: Vec::new(),
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// The bucket index `value` falls into.
    #[inline]
    fn index_of(value: u64) -> usize {
        if value < LOG_SUB_BUCKETS {
            return value as usize;
        }
        let h = 63 - value.leading_zeros() as u64; // value in [2^h, 2^(h+1))
        let sub = (value >> (h - LOG_HIST_SUB_BITS as u64)) - LOG_SUB_BUCKETS;
        (((h - LOG_HIST_SUB_BITS as u64 + 1) << LOG_HIST_SUB_BITS) + sub) as usize
    }

    /// Inclusive lower bound and exclusive upper bound of bucket `idx`.
    fn bucket_bounds(idx: usize) -> (u64, u64) {
        let idx = idx as u64;
        let block = idx >> LOG_HIST_SUB_BITS;
        if block <= 1 {
            // Unit-width buckets: values 0..2^(SUB_BITS+1) map to themselves.
            return (idx, idx + 1);
        }
        let h = block + LOG_HIST_SUB_BITS as u64 - 1;
        let sub = idx & (LOG_SUB_BUCKETS - 1);
        let width = 1u64 << (h - LOG_HIST_SUB_BITS as u64);
        let lower = (LOG_SUB_BUCKETS + sub) << (h - LOG_HIST_SUB_BITS as u64);
        (lower, lower.saturating_add(width))
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `count` identical samples.
    pub fn record_n(&mut self, value: u64, count: u64) {
        if count == 0 {
            return;
        }
        let idx = Self::index_of(value);
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += count;
        self.total += count;
        self.sum += value as u128 * count as u128;
        if value < self.min {
            self.min = value;
        }
        if value > self.max {
            self.max = value;
        }
    }

    /// Number of samples recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Smallest recorded sample, or 0 if empty.
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample, or 0 if empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of the recorded samples, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Merges another histogram into this one (same implicit bucket geometry).
    pub fn merge(&mut self, other: &LogHistogram) {
        if other.total == 0 {
            return;
        }
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.total += other.total;
        self.sum += other.sum;
        if other.min < self.min {
            self.min = other.min;
        }
        if other.max > self.max {
            self.max = other.max;
        }
    }

    /// Returns the value below which `q` (0..=1) of the samples fall, interpolated
    /// linearly inside the resolved bucket and clamped to the recorded min/max.
    /// Returns `None` if the histogram is empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let target = q.clamp(0.0, 1.0) * self.total as f64;
        let mut acc = 0u64;
        for (idx, &count) in self.buckets.iter().enumerate() {
            if count == 0 {
                continue;
            }
            let next = acc + count;
            if (next as f64) >= target {
                let (lower, upper) = Self::bucket_bounds(idx);
                let within = ((target - acc as f64) / count as f64).clamp(0.0, 1.0);
                let value = lower as f64 + within * (upper - lower) as f64;
                return Some(value.clamp(self.min as f64, self.max as f64));
            }
            acc = next;
        }
        Some(self.max as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(format!("{c}"), "5");
    }

    #[test]
    fn running_mean_min_max() {
        let mut r = Running::new();
        assert_eq!(r.mean(), 0.0);
        for x in [1.0, 2.0, 3.0, 4.0] {
            r.record(x);
        }
        assert_eq!(r.count(), 4);
        assert_eq!(r.mean(), 2.5);
        assert_eq!(r.min(), 1.0);
        assert_eq!(r.max(), 4.0);
        assert!((r.variance() - 1.25).abs() < 1e-9);
    }

    #[test]
    fn running_merge() {
        let mut a = Running::new();
        let mut b = Running::new();
        for x in [1.0, 2.0] {
            a.record(x);
        }
        for x in [3.0, 4.0] {
            b.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.mean(), 2.5);
        assert_eq!(a.max(), 4.0);
    }

    #[test]
    fn time_weighted_average() {
        let mut tw = TimeWeighted::new();
        tw.update(Time::from_ps(0), 2.0);
        tw.update(Time::from_ps(10), 4.0);
        // 2.0 for 10ps, then 4.0 for 10ps → average 3.0 at t=20.
        assert!((tw.average_until(Time::from_ps(20)) - 3.0).abs() < 1e-9);
        assert_eq!(tw.max(), 4.0);
        assert_eq!(tw.current(), 4.0);
    }

    #[test]
    fn time_weighted_out_of_order_updates_do_not_panic() {
        let mut tw = TimeWeighted::new();
        tw.update(Time::from_ps(100), 1.0);
        tw.update(Time::from_ps(50), 5.0); // late update: interval ignored
        assert_eq!(tw.max(), 5.0);
        let avg = tw.average_until(Time::from_ps(200));
        assert!(avg > 0.0);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = Histogram::new(10, 10);
        for v in [1, 5, 15, 25, 95, 1000] {
            h.record(v);
        }
        assert_eq!(h.total(), 6);
        assert_eq!(h.bucket(0), 2);
        assert_eq!(h.bucket(1), 1);
        assert_eq!(h.overflow(), 1);
        assert!(h.quantile(0.5).unwrap() <= 30);
        assert_eq!(Histogram::new(10, 4).quantile(0.5), None);
    }

    #[test]
    fn log_histogram_small_values_are_exact() {
        let mut h = LogHistogram::new();
        for v in 0..32 {
            h.record(v);
        }
        assert_eq!(h.total(), 32);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 31);
        // Below 2^LOG_HIST_SUB_BITS every value has its own unit bucket, so
        // quantiles are exact (up to interpolation inside a width-1 bucket).
        let median = h.quantile(0.5).unwrap();
        assert!((15.0..=16.0).contains(&median), "median {median}");
    }

    #[test]
    fn log_histogram_bounds_relative_error() {
        let mut h = LogHistogram::new();
        // Across five decades, any recorded value must be reconstructible from
        // its bucket to within one sub-bucket width (~3% relative error).
        let mut v = 1u64;
        while v < 10_000_000 {
            h.record(v);
            let q = h.quantile(1.0).unwrap();
            let rel = (q - v as f64).abs() / v as f64;
            assert!(rel <= 1.0 / 32.0 + 1e-9, "value {v}: quantile {q}");
            v = v * 7 / 3 + 1;
        }
    }

    #[test]
    fn log_histogram_mean_min_max_and_merge() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        for v in [3u64, 700, 40_000] {
            a.record(v);
        }
        b.record_n(9, 5);
        let mean_a = a.mean();
        assert!((mean_a - (3.0 + 700.0 + 40_000.0) / 3.0).abs() < 1e-9);
        a.merge(&b);
        assert_eq!(a.total(), 8);
        assert_eq!(a.min(), 3);
        assert_eq!(a.max(), 40_000);
        assert!((a.mean() - (3.0 + 700.0 + 40_000.0 + 9.0 * 5.0) / 8.0).abs() < 1e-9);
        // Merging into an empty histogram reproduces the source summary.
        let mut c = LogHistogram::new();
        c.merge(&a);
        assert_eq!(c, a);
    }

    #[test]
    fn log_histogram_quantiles_are_monotone_and_clamped() {
        let mut h = LogHistogram::new();
        for i in 1..=1000u64 {
            h.record(i * i);
        }
        let mut last = 0.0f64;
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let v = h.quantile(q).unwrap();
            assert!(v >= last, "quantile({q}) = {v} < {last}");
            last = v;
        }
        assert!(h.quantile(0.0).unwrap() >= h.min() as f64);
        assert!(h.quantile(1.0).unwrap() <= h.max() as f64);
        assert_eq!(LogHistogram::new().quantile(0.5), None);
    }

    #[test]
    fn log_histogram_handles_extreme_values() {
        let mut h = LogHistogram::new();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.total(), 2);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), u64::MAX);
        assert!(h.quantile(1.0).unwrap() <= u64::MAX as f64);
    }
}
