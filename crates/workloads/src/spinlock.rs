//! Coherence-based spin locks and the MESI-lock stack.
//!
//! These workloads reproduce the paper's *motivational* experiments, which show why
//! coherence-based synchronization is a poor fit for NDP systems:
//!
//! * **Table 1** — throughput of a TTAS lock and a hierarchical ticket lock (HTL) on a
//!   two-socket server, with 1 or 14 threads in one socket and 2 threads pinned to the
//!   same or different sockets ([`SpinLockBench`]).
//! * **Figure 2** — slowdown of a stack protected by a coarse-grained `mesi-lock`
//!   (a TTAS lock over a MESI directory protocol) relative to an ideal zero-cost lock,
//!   as the number of NDP cores and NDP units grows ([`LockedStack`]).
//!
//! The spin locks are built from [`Action::Rmw`] / [`Action::Load`] / [`Action::Store`]
//! actions on shared read-write data and therefore only make sense under
//! [`CoherenceMode::MesiDirectory`](syncron_system::config::CoherenceMode).

use std::sync::Arc;
use std::sync::Mutex;

use syncron_core::request::SyncRequest;
use syncron_sim::time::Time;
use syncron_sim::{Addr, GlobalCoreId, UnitId};
use syncron_system::address::AddressSpace;
use syncron_system::config::NdpConfig;
use syncron_system::workload::{Action, CoreProgram, Workload};

/// Which spin-lock algorithm to run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SpinKind {
    /// Test-and-test-and-set lock.
    Ttas,
    /// Hierarchical ticket lock: a per-socket ticket lock nested under a global one.
    HierarchicalTicket,
}

impl SpinKind {
    /// Short name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            SpinKind::Ttas => "TTAS",
            SpinKind::HierarchicalTicket => "HTL",
        }
    }
}

/// How the active threads of a [`SpinLockBench`] are placed on the sockets/units.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Placement {
    /// Fill the first socket/unit before using the next (Table 1's "single-socket").
    Packed,
    /// Round-robin across sockets/units (Table 1's "different-socket").
    Spread,
}

/// Functional state of one spin lock, shared between the simulated cores.
#[derive(Debug, Default)]
struct SpinState {
    held: bool,
    next_ticket: u64,
    now_serving: u64,
}

/// The lock microbenchmark of Table 1: `active` threads repeatedly acquire and release
/// one global lock with an empty critical section.
#[derive(Clone, Copy, Debug)]
pub struct SpinLockBench {
    /// Which lock algorithm to use.
    pub kind: SpinKind,
    /// Number of active threads; the remaining client cores stay idle.
    pub active: usize,
    /// Thread placement across sockets/units.
    pub placement: Placement,
    /// Lock acquisitions per active thread.
    pub iterations: u32,
    /// Instructions of think time between acquisitions.
    pub interval: u64,
}

impl SpinLockBench {
    /// Creates the benchmark.
    pub fn new(kind: SpinKind, active: usize, placement: Placement, iterations: u32) -> Self {
        SpinLockBench {
            kind,
            active,
            placement,
            iterations,
            interval: 50,
        }
    }
}

#[derive(Debug, Default)]
struct HtlShared {
    global: SpinState,
    per_unit: Vec<SpinState>,
}

enum SpinProgramKind {
    Idle,
    Ttas {
        lock: Addr,
        state: Arc<Mutex<SpinState>>,
    },
    Htl {
        global_lock: Addr,
        local_lock: Addr,
        state: Arc<Mutex<HtlShared>>,
        my_global_ticket: u64,
        my_local_ticket: u64,
    },
}

/// Phases of a spin-lock acquire/release cycle.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum SpinPhase {
    Think,
    TryLocal,
    SpinLocal,
    TryGlobal,
    SpinGlobal,
    Release,
}

struct SpinProgram {
    kind: SpinProgramKind,
    phase: SpinPhase,
    remaining: u32,
    interval: u64,
    ops: u64,
    got_it: bool,
}

impl SpinProgram {
    fn idle() -> Self {
        SpinProgram {
            kind: SpinProgramKind::Idle,
            phase: SpinPhase::Think,
            remaining: 0,
            interval: 0,
            ops: 0,
            got_it: false,
        }
    }
}

impl CoreProgram for SpinProgram {
    fn step(&mut self, core: GlobalCoreId, _now: Time) -> Action {
        if self.remaining == 0 {
            return Action::Done;
        }
        match &mut self.kind {
            SpinProgramKind::Idle => Action::Done,
            SpinProgramKind::Ttas { lock, state } => match self.phase {
                SpinPhase::Think => {
                    self.phase = SpinPhase::TryGlobal;
                    Action::Compute {
                        instrs: self.interval.max(1),
                    }
                }
                SpinPhase::TryGlobal => {
                    // Test-and-set: the functional outcome is decided when the RMW is
                    // issued; its latency is charged by the MESI model.
                    let mut s = state.lock().expect("workload state poisoned");
                    if s.held {
                        self.got_it = false;
                    } else {
                        s.held = true;
                        self.got_it = true;
                    }
                    self.phase = if self.got_it {
                        SpinPhase::Release
                    } else {
                        SpinPhase::SpinGlobal
                    };
                    Action::Rmw { addr: *lock }
                }
                SpinPhase::SpinGlobal => {
                    // Test: spin with loads until the lock looks free, then retry.
                    if state.lock().expect("workload state poisoned").held {
                        Action::Load { addr: *lock }
                    } else {
                        self.phase = SpinPhase::TryGlobal;
                        Action::Load { addr: *lock }
                    }
                }
                SpinPhase::Release => {
                    state.lock().expect("workload state poisoned").held = false;
                    self.phase = SpinPhase::Think;
                    self.remaining -= 1;
                    self.ops += 1;
                    Action::Store { addr: *lock }
                }
                _ => unreachable!("TTAS never uses local phases"),
            },
            SpinProgramKind::Htl {
                global_lock,
                local_lock,
                state,
                my_global_ticket,
                my_local_ticket,
            } => {
                let unit = core.unit.index();
                match self.phase {
                    SpinPhase::Think => {
                        self.phase = SpinPhase::TryLocal;
                        Action::Compute {
                            instrs: self.interval.max(1),
                        }
                    }
                    SpinPhase::TryLocal => {
                        let mut s = state.lock().expect("workload state poisoned");
                        *my_local_ticket = s.per_unit[unit].next_ticket;
                        s.per_unit[unit].next_ticket += 1;
                        self.phase = SpinPhase::SpinLocal;
                        Action::Rmw { addr: *local_lock }
                    }
                    SpinPhase::SpinLocal => {
                        let serving = state.lock().expect("workload state poisoned").per_unit[unit]
                            .now_serving;
                        if serving == *my_local_ticket {
                            self.phase = SpinPhase::TryGlobal;
                        }
                        Action::Load { addr: *local_lock }
                    }
                    SpinPhase::TryGlobal => {
                        let mut s = state.lock().expect("workload state poisoned");
                        *my_global_ticket = s.global.next_ticket;
                        s.global.next_ticket += 1;
                        self.phase = SpinPhase::SpinGlobal;
                        Action::Rmw { addr: *global_lock }
                    }
                    SpinPhase::SpinGlobal => {
                        let serving = state
                            .lock()
                            .expect("workload state poisoned")
                            .global
                            .now_serving;
                        if serving == *my_global_ticket {
                            self.phase = SpinPhase::Release;
                        }
                        Action::Load { addr: *global_lock }
                    }
                    SpinPhase::Release => {
                        let mut s = state.lock().expect("workload state poisoned");
                        s.global.now_serving += 1;
                        s.per_unit[unit].now_serving += 1;
                        self.phase = SpinPhase::Think;
                        self.remaining -= 1;
                        self.ops += 1;
                        Action::Store { addr: *global_lock }
                    }
                }
            }
        }
    }

    fn ops_completed(&self) -> u64 {
        self.ops
    }
}

impl Workload for SpinLockBench {
    fn name(&self) -> String {
        format!(
            "{}.{}threads.{}",
            self.kind.name(),
            self.active,
            match self.placement {
                Placement::Packed => "packed",
                Placement::Spread => "spread",
            }
        )
    }

    fn build(
        &self,
        space: &mut AddressSpace,
        config: &NdpConfig,
        clients: &[GlobalCoreId],
    ) -> Vec<Box<dyn CoreProgram>> {
        let global_lock = space.allocate_shared_rw(64, UnitId(0));
        let local_locks: Vec<Addr> = (0..config.units)
            .map(|u| space.allocate_shared_rw(64, UnitId(u as u8)))
            .collect();
        let ttas_state = Arc::new(Mutex::new(SpinState::default()));
        let htl_state = Arc::new(Mutex::new(HtlShared {
            global: SpinState::default(),
            per_unit: (0..config.units).map(|_| SpinState::default()).collect(),
        }));

        // Choose which client cores are active according to the placement policy.
        let mut ordered: Vec<usize> = (0..clients.len()).collect();
        if self.placement == Placement::Spread {
            // Round-robin across units: sort by local core index first.
            ordered.sort_by_key(|&i| (clients[i].core.index(), clients[i].unit.index()));
        }
        let active: std::collections::HashSet<usize> =
            ordered.into_iter().take(self.active).collect();

        clients
            .iter()
            .enumerate()
            .map(|(i, c)| {
                if !active.contains(&i) {
                    return Box::new(SpinProgram::idle()) as Box<dyn CoreProgram>;
                }
                let kind = match self.kind {
                    SpinKind::Ttas => SpinProgramKind::Ttas {
                        lock: global_lock,
                        state: Arc::clone(&ttas_state),
                    },
                    SpinKind::HierarchicalTicket => SpinProgramKind::Htl {
                        global_lock,
                        local_lock: local_locks[c.unit.index()],
                        state: Arc::clone(&htl_state),
                        my_global_ticket: 0,
                        my_local_ticket: 0,
                    },
                };
                Box::new(SpinProgram {
                    kind,
                    phase: SpinPhase::Think,
                    remaining: self.iterations,
                    interval: self.interval,
                    ops: 0,
                    got_it: false,
                }) as Box<dyn CoreProgram>
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Figure 2: stack protected by a coarse-grained lock
// ---------------------------------------------------------------------------

/// Which lock protects the stack of Figure 2.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StackLock {
    /// A TTAS spin lock over MESI coherence (`mesi-lock`).
    MesiSpin,
    /// The simulated synchronization mechanism's lock primitive (used with the Ideal
    /// mechanism this is the paper's `ideal-lock`).
    SyncPrimitive,
}

/// A stack protected by one coarse-grained lock; every core performs `pushes` push
/// operations (Figure 2 and the `stack` data structure of Figure 11 use the same
/// structure; this variant exists to compare lock implementations).
#[derive(Clone, Copy, Debug)]
pub struct LockedStack {
    /// Lock implementation.
    pub lock: StackLock,
    /// Push operations per core.
    pub pushes: u32,
    /// Instructions of think time between operations.
    pub interval: u64,
}

impl LockedStack {
    /// Creates the workload.
    pub fn new(lock: StackLock, pushes: u32) -> Self {
        LockedStack {
            lock,
            pushes,
            interval: 40,
        }
    }
}

#[derive(Debug)]
struct StackShared {
    top: u64,
    lock_state: SpinState,
}

struct LockedStackProgram {
    lock_impl: StackLock,
    lock_addr: Addr,
    top_addr: Addr,
    nodes_base: Addr,
    shared: Arc<Mutex<StackShared>>,
    interval: u64,
    remaining: u32,
    phase: u8,
    got_it: bool,
    ops: u64,
}

impl CoreProgram for LockedStackProgram {
    fn step(&mut self, _core: GlobalCoreId, _now: Time) -> Action {
        if self.remaining == 0 {
            return Action::Done;
        }
        match self.phase {
            // Think time.
            0 => {
                self.phase = 1;
                Action::Compute {
                    instrs: self.interval.max(1),
                }
            }
            // Acquire the lock.
            1 => match self.lock_impl {
                StackLock::SyncPrimitive => {
                    self.phase = 3;
                    Action::Sync(SyncRequest::LockAcquire {
                        var: self.lock_addr,
                    })
                }
                StackLock::MesiSpin => {
                    let mut s = self.shared.lock().expect("workload state poisoned");
                    if s.lock_state.held {
                        self.got_it = false;
                    } else {
                        s.lock_state.held = true;
                        self.got_it = true;
                    }
                    self.phase = if self.got_it { 3 } else { 2 };
                    Action::Rmw {
                        addr: self.lock_addr,
                    }
                }
            },
            // Spin until the lock looks free (MESI lock only).
            2 => {
                if self
                    .shared
                    .lock()
                    .expect("workload state poisoned")
                    .lock_state
                    .held
                {
                    Action::Load {
                        addr: self.lock_addr,
                    }
                } else {
                    self.phase = 1;
                    Action::Load {
                        addr: self.lock_addr,
                    }
                }
            }
            // Critical section: read top, write the new node, update top.
            3 => {
                self.phase = 4;
                Action::Load {
                    addr: self.top_addr,
                }
            }
            4 => {
                let mut s = self.shared.lock().expect("workload state poisoned");
                s.top += 1;
                let node = self.nodes_base.offset((s.top % 4096) * 64);
                self.phase = 5;
                Action::Store { addr: node }
            }
            5 => {
                self.phase = 6;
                Action::Store {
                    addr: self.top_addr,
                }
            }
            // Release the lock.
            _ => {
                self.phase = 0;
                self.remaining -= 1;
                self.ops += 1;
                match self.lock_impl {
                    StackLock::SyncPrimitive => Action::Sync(SyncRequest::LockRelease {
                        var: self.lock_addr,
                    }),
                    StackLock::MesiSpin => {
                        self.shared
                            .lock()
                            .expect("workload state poisoned")
                            .lock_state
                            .held = false;
                        Action::Store {
                            addr: self.lock_addr,
                        }
                    }
                }
            }
        }
    }

    fn ops_completed(&self) -> u64 {
        self.ops
    }
}

impl Workload for LockedStack {
    fn name(&self) -> String {
        match self.lock {
            StackLock::MesiSpin => "stack.mesi-lock".into(),
            StackLock::SyncPrimitive => "stack.sync-lock".into(),
        }
    }

    fn build(
        &self,
        space: &mut AddressSpace,
        _config: &NdpConfig,
        clients: &[GlobalCoreId],
    ) -> Vec<Box<dyn CoreProgram>> {
        let lock_addr = space.allocate_shared_rw(64, UnitId(0));
        let top_addr = space.allocate_shared_rw(64, UnitId(0));
        let nodes_base = space.allocate_shared_rw(64 * 4096, UnitId(0));
        let shared = Arc::new(Mutex::new(StackShared {
            top: 0,
            lock_state: SpinState::default(),
        }));
        clients
            .iter()
            .map(|_| {
                Box::new(LockedStackProgram {
                    lock_impl: self.lock,
                    lock_addr,
                    top_addr,
                    nodes_base,
                    shared: Arc::clone(&shared),
                    interval: self.interval,
                    remaining: self.pushes,
                    phase: 0,
                    got_it: false,
                    ops: 0,
                }) as Box<dyn CoreProgram>
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use syncron_core::MechanismKind;
    use syncron_system::config::CoherenceMode;
    use syncron_system::run_workload;

    fn mesi_config(units: usize, cores: usize) -> NdpConfig {
        NdpConfig::builder()
            .units(units)
            .cores_per_unit(cores)
            .coherence(CoherenceMode::MesiDirectory)
            .mechanism(MechanismKind::Ideal)
            .reserve_server_core(false)
            .build()
            .expect("valid config")
    }

    #[test]
    fn ttas_bench_completes_and_counts_ops() {
        let bench = SpinLockBench::new(SpinKind::Ttas, 4, Placement::Packed, 20);
        let report = run_workload(&mesi_config(2, 4), &bench);
        assert!(report.completed);
        assert_eq!(report.total_ops, 4 * 20);
    }

    #[test]
    fn htl_bench_completes() {
        let bench = SpinLockBench::new(SpinKind::HierarchicalTicket, 4, Placement::Spread, 10);
        let report = run_workload(&mesi_config(2, 4), &bench);
        assert!(report.completed);
        assert_eq!(report.total_ops, 40);
    }

    #[test]
    fn single_thread_scales_down_gracefully() {
        let bench = SpinLockBench::new(SpinKind::Ttas, 1, Placement::Packed, 50);
        let report = run_workload(&mesi_config(2, 4), &bench);
        assert!(report.completed);
        assert_eq!(report.total_ops, 50);
    }

    #[test]
    fn contended_ttas_has_lower_per_thread_throughput() {
        // Table 1's trend: per-thread throughput collapses as threads are added.
        let one = run_workload(
            &mesi_config(1, 14),
            &SpinLockBench::new(SpinKind::Ttas, 1, Placement::Packed, 30),
        );
        let many = run_workload(
            &mesi_config(1, 14),
            &SpinLockBench::new(SpinKind::Ttas, 14, Placement::Packed, 30),
        );
        let one_tp = one.ops_per_ms();
        let many_tp = many.ops_per_ms() / 14.0;
        assert!(
            many_tp < one_tp,
            "per-thread throughput should drop: 1-thread {one_tp:.0} vs 14-thread {many_tp:.0}"
        );
    }

    #[test]
    fn cross_socket_threads_are_slower_than_same_socket() {
        let same = run_workload(
            &mesi_config(2, 14),
            &SpinLockBench::new(SpinKind::Ttas, 2, Placement::Packed, 30),
        );
        let cross = run_workload(
            &mesi_config(2, 14),
            &SpinLockBench::new(SpinKind::Ttas, 2, Placement::Spread, 30),
        );
        assert!(
            cross.sim_time > same.sim_time,
            "cross-socket {} should be slower than same-socket {}",
            cross.sim_time,
            same.sim_time
        );
    }

    #[test]
    fn mesi_stack_slower_than_ideal_lock_stack() {
        // Figure 2's headline: the MESI lock slows the stack down relative to an ideal
        // zero-cost lock, and more so with more NDP units.
        let mesi = run_workload(
            &mesi_config(2, 8),
            &LockedStack::new(StackLock::MesiSpin, 20),
        );
        let ideal_cfg = NdpConfig::builder()
            .units(2)
            .cores_per_unit(8)
            .mechanism(MechanismKind::Ideal)
            .reserve_server_core(false)
            .build()
            .expect("valid config");
        let ideal = run_workload(&ideal_cfg, &LockedStack::new(StackLock::SyncPrimitive, 20));
        assert!(mesi.completed && ideal.completed);
        assert!(
            mesi.sim_time > ideal.sim_time,
            "mesi-lock {} vs ideal-lock {}",
            mesi.sim_time,
            ideal.sim_time
        );
    }

    #[test]
    fn names_reflect_configuration() {
        assert!(SpinLockBench::new(SpinKind::Ttas, 2, Placement::Spread, 1)
            .name()
            .contains("TTAS"));
        assert_eq!(
            LockedStack::new(StackLock::MesiSpin, 1).name(),
            "stack.mesi-lock"
        );
    }
}
