//! Scaling sensitivity beyond Figure 13's range: 4 → 64 NDP units (up to 1024
//! cores) under the four compared schemes.
fn main() {
    syncron_bench::experiments::sensitivity::scaling_beyond_fig13().print();
}
