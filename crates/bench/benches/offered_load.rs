//! Offered-load sweep: the open-loop sharded-KV service under climbing Poisson
//! arrival rates, all compared schemes. Prints the latency table and the
//! per-mechanism saturation knees (see EXPERIMENTS.md, "Offered load vs.
//! saturation").

use syncron_bench::experiments::service;

fn main() {
    let points = service::measure();
    service::offered_load_table(&points).print();
}
