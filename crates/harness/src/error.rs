//! Harness error type.

use std::fmt;

/// Errors produced while parsing, expanding or running scenarios.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HarnessError {
    /// A workload or config specification was invalid (unknown name, bad field type).
    Spec(String),
    /// A scenario document failed to parse (JSON/TOML syntax or missing sections).
    Parse(String),
    /// A machine configuration was rejected by geometry validation; the message names
    /// the offending field (see `syncron_system::config::ConfigError`).
    Config(String),
    /// Two scenarios in one run set share a label, which would break keyed lookup.
    DuplicateLabel(String),
    /// Reading or writing a scenario/result file failed.
    Io(String),
}

impl HarnessError {
    /// Builds a [`HarnessError::Spec`].
    pub fn spec(message: impl Into<String>) -> Self {
        HarnessError::Spec(message.into())
    }

    /// Builds a [`HarnessError::Parse`].
    pub fn parse(message: impl Into<String>) -> Self {
        HarnessError::Parse(message.into())
    }

    /// Builds a [`HarnessError::Io`].
    pub fn io(message: impl Into<String>) -> Self {
        HarnessError::Io(message.into())
    }
}

impl fmt::Display for HarnessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HarnessError::Spec(m) => write!(f, "invalid specification: {m}"),
            HarnessError::Parse(m) => write!(f, "parse error: {m}"),
            HarnessError::Config(m) => write!(f, "{m}"),
            HarnessError::DuplicateLabel(l) => {
                write!(f, "duplicate scenario label '{l}' in one run set")
            }
            HarnessError::Io(m) => write!(f, "io error: {m}"),
        }
    }
}

impl std::error::Error for HarnessError {}
