//! Regenerates Figure 21 of the paper (SynCron vs flat, sync-intensive and high contention).
fn main() {
    syncron_bench::experiments::sensitivity::fig21().print();
}
