//! Time-series analysis (SCRIMP-style matrix profile).
//!
//! The paper's third application class (Table 6) is time-series motif discovery using
//! SCRIMP over the Matrix Profile datasets (air quality, power consumption). Input data
//! is replicated in every NDP unit (read-only, cacheable); the output matrix-profile
//! array is read-write data partitioned across units and protected by fine-grained
//! locks; cores process diagonals of the distance matrix and meet at barriers between
//! batches. The paper notes this workload has the highest *synchronization intensity*
//! of the evaluated applications — the ratio of synchronization to computation is high,
//! which is why it benefits the most from SynCron's direct ST buffering (Figures 12,
//! 18 and 21a).
//!
//! The real Matrix Profile datasets are replaced by a synthetic random-walk series with
//! embedded motifs; the synchronization behaviour depends only on the update pattern of
//! the profile array, not on the data values (see `DESIGN.md`).

use std::collections::VecDeque;

use crate::script::{build, OpGenerator, ScriptProgram};
use syncron_core::request::{BarrierScope, SyncRequest};
use syncron_sim::rng::SimRng;
use syncron_sim::{Addr, GlobalCoreId};
use syncron_system::address::{AddressSpace, DataClass};
use syncron_system::config::NdpConfig;
use syncron_system::workload::{Action, CoreProgram, Workload};

/// A SCRIMP-style matrix-profile workload over a synthetic time series.
#[derive(Clone, Copy, Debug)]
pub struct TimeSeries {
    /// Label used in reports (the paper's dataset abbreviations "air" and "pow").
    pub name: &'static str,
    /// Length of the time series (number of subsequences in the profile).
    pub length: usize,
    /// Subsequence (window) length.
    pub window: usize,
    /// Diagonals processed per client core.
    pub diagonals_per_core: u32,
    /// Maximum number of profile entries evaluated per diagonal.
    pub diagonal_span: usize,
}

impl TimeSeries {
    /// The synthetic stand-in for the air-quality dataset (shorter series, more
    /// frequent profile updates).
    pub fn air() -> Self {
        TimeSeries {
            name: "air",
            length: 2_048,
            window: 64,
            diagonals_per_core: 6,
            diagonal_span: 192,
        }
    }

    /// The synthetic stand-in for the power-consumption dataset (longer series).
    pub fn pow() -> Self {
        TimeSeries {
            name: "pow",
            length: 3_072,
            window: 96,
            diagonals_per_core: 6,
            diagonal_span: 224,
        }
    }

    /// Looks up a dataset by its label.
    pub fn by_name(name: &str) -> Option<TimeSeries> {
        match name {
            "air" => Some(TimeSeries::air()),
            "pow" => Some(TimeSeries::pow()),
            _ => None,
        }
    }

    /// Scales the amount of work per core (used by quick examples and tests).
    pub fn with_diagonals_per_core(mut self, diagonals: u32) -> Self {
        self.diagonals_per_core = diagonals;
        self
    }
}

struct TsLayout {
    series_parts: Vec<Addr>,
    profile_parts: Vec<Addr>,
    lock_parts: Vec<Addr>,
    per_unit: u64,
    units: usize,
}

impl TsLayout {
    fn series(&self, unit: usize, i: u64) -> Addr {
        self.series_parts[unit].offset((i / 8 % self.per_unit) * 64)
    }
    fn profile(&self, i: u64) -> Addr {
        let unit = (i % self.units as u64) as usize;
        self.profile_parts[unit].offset((i / self.units as u64 % self.per_unit) * 64)
    }
    fn lock(&self, i: u64) -> Addr {
        let unit = (i % self.units as u64) as usize;
        self.lock_parts[unit].offset((i / self.units as u64 % self.per_unit) * 64)
    }
}

struct TsGen {
    layout: std::sync::Arc<TsLayout>,
    cfg: TimeSeries,
    barrier: Addr,
    participants: u32,
    my_unit: usize,
    rng: SimRng,
    remaining: u32,
}

impl OpGenerator for TsGen {
    fn next_op(&mut self, _core: GlobalCoreId, script: &mut VecDeque<Action>) -> bool {
        if self.remaining == 0 {
            return false;
        }
        self.remaining -= 1;
        let n = (self.cfg.length - self.cfg.window).max(2) as u64;
        // SCRIMP processes random diagonals of the distance matrix.
        let diag = 1 + self.rng.gen_range(n - 1);
        let span = (n - diag).min(self.cfg.diagonal_span as u64);
        // The probability that a dot product improves the best-so-far profile entry
        // decays as the profile converges; early diagonals update often.
        let update_probability = 0.35;

        for step in 0..span {
            let i = step;
            let j = step + diag;
            // Incremental dot-product update: two cacheable reads of the replicated
            // series plus a handful of arithmetic instructions.
            build::compute(script, 12);
            build::load(
                script,
                self.layout.series(self.my_unit, i + self.cfg.window as u64),
            );
            build::load(
                script,
                self.layout.series(self.my_unit, j + self.cfg.window as u64),
            );
            // Check the current profile entries (uncacheable shared data).
            build::load(script, self.layout.profile(i));
            if self.rng.gen_bool(update_probability) {
                build::lock(script, self.layout.lock(i));
                build::store(script, self.layout.profile(i));
                build::unlock(script, self.layout.lock(i));
            }
            if self.rng.gen_bool(update_probability * 0.6) {
                build::lock(script, self.layout.lock(j));
                build::store(script, self.layout.profile(j));
                build::unlock(script, self.layout.lock(j));
            }
        }
        // Cores meet at a barrier after every batch of diagonals.
        script.push_back(Action::Sync(SyncRequest::BarrierWait {
            var: self.barrier,
            participants: self.participants,
            scope: BarrierScope::AcrossUnits,
        }));
        true
    }
}

impl Workload for TimeSeries {
    fn name(&self) -> String {
        format!("ts.{}", self.name)
    }

    fn build(
        &self,
        space: &mut AddressSpace,
        config: &NdpConfig,
        clients: &[GlobalCoreId],
    ) -> Vec<Box<dyn CoreProgram>> {
        let per_unit = (self.length as u64 / config.units as u64).max(8);
        // The input series is replicated per unit (read-only, cacheable).
        let series_parts =
            space.allocate_partitioned(self.length as u64 * 8, DataClass::SharedReadOnly);
        // The output profile and its locks are partitioned (read-write, uncacheable).
        let profile_parts = space.allocate_partitioned(per_unit * 64, DataClass::SharedReadWrite);
        let lock_parts = space.allocate_partitioned(per_unit * 64, DataClass::SharedReadWrite);
        let barrier = space.allocate_shared_rw(64, syncron_sim::UnitId(0));
        let layout = std::sync::Arc::new(TsLayout {
            series_parts,
            profile_parts,
            lock_parts,
            per_unit,
            units: config.units,
        });
        clients
            .iter()
            .enumerate()
            .map(|(i, c)| {
                Box::new(ScriptProgram::new(TsGen {
                    layout: std::sync::Arc::clone(&layout),
                    cfg: *self,
                    barrier,
                    participants: clients.len() as u32,
                    my_unit: c.unit.index(),
                    rng: SimRng::seed_from(config.seed ^ ((i as u64) << 24) ^ 0x7153),
                    remaining: self.diagonals_per_core,
                })) as Box<dyn CoreProgram>
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use syncron_core::MechanismKind;
    use syncron_system::run_workload;

    fn config(kind: MechanismKind) -> NdpConfig {
        NdpConfig::builder()
            .units(2)
            .cores_per_unit(4)
            .mechanism(kind)
            .build()
            .expect("valid config")
    }

    fn small() -> TimeSeries {
        TimeSeries {
            name: "air",
            length: 512,
            window: 32,
            diagonals_per_core: 3,
            diagonal_span: 48,
        }
    }

    #[test]
    fn completes_under_every_mechanism() {
        for kind in MechanismKind::COMPARED {
            let report = run_workload(&config(kind), &small());
            assert!(report.completed, "{kind:?}");
            assert_eq!(report.total_ops, 6 * 3, "{kind:?}");
        }
    }

    #[test]
    fn has_high_synchronization_intensity() {
        // Far more than one synchronization request per diagonal: lock pairs per
        // updated element plus the batch barrier.
        let report = run_workload(&config(MechanismKind::SynCron), &small());
        assert!(report.sync_requests > report.total_ops * 10);
    }

    #[test]
    fn syncron_outperforms_hier_thanks_to_direct_buffering() {
        // The paper singles out time series as the workload where SynCron's ST
        // buffering pays off the most against Hier (Section 6.1.3).
        let hier = run_workload(&config(MechanismKind::Hier), &small());
        let syncron = run_workload(&config(MechanismKind::SynCron), &small());
        assert!(
            syncron.sim_time < hier.sim_time,
            "SynCron {} vs Hier {}",
            syncron.sim_time,
            hier.sim_time
        );
    }

    #[test]
    fn dataset_lookup() {
        assert_eq!(TimeSeries::by_name("air").unwrap().name, "air");
        assert_eq!(TimeSeries::by_name("pow").unwrap().name, "pow");
        assert!(TimeSeries::by_name("x").is_none());
        assert_eq!(TimeSeries::air().name(), "ts.air");
        assert_eq!(
            TimeSeries::pow()
                .with_diagonals_per_core(2)
                .diagonals_per_core,
            2
        );
    }
}
