//! Regenerates Table 1 of the paper. Run with `cargo bench --bench table01_cpu_locks`.
fn main() {
    syncron_bench::experiments::motivation::table01().print();
}
