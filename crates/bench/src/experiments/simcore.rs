//! Simulator-throughput experiment: how fast the simulator itself runs.
//!
//! Unlike every other experiment in this crate, this one measures the *host*, not
//! the simulated system: delivered events per wall-clock second of the run loop,
//! swept over synchronization schemes × machine geometries (the paper's 4×16
//! Table 5 machine up to the 16×256 scale-out of `scenarios/scale_4096.toml`),
//! under both event-queue backends:
//!
//! * **heap baseline** — the original `BinaryHeap` scheduler with inline dispatch
//!   disabled, i.e. the pre-calendar simulator;
//! * **calendar** — the calendar-queue scheduler with the default inline-dispatch
//!   budget.
//!
//! Both backends must produce bit-identical simulation reports
//! ([`syncron_system::RunReport::same_simulation`] is asserted per point), so the
//! comparison isolates scheduler cost. Runs execute serially (never through the
//! parallel runner) and keep the best of [`REPEATS`] wall times, so numbers are
//! not inflated by sibling runs competing for cores.
//!
//! The bench target `simcore_throughput` prints the table and writes the sweep as
//! `BENCH_simcore.json` (schema [`SIMCORE_SCHEMA`], validated by
//! [`validate_simcore_json`]) — one point of the simulator-performance trajectory
//! per merged PR. `EXPERIMENTS.md` records the methodology and current numbers.

use crate::{f2, scale, scaled, Table};
use syncron_core::MechanismKind;
use syncron_harness::json::Value;
use syncron_harness::{ConfigSpec, Md1Model, Scenario, SchedulerKind, WorkloadSpec};
use syncron_system::FaultConfig;
use syncron_workloads::micro::SyncPrimitive;

/// Schema identifier embedded in (and required from) `BENCH_simcore.json`.
pub const SIMCORE_SCHEMA: &str = "syncron-bench-simcore/v1";

/// Timed repetitions per point; the best (smallest) wall time is kept.
pub const REPEATS: usize = 3;

/// Geometries swept: the paper's default machine up to the 4096-core scale-out.
pub const GEOMETRIES: [(usize, usize); 3] = [(4, 16), (8, 64), (16, 256)];

/// Mechanism kinds swept per geometry: the paper's compared four plus the two
/// post-paper schemes built on the component/policy split. A scheme silently
/// dropped from this list shrinks the `(geometry, mechanism)` coverage of
/// `BENCH_simcore.json`, which the CI diff against the committed baseline
/// rejects.
pub const BENCH_KINDS: [MechanismKind; 6] = [
    MechanismKind::Central,
    MechanismKind::Hier,
    MechanismKind::SynCron,
    MechanismKind::Mcs,
    MechanismKind::Adaptive,
    MechanismKind::Ideal,
];

/// One timed run of one scenario under one scheduler backend.
#[derive(Clone, Copy, Debug)]
pub struct Measurement {
    /// Whether the run finished before its event budget.
    pub completed: bool,
    /// Events the run loop delivered.
    pub events: u64,
    /// Best-of-[`REPEATS`] wall-clock seconds.
    pub wall_seconds: f64,
    /// `events / wall_seconds` for the best repetition.
    pub events_per_sec: f64,
}

/// Heap-baseline and calendar measurements of one (geometry, mechanism) point.
#[derive(Clone, Copy, Debug)]
pub struct SimcorePoint {
    /// NDP units of the simulated machine.
    pub units: usize,
    /// Cores per NDP unit of the simulated machine.
    pub cores_per_unit: usize,
    /// Synchronization scheme the simulated machine ran.
    pub mechanism: MechanismKind,
    /// The `BinaryHeap` scheduler with inline dispatch disabled.
    pub heap: Measurement,
    /// The calendar-queue scheduler with the default inline-dispatch budget.
    pub calendar: Measurement,
}

impl SimcorePoint {
    /// `WxC` geometry label (`16x256`).
    pub fn geometry(&self) -> String {
        format!("{}x{}", self.units, self.cores_per_unit)
    }

    /// Simulator speedup of the calendar scheduler over the heap baseline.
    pub fn speedup(&self) -> f64 {
        if self.heap.events_per_sec > 0.0 {
            self.calendar.events_per_sec / self.heap.events_per_sec
        } else {
            0.0
        }
    }
}

fn scenario(
    units: usize,
    cores_per_unit: usize,
    mechanism: MechanismKind,
    scheduler: SchedulerKind,
    iterations: u32,
) -> Scenario {
    let mut config = ConfigSpec::default()
        .with_geometry(units, cores_per_unit)
        .with_mechanism(mechanism)
        .with_scheduler(scheduler);
    if scheduler == SchedulerKind::Heap {
        // The baseline is the pre-calendar simulator: no inline dispatch either.
        config = config.with_inline_step_budget(0);
    }
    config.max_events = 40_000_000;
    Scenario::new(
        format!(
            "simcore/{units}x{cores_per_unit}/mech={}/sched={}",
            mechanism.name(),
            scheduler.name()
        ),
        config,
        // The workload of scenarios/scale_4096.toml: a global barrier with short
        // compute phases — every core stays active, so the event queue holds one
        // event per core and the scheduler dominates the run-loop cost.
        WorkloadSpec::Micro {
            primitive: SyncPrimitive::Barrier,
            interval: 100,
            iterations,
        },
    )
}

fn measure_one(scenario: &Scenario) -> (syncron_system::RunReport, Measurement) {
    let mut best: Option<syncron_system::RunReport> = None;
    for _ in 0..REPEATS {
        let report = scenario.run().expect("simcore scenario runs");
        let keep = match &best {
            Some(b) => report.perf.wall_seconds < b.perf.wall_seconds,
            None => true,
        };
        if keep {
            best = Some(report);
        }
    }
    let report = best.expect("at least one repetition");
    let m = Measurement {
        completed: report.completed,
        events: report.perf.events_delivered,
        wall_seconds: report.perf.wall_seconds,
        events_per_sec: report.perf.events_per_sec(),
    };
    (report, m)
}

/// Measures the sweep over explicit geometries and iteration count (exposed so
/// tests can run a tiny instance; use [`measure`] for the real experiment).
///
/// # Panics
///
/// Panics if the two schedulers disagree on any simulation-determined report
/// field — the determinism contract this whole PR rests on.
pub fn measure_geometries(geometries: &[(usize, usize)], iterations: u32) -> Vec<SimcorePoint> {
    let mut points = Vec::new();
    for &(units, cores_per_unit) in geometries {
        for mechanism in BENCH_KINDS {
            let (heap_report, heap) = measure_one(&scenario(
                units,
                cores_per_unit,
                mechanism,
                SchedulerKind::Heap,
                iterations,
            ));
            let (cal_report, calendar) = measure_one(&scenario(
                units,
                cores_per_unit,
                mechanism,
                SchedulerKind::Calendar,
                iterations,
            ));
            if let Some(field) = heap_report.divergence_from(&cal_report) {
                panic!(
                    "{units}x{cores_per_unit}/{}: calendar scheduler diverged from the \
                     heap reference in {field}",
                    mechanism.name()
                );
            }
            points.push(SimcorePoint {
                units,
                cores_per_unit,
                mechanism,
                heap,
                calendar,
            });
        }
    }
    points
}

/// Runs the full simulator-throughput sweep (respects `SYNCRON_SCALE`).
///
/// Eight barrier rounds (at scale 1) keep the 16×256 runs in the tens of
/// milliseconds, where events/sec is stable against scheduler jitter.
pub fn measure() -> Vec<SimcorePoint> {
    measure_geometries(&GEOMETRIES, scaled(8, 1))
}

/// Worker counts swept by the shard-scaling experiment (1 = the sequential
/// reference every other count is compared against).
pub const SHARD_WORKERS: [usize; 4] = [1, 2, 4, 8];

/// One point of the shard-scaling sweep: the calendar scheduler at one
/// geometry, executed by the sharded conservative-PDES mode with `workers`
/// worker threads.
#[derive(Clone, Copy, Debug)]
pub struct ShardPoint {
    /// NDP units of the simulated machine.
    pub units: usize,
    /// Cores per NDP unit of the simulated machine.
    pub cores_per_unit: usize,
    /// Synchronization scheme the simulated machine ran.
    pub mechanism: MechanismKind,
    /// Worker threads requested via `sim_threads`.
    pub workers: usize,
    /// Shards the run actually executed with (`min(workers, units)` unless the
    /// configuration forced a sequential fallback).
    pub shards: usize,
    /// Best-of-[`REPEATS`] measurement.
    pub run: Measurement,
}

impl ShardPoint {
    /// `WxC` geometry label (`16x256`).
    pub fn geometry(&self) -> String {
        format!("{}x{}", self.units, self.cores_per_unit)
    }
}

/// Wall-clock speedup of `p` over the 1-worker point of the same geometry
/// (`0.0` if the baseline is missing or degenerate). Wall seconds — not
/// events/sec — because every worker count delivers the identical event count
/// for the identical simulation.
pub fn shard_speedup(points: &[ShardPoint], p: &ShardPoint) -> f64 {
    points
        .iter()
        .find(|q| q.units == p.units && q.cores_per_unit == p.cores_per_unit && q.workers == 1)
        .map(|base| {
            if p.run.wall_seconds > 0.0 {
                base.run.wall_seconds / p.run.wall_seconds
            } else {
                0.0
            }
        })
        .unwrap_or(0.0)
}

/// Measures the shard-scaling sweep over explicit geometries and worker counts
/// (exposed so tests and the CI smoke job can run a tiny instance; use
/// [`measure_shards`] for the real experiment).
///
/// Every worker count runs the *same* simulation: the 1-worker report is the
/// reference and any simulated-field divergence panics, so the wall-clock
/// comparison is guaranteed to price identical work.
pub fn measure_shard_geometries(
    geometries: &[(usize, usize)],
    iterations: u32,
    workers: &[usize],
) -> Vec<ShardPoint> {
    let mechanism = MechanismKind::SynCron;
    let mut points = Vec::new();
    for &(units, cores_per_unit) in geometries {
        let mut reference: Option<syncron_system::RunReport> = None;
        for &w in workers {
            let mut s = scenario(
                units,
                cores_per_unit,
                mechanism,
                SchedulerKind::Calendar,
                iterations,
            );
            s.label = format!("{}/w={w}", s.label);
            s.config = s.config.with_sim_threads(w);
            let (report, run) = measure_one(&s);
            match &reference {
                None => reference = Some(report.clone()),
                Some(base) => {
                    if let Some(field) = base.divergence_from(&report) {
                        panic!(
                            "{units}x{cores_per_unit}: sharded run with {w} workers \
                             diverged from the sequential reference in {field}"
                        );
                    }
                }
            }
            points.push(ShardPoint {
                units,
                cores_per_unit,
                mechanism,
                workers: w,
                shards: report.perf.shards,
                run,
            });
        }
    }
    points
}

/// Runs the full shard-scaling sweep (respects `SYNCRON_SCALE`): the barrier
/// reference workload at every [`GEOMETRIES`] entry under [`SHARD_WORKERS`].
pub fn measure_shards() -> Vec<ShardPoint> {
    measure_shard_geometries(&GEOMETRIES, scaled(8, 1), &SHARD_WORKERS)
}

/// Fast-path lever variants measured by the per-lever attribution sweep:
/// everything off (the pre-PR baseline), each lever alone, and the default
/// all-on configuration. The lever set is the contract CI greps for in
/// `BENCH_simcore.json` — dropping a variant here drops its rows there.
pub const FASTPATH_VARIANTS: [(&str, Md1Model, bool, bool); 5] = [
    ("baseline", Md1Model::Exact, false, false),
    ("quantized-md1", Md1Model::Quantized, false, false),
    ("burst-resume", Md1Model::Exact, true, false),
    ("column-batching", Md1Model::Exact, false, true),
    ("all-on", Md1Model::Quantized, true, true),
];

/// Mechanisms the fast-path sweep prices each lever under: SynCron wake-ups
/// serialize through the Synchronization Engine (each completion rides its own
/// crossbar hop at its own timestamp), so burst resume is near-neutral there
/// and the sweep would hide the lever's payoff; Ideal completes whole barrier
/// episodes at one timestamp — the broadcast shape the burst path collapses.
pub const FASTPATH_KINDS: [MechanismKind; 2] = [MechanismKind::SynCron, MechanismKind::Ideal];

/// One point of the fast-path attribution sweep: the calendar scheduler at one
/// geometry and mechanism with one combination of the three hot-path levers.
#[derive(Clone, Copy, Debug)]
pub struct FastpathPoint {
    /// NDP units of the simulated machine.
    pub units: usize,
    /// Cores per NDP unit of the simulated machine.
    pub cores_per_unit: usize,
    /// Synchronization scheme the simulated machine ran.
    pub mechanism: MechanismKind,
    /// Variant label from [`FASTPATH_VARIANTS`].
    pub variant: &'static str,
    /// Crossbar M/D/1 evaluation model of this variant.
    pub md1_model: Md1Model,
    /// Whether same-time wake-ups coalesce into per-unit burst events.
    pub burst_resume: bool,
    /// Whether batch members share slot lookups per variable run.
    pub column_batching: bool,
    /// Best-of-[`REPEATS`] measurement.
    pub run: Measurement,
}

impl FastpathPoint {
    /// `WxC` geometry label (`16x256`).
    pub fn geometry(&self) -> String {
        format!("{}x{}", self.units, self.cores_per_unit)
    }
}

/// Wall-clock speedup of `p` over the everything-off baseline of the same
/// geometry and mechanism (`0.0` if the baseline is missing or degenerate).
/// Wall seconds — not events/sec — because burst resume *shrinks the event
/// count* for the identical simulation, which makes events/sec lie in both
/// directions.
pub fn fastpath_speedup(points: &[FastpathPoint], p: &FastpathPoint) -> f64 {
    points
        .iter()
        .find(|q| {
            q.units == p.units
                && q.cores_per_unit == p.cores_per_unit
                && q.mechanism == p.mechanism
                && q.variant == "baseline"
        })
        .map(|base| {
            if p.run.wall_seconds > 0.0 {
                base.run.wall_seconds / p.run.wall_seconds
            } else {
                0.0
            }
        })
        .unwrap_or(0.0)
}

/// Measures the fast-path attribution sweep over explicit geometries (exposed
/// so tests and the CI smoke job can run a tiny instance; use
/// [`measure_fastpath`] for the real experiment).
///
/// Every variant runs the *same* simulation: the everything-off report is the
/// reference and any simulated-field divergence panics (only the quantized
/// M/D/1 table could legitimately move results, and on this corpus its ≤1 ps
/// error rounds away — a divergence here means the re-baseline contract broke).
pub fn measure_fastpath_geometries(
    geometries: &[(usize, usize)],
    iterations: u32,
) -> Vec<FastpathPoint> {
    let mut points = Vec::new();
    for &(units, cores_per_unit) in geometries {
        for mechanism in FASTPATH_KINDS {
            let mut reference: Option<syncron_system::RunReport> = None;
            for (variant, md1_model, burst_resume, column_batching) in FASTPATH_VARIANTS {
                let mut s = scenario(
                    units,
                    cores_per_unit,
                    mechanism,
                    SchedulerKind::Calendar,
                    iterations,
                );
                s.label = format!("{}/fastpath={variant}", s.label);
                s.config = s
                    .config
                    .with_md1_model(md1_model)
                    .with_burst_resume(burst_resume)
                    .with_column_batching(column_batching);
                let (report, run) = measure_one(&s);
                match &reference {
                    None => reference = Some(report.clone()),
                    Some(base) => {
                        if let Some(field) = base.divergence_from(&report) {
                            panic!(
                                "{units}x{cores_per_unit}/{}: fast-path variant '{variant}' \
                                 diverged from the everything-off baseline in {field}",
                                mechanism.name()
                            );
                        }
                    }
                }
                points.push(FastpathPoint {
                    units,
                    cores_per_unit,
                    mechanism,
                    variant,
                    md1_model,
                    burst_resume,
                    column_batching,
                    run,
                });
            }
        }
    }
    points
}

/// Runs the full fast-path attribution sweep (respects `SYNCRON_SCALE`).
pub fn measure_fastpath() -> Vec<FastpathPoint> {
    measure_fastpath_geometries(&GEOMETRIES, scaled(8, 1))
}

/// Drop rates swept by the resilience experiment. `0.0` is the clean baseline
/// (fault substrate *enabled* with zero probability — the knob-alive twin of
/// faults-off) every overhead and goodput ratio is defined against.
pub const RESILIENCE_DROP_RATES: [f64; 3] = [0.0, 0.02, 0.10];

/// Mechanisms the resilience sweep prices: the paper's three message-passing
/// schemes, whose inter-unit sync traffic is exactly what the fault substrate
/// drops (Ideal sends nothing and would measure noise).
pub const RESILIENCE_KINDS: [MechanismKind; 3] = [
    MechanismKind::Central,
    MechanismKind::Hier,
    MechanismKind::SynCron,
];

/// Geometries the resilience sweep runs: the paper's default machine and the
/// mid-size scale-out (the 16×256 machine adds wall time without changing the
/// recovery story).
pub const RESILIENCE_GEOMETRIES: [(usize, usize); 2] = [(4, 16), (8, 64)];

/// One point of the resilience sweep: one mechanism at one geometry under one
/// injected drop rate, with the recovery counters and the simulated-goodput
/// numbers the overhead ratios are derived from.
#[derive(Clone, Copy, Debug)]
pub struct ResiliencePoint {
    /// NDP units of the simulated machine.
    pub units: usize,
    /// Cores per NDP unit of the simulated machine.
    pub cores_per_unit: usize,
    /// Synchronization scheme the simulated machine ran.
    pub mechanism: MechanismKind,
    /// Injected per-message drop probability.
    pub drop_rate: f64,
    /// Messages the fault plan dropped.
    pub dropped: u64,
    /// Retransmissions the timeout/backoff path sent.
    pub retransmitted: u64,
    /// Simulated completion time in microseconds.
    pub sim_time_us: f64,
    /// Simulated goodput: completed operations per simulated millisecond.
    pub goodput_ops_per_ms: f64,
    /// Best-of-[`REPEATS`] host-side measurement.
    pub run: Measurement,
}

impl ResiliencePoint {
    /// `WxC` geometry label (`8x64`).
    pub fn geometry(&self) -> String {
        format!("{}x{}", self.units, self.cores_per_unit)
    }
}

/// The drop-rate-zero baseline of `p`'s (geometry, mechanism) group, if present.
fn resilience_baseline<'p>(
    points: &'p [ResiliencePoint],
    p: &ResiliencePoint,
) -> Option<&'p ResiliencePoint> {
    points.iter().find(|q| {
        q.units == p.units
            && q.cores_per_unit == p.cores_per_unit
            && q.mechanism == p.mechanism
            && q.drop_rate == 0.0
    })
}

/// Recovery overhead of `p`: simulated completion time over the drop-rate-zero
/// baseline of the same geometry and mechanism (`1.0` = free recovery, `0.0`
/// if the baseline is missing or degenerate).
pub fn resilience_overhead(points: &[ResiliencePoint], p: &ResiliencePoint) -> f64 {
    resilience_baseline(points, p)
        .map(|base| {
            if base.sim_time_us > 0.0 {
                p.sim_time_us / base.sim_time_us
            } else {
                0.0
            }
        })
        .unwrap_or(0.0)
}

/// Goodput retention of `p`: simulated ops/ms over the drop-rate-zero baseline
/// of the same geometry and mechanism (`1.0` = no degradation, `0.0` if the
/// baseline is missing or degenerate).
pub fn resilience_goodput_ratio(points: &[ResiliencePoint], p: &ResiliencePoint) -> f64 {
    resilience_baseline(points, p)
        .map(|base| {
            if base.goodput_ops_per_ms > 0.0 {
                p.goodput_ops_per_ms / base.goodput_ops_per_ms
            } else {
                0.0
            }
        })
        .unwrap_or(0.0)
}

/// Measures the resilience sweep over explicit geometries and drop rates
/// (exposed so tests and the CI smoke job can run a tiny instance; use
/// [`measure_resilience`] for the real experiment).
///
/// # Panics
///
/// Panics if any faulted run fails to recover to completion — a drop the
/// timeout/retransmission path loses is a correctness bug, not a data point.
pub fn measure_resilience_geometries(
    geometries: &[(usize, usize)],
    iterations: u32,
    drop_rates: &[f64],
) -> Vec<ResiliencePoint> {
    let mut points = Vec::new();
    for &(units, cores_per_unit) in geometries {
        for mechanism in RESILIENCE_KINDS {
            for &drop_rate in drop_rates {
                let mut s = scenario(
                    units,
                    cores_per_unit,
                    mechanism,
                    SchedulerKind::Calendar,
                    iterations,
                );
                s.label = format!("{}/drop={drop_rate}", s.label);
                s.config = s.config.with_fault(FaultConfig {
                    enabled: true,
                    drop_prob: drop_rate,
                    ..FaultConfig::default()
                });
                let (report, run) = measure_one(&s);
                assert!(
                    report.completed,
                    "{units}x{cores_per_unit}/{}: drop rate {drop_rate} did not \
                     recover to completion",
                    mechanism.name()
                );
                let faults = report.faults.unwrap_or_default();
                points.push(ResiliencePoint {
                    units,
                    cores_per_unit,
                    mechanism,
                    drop_rate,
                    dropped: faults.dropped,
                    retransmitted: faults.retransmitted,
                    sim_time_us: report.sim_time.as_us_f64(),
                    goodput_ops_per_ms: report.ops_per_ms(),
                    run,
                });
            }
        }
    }
    points
}

/// Runs the full resilience sweep (respects `SYNCRON_SCALE`): drop rate ×
/// mechanism over [`RESILIENCE_GEOMETRIES`].
pub fn measure_resilience() -> Vec<ResiliencePoint> {
    measure_resilience_geometries(&RESILIENCE_GEOMETRIES, scaled(8, 1), &RESILIENCE_DROP_RATES)
}

/// Renders the resilience sweep as its text table.
pub fn resilience_table(points: &[ResiliencePoint]) -> Table {
    let mut table = Table::new(
        "Resilience under message loss: recovery overhead (simulated time vs \
         drop 0) and goodput retention per mechanism and drop rate",
        &[
            "geometry",
            "mechanism",
            "drop",
            "dropped",
            "retx",
            "sim us",
            "ops/ms",
            "overhead",
            "goodput",
        ],
    );
    for p in points {
        table.push_row(vec![
            p.geometry(),
            p.mechanism.name().to_string(),
            format!("{:.2}", p.drop_rate),
            p.dropped.to_string(),
            p.retransmitted.to_string(),
            format!("{:.2}", p.sim_time_us),
            format!("{:.2}", p.goodput_ops_per_ms),
            f2(resilience_overhead(points, p)),
            f2(resilience_goodput_ratio(points, p)),
        ]);
    }
    table
}

/// Renders the fast-path attribution sweep as its text table.
pub fn fastpath_table(points: &[FastpathPoint]) -> Table {
    let mut table = Table::new(
        "Fast-path attribution: quantized M/D/1, burst resume and column \
         batching vs the everything-off baseline (identical simulations, \
         wall-clock speedup)",
        &[
            "geometry",
            "mechanism",
            "variant",
            "events",
            "wall s",
            "ev/s",
            "speedup",
        ],
    );
    for p in points {
        table.push_row(vec![
            p.geometry(),
            p.mechanism.name().to_string(),
            p.variant.to_string(),
            p.run.events.to_string(),
            format!("{:.6}", p.run.wall_seconds),
            format!("{:.3e}", p.run.events_per_sec),
            f2(fastpath_speedup(points, p)),
        ]);
    }
    table
}

/// Renders the shard-scaling sweep as its text table.
pub fn shard_table(points: &[ShardPoint]) -> Table {
    let mut table = Table::new(
        "Sharded-execution scaling: conservative-PDES workers vs the sequential \
         run loop (identical simulations, wall-clock speedup)",
        &[
            "geometry", "workers", "shards", "events", "wall s", "ev/s", "speedup",
        ],
    );
    for p in points {
        table.push_row(vec![
            p.geometry(),
            p.workers.to_string(),
            p.shards.to_string(),
            p.run.events.to_string(),
            format!("{:.6}", p.run.wall_seconds),
            format!("{:.3e}", p.run.events_per_sec),
            f2(shard_speedup(points, p)),
        ]);
    }
    table
}

/// Aggregate (events-weighted) throughput comparison for one geometry.
#[derive(Clone, Copy, Debug)]
pub struct GeometrySummary {
    /// NDP units.
    pub units: usize,
    /// Cores per unit.
    pub cores_per_unit: usize,
    /// Total events over total wall seconds under the heap baseline.
    pub heap_events_per_sec: f64,
    /// Total events over total wall seconds under the calendar scheduler.
    pub calendar_events_per_sec: f64,
    /// Total wall seconds under the heap baseline.
    ///
    /// Recorded alongside events/sec because optimizations that *reduce the
    /// event count* for the same simulated work (equal-timestamp message
    /// batching) lower events/sec while making the simulator faster; wall
    /// seconds for the fixed reference workload is the comparable-across-PRs
    /// number.
    pub heap_wall_seconds: f64,
    /// Total wall seconds under the calendar scheduler.
    pub calendar_wall_seconds: f64,
}

impl GeometrySummary {
    /// Aggregate simulator speedup of the calendar scheduler for this geometry.
    pub fn speedup(&self) -> f64 {
        if self.heap_events_per_sec > 0.0 {
            self.calendar_events_per_sec / self.heap_events_per_sec
        } else {
            0.0
        }
    }
}

/// Collapses per-mechanism points into one events-weighted aggregate row per
/// geometry (total events over total wall seconds, per backend).
pub fn summarize(points: &[SimcorePoint]) -> Vec<GeometrySummary> {
    let mut geoms: Vec<(usize, usize)> = Vec::new();
    for p in points {
        if !geoms.contains(&(p.units, p.cores_per_unit)) {
            geoms.push((p.units, p.cores_per_unit));
        }
    }
    geoms
        .into_iter()
        .map(|(units, cores_per_unit)| {
            let selected: Vec<&SimcorePoint> = points
                .iter()
                .filter(|p| p.units == units && p.cores_per_unit == cores_per_unit)
                .collect();
            let heap_events: u64 = selected.iter().map(|p| p.heap.events).sum();
            let heap_wall: f64 = selected.iter().map(|p| p.heap.wall_seconds).sum();
            let cal_events: u64 = selected.iter().map(|p| p.calendar.events).sum();
            let cal_wall: f64 = selected.iter().map(|p| p.calendar.wall_seconds).sum();
            GeometrySummary {
                units,
                cores_per_unit,
                heap_events_per_sec: if heap_wall > 0.0 {
                    heap_events as f64 / heap_wall
                } else {
                    0.0
                },
                calendar_events_per_sec: if cal_wall > 0.0 {
                    cal_events as f64 / cal_wall
                } else {
                    0.0
                },
                heap_wall_seconds: heap_wall,
                calendar_wall_seconds: cal_wall,
            }
        })
        .collect()
}

/// Renders the sweep as the experiment's text table.
pub fn simcore_table(points: &[SimcorePoint]) -> Table {
    let mut table = Table::new(
        "Simulator throughput: calendar-queue scheduler vs BinaryHeap baseline \
         (delivered events per wall-clock second)",
        &[
            "geometry",
            "mechanism",
            "events",
            "heap ev/s",
            "calendar ev/s",
            "speedup",
        ],
    );
    for p in points {
        table.push_row(vec![
            p.geometry(),
            p.mechanism.name().to_string(),
            p.calendar.events.to_string(),
            format!("{:.3e}", p.heap.events_per_sec),
            format!("{:.3e}", p.calendar.events_per_sec),
            f2(p.speedup()),
        ]);
    }
    for g in summarize(points) {
        table.push_row(vec![
            format!("{}x{}", g.units, g.cores_per_unit),
            "(aggregate)".to_string(),
            String::new(),
            format!("{:.3e}", g.heap_events_per_sec),
            format!("{:.3e}", g.calendar_events_per_sec),
            f2(g.speedup()),
        ]);
    }
    table
}

/// Serializes the sweeps as the `BENCH_simcore.json` document. `shards` is the
/// shard-scaling sweep, `fastpath` the fast-path attribution sweep and
/// `resilience` the drop-rate × mechanism recovery sweep; pass an empty slice
/// to emit a document without the corresponding (additive) array.
pub fn simcore_json(
    points: &[SimcorePoint],
    shards: &[ShardPoint],
    fastpath: &[FastpathPoint],
    resilience: &[ResiliencePoint],
) -> Value {
    let measurement = |m: &Measurement| {
        Value::table([
            ("completed", Value::Bool(m.completed)),
            ("events", Value::Int(m.events as i64)),
            ("wall_seconds", Value::Float(m.wall_seconds)),
            ("events_per_sec", Value::Float(m.events_per_sec)),
        ])
    };
    let shard_rows = Value::Array(
        shards
            .iter()
            .map(|p| {
                Value::table([
                    ("geometry", Value::str(p.geometry())),
                    ("units", Value::Int(p.units as i64)),
                    ("cores_per_unit", Value::Int(p.cores_per_unit as i64)),
                    ("mechanism", Value::str(p.mechanism.name())),
                    ("workers", Value::Int(p.workers as i64)),
                    ("shards", Value::Int(p.shards as i64)),
                    ("completed", Value::Bool(p.run.completed)),
                    ("events", Value::Int(p.run.events as i64)),
                    ("wall_seconds", Value::Float(p.run.wall_seconds)),
                    ("events_per_sec", Value::Float(p.run.events_per_sec)),
                    ("speedup", Value::Float(shard_speedup(shards, p))),
                ])
            })
            .collect(),
    );
    let mut doc = Value::table([
        ("schema", Value::str(SIMCORE_SCHEMA)),
        ("scale", Value::Float(scale())),
        (
            "workload",
            Value::str("barrier-micro interval=100 (scenarios/scale_4096.toml shape)"),
        ),
        ("repeats", Value::Int(REPEATS as i64)),
        (
            "rows",
            Value::Array(
                points
                    .iter()
                    .map(|p| {
                        Value::table([
                            ("geometry", Value::str(p.geometry())),
                            ("units", Value::Int(p.units as i64)),
                            ("cores_per_unit", Value::Int(p.cores_per_unit as i64)),
                            ("mechanism", Value::str(p.mechanism.name())),
                            ("heap", measurement(&p.heap)),
                            ("calendar", measurement(&p.calendar)),
                            ("speedup", Value::Float(p.speedup())),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "geometries",
            Value::Array(
                summarize(points)
                    .iter()
                    .map(|g| {
                        Value::table([
                            (
                                "geometry",
                                Value::str(format!("{}x{}", g.units, g.cores_per_unit)),
                            ),
                            ("heap_events_per_sec", Value::Float(g.heap_events_per_sec)),
                            (
                                "calendar_events_per_sec",
                                Value::Float(g.calendar_events_per_sec),
                            ),
                            ("heap_wall_seconds", Value::Float(g.heap_wall_seconds)),
                            (
                                "calendar_wall_seconds",
                                Value::Float(g.calendar_wall_seconds),
                            ),
                            ("speedup", Value::Float(g.speedup())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    if !shards.is_empty() {
        if let Value::Table(map) = &mut doc {
            map.insert("shard_scaling".to_string(), shard_rows);
        }
    }
    if !fastpath.is_empty() {
        let fastpath_rows = Value::Array(
            fastpath
                .iter()
                .map(|p| {
                    Value::table([
                        ("geometry", Value::str(p.geometry())),
                        ("units", Value::Int(p.units as i64)),
                        ("cores_per_unit", Value::Int(p.cores_per_unit as i64)),
                        ("mechanism", Value::str(p.mechanism.name())),
                        ("variant", Value::str(p.variant)),
                        ("md1_model", Value::str(p.md1_model.name())),
                        ("burst_resume", Value::Bool(p.burst_resume)),
                        ("column_batching", Value::Bool(p.column_batching)),
                        ("completed", Value::Bool(p.run.completed)),
                        ("events", Value::Int(p.run.events as i64)),
                        ("wall_seconds", Value::Float(p.run.wall_seconds)),
                        ("events_per_sec", Value::Float(p.run.events_per_sec)),
                        ("speedup", Value::Float(fastpath_speedup(fastpath, p))),
                    ])
                })
                .collect(),
        );
        if let Value::Table(map) = &mut doc {
            map.insert("fastpath".to_string(), fastpath_rows);
        }
    }
    if !resilience.is_empty() {
        let resilience_rows = Value::Array(
            resilience
                .iter()
                .map(|p| {
                    Value::table([
                        ("geometry", Value::str(p.geometry())),
                        ("units", Value::Int(p.units as i64)),
                        ("cores_per_unit", Value::Int(p.cores_per_unit as i64)),
                        ("mechanism", Value::str(p.mechanism.name())),
                        ("drop_rate", Value::Float(p.drop_rate)),
                        ("dropped", Value::Int(p.dropped as i64)),
                        ("retransmitted", Value::Int(p.retransmitted as i64)),
                        ("sim_time_us", Value::Float(p.sim_time_us)),
                        ("goodput_ops_per_ms", Value::Float(p.goodput_ops_per_ms)),
                        ("completed", Value::Bool(p.run.completed)),
                        ("wall_seconds", Value::Float(p.run.wall_seconds)),
                        (
                            "recovery_overhead",
                            Value::Float(resilience_overhead(resilience, p)),
                        ),
                        (
                            "goodput_ratio",
                            Value::Float(resilience_goodput_ratio(resilience, p)),
                        ),
                    ])
                })
                .collect(),
        );
        if let Value::Table(map) = &mut doc {
            map.insert("resilience".to_string(), resilience_rows);
        }
    }
    doc
}

/// Validates a parsed `BENCH_simcore.json` document against the schema the CI
/// trajectory job (and future PR comparisons) relies on.
pub fn validate_simcore_json(doc: &Value) -> Result<(), String> {
    let schema = doc
        .get("schema")
        .and_then(Value::as_str)
        .ok_or("missing 'schema' string")?;
    if schema != SIMCORE_SCHEMA {
        return Err(format!(
            "schema mismatch: got '{schema}', expected '{SIMCORE_SCHEMA}'"
        ));
    }
    doc.get("scale")
        .and_then(Value::as_f64)
        .ok_or("missing numeric 'scale'")?;
    let rows = doc
        .get("rows")
        .and_then(Value::as_array)
        .ok_or("missing 'rows' array")?;
    if rows.is_empty() {
        return Err("'rows' is empty".into());
    }
    for (i, row) in rows.iter().enumerate() {
        for key in ["geometry", "mechanism"] {
            row.get(key)
                .and_then(Value::as_str)
                .ok_or(format!("row {i}: missing string '{key}'"))?;
        }
        row.get("speedup")
            .and_then(Value::as_f64)
            .ok_or(format!("row {i}: missing numeric 'speedup'"))?;
        for side in ["heap", "calendar"] {
            let m = row.get(side).ok_or(format!("row {i}: missing '{side}'"))?;
            m.get("completed")
                .and_then(Value::as_bool)
                .ok_or(format!("row {i}.{side}: missing bool 'completed'"))?;
            for key in ["events", "wall_seconds", "events_per_sec"] {
                m.get(key)
                    .and_then(Value::as_f64)
                    .ok_or(format!("row {i}.{side}: missing numeric '{key}'"))?;
            }
        }
    }
    let geometries = doc
        .get("geometries")
        .and_then(Value::as_array)
        .ok_or("missing 'geometries' array")?;
    if geometries.is_empty() {
        return Err("'geometries' is empty".into());
    }
    for (i, g) in geometries.iter().enumerate() {
        g.get("geometry")
            .and_then(Value::as_str)
            .ok_or(format!("geometry {i}: missing string 'geometry'"))?;
        for key in ["heap_events_per_sec", "calendar_events_per_sec", "speedup"] {
            g.get(key)
                .and_then(Value::as_f64)
                .ok_or(format!("geometry {i}: missing numeric '{key}'"))?;
        }
        // Additive v1 fields (PR 5): older documents legitimately lack them, so
        // they are optional — but when present they must be numeric.
        for key in ["heap_wall_seconds", "calendar_wall_seconds"] {
            if let Some(v) = g.get(key) {
                v.as_f64()
                    .ok_or(format!("geometry {i}: '{key}' must be numeric"))?;
            }
        }
    }
    // The shard-scaling sweep is additive to v1 too (PR 7): optional, but a
    // present array must be well-formed and must carry the 1-worker baseline
    // every speedup is defined against.
    if let Some(shards) = doc.get("shard_scaling") {
        let rows = shards
            .as_array()
            .ok_or("'shard_scaling' must be an array")?;
        if rows.is_empty() {
            return Err("'shard_scaling' is empty".into());
        }
        let mut baselines = Vec::new();
        for (i, row) in rows.iter().enumerate() {
            let geometry = row
                .get("geometry")
                .and_then(Value::as_str)
                .ok_or(format!("shard_scaling {i}: missing string 'geometry'"))?;
            row.get("mechanism")
                .and_then(Value::as_str)
                .ok_or(format!("shard_scaling {i}: missing string 'mechanism'"))?;
            row.get("completed")
                .and_then(Value::as_bool)
                .ok_or(format!("shard_scaling {i}: missing bool 'completed'"))?;
            for key in [
                "workers",
                "shards",
                "events",
                "wall_seconds",
                "events_per_sec",
                "speedup",
            ] {
                row.get(key)
                    .and_then(Value::as_f64)
                    .ok_or(format!("shard_scaling {i}: missing numeric '{key}'"))?;
            }
            if row.get("workers").and_then(Value::as_f64) == Some(1.0) {
                baselines.push(geometry.to_string());
            }
        }
        for (i, row) in rows.iter().enumerate() {
            let geometry = row.get("geometry").and_then(Value::as_str).unwrap_or("");
            if !baselines.iter().any(|b| b == geometry) {
                return Err(format!(
                    "shard_scaling {i}: geometry '{geometry}' has no workers=1 baseline"
                ));
            }
        }
    }
    // The fast-path attribution sweep is additive to v1 as well (PR 9):
    // optional, but a present array must carry the lever fields per row, the
    // everything-off baseline every speedup is defined against, and every
    // variant of [`FASTPATH_VARIANTS`] — a silently dropped variant (say,
    // `md1_model` rows vanishing) would otherwise shrink the trajectory
    // without failing anything.
    if let Some(fastpath) = doc.get("fastpath") {
        let rows = fastpath.as_array().ok_or("'fastpath' must be an array")?;
        if rows.is_empty() {
            return Err("'fastpath' is empty".into());
        }
        let mut baselines = Vec::new();
        let mut variants: Vec<String> = Vec::new();
        for (i, row) in rows.iter().enumerate() {
            let geometry = row
                .get("geometry")
                .and_then(Value::as_str)
                .ok_or(format!("fastpath {i}: missing string 'geometry'"))?;
            let mechanism = row
                .get("mechanism")
                .and_then(Value::as_str)
                .ok_or(format!("fastpath {i}: missing string 'mechanism'"))?;
            let variant = row
                .get("variant")
                .and_then(Value::as_str)
                .ok_or(format!("fastpath {i}: missing string 'variant'"))?;
            let model = row
                .get("md1_model")
                .and_then(Value::as_str)
                .ok_or(format!("fastpath {i}: missing string 'md1_model'"))?;
            if Md1Model::parse(model).is_none() {
                return Err(format!("fastpath {i}: unknown md1_model '{model}'"));
            }
            for key in ["burst_resume", "column_batching", "completed"] {
                row.get(key)
                    .and_then(Value::as_bool)
                    .ok_or(format!("fastpath {i}: missing bool '{key}'"))?;
            }
            for key in ["events", "wall_seconds", "events_per_sec", "speedup"] {
                row.get(key)
                    .and_then(Value::as_f64)
                    .ok_or(format!("fastpath {i}: missing numeric '{key}'"))?;
            }
            if variant == "baseline" {
                baselines.push(format!("{geometry}/{mechanism}"));
            }
            if !variants.iter().any(|v| v == variant) {
                variants.push(variant.to_string());
            }
        }
        for (i, row) in rows.iter().enumerate() {
            let geometry = row.get("geometry").and_then(Value::as_str).unwrap_or("");
            let mechanism = row.get("mechanism").and_then(Value::as_str).unwrap_or("");
            let key = format!("{geometry}/{mechanism}");
            if !baselines.iter().any(|b| b == &key) {
                return Err(format!(
                    "fastpath {i}: point '{key}' has no everything-off baseline"
                ));
            }
        }
        for (variant, ..) in FASTPATH_VARIANTS {
            if !variants.iter().any(|v| v == variant) {
                return Err(format!("fastpath: variant '{variant}' is missing"));
            }
        }
    }
    // The resilience sweep is additive to v1 as well (PR 10): optional, but a
    // present array must carry the recovery fields per row and the drop-rate-0
    // baseline every overhead and goodput ratio is defined against.
    if let Some(resilience) = doc.get("resilience") {
        let rows = resilience
            .as_array()
            .ok_or("'resilience' must be an array")?;
        if rows.is_empty() {
            return Err("'resilience' is empty".into());
        }
        let mut baselines = Vec::new();
        for (i, row) in rows.iter().enumerate() {
            let geometry = row
                .get("geometry")
                .and_then(Value::as_str)
                .ok_or(format!("resilience {i}: missing string 'geometry'"))?;
            let mechanism = row
                .get("mechanism")
                .and_then(Value::as_str)
                .ok_or(format!("resilience {i}: missing string 'mechanism'"))?;
            row.get("completed")
                .and_then(Value::as_bool)
                .ok_or(format!("resilience {i}: missing bool 'completed'"))?;
            for key in [
                "drop_rate",
                "dropped",
                "retransmitted",
                "sim_time_us",
                "goodput_ops_per_ms",
                "recovery_overhead",
                "goodput_ratio",
            ] {
                row.get(key)
                    .and_then(Value::as_f64)
                    .ok_or(format!("resilience {i}: missing numeric '{key}'"))?;
            }
            if row.get("drop_rate").and_then(Value::as_f64) == Some(0.0) {
                baselines.push(format!("{geometry}/{mechanism}"));
            }
        }
        for (i, row) in rows.iter().enumerate() {
            let geometry = row.get("geometry").and_then(Value::as_str).unwrap_or("");
            let mechanism = row.get("mechanism").and_then(Value::as_str).unwrap_or("");
            let key = format!("{geometry}/{mechanism}");
            if !baselines.iter().any(|b| b == &key) {
                return Err(format!(
                    "resilience {i}: point '{key}' has no drop_rate=0 baseline"
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_sweep_measures_and_schedulers_agree() {
        let points = measure_geometries(&[(2, 4)], 2);
        assert_eq!(points.len(), BENCH_KINDS.len());
        for p in &points {
            // Identical simulations deliver identical event counts under both
            // backends (measure_geometries also asserts full report equality).
            assert_eq!(p.heap.events, p.calendar.events, "{}", p.mechanism.name());
            assert!(p.heap.completed && p.calendar.completed);
            assert!(p.heap.events > 0);
        }
        let summary = summarize(&points);
        assert_eq!(summary.len(), 1);
        assert_eq!(summary[0].units, 2);
        let table = simcore_table(&points);
        assert_eq!(table.rows.len(), points.len() + summary.len());
    }

    #[test]
    fn json_document_round_trips_and_validates() {
        let points = measure_geometries(&[(2, 4)], 1);
        let shards = measure_shard_geometries(&[(2, 4)], 1, &[1, 2]);
        let fastpath = measure_fastpath_geometries(&[(2, 4)], 1);
        let resilience = measure_resilience_geometries(&[(2, 4)], 2, &[0.0, 0.1]);
        let doc = simcore_json(&points, &shards, &fastpath, &resilience);
        validate_simcore_json(&doc).expect("fresh document validates");
        // Through text and back (what the CI smoke job exercises).
        let text = doc.to_json_pretty();
        let parsed = syncron_harness::json::parse(&text).expect("valid JSON text");
        validate_simcore_json(&parsed).expect("parsed document validates");
        // A document without the additive arrays still validates.
        let doc = simcore_json(&points, &[], &[], &[]);
        assert!(doc.get("shard_scaling").is_none());
        assert!(doc.get("fastpath").is_none());
        assert!(doc.get("resilience").is_none());
        validate_simcore_json(&doc).expect("array-less document validates");
    }

    #[test]
    fn tiny_fastpath_sweep_prices_identical_simulations() {
        let points = measure_fastpath_geometries(&[(2, 4)], 2);
        assert_eq!(points.len(), FASTPATH_VARIANTS.len() * FASTPATH_KINDS.len());
        for p in &points {
            assert!(p.run.completed);
            let base = points
                .iter()
                .find(|q| q.mechanism == p.mechanism && q.variant == "baseline")
                .expect("baseline per mechanism");
            // Burst resume legitimately shrinks the delivered-event count;
            // the other levers must not touch it.
            if p.burst_resume {
                assert!(p.run.events <= base.run.events, "{}", p.variant);
            } else {
                assert_eq!(p.run.events, base.run.events, "{}", p.variant);
            }
            if p.variant == "baseline" {
                assert!((fastpath_speedup(&points, p) - 1.0).abs() < 1e-12);
            }
        }
        // Ideal's barrier broadcast is the burst path's target shape: the
        // collapse must be visible in the event count, not just nonnegative.
        let ideal_base = points
            .iter()
            .find(|p| p.mechanism == MechanismKind::Ideal && p.variant == "baseline")
            .unwrap();
        let ideal_burst = points
            .iter()
            .find(|p| p.mechanism == MechanismKind::Ideal && p.variant == "burst-resume")
            .unwrap();
        assert!(
            ideal_burst.run.events < ideal_base.run.events,
            "Ideal broadcast wake-ups must coalesce into burst events"
        );
        let table = fastpath_table(&points);
        assert_eq!(table.rows.len(), points.len());
    }

    #[test]
    fn fastpath_validation_requires_baseline_and_every_variant() {
        let points = measure_geometries(&[(2, 4)], 1);
        let fastpath = measure_fastpath_geometries(&[(2, 4)], 1);
        // Dropping the baseline row breaks every speedup's denominator.
        let partial: Vec<FastpathPoint> = fastpath
            .iter()
            .copied()
            .filter(|p| p.variant != "baseline")
            .collect();
        let doc = simcore_json(&points, &[], &partial, &[]);
        let err = validate_simcore_json(&doc).unwrap_err();
        assert!(
            err.contains("everything-off baseline"),
            "unexpected error: {err}"
        );
        // Dropping any lever variant (md1_model rows vanishing, say) silently
        // shrinks the trajectory; the validator names the hole.
        let partial: Vec<FastpathPoint> = fastpath
            .iter()
            .copied()
            .filter(|p| p.variant != "quantized-md1")
            .collect();
        let doc = simcore_json(&points, &[], &partial, &[]);
        let err = validate_simcore_json(&doc).unwrap_err();
        assert!(err.contains("quantized-md1"), "unexpected error: {err}");
    }

    #[test]
    fn tiny_shard_sweep_scales_and_reports_identically() {
        let points = measure_shard_geometries(&[(2, 4)], 2, &[1, 2, 8]);
        assert_eq!(points.len(), 3);
        assert_eq!(points[0].shards, 1);
        assert_eq!(points[1].shards, 2);
        // Worker counts beyond the unit count are clamped to one shard per unit.
        assert_eq!(points[2].shards, 2);
        for p in &points {
            assert!(p.run.completed);
            // Identical simulations deliver identical event counts
            // (measure_shard_geometries also asserts full report equality).
            assert_eq!(p.run.events, points[0].run.events);
        }
        let base = &points[0];
        assert!((shard_speedup(&points, base) - 1.0).abs() < 1e-12);
        let table = shard_table(&points);
        assert_eq!(table.rows.len(), points.len());
    }

    #[test]
    fn shard_scaling_validation_requires_a_baseline() {
        let points = measure_geometries(&[(2, 4)], 1);
        let shards = measure_shard_geometries(&[(2, 4)], 1, &[2, 4]);
        let doc = simcore_json(&points, &shards, &[], &[]);
        let err = validate_simcore_json(&doc).unwrap_err();
        assert!(
            err.contains("workers=1 baseline"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn tiny_resilience_sweep_recovers_and_prices_the_loss() {
        // A tiny barrier run sends few inter-unit messages; 0.3 is the lowest
        // rate at which this geometry reliably sees probabilistic drops.
        let points = measure_resilience_geometries(&[(2, 4)], 2, &[0.0, 0.3]);
        assert_eq!(points.len(), RESILIENCE_KINDS.len() * 2);
        for p in &points {
            // measure_resilience_geometries already panics on an unrecovered
            // run; re-assert here so the invariant is visible in the test.
            assert!(
                p.run.completed,
                "{} drop={}",
                p.mechanism.name(),
                p.drop_rate
            );
            // Every drop is healed by exactly one retransmission.
            assert_eq!(
                p.dropped,
                p.retransmitted,
                "{} drop={}: unbalanced recovery",
                p.mechanism.name(),
                p.drop_rate
            );
            if p.drop_rate == 0.0 {
                assert_eq!(p.dropped, 0);
                // A point is its own baseline: both ratios are exactly 1.
                assert!((resilience_overhead(&points, p) - 1.0).abs() < 1e-12);
                assert!((resilience_goodput_ratio(&points, p) - 1.0).abs() < 1e-12);
            } else {
                // Recovery can only add simulated time / shed goodput.
                assert!(resilience_overhead(&points, p) >= 1.0);
                let goodput = resilience_goodput_ratio(&points, p);
                assert!(goodput > 0.0 && goodput <= 1.0 + 1e-12);
            }
        }
        // Aliveness: at a 10% drop rate the sweep as a whole must see drops.
        assert!(points.iter().any(|p| p.dropped > 0));
        let table = resilience_table(&points);
        assert_eq!(table.rows.len(), points.len());
    }

    #[test]
    fn resilience_validation_requires_a_drop_free_baseline() {
        let points = measure_geometries(&[(2, 4)], 1);
        let resilience = measure_resilience_geometries(&[(2, 4)], 1, &[0.0, 0.1]);
        let doc = simcore_json(&points, &[], &[], &resilience);
        validate_simcore_json(&doc).expect("full sweep validates");
        // Dropping the drop-rate-0 rows breaks every ratio's denominator.
        let partial: Vec<ResiliencePoint> = resilience
            .iter()
            .copied()
            .filter(|p| p.drop_rate != 0.0)
            .collect();
        let doc = simcore_json(&points, &[], &[], &partial);
        let err = validate_simcore_json(&doc).unwrap_err();
        assert!(
            err.contains("drop_rate=0 baseline"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn validation_accepts_v1_documents_without_wall_seconds() {
        // The wall-seconds geometry fields are additive to schema v1: a document
        // generated before they existed must still validate, while a present
        // field of the wrong type is rejected.
        let points = measure_geometries(&[(2, 4)], 1);
        let doc = simcore_json(&points, &[], &[], &[]);
        let text = doc.to_json_pretty();
        let pre_pr5 = regex_strip_wall(&text);
        let parsed = syncron_harness::json::parse(&pre_pr5).expect("valid JSON");
        validate_simcore_json(&parsed).expect("historical v1 document validates");
        let bad = text.replace(
            "\"heap_wall_seconds\": ",
            "\"heap_wall_seconds\": \"oops\", \"ignored\": ",
        );
        let parsed = syncron_harness::json::parse(&bad).expect("valid JSON");
        assert!(validate_simcore_json(&parsed)
            .unwrap_err()
            .contains("heap_wall_seconds"));
    }

    /// Removes the geometry wall-seconds lines from a pretty-printed document,
    /// emulating a pre-PR 5 artifact. (The pair sits between other keys, so the
    /// surrounding commas stay balanced; the rows' plain `wall_seconds` fields
    /// do not match the prefixed names and are untouched.)
    fn regex_strip_wall(text: &str) -> String {
        text.lines()
            .filter(|l| !l.contains("_wall_seconds"))
            .collect::<Vec<_>>()
            .join("\n")
    }

    #[test]
    fn validation_names_missing_pieces() {
        let doc = syncron_harness::json::parse(r#"{"schema": "nope"}"#).unwrap();
        assert!(validate_simcore_json(&doc).unwrap_err().contains("schema"));
        let doc = syncron_harness::json::parse(&format!(
            r#"{{"schema": "{SIMCORE_SCHEMA}", "scale": 1.0, "rows": []}}"#
        ))
        .unwrap();
        assert!(validate_simcore_json(&doc).unwrap_err().contains("rows"));
    }
}
