//! Large-geometry correctness tests: the machine past the 64-bit hardware word.
//!
//! The seed reproduction capped waiter tracking at 64 cores/units by accident: the
//! Synchronization Table `Waitlist` was a single `u64` guarded only by a
//! `debug_assert!`, so `cores_per_unit(128)` built fine in release mode and silently
//! aliased waiters modulo 64 (and panicked on the shift in debug mode). These tests
//! pin the fixed behavior: exactly-once wakeup and FIFO service order at 65, 128 and
//! 4096 waiters, a full 16×256 (4096-core) machine completing under all four
//! schemes, and scenario specs round-tripping at extreme field values.

use syncron::core::mechanism::{
    build_mechanism, MechanismParams, RemotePayload, SyncContext, SyncMechanism,
};
use syncron::core::request::{BarrierScope, SyncRequest};
use syncron::prelude::*;
use syncron::sim::EventQueue;
use syncron::system::workload::{Action, CoreProgram, Workload};
use syncron::system::AddressSpace;

/// A minimal machine stand-in driving a mechanism directly: fixed hop and memory
/// latencies, FIFO event delivery, and a record of completions. Geometry-parametric,
/// unlike the in-crate protocol test harness.
struct MechHarness {
    mech: Box<dyn SyncMechanism>,
    ctx: Ctx,
}

struct Ctx {
    now: Time,
    queue: EventQueue<u64>,
    /// Remote payloads in flight, delivered interleaved with the token queue
    /// in arrival-time order (the machine's sharded mailboxes, collapsed to
    /// one queue).
    inbox: EventQueue<RemotePayload>,
    completed: Vec<GlobalCoreId>,
    units: usize,
    cores_per_unit: usize,
}

impl SyncContext for Ctx {
    fn now(&self) -> Time {
        self.now
    }
    fn schedule(&mut self, at: Time, _unit: UnitId, token: u64) {
        self.queue.push(at, token);
    }
    fn local_hop(&mut self, _unit: UnitId, _bytes: u64) -> Time {
        Time::from_ns(2)
    }
    fn send_remote(&mut self, at: Time, _f: UnitId, _t: UnitId, _bytes: u64, p: RemotePayload) {
        // One flat 40 ns for the whole remote journey, charged at the send
        // side; `recv_hop` is free so end-to-end latencies match the old
        // single-call hop model these tests were written against.
        self.inbox.push(at + Time::from_ns(40), p);
    }
    fn recv_hop(&mut self, _unit: UnitId, _bytes: u64) -> Time {
        Time::ZERO
    }
    fn sync_mem_access(&mut self, _u: UnitId, _a: Addr, _w: bool, _c: bool) -> Time {
        Time::from_ns(20)
    }
    fn home_unit(&self, addr: Addr) -> UnitId {
        UnitId(((addr.value() >> 22) as usize % self.units) as u8)
    }
    fn complete(&mut self, core: GlobalCoreId, _at: Time) {
        self.completed.push(core);
    }
    fn units(&self) -> usize {
        self.units
    }
    fn cores_per_unit(&self) -> usize {
        self.cores_per_unit
    }
}

impl MechHarness {
    fn new(kind: MechanismKind, units: usize, cores_per_unit: usize) -> Self {
        MechHarness {
            mech: build_mechanism(&MechanismParams::new(kind), units, cores_per_unit),
            ctx: Ctx {
                now: Time::ZERO,
                queue: EventQueue::new(),
                inbox: EventQueue::new(),
                completed: Vec::new(),
                units,
                cores_per_unit,
            },
        }
    }

    fn request(&mut self, core: GlobalCoreId, req: SyncRequest) {
        self.mech.request(&mut self.ctx, core, req);
        loop {
            // Deliver the earliest pending item, interleaving scheduled tokens
            // with in-flight remote payloads in arrival-time order.
            let token_at = self.ctx.queue.peek_time();
            let remote_at = self.ctx.inbox.peek_time();
            match (token_at, remote_at) {
                (None, None) => break,
                (Some(t), r) if r.is_none_or(|r| t <= r) => {
                    let (at, token) = self.ctx.queue.pop().unwrap();
                    self.ctx.now = self.ctx.now.max(at);
                    self.mech.deliver(&mut self.ctx, token);
                }
                _ => {
                    let (at, payload) = self.ctx.inbox.pop().unwrap();
                    self.ctx.now = self.ctx.now.max(at);
                    self.mech.deliver_remote(&mut self.ctx, payload);
                }
            }
        }
    }
}

const PROTOCOL_SCHEMES: [MechanismKind; 3] = [
    MechanismKind::Central,
    MechanismKind::Hier,
    MechanismKind::SynCron,
];

/// Lock waiters within one unit past the hardware word: every waiter is granted
/// exactly once and in FIFO order. With the old `u64` Waitlist this geometry
/// panicked on the shift in debug builds and aliased waiters in release builds.
#[test]
fn lock_fifo_exactly_once_at_65_and_128_waiters() {
    for waiters in [65usize, 128] {
        for kind in PROTOCOL_SCHEMES {
            let mut h = MechHarness::new(kind, 2, 128);
            let var = Addr(1 << 22); // homed at unit 1
            let cores: Vec<GlobalCoreId> = (0..waiters)
                .map(|c| GlobalCoreId::new(UnitId(0), CoreId(c as u8)))
                .collect();
            for &c in &cores {
                h.request(c, SyncRequest::LockAcquire { var });
            }
            assert_eq!(h.ctx.completed.len(), 1, "{kind:?}/{waiters}: one holder");
            let mut order = vec![h.ctx.completed[0]];
            for _ in 0..waiters - 1 {
                let holder = *order.last().unwrap();
                h.request(holder, SyncRequest::LockRelease { var });
                let granted = *h.ctx.completed.last().unwrap();
                assert_ne!(granted, holder, "{kind:?}/{waiters}: grant after release");
                order.push(granted);
            }
            h.request(*order.last().unwrap(), SyncRequest::LockRelease { var });
            // Exactly-once: every requester appears exactly once in the grant order.
            assert_eq!(order.len(), waiters, "{kind:?}/{waiters}");
            assert_eq!(
                order, cores,
                "{kind:?}/{waiters}: FIFO service order must match request order"
            );
        }
    }
}

/// A full-machine barrier with 4096 waiters (16 units × 256 cores) wakes every
/// core exactly once under each protocol scheme.
#[test]
fn barrier_wakes_4096_waiters_exactly_once() {
    let (units, cores_per_unit) = (16usize, 256usize);
    let total = (units * cores_per_unit) as u32;
    for kind in PROTOCOL_SCHEMES {
        let mut h = MechHarness::new(kind, units, cores_per_unit);
        let var = Addr(3 << 22);
        for u in 0..units {
            for c in 0..cores_per_unit {
                h.request(
                    GlobalCoreId::new(UnitId(u as u8), CoreId(c as u8)),
                    SyncRequest::BarrierWait {
                        var,
                        participants: total,
                        scope: BarrierScope::AcrossUnits,
                    },
                );
            }
        }
        assert_eq!(
            h.ctx.completed.len(),
            total as usize,
            "{kind:?}: every waiter woken"
        );
        let mut woken: Vec<usize> = h
            .ctx
            .completed
            .iter()
            .map(|c| c.flat_index(cores_per_unit))
            .collect();
        woken.sort_unstable();
        woken.dedup();
        assert_eq!(
            woken.len(),
            total as usize,
            "{kind:?}: each waiter woken exactly once"
        );
    }
}

/// Per-client one-round barrier workload for full-machine runs.
struct OneBarrier {
    rounds: u32,
}

struct OneBarrierProgram {
    bar: Addr,
    participants: u32,
    remaining: u32,
}

impl CoreProgram for OneBarrierProgram {
    fn step(&mut self, _core: GlobalCoreId, _now: Time) -> Action {
        if self.remaining == 0 {
            return Action::Done;
        }
        self.remaining -= 1;
        Action::Sync(SyncRequest::BarrierWait {
            var: self.bar,
            participants: self.participants,
            scope: BarrierScope::AcrossUnits,
        })
    }
}

impl Workload for OneBarrier {
    fn name(&self) -> String {
        "one-barrier".into()
    }

    fn build(
        &self,
        space: &mut AddressSpace,
        _config: &NdpConfig,
        clients: &[GlobalCoreId],
    ) -> Vec<Box<dyn CoreProgram>> {
        let bar = space.allocate_shared_rw(64, UnitId(0));
        clients
            .iter()
            .map(|_| {
                Box::new(OneBarrierProgram {
                    bar,
                    participants: clients.len() as u32,
                    remaining: self.rounds,
                }) as Box<dyn CoreProgram>
            })
            .collect()
    }
}

/// Acceptance: the 16×256 (4096-core) machine completes under all four schemes with
/// exactly-once wakeups, within an explicit event budget.
#[test]
fn scale_4096_machine_completes_under_all_four_schemes() {
    for kind in MechanismKind::COMPARED {
        let config = NdpConfig::builder()
            .units(16)
            .cores_per_unit(256)
            .mechanism(kind)
            .max_events(40_000_000)
            .build()
            .expect("16x256 is a valid geometry");
        let rounds = 2;
        let report = syncron::system::run_workload(&config, &OneBarrier { rounds });
        assert!(report.completed, "{kind:?}: 4096-core run must complete");
        let clients = config.total_clients() as u64;
        assert_eq!(clients, 16 * 255, "one core per unit reserved as server");
        // Exactly-once wakeup: every barrier round completes each blocked client
        // precisely once, so blocking completions equal clients × rounds.
        assert_eq!(
            report.sync.completions,
            clients * u64::from(rounds),
            "{kind:?}: exactly one wakeup per waiter per round"
        );
    }
}

/// A 64×64 machine (the other large-geometry shape named by the scale scenarios)
/// also completes under all four schemes.
#[test]
fn scale_64x64_machine_completes_under_all_four_schemes() {
    for kind in MechanismKind::COMPARED {
        let config = NdpConfig::builder()
            .units(64)
            .cores_per_unit(64)
            .mechanism(kind)
            .max_events(40_000_000)
            .build()
            .expect("64x64 is a valid geometry");
        let report = syncron::system::run_workload(&config, &OneBarrier { rounds: 1 });
        assert!(report.completed, "{kind:?}: 64x64 run must complete");
        assert_eq!(report.sync.completions, config.total_clients() as u64);
    }
}

/// ConfigSpec survives a TOML/JSON round trip at extreme field values (the largest
/// ID-addressable geometry and near-limit scalar knobs).
#[test]
fn config_spec_round_trips_at_extreme_values() {
    let mut spec = ConfigSpec::default().with_geometry(256, 256);
    spec.st_entries = 1 << 20;
    spec.link_latency_ns = 10_000_000;
    spec.max_events = i64::MAX as u64;
    spec.seed = i64::MAX as u64;
    spec.signal_backoff_ns = 1 << 40;
    spec.fairness_threshold = Some(u32::MAX);

    // Value-level round trip.
    let doc = spec.to_value();
    let back = ConfigSpec::from_value(&doc).expect("extreme but valid spec decodes");
    assert_eq!(back, spec);

    // Through JSON text.
    let text = doc.to_json_pretty();
    let reparsed = syncron::harness::json::parse(&text).expect("valid JSON");
    assert_eq!(ConfigSpec::from_value(&reparsed).unwrap(), spec);

    // Through TOML text (the format scenario files use).
    let toml_text: String = doc
        .as_table()
        .expect("config is a table")
        .iter()
        .map(|(k, v)| format!("{k} = {}\n", v.to_json()))
        .collect();
    let toml_doc = syncron::harness::toml::parse(&toml_text).expect("valid TOML");
    assert_eq!(ConfigSpec::from_value(&toml_doc).unwrap(), spec);

    // And the decoded spec builds a real machine description.
    let ndp = back.to_ndp_config().expect("builds");
    assert_eq!(ndp.total_cores(), 65536);
}
