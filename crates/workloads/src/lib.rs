//! # syncron-workloads
//!
//! The workloads used in the SynCron (HPCA 2021) evaluation, implemented against the
//! simulated NDP system of `syncron-system`.
//!
//! Three classes of applications (Table 6 of the paper), plus the microbenchmarks and
//! motivational baselines:
//!
//! * [`micro`] — single-variable lock / barrier / semaphore / condition-variable
//!   microbenchmarks with a configurable interval between synchronization points
//!   (Figure 10).
//! * [`spinlock`] — TTAS and hierarchical-ticket spin locks built from atomic RMW
//!   operations on coherent (MESI) memory, and a stack protected by such a lock; these
//!   reproduce the motivational experiments (Table 1 and Figure 2).
//! * [`datastructures`] — nine pointer-chasing concurrent data structures used as
//!   key-value sets (stack, queue, array map, priority queue, skip list, hash table,
//!   linked list, fine-grained external BST, Drachsler BST), mirroring the ASCYLIB-based
//!   benchmarks of Figure 11.
//! * [`graph`] — six graph applications (BFS, Connected Components, SSSP, PageRank,
//!   Teenage Followers, Triangle Counting) in the Crono push style with per-vertex
//!   locks and inter-iteration barriers, over synthetic R-MAT / uniform graphs
//!   (Figures 12–15, 17, 19, 20).
//! * [`timeseries`] — SCRIMP-style matrix-profile time-series analysis with
//!   fine-grained locks on the output profile (Figures 12–15, 18, 21).
//! * [`service`] — open-loop service workloads beyond the paper's evaluation:
//!   deterministic Poisson / bursty / diurnal arrival processes, Zipf-skewed key
//!   sampling over millions of sync variables, and three service shapes (sharded
//!   KV, work-stealing deque, epoch reclamation) with per-request tail-latency
//!   telemetry.
//!
//! Real datasets used by the paper (wikipedia / soc-LiveJournal / sx-stackoverflow /
//! com-Orkut graphs and the air-quality / power Matrix Profile traces) are not
//! redistributable here; the generators in [`graph`] and [`timeseries`] synthesize
//! inputs with the same structural properties (power-law degree skew, motif-bearing
//! series) and the evaluation keeps the paper's input names as labels for the matching
//! synthetic configurations (see `DESIGN.md`).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod datastructures;
pub mod graph;
pub mod micro;
pub mod script;
pub mod service;
pub mod spinlock;
pub mod timeseries;

pub use micro::{
    BarrierMicrobench, CondVarMicrobench, LockMicrobench, SemaphoreMicrobench, SyncPrimitive,
};
pub use service::{
    service_workload, ArrivalProcess, EpochService, KvService, ServiceParams, ServiceShape,
    StealService,
};
