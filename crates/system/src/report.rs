//! Evaluation reports.
//!
//! A [`RunReport`] captures everything the paper's evaluation figures need from one
//! simulation: execution time (speedups, Figures 10–13, 16–23), energy broken down into
//! cache / network / memory (Figure 14), data movement inside and across NDP units
//! (Figure 15), and the synchronization mechanism's statistics (ST occupancy for
//! Table 7 and Figure 19, overflow fractions for Figures 22 and 23).

use syncron_core::mechanism::SyncMechanismStats;
use syncron_mem::energy::EnergyTally;
use syncron_net::traffic::TrafficStats;
use syncron_sim::time::Time;

/// The outcome of one workload run on one configuration.
#[derive(Clone, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RunReport {
    /// Workload name.
    pub workload: String,
    /// Synchronization mechanism name.
    pub mechanism: String,
    /// Simulated execution time (from start until the last client core finished).
    pub sim_time: Time,
    /// Whether every core finished before the event safety limit was hit.
    pub completed: bool,
    /// Application-level operations completed (data-structure ops, vertices, …).
    pub total_ops: u64,
    /// Instructions executed by client cores (compute actions).
    pub instructions: u64,
    /// Load actions executed.
    pub loads: u64,
    /// Store actions executed.
    pub stores: u64,
    /// Synchronization requests issued.
    pub sync_requests: u64,
    /// Energy breakdown.
    pub energy: EnergyTally,
    /// Data movement split into intra-unit and inter-unit bytes.
    pub traffic: TrafficStats,
    /// Synchronization mechanism statistics (messages, memory accesses, ST occupancy).
    pub sync: SyncMechanismStats,
    /// DRAM accesses performed (all units).
    pub dram_accesses: u64,
    /// Hit ratio across the client cores' L1 caches.
    pub l1_hit_ratio: f64,
}

impl RunReport {
    /// Throughput in operations per millisecond (the unit of Figure 11).
    pub fn ops_per_ms(&self) -> f64 {
        let ms = self.sim_time.as_ms_f64();
        if ms <= 0.0 {
            0.0
        } else {
            self.total_ops as f64 / ms
        }
    }

    /// Throughput in operations per microsecond (the unit of Figure 16).
    pub fn ops_per_us(&self) -> f64 {
        self.ops_per_ms() / 1000.0
    }

    /// Speedup of this run relative to `baseline` (`> 1` means this run is faster).
    pub fn speedup_over(&self, baseline: &RunReport) -> f64 {
        let own = self.sim_time.as_ps();
        if own == 0 {
            return 0.0;
        }
        baseline.sim_time.as_ps() as f64 / own as f64
    }

    /// Slowdown of this run relative to `baseline` (`> 1` means this run is slower).
    pub fn slowdown_over(&self, baseline: &RunReport) -> f64 {
        let base = baseline.sim_time.as_ps();
        if base == 0 {
            return 0.0;
        }
        self.sim_time.as_ps() as f64 / base as f64
    }

    /// Ratio of this run's total energy to `baseline`'s (`< 1` means this run uses
    /// less energy).
    pub fn energy_ratio_over(&self, baseline: &RunReport) -> f64 {
        let base = baseline.energy.total_pj();
        if base <= 0.0 {
            return 0.0;
        }
        self.energy.total_pj() / base
    }

    /// Ratio of this run's total data movement to `baseline`'s.
    pub fn data_movement_ratio_over(&self, baseline: &RunReport) -> f64 {
        let base = baseline.traffic.total_bytes();
        if base == 0 {
            return 0.0;
        }
        self.traffic.total_bytes() as f64 / base as f64
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "{:<16} {:<12} time={:<12} ops/ms={:<10.1} energy={:.1}uJ inter-unit={:.0}KB sync-msgs={}",
            self.workload,
            self.mechanism,
            self.sim_time.to_string(),
            self.ops_per_ms(),
            self.energy.total_uj(),
            self.traffic.inter_unit_bytes as f64 / 1024.0,
            self.sync.local_messages + self.sync.global_messages,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(time_ns: u64, ops: u64) -> RunReport {
        RunReport {
            workload: "test".into(),
            mechanism: "SynCron".into(),
            sim_time: Time::from_ns(time_ns),
            completed: true,
            total_ops: ops,
            instructions: 0,
            loads: 0,
            stores: 0,
            sync_requests: 0,
            energy: EnergyTally {
                cache_pj: 10.0,
                network_pj: 20.0,
                memory_pj: 70.0,
            },
            traffic: TrafficStats {
                intra_unit_bytes: 1000,
                inter_unit_bytes: 500,
                intra_unit_msgs: 10,
                inter_unit_msgs: 5,
            },
            sync: SyncMechanismStats::default(),
            dram_accesses: 0,
            l1_hit_ratio: 0.5,
        }
    }

    #[test]
    fn throughput_units() {
        let r = report(1_000_000, 500); // 1 ms, 500 ops
        assert!((r.ops_per_ms() - 500.0).abs() < 1e-9);
        assert!((r.ops_per_us() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn speedup_and_slowdown_are_reciprocal() {
        let fast = report(1_000, 100);
        let slow = report(2_000, 100);
        assert!((fast.speedup_over(&slow) - 2.0).abs() < 1e-9);
        assert!((slow.slowdown_over(&fast) - 2.0).abs() < 1e-9);
        assert!((slow.speedup_over(&fast) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn energy_and_data_ratios() {
        let a = report(1_000, 100);
        let mut b = report(1_000, 100);
        b.energy.memory_pj = 170.0;
        b.traffic.inter_unit_bytes = 2000;
        assert!((b.energy_ratio_over(&a) - 2.0).abs() < 1e-9);
        assert!((b.data_movement_ratio_over(&a) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn summary_contains_key_fields() {
        let s = report(1_000_000, 500).summary();
        assert!(s.contains("SynCron"));
        assert!(s.contains("ops/ms"));
    }
}
