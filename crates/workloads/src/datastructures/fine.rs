//! Fine-grained-lock data structures: skip list, hash table, linked list, BSTs.
//!
//! These benchmarks spread their locks over many nodes or buckets. The skip list and
//! hash table exhibit *medium* contention (different cores usually work on different
//! parts of the structure); the linked list and the fine-grained external BST exhibit
//! *low contention but high synchronization demand* (several lock acquisitions per
//! operation — these are the two structures whose Synchronization Tables overflow in
//! Section 6.7.3); the Drachsler BST performs almost no lock operations at all.

use std::collections::VecDeque;

use crate::datastructures::{DsConfig, NodePool};
use crate::script::{build, OpGenerator, ScriptProgram};
use syncron_sim::rng::SimRng;
use syncron_sim::GlobalCoreId;
use syncron_system::address::AddressSpace;
use syncron_system::config::NdpConfig;
use syncron_system::workload::{Action, CoreProgram, Workload};

fn log2_ceil(n: usize) -> u32 {
    (usize::BITS - n.max(2).next_power_of_two().leading_zeros()).saturating_sub(1)
}

/// A lock-based skip list; every core performs `ops_per_core` deletions
/// (Table 6: 5 K elements, 100% deletion).
#[derive(Clone, Copy, Debug)]
pub struct SkipList {
    /// Sizing parameters.
    pub config: DsConfig,
}

impl SkipList {
    /// Creates the benchmark.
    pub fn new(config: DsConfig) -> Self {
        SkipList { config }
    }
}

struct SkipListGen {
    cfg: DsConfig,
    pool: NodePool,
    levels: u32,
    rng: SimRng,
    remaining: u32,
}

impl OpGenerator for SkipListGen {
    fn next_op(&mut self, _core: GlobalCoreId, script: &mut VecDeque<Action>) -> bool {
        if self.remaining == 0 {
            return false;
        }
        self.remaining -= 1;
        let size = (self.cfg.initial_size as u64).max(2);
        let target = 1 + self.rng.gen_range(size - 1);
        build::compute(script, self.cfg.think_instrs);
        // Search from the top level down: one node read per level.
        for level in (0..self.levels).rev() {
            let stride = 1u64 << level;
            let idx = (target / stride.max(1)) * stride.max(1) % size;
            build::load(script, self.pool.node(idx));
        }
        // Lock the predecessor and the victim (in index order, so concurrent deletions
        // can never deadlock), unlink, release.
        let pred = target - 1;
        build::lock(script, self.pool.lock(pred));
        build::lock(script, self.pool.lock(target));
        build::load(script, self.pool.node(target));
        build::store(script, self.pool.node(pred));
        build::unlock(script, self.pool.lock(target));
        build::unlock(script, self.pool.lock(pred));
        true
    }
}

impl Workload for SkipList {
    fn name(&self) -> String {
        "skip-list".into()
    }

    fn build(
        &self,
        space: &mut AddressSpace,
        config: &NdpConfig,
        clients: &[GlobalCoreId],
    ) -> Vec<Box<dyn CoreProgram>> {
        let pool = NodePool::allocate(space, self.config.initial_size, true);
        let levels = log2_ceil(self.config.initial_size).min(16);
        clients
            .iter()
            .enumerate()
            .map(|(i, _)| {
                Box::new(ScriptProgram::new(SkipListGen {
                    cfg: self.config,
                    pool: pool.clone(),
                    levels,
                    rng: SimRng::seed_from(config.seed ^ (i as u64 * 0x9E37)),
                    remaining: self.config.ops_per_core,
                })) as Box<dyn CoreProgram>
            })
            .collect()
    }
}

/// A hash table with per-bucket locks; every core performs `ops_per_core` lookups
/// (Table 6: 1 K elements, 100% lookup).
#[derive(Clone, Copy, Debug)]
pub struct HashTable {
    /// Sizing parameters.
    pub config: DsConfig,
    /// Number of buckets (each with its own lock).
    pub buckets: usize,
}

impl HashTable {
    /// Creates the benchmark with the default 128 buckets.
    pub fn new(config: DsConfig) -> Self {
        HashTable {
            config,
            buckets: 128,
        }
    }
}

struct HashTableGen {
    cfg: DsConfig,
    buckets: u64,
    chain: u64,
    bucket_locks: NodePool,
    nodes: NodePool,
    rng: SimRng,
    remaining: u32,
}

impl OpGenerator for HashTableGen {
    fn next_op(&mut self, _core: GlobalCoreId, script: &mut VecDeque<Action>) -> bool {
        if self.remaining == 0 {
            return false;
        }
        self.remaining -= 1;
        let key = self.rng.gen_range(self.cfg.initial_size as u64);
        let bucket = key % self.buckets;
        build::compute(script, self.cfg.think_instrs);
        build::lock(script, self.bucket_locks.lock(bucket));
        // Walk the bucket chain.
        for link in 0..self.chain.max(1) {
            build::load(script, self.nodes.node(bucket + link * self.buckets));
        }
        build::unlock(script, self.bucket_locks.lock(bucket));
        true
    }
}

impl Workload for HashTable {
    fn name(&self) -> String {
        "hash-table".into()
    }

    fn build(
        &self,
        space: &mut AddressSpace,
        config: &NdpConfig,
        clients: &[GlobalCoreId],
    ) -> Vec<Box<dyn CoreProgram>> {
        let bucket_locks = NodePool::allocate(space, self.buckets, true);
        let nodes = NodePool::allocate(space, self.config.initial_size, false);
        let chain = (self.config.initial_size as u64 / self.buckets as u64).max(1);
        clients
            .iter()
            .enumerate()
            .map(|(i, _)| {
                Box::new(ScriptProgram::new(HashTableGen {
                    cfg: self.config,
                    buckets: self.buckets as u64,
                    chain,
                    bucket_locks: bucket_locks.clone(),
                    nodes: nodes.clone(),
                    rng: SimRng::seed_from(config.seed ^ (i as u64 * 0xA5A5)),
                    remaining: self.config.ops_per_core,
                })) as Box<dyn CoreProgram>
            })
            .collect()
    }
}

/// A sorted linked list with lazy-style locking: the traversal runs without locks, then
/// the predecessor and current nodes are locked and validated; every core performs
/// `ops_per_core` lookups (Table 6 uses 20 K elements; the default configuration scales
/// the list down so the traversal stays tractable in simulation, see `DESIGN.md`).
#[derive(Clone, Copy, Debug)]
pub struct LinkedList {
    /// Sizing parameters.
    pub config: DsConfig,
}

impl LinkedList {
    /// Creates the benchmark.
    pub fn new(config: DsConfig) -> Self {
        LinkedList { config }
    }
}

struct LinkedListGen {
    cfg: DsConfig,
    pool: NodePool,
    rng: SimRng,
    remaining: u32,
}

impl OpGenerator for LinkedListGen {
    fn next_op(&mut self, _core: GlobalCoreId, script: &mut VecDeque<Action>) -> bool {
        if self.remaining == 0 {
            return false;
        }
        self.remaining -= 1;
        let size = self.cfg.initial_size as u64;
        let target = self.rng.gen_range(size).max(1);
        build::compute(script, self.cfg.think_instrs);
        // Unlocked traversal up to the target position.
        for idx in 0..target {
            build::load(script, self.pool.node(idx));
        }
        // Lock predecessor and current, validate, release — two locks held at once,
        // which is what drives the synchronization demand of this benchmark.
        let pred = target - 1;
        build::lock(script, self.pool.lock(pred));
        build::lock(script, self.pool.lock(target));
        build::load(script, self.pool.node(pred));
        build::load(script, self.pool.node(target));
        build::unlock(script, self.pool.lock(target));
        build::unlock(script, self.pool.lock(pred));
        true
    }
}

impl Workload for LinkedList {
    fn name(&self) -> String {
        "linked-list".into()
    }

    fn build(
        &self,
        space: &mut AddressSpace,
        config: &NdpConfig,
        clients: &[GlobalCoreId],
    ) -> Vec<Box<dyn CoreProgram>> {
        let pool = NodePool::allocate(space, self.config.initial_size, true);
        clients
            .iter()
            .enumerate()
            .map(|(i, _)| {
                Box::new(ScriptProgram::new(LinkedListGen {
                    cfg: self.config,
                    pool: pool.clone(),
                    rng: SimRng::seed_from(config.seed ^ (i as u64 * 0xBEEF)),
                    remaining: self.config.ops_per_core,
                })) as Box<dyn CoreProgram>
            })
            .collect()
    }
}

/// An external binary search tree with fine-grained hand-over-hand locking
/// ("BST_FG", Table 6: 20 K elements, 100% lookup). Each traversal step locks the next
/// node before releasing the previous one, so every core holds two locks at any time
/// and performs `O(log n)` acquisitions per lookup — the workload that overflows the
/// Synchronization Table in Figure 23.
#[derive(Clone, Copy, Debug)]
pub struct BstFineGrained {
    /// Sizing parameters.
    pub config: DsConfig,
}

impl BstFineGrained {
    /// Creates the benchmark.
    pub fn new(config: DsConfig) -> Self {
        BstFineGrained { config }
    }
}

struct BstFgGen {
    cfg: DsConfig,
    pool: NodePool,
    depth: u32,
    rng: SimRng,
    remaining: u32,
}

impl OpGenerator for BstFgGen {
    fn next_op(&mut self, _core: GlobalCoreId, script: &mut VecDeque<Action>) -> bool {
        if self.remaining == 0 {
            return false;
        }
        self.remaining -= 1;
        let size = (self.cfg.initial_size as u64).max(2);
        let key = self.rng.next_u64();
        build::compute(script, self.cfg.think_instrs);
        // Hand-over-hand descent from the root. Node indices strictly increase along
        // the path (a proper heap-shaped tree), so concurrent lookups acquire locks in
        // a consistent global order and can never deadlock.
        let mut idx = 0u64;
        let mut prev: Option<u64> = None;
        build::lock(script, self.pool.lock(idx));
        build::load(script, self.pool.node(idx));
        for level in 0..self.depth {
            let go_right = (key >> level) & 1 == 1;
            let child = 2 * idx + 1 + u64::from(go_right);
            if child >= size {
                break;
            }
            build::lock(script, self.pool.lock(child));
            build::load(script, self.pool.node(child));
            if let Some(p) = prev {
                build::unlock(script, self.pool.lock(p));
            }
            prev = Some(idx);
            idx = child;
        }
        if let Some(p) = prev {
            build::unlock(script, self.pool.lock(p));
        }
        build::unlock(script, self.pool.lock(idx));
        true
    }
}

impl Workload for BstFineGrained {
    fn name(&self) -> String {
        "bst-fg".into()
    }

    fn build(
        &self,
        space: &mut AddressSpace,
        config: &NdpConfig,
        clients: &[GlobalCoreId],
    ) -> Vec<Box<dyn CoreProgram>> {
        let pool = NodePool::allocate(space, self.config.initial_size, true);
        let depth = log2_ceil(self.config.initial_size).min(20);
        clients
            .iter()
            .enumerate()
            .map(|(i, _)| {
                Box::new(ScriptProgram::new(BstFgGen {
                    cfg: self.config,
                    pool: pool.clone(),
                    depth,
                    rng: SimRng::seed_from(config.seed ^ (i as u64 * 0xC0FFEE)),
                    remaining: self.config.ops_per_core,
                })) as Box<dyn CoreProgram>
            })
            .collect()
    }
}

/// The Drachsler logically-ordered BST ("BST_Drachsler", Table 6: 10 K elements,
/// 100% deletion): lookups traverse without locks and a deletion locks only the victim
/// and its predecessor, so lock requests are a negligible fraction of memory accesses
/// and every synchronization scheme performs the same (Figure 11, last panel).
#[derive(Clone, Copy, Debug)]
pub struct BstDrachsler {
    /// Sizing parameters.
    pub config: DsConfig,
}

impl BstDrachsler {
    /// Creates the benchmark.
    pub fn new(config: DsConfig) -> Self {
        BstDrachsler { config }
    }
}

struct BstDrachslerGen {
    cfg: DsConfig,
    pool: NodePool,
    depth: u32,
    rng: SimRng,
    remaining: u32,
}

impl OpGenerator for BstDrachslerGen {
    fn next_op(&mut self, _core: GlobalCoreId, script: &mut VecDeque<Action>) -> bool {
        if self.remaining == 0 {
            return false;
        }
        self.remaining -= 1;
        let size = (self.cfg.initial_size as u64).max(2);
        let key = self.rng.next_u64();
        build::compute(script, self.cfg.think_instrs);
        // Lock-free traversal to the victim.
        let mut idx = 0u64;
        for level in 0..self.depth {
            build::load(script, self.pool.node(idx));
            let go_right = (key >> level) & 1 == 1;
            idx = (2 * idx + 1 + u64::from(go_right)) % size;
        }
        // Deletion locks the victim and its predecessor only, always in index order so
        // concurrent deletions cannot deadlock.
        let other = if idx == 0 { 1 } else { idx - 1 };
        let (lo, hi) = (idx.min(other), idx.max(other));
        build::lock(script, self.pool.lock(lo));
        build::lock(script, self.pool.lock(hi));
        build::store(script, self.pool.node(lo));
        build::store(script, self.pool.node(hi));
        build::unlock(script, self.pool.lock(hi));
        build::unlock(script, self.pool.lock(lo));
        true
    }
}

impl Workload for BstDrachsler {
    fn name(&self) -> String {
        "bst-drachsler".into()
    }

    fn build(
        &self,
        space: &mut AddressSpace,
        config: &NdpConfig,
        clients: &[GlobalCoreId],
    ) -> Vec<Box<dyn CoreProgram>> {
        let pool = NodePool::allocate(space, self.config.initial_size, true);
        let depth = log2_ceil(self.config.initial_size).min(20);
        clients
            .iter()
            .enumerate()
            .map(|(i, _)| {
                Box::new(ScriptProgram::new(BstDrachslerGen {
                    cfg: self.config,
                    pool: pool.clone(),
                    depth,
                    rng: SimRng::seed_from(config.seed ^ (i as u64 * 0xD00D)),
                    remaining: self.config.ops_per_core,
                })) as Box<dyn CoreProgram>
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use syncron_core::MechanismKind;
    use syncron_system::run_workload;

    fn config(kind: MechanismKind) -> NdpConfig {
        NdpConfig::builder()
            .units(2)
            .cores_per_unit(4)
            .mechanism(kind)
            .build()
            .expect("valid config")
    }

    #[test]
    fn all_fine_grained_structures_complete() {
        let workloads: Vec<Box<dyn Workload>> = vec![
            Box::new(SkipList::new(DsConfig::new(512, 8))),
            Box::new(HashTable::new(DsConfig::new(512, 8))),
            Box::new(LinkedList::new(DsConfig::new(64, 8))),
            Box::new(BstFineGrained::new(DsConfig::new(512, 8))),
            Box::new(BstDrachsler::new(DsConfig::new(512, 8))),
        ];
        for wl in &workloads {
            let report = run_workload(&config(MechanismKind::SynCron), wl.as_ref());
            assert!(report.completed, "{} did not complete", wl.name());
            assert_eq!(report.total_ops, 6 * 8, "{}", wl.name());
        }
    }

    #[test]
    fn bst_fg_has_high_lock_demand() {
        // O(log n) lock acquisitions per lookup vs 2 for the Drachsler BST.
        let fg = run_workload(
            &config(MechanismKind::SynCron),
            &BstFineGrained::new(DsConfig::new(4096, 10)),
        );
        let dr = run_workload(
            &config(MechanismKind::SynCron),
            &BstDrachsler::new(DsConfig::new(4096, 10)),
        );
        assert!(fg.sync_requests > 3 * dr.sync_requests);
    }

    #[test]
    fn bst_drachsler_is_insensitive_to_the_mechanism() {
        // Lock requests are a tiny fraction of all accesses, so Central and SynCron
        // should be within a few percent of each other (Figure 11, last panel).
        let wl = BstDrachsler::new(DsConfig::new(2048, 15));
        let central = run_workload(&config(MechanismKind::Central), &wl);
        let syncron = run_workload(&config(MechanismKind::SynCron), &wl);
        let ratio = syncron.speedup_over(&central);
        assert!(
            (0.9..1.6).contains(&ratio),
            "BST_Drachsler should be mechanism-insensitive, got speedup {ratio:.2}"
        );
    }

    #[test]
    fn hash_table_spreads_contention_over_buckets() {
        let report = run_workload(
            &config(MechanismKind::SynCron),
            &HashTable::new(DsConfig::new(512, 20)),
        );
        assert!(report.completed);
        // Many distinct lock variables are touched → ST holds several entries.
        assert!(report.sync.st_max_occupancy > 0.01);
    }

    #[test]
    fn deterministic_given_seed() {
        let wl = SkipList::new(DsConfig::new(512, 10));
        let a = run_workload(&config(MechanismKind::SynCron), &wl);
        let b = run_workload(&config(MechanismKind::SynCron), &wl);
        assert_eq!(a.sim_time, b.sim_time);
    }
}
