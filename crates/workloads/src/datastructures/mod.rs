//! Pointer-chasing concurrent data structures (Figure 11 of the paper).
//!
//! The paper evaluates lock-based concurrent data structures from the ASCYLIB library
//! used as key-value sets (Table 6): stack, queue, array map, priority queue, skip
//! list, hash table, linked list, an external fine-grained-locking BST, and the
//! Drachsler logically-ordered BST. Data structures are initialized with a fixed size
//! and statically partitioned across NDP units; each core then performs a fixed number
//! of operations of a single type (push, pop, lookup, deleteMin or delete).
//!
//! Four contention patterns emerge (Section 6.1.2) and are what the reproduction needs
//! to preserve:
//!
//! * **stack, queue, array map, priority queue** — a few coarse-grained locks, so all
//!   cores contend heavily;
//! * **skip list, hash table** — per-node / per-bucket locks, medium contention;
//! * **linked list, BST_FG** — fine-grained locks with several acquisitions per
//!   operation: low contention but high synchronization demand;
//! * **BST_Drachsler** — lock requests are a negligible fraction of all accesses.
//!
//! The module is split into [`coarse`] (the first group) and [`fine`] (the rest).

pub mod coarse;
pub mod fine;

pub use coarse::{ArrayMap, PriorityQueue, Queue, Stack};
pub use fine::{BstDrachsler, BstFineGrained, HashTable, LinkedList, SkipList};

use syncron_sim::{Addr, UnitId};
use syncron_system::address::{AddressSpace, DataClass};
use syncron_system::workload::Workload;

/// Common sizing parameters of a data-structure benchmark.
#[derive(Clone, Copy, Debug)]
pub struct DsConfig {
    /// Number of elements the structure is initialized with.
    pub initial_size: usize,
    /// Operations performed by every client core.
    pub ops_per_core: u32,
    /// Instructions of think time between operations.
    pub think_instrs: u64,
}

impl DsConfig {
    /// Creates a configuration.
    pub fn new(initial_size: usize, ops_per_core: u32) -> Self {
        DsConfig {
            initial_size,
            ops_per_core,
            think_instrs: 60,
        }
    }

    /// Sets the think time between operations.
    pub fn with_think(mut self, instrs: u64) -> Self {
        self.think_instrs = instrs;
        self
    }
}

/// A pool of fixed-size (64 B) nodes statically partitioned across NDP units, plus an
/// optional parallel array of per-node lock cells.
#[derive(Clone, Debug)]
pub struct NodePool {
    node_parts: Vec<Addr>,
    lock_parts: Vec<Addr>,
    nodes_per_unit: u64,
    units: usize,
}

impl NodePool {
    /// Allocates a pool of `nodes` nodes (shared read-write) spread across all units,
    /// with one lock cell per node when `with_locks` is set.
    pub fn allocate(space: &mut AddressSpace, nodes: usize, with_locks: bool) -> Self {
        let units = space.units();
        let nodes_per_unit = nodes.div_ceil(units).max(1) as u64;
        let node_parts = space.allocate_partitioned(
            nodes_per_unit * Addr::LINE_BYTES,
            DataClass::SharedReadWrite,
        );
        let lock_parts = if with_locks {
            space.allocate_partitioned(
                nodes_per_unit * Addr::LINE_BYTES,
                DataClass::SharedReadWrite,
            )
        } else {
            Vec::new()
        };
        NodePool {
            node_parts,
            lock_parts,
            nodes_per_unit,
            units,
        }
    }

    /// Address of node `index` (nodes are striped across units).
    pub fn node(&self, index: u64) -> Addr {
        let unit = (index % self.units as u64) as usize;
        let slot = (index / self.units as u64) % self.nodes_per_unit;
        self.node_parts[unit].offset(slot * Addr::LINE_BYTES)
    }

    /// Address of the lock cell protecting node `index`.
    ///
    /// # Panics
    ///
    /// Panics if the pool was allocated without locks.
    pub fn lock(&self, index: u64) -> Addr {
        assert!(!self.lock_parts.is_empty(), "pool has no lock cells");
        let unit = (index % self.units as u64) as usize;
        let slot = (index / self.units as u64) % self.nodes_per_unit;
        self.lock_parts[unit].offset(slot * Addr::LINE_BYTES)
    }

    /// The NDP unit that homes node `index`.
    pub fn home_of(&self, index: u64) -> UnitId {
        UnitId((index % self.units as u64) as u8)
    }
}

/// Names of all nine data-structure benchmarks, in the order of Figure 11.
pub const ALL_NAMES: [&str; 9] = [
    "stack",
    "queue",
    "array-map",
    "priority-queue",
    "skip-list",
    "hash-table",
    "linked-list",
    "bst-fg",
    "bst-drachsler",
];

/// Builds the data-structure benchmark called `name` (one of [`ALL_NAMES`]) with the
/// paper's default initialization size and `ops_per_core` operations per core.
///
/// Initialization sizes follow Table 6 (stack/queue 100 K, array map 10, priority queue
/// 20 K, skip list 5 K, hash table 1 K, linked list 20 K, BST_FG 20 K, BST_Drachsler
/// 10 K), except that the linked list's traversal length is capped by scaling its size
/// (see `DESIGN.md`).
pub fn by_name(name: &str, ops_per_core: u32) -> Option<Box<dyn Workload + Send + Sync>> {
    Some(match name {
        "stack" => Box::new(Stack::new(DsConfig::new(100_000, ops_per_core))),
        "queue" => Box::new(Queue::new(DsConfig::new(100_000, ops_per_core))),
        "array-map" => Box::new(ArrayMap::new(DsConfig::new(10, ops_per_core))),
        "priority-queue" => Box::new(PriorityQueue::new(DsConfig::new(20_000, ops_per_core))),
        "skip-list" => Box::new(SkipList::new(DsConfig::new(5_000, ops_per_core))),
        "hash-table" => Box::new(HashTable::new(DsConfig::new(1_000, ops_per_core))),
        "linked-list" => Box::new(LinkedList::new(DsConfig::new(512, ops_per_core))),
        "bst-fg" => Box::new(BstFineGrained::new(DsConfig::new(20_000, ops_per_core))),
        "bst-drachsler" => Box::new(BstDrachsler::new(DsConfig::new(10_000, ops_per_core))),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_pool_addresses_are_distinct_and_striped() {
        let mut space = AddressSpace::new(4);
        let pool = NodePool::allocate(&mut space, 1000, true);
        let mut seen = std::collections::HashSet::new();
        for i in 0..1000u64 {
            assert!(seen.insert(pool.node(i)), "duplicate node address for {i}");
            assert_eq!(pool.home_of(i), UnitId((i % 4) as u8));
            assert_eq!(space.home_unit(pool.node(i)), pool.home_of(i));
            assert_eq!(space.home_unit(pool.lock(i)), pool.home_of(i));
        }
    }

    #[test]
    #[should_panic]
    fn lockless_pool_panics_on_lock_access() {
        let mut space = AddressSpace::new(2);
        let pool = NodePool::allocate(&mut space, 16, false);
        let _ = pool.lock(0);
    }

    #[test]
    fn by_name_builds_every_benchmark() {
        for name in ALL_NAMES {
            let wl = by_name(name, 10).unwrap_or_else(|| panic!("missing workload {name}"));
            assert!(!wl.name().is_empty());
        }
        assert!(by_name("no-such-structure", 10).is_none());
    }
}
