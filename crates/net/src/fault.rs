//! Deterministic fault injection for inter-unit synchronization traffic.
//!
//! A [`FaultConfig`] describes per-link message drop/duplication probabilities,
//! delay jitter, and periodic per-SE stall windows. A [`FaultEngine`] turns the
//! config plus the scenario seed into concrete per-message verdicts.
//!
//! Every verdict is a **pure function** of `(seed, directed link, per-link
//! sequence number)` — no global RNG is consumed — so faulted runs are
//! reproducible and shard-count-invariant: the link `(from, to)` is only ever
//! used by the shard that owns `from`, and that shard's send order on the link
//! is deterministic. With all probabilities zero the engine issues no faults
//! and the simulation is bit-identical to a faults-off run (knob aliveness is
//! pinned in `tests/scheduler_differential.rs`).

use syncron_sim::Time;

/// Fault-injection knobs (default: everything off).
///
/// Faults apply to inter-unit *synchronization* messages (the `RemoteSync`
/// traffic of the protocol engines); data requests/replies are not faulted —
/// the recovery story under test is the sync protocol's timeout/retry path.
#[derive(Clone, Copy, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FaultConfig {
    /// Master switch. When `false` the fault path is never entered.
    pub enabled: bool,
    /// Per-message drop probability on every directed inter-unit link.
    pub drop_prob: f64,
    /// Per-message duplication probability (the receiver dedups the copy).
    pub dup_prob: f64,
    /// Maximum extra delivery delay in nanoseconds (uniform in `0..=jitter_ns`).
    pub jitter_ns: u64,
    /// Length of each periodic per-SE stall window in nanoseconds (`0` = none).
    pub stall_ns: u64,
    /// Period of the per-SE stall windows in nanoseconds (`0` = no stalls).
    pub stall_period_ns: u64,
    /// Deterministically drop the n-th original (non-retry) message on every
    /// directed link (`0` = off). Drives the single-drop recovery tests.
    pub drop_nth: u64,
    /// Base retransmission timeout in nanoseconds for dropped messages.
    pub retry_timeout_ns: u64,
    /// Exponential-backoff exponent cap: the k-th retry waits
    /// `retry_timeout_ns << min(k, cap)` nanoseconds.
    pub backoff_cap: u32,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            enabled: false,
            drop_prob: 0.0,
            dup_prob: 0.0,
            jitter_ns: 0,
            stall_ns: 0,
            stall_period_ns: 0,
            drop_nth: 0,
            retry_timeout_ns: 2_000,
            backoff_cap: 6,
        }
    }
}

impl FaultConfig {
    /// Whether any fault can actually fire under this config. A config that is
    /// enabled but all-zero takes the faulted code path yet produces verdicts
    /// identical to faults-off — that equivalence is the knob-aliveness pin.
    pub fn any_fault_possible(&self) -> bool {
        self.enabled
            && (self.drop_prob > 0.0
                || self.dup_prob > 0.0
                || self.jitter_ns > 0
                || (self.stall_ns > 0 && self.stall_period_ns > 0)
                || self.drop_nth > 0)
    }

    /// The retransmission delay before attempt `attempt + 1` (bounded
    /// exponential backoff: `retry_timeout_ns << min(attempt, backoff_cap)`).
    pub fn retry_delay(&self, attempt: u32) -> Time {
        let shift = attempt.min(self.backoff_cap).min(32);
        Time::from_ns(self.retry_timeout_ns.saturating_mul(1u64 << shift))
    }
}

/// Counters of every fault injected and recovered from during a run.
///
/// Merged across shards by field-wise addition; part of report divergence
/// checks so a faulted run's recovery story is itself deterministic.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FaultStats {
    /// Messages dropped by the link (original transmissions and retries).
    pub dropped: u64,
    /// Retransmissions performed after a drop.
    pub retransmitted: u64,
    /// Messages duplicated by the link.
    pub duplicated: u64,
    /// Duplicate copies discarded by receiver-side dedup.
    pub dup_discarded: u64,
    /// Messages that arrived late due to injected jitter.
    pub delayed: u64,
    /// Messages deferred by a per-SE stall window.
    pub stalled: u64,
}

impl FaultStats {
    /// Field-wise sum (shard merge).
    pub fn merge(&mut self, other: &FaultStats) {
        self.dropped += other.dropped;
        self.retransmitted += other.retransmitted;
        self.duplicated += other.duplicated;
        self.dup_discarded += other.dup_discarded;
        self.delayed += other.delayed;
        self.stalled += other.stalled;
    }
}

/// The fate of one message transmission.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SendVerdict {
    /// The link loses this transmission; the sender must retransmit.
    pub dropped: bool,
    /// The link delivers a second copy (carrying the same [`SendVerdict::tag`]).
    pub duplicated: bool,
    /// Extra delivery delay from jitter (zero when no jitter configured).
    pub jitter: Time,
    /// Extra delay of the duplicate copy beyond the first (at least 1 ns so
    /// the copies are distinct deliveries).
    pub dup_offset: Time,
    /// Transmission tag: unique per `(link, sequence)`, used by receiver-side
    /// dedup to pair duplicate copies.
    pub tag: u64,
}

/// splitmix64 finalizer — the same mixer `syncron_sim::rng` builds on, used
/// here statelessly so verdicts are pure functions of their inputs.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps a hash to a uniform f64 in `[0, 1)`.
fn unit_f64(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

const SALT_DROP: u64 = 0xD209;
const SALT_DUP: u64 = 0xD0B1;
const SALT_JITTER: u64 = 0x71EE;
const SALT_STALL: u64 = 0x57A1;

/// Per-directed-link transmission counters.
#[derive(Clone, Copy, Debug, Default)]
struct LinkSeq {
    /// All transmissions (originals and retries) — feeds the verdict hash.
    sent: u64,
    /// Original (attempt-0) transmissions — feeds `drop_nth`.
    originals: u64,
}

/// Stateful fault oracle for one shard.
///
/// Holds the per-link sequence counters (sender side — owned by the shard that
/// owns the link's source unit) and the running [`FaultStats`]. Receiver-side
/// duplicate pairing is a separate [`DedupSet`] because it belongs to the
/// *destination* shard.
#[derive(Clone, Debug)]
pub struct FaultEngine {
    config: FaultConfig,
    seed: u64,
    units: usize,
    links: Vec<LinkSeq>,
    /// Counters of faults injected/recovered by this shard.
    pub stats: FaultStats,
}

impl FaultEngine {
    /// Creates an engine for a machine of `units` units, folding the fault
    /// plan's identity out of the scenario seed.
    pub fn new(config: FaultConfig, scenario_seed: u64, units: usize) -> Self {
        FaultEngine {
            config,
            seed: mix(scenario_seed ^ 0x000F_A017_5EED),
            units,
            links: vec![LinkSeq::default(); units * units],
            stats: FaultStats::default(),
        }
    }

    /// The engine's config.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Decides the fate of one transmission on the directed link
    /// `from -> to`. `attempt` is 0 for the original send, `k` for the k-th
    /// retransmission. Advances the link's sequence counters.
    pub fn verdict(&mut self, from: usize, to: usize, attempt: u32) -> SendVerdict {
        let link = from * self.units + to;
        let seq = self.links[link];
        self.links[link].sent += 1;
        if attempt == 0 {
            self.links[link].originals += 1;
        }
        // Guaranteed-unique per (directed link, transmission) tag.
        let tag = ((from as u64) << 48) | ((to as u64) << 40) | (seq.sent & 0xFF_FFFF_FFFF);
        let key = self.seed.wrapping_add(mix((link as u64) << 40 | seq.sent));
        let dropped = (self.config.drop_prob > 0.0
            && unit_f64(mix(key ^ SALT_DROP)) < self.config.drop_prob)
            || (self.config.drop_nth > 0
                && attempt == 0
                && seq.originals + 1 == self.config.drop_nth);
        let duplicated = !dropped
            && self.config.dup_prob > 0.0
            && unit_f64(mix(key ^ SALT_DUP)) < self.config.dup_prob;
        let jitter = if self.config.jitter_ns > 0 {
            Time::from_ns(mix(key ^ SALT_JITTER) % (self.config.jitter_ns + 1))
        } else {
            Time::ZERO
        };
        let dup_offset = if duplicated {
            Time::from_ns(1 + mix(key ^ SALT_JITTER ^ SALT_DUP) % (self.config.jitter_ns + 1))
        } else {
            Time::ZERO
        };
        SendVerdict {
            dropped,
            duplicated,
            jitter,
            dup_offset,
            tag,
        }
    }

    /// Extra delay a message arriving at SE `unit` at time `at` suffers from
    /// that unit's periodic stall window. Pure function of `(seed, unit, at)`,
    /// so sender-side evaluation is shard-invariant.
    pub fn stall_defer(&self, unit: usize, at: Time) -> Time {
        let (len, period) = (self.config.stall_ns, self.config.stall_period_ns);
        if len == 0 || period == 0 {
            return Time::ZERO;
        }
        let phase = mix(self.seed ^ SALT_STALL ^ unit as u64) % period;
        let pos = (at.as_ns().wrapping_add(phase)) % period;
        if pos < len {
            Time::from_ns(len - pos)
        } else {
            Time::ZERO
        }
    }
}

/// Receiver-side duplicate pairing: the first copy of a tagged transmission is
/// delivered (and its tag remembered), the second is discarded (and the tag
/// forgotten, so the set stays bounded by the number of in-flight duplicates).
#[derive(Clone, Debug, Default)]
pub struct DedupSet {
    seen: syncron_sim::hash::FxHashSet<u64>,
}

impl DedupSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        DedupSet::default()
    }

    /// Returns `true` if the copy carrying `tag` must be discarded (its twin
    /// was already delivered).
    pub fn discard(&mut self, tag: u64) -> bool {
        if self.seen.remove(&tag) {
            true
        } else {
            self.seen.insert(tag);
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn faulty(drop: f64, dup: f64, jitter: u64) -> FaultConfig {
        FaultConfig {
            enabled: true,
            drop_prob: drop,
            dup_prob: dup,
            jitter_ns: jitter,
            ..FaultConfig::default()
        }
    }

    #[test]
    fn zero_probability_verdicts_are_clean() {
        // Enabled-but-all-zero must behave exactly like faults-off: no drop,
        // no duplicate, no jitter, no stall — the knob-aliveness contract.
        let mut engine = FaultEngine::new(faulty(0.0, 0.0, 0), 42, 4);
        for from in 0..4 {
            for to in 0..4 {
                for attempt in 0..3 {
                    let v = engine.verdict(from, to, attempt);
                    assert!(!v.dropped && !v.duplicated);
                    assert_eq!(v.jitter, Time::ZERO);
                }
            }
        }
        assert_eq!(engine.stall_defer(2, Time::from_ns(1234)), Time::ZERO);
    }

    #[test]
    fn verdicts_are_deterministic_per_seed_and_sequence() {
        let run = |seed: u64| -> Vec<SendVerdict> {
            let mut engine = FaultEngine::new(faulty(0.3, 0.3, 50), seed, 4);
            (0..64)
                .map(|i| engine.verdict(i % 4, (i + 1) % 4, 0))
                .collect()
        };
        assert_eq!(run(7), run(7), "same seed, same verdict stream");
        assert_ne!(run(7), run(8), "different seeds diverge");
        let verdicts = run(7);
        assert!(verdicts.iter().any(|v| v.dropped));
        assert!(verdicts.iter().any(|v| v.duplicated));
        assert!(verdicts.iter().any(|v| v.jitter > Time::ZERO));
    }

    #[test]
    fn drop_nth_drops_exactly_the_nth_original_per_link() {
        let mut config = FaultConfig {
            enabled: true,
            drop_nth: 3,
            ..FaultConfig::default()
        };
        config.drop_prob = 0.0;
        let mut engine = FaultEngine::new(config, 9, 2);
        let fates: Vec<bool> = (0..6).map(|_| engine.verdict(0, 1, 0).dropped).collect();
        assert_eq!(fates, [false, false, true, false, false, false]);
        // Retransmissions (attempt > 0) are never counted or dropped.
        let mut engine = FaultEngine::new(config, 9, 2);
        engine.verdict(0, 1, 0);
        engine.verdict(0, 1, 0);
        assert!(!engine.verdict(0, 1, 1).dropped, "retry is not an original");
        assert!(
            engine.verdict(0, 1, 0).dropped,
            "3rd original still dropped"
        );
    }

    #[test]
    fn stall_windows_are_periodic_and_unit_phased() {
        let config = FaultConfig {
            enabled: true,
            stall_ns: 100,
            stall_period_ns: 1_000,
            ..FaultConfig::default()
        };
        let engine = FaultEngine::new(config, 1, 4);
        // Somewhere in each period the defer is nonzero, and deferring past
        // the window makes it zero: defer(t) + t lands at the window's end.
        for unit in 0..4 {
            let mut saw_stall = false;
            for ns in 0..1_000 {
                let t = Time::from_ns(ns);
                let defer = engine.stall_defer(unit, t);
                if defer > Time::ZERO {
                    saw_stall = true;
                    assert!(defer.as_ns() <= 100);
                    assert_eq!(
                        engine.stall_defer(unit, t + defer),
                        Time::ZERO,
                        "deferred arrival must clear the window"
                    );
                }
            }
            assert!(saw_stall, "unit {unit} never stalls");
        }
        // Units are phase-shifted, not synchronized: compare each unit's
        // window start (the first instant with a full-length defer).
        let starts: Vec<Option<u64>> = (0..4)
            .map(|u| (0..1_000).find(|&ns| engine.stall_defer(u, Time::from_ns(ns)).as_ns() == 100))
            .collect();
        assert!(
            starts.windows(2).any(|w| w[0] != w[1]),
            "all units share one phase: {starts:?}"
        );
    }

    #[test]
    fn retry_backoff_is_exponential_and_bounded() {
        let config = FaultConfig {
            retry_timeout_ns: 100,
            backoff_cap: 3,
            ..FaultConfig::default()
        };
        assert_eq!(config.retry_delay(0).as_ns(), 100);
        assert_eq!(config.retry_delay(1).as_ns(), 200);
        assert_eq!(config.retry_delay(3).as_ns(), 800);
        assert_eq!(config.retry_delay(9).as_ns(), 800, "capped at 2^cap");
    }

    #[test]
    fn dedup_pairs_copies_and_stays_bounded() {
        let mut set = DedupSet::new();
        assert!(!set.discard(7), "first copy delivers");
        assert!(set.discard(7), "second copy is discarded");
        assert!(!set.discard(7), "tag forgotten after pairing");
        set.discard(7);
        for tag in 0..100 {
            set.discard(tag);
            set.discard(tag);
        }
        assert!(set.seen.is_empty(), "paired tags must not accumulate");
    }
}
