//! No-op `Serialize` / `Deserialize` derive macros for the offline serde shim.
//!
//! Both derives expand to nothing, so `#[derive(serde::Serialize)]` type-checks without
//! generating any impls. See `syncron-serde-stub` for why this exists.

use proc_macro::TokenStream;

/// Expands to nothing.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
