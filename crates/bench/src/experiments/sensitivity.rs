//! Figures 17–22, the fairness extension (Figure 24 in this reproduction), and the
//! large-geometry scaling study beyond Figure 13's range.

use crate::experiments::realapps::{workload_spec, AppCombo};
use crate::{
    expect_slowdown, expect_speedup, f2, run_scenarios, scaled, Sweep, Table, WorkloadSpec,
};
use syncron_core::MechanismKind;
use syncron_mem::MemTech;
use syncron_workloads::graph::{GraphAlgo, GraphInput, Partitioning};
use syncron_workloads::micro::SyncPrimitive;

/// The Figure 17 sweep: pr.wk across the compared schemes as the inter-unit link
/// latency grows (low contention).
pub fn fig17_sweep() -> Sweep {
    Sweep::new("fig17")
        .workload(workload_spec(&AppCombo {
            app: "pr",
            input: "wk",
        }))
        .link_latencies_ns([40, 100, 200, 500])
        .compared_mechanisms()
}

/// Figure 17: slowdown over Ideal of each scheme for pr.wk as the inter-unit link
/// latency grows (low contention).
pub fn fig17() -> Table {
    let latencies_ns = [40u64, 100, 200, 500];
    let results = run_scenarios(&fig17_sweep().scenarios().expect("valid sweep"));
    let mut table = Table::new(
        "Figure 17: pr.wk slowdown over Ideal vs inter-unit link latency",
        &["latency_ns", "Ideal", "SynCron", "Hier", "Central"],
    );
    for &lat in &latencies_ns {
        let label = |kind: MechanismKind| format!("fig17/pr.wk/lat={lat}/mech={}", kind.name());
        let ideal = label(MechanismKind::Ideal);
        table.push_row(vec![
            lat.to_string(),
            f2(1.0),
            f2(expect_slowdown(
                &results,
                &label(MechanismKind::SynCron),
                &ideal,
            )),
            f2(expect_slowdown(
                &results,
                &label(MechanismKind::Hier),
                &ideal,
            )),
            f2(expect_slowdown(
                &results,
                &label(MechanismKind::Central),
                &ideal,
            )),
        ]);
    }
    table
}

/// Figure 18: speedup over Central of each scheme for cc.wk, pr.wk and ts.pow under
/// HBM, HMC and DDR4 memory.
pub fn fig18() -> Table {
    let combos = [
        AppCombo {
            app: "cc",
            input: "wk",
        },
        AppCombo {
            app: "pr",
            input: "wk",
        },
        AppCombo {
            app: "ts",
            input: "pow",
        },
    ];
    let techs = [MemTech::Hbm, MemTech::Hmc, MemTech::Ddr4];
    let sweep = Sweep::new("fig18")
        .workloads(combos.iter().map(workload_spec))
        .mem_techs(techs)
        .compared_mechanisms();
    let results = run_scenarios(&sweep.scenarios().expect("valid sweep"));

    let mut table = Table::new(
        "Figure 18: speedup over Central under different memory technologies",
        &["app.input", "memory", "Central", "Hier", "SynCron", "Ideal"],
    );
    for combo in &combos {
        for &tech in &techs {
            let label = |kind: MechanismKind| {
                format!(
                    "fig18/{}/mem={}/mech={}",
                    combo.label(),
                    tech.name(),
                    kind.name()
                )
            };
            let central = label(MechanismKind::Central);
            let mut cells = vec![combo.label(), tech.name().to_string()];
            for kind in MechanismKind::COMPARED {
                cells.push(f2(expect_speedup(&results, &label(kind), &central)));
            }
            table.push_row(cells);
        }
    }
    table
}

/// Figure 19: effect of a better graph partitioning (greedy min-cut stand-in for Metis)
/// on PageRank, plus SynCron's maximum ST occupancy.
pub fn fig19() -> Table {
    let partitionings = [
        ("striped", Partitioning::Striped),
        ("greedy", Partitioning::Greedy),
    ];
    let sweep = Sweep::new("fig19")
        .workloads(GraphInput::ALL.iter().flat_map(|input| {
            partitionings
                .iter()
                .map(|&(_, partitioning)| WorkloadSpec::Graph {
                    algo: GraphAlgo::Pr,
                    input: input.name.to_string(),
                    partitioning,
                })
        }))
        .compared_mechanisms();
    let results = run_scenarios(&sweep.scenarios().expect("valid sweep"));

    let mut table = Table::new(
        "Figure 19: PageRank speedup over Central(striped) with better data placement",
        &[
            "input",
            "placement",
            "Central",
            "Hier",
            "SynCron",
            "Ideal",
            "SynCron max ST occupancy %",
        ],
    );
    for input in GraphInput::ALL {
        // Workload labels: `pr.{input}` for striped, `pr.{input}.greedy` for greedy.
        let label = |pname: &str, kind: MechanismKind| {
            let suffix = if pname == "greedy" { ".greedy" } else { "" };
            format!("fig19/pr.{}{}/mech={}", input.name, suffix, kind.name())
        };
        let striped_central = label("striped", MechanismKind::Central);
        for (pname, _) in &partitionings {
            let mut cells = vec![format!("pr.{}", input.name), pname.to_string()];
            for kind in MechanismKind::COMPARED {
                cells.push(f2(expect_speedup(
                    &results,
                    &label(pname, kind),
                    &striped_central,
                )));
            }
            cells.push(f2(results
                .report(&label(pname, MechanismKind::SynCron))
                .expect("swept")
                .sync
                .st_max_occupancy
                * 100.0));
            table.push_row(cells);
        }
    }
    table
}

/// Figure 20: SynCron vs its flat variant for the graph applications (low contention,
/// synchronization non-intensive), 40 ns links.
pub fn fig20() -> Table {
    let mut combos = Vec::new();
    for algo in GraphAlgo::ALL {
        for input in GraphInput::ALL {
            combos.push(AppCombo {
                app: algo.name(),
                input: input.name,
            });
        }
    }
    let sweep = Sweep::new("fig20")
        .workloads(combos.iter().map(workload_spec))
        .mechanisms([MechanismKind::SynCronFlat, MechanismKind::SynCron]);
    let results = run_scenarios(&sweep.scenarios().expect("valid sweep"));

    let mut table = Table::new(
        "Figure 20: SynCron speedup over flat (graph applications, 40ns links)",
        &["app.input", "speedup vs flat"],
    );
    let mut sum = 0.0;
    for combo in &combos {
        let hier = format!("fig20/{}/mech=SynCron", combo.label());
        let flat = format!("fig20/{}/mech=SynCron-flat", combo.label());
        let speedup = expect_speedup(&results, &hier, &flat);
        sum += speedup;
        table.push_row(vec![combo.label(), f2(speedup)]);
    }
    table.push_row(vec!["AVG".into(), f2(sum / combos.len() as f64)]);
    table
}

/// Figure 21: SynCron vs flat under (a) a synchronization-intensive low-contention
/// workload (time series) and (b) a high-contention workload (queue), sweeping the
/// inter-unit link latency.
pub fn fig21() -> Table {
    let latencies_ns = [40u64, 100, 200, 500];
    let flat_vs_hier = [MechanismKind::SynCronFlat, MechanismKind::SynCron];

    // (a) time series, 4 NDP units; (b) queue with 30 and 60 cores. One combined run.
    let mut scenarios = Sweep::new("fig21-ts")
        .workloads(["air", "pow"].map(|input| workload_spec(&AppCombo { app: "ts", input })))
        .link_latencies_ns(latencies_ns)
        .mechanisms(flat_vs_hier)
        .scenarios()
        .expect("valid sweep");
    let ops = scaled(40, 8);
    scenarios.extend(
        Sweep::new("fig21-queue")
            .workload(WorkloadSpec::DataStructure {
                name: "queue".into(),
                ops_per_core: ops,
            })
            .units([2, 4])
            .link_latencies_ns(latencies_ns)
            .mechanisms(flat_vs_hier)
            .scenarios()
            .expect("valid sweep"),
    );
    let results = run_scenarios(&scenarios);

    let mut table = Table::new(
        "Figure 21: SynCron speedup over flat vs link latency",
        &["workload", "latency_ns", "speedup vs flat"],
    );
    for ts in ["ts.air", "ts.pow"] {
        for &lat in &latencies_ns {
            let hier = format!("fig21-ts/{ts}/lat={lat}/mech=SynCron");
            let flat = format!("fig21-ts/{ts}/lat={lat}/mech=SynCron-flat");
            table.push_row(vec![
                ts.into(),
                lat.to_string(),
                f2(expect_speedup(&results, &hier, &flat)),
            ]);
        }
    }
    for (units, display) in [(2usize, "queue.30cores"), (4, "queue.60cores")] {
        for &lat in &latencies_ns {
            let hier = format!("fig21-queue/queue/u={units}/lat={lat}/mech=SynCron");
            let flat = format!("fig21-queue/queue/u={units}/lat={lat}/mech=SynCron-flat");
            table.push_row(vec![
                display.into(),
                lat.to_string(),
                f2(expect_speedup(&results, &hier, &flat)),
            ]);
        }
    }
    table
}

/// Figure 22: slowdown of SynCron with smaller STs (normalized to the 64-entry ST) and
/// the fraction of overflowed requests, for cc.wk, pr.wk, ts.air and ts.pow.
pub fn fig22() -> Table {
    let combos = [
        AppCombo {
            app: "cc",
            input: "wk",
        },
        AppCombo {
            app: "pr",
            input: "wk",
        },
        AppCombo {
            app: "ts",
            input: "air",
        },
        AppCombo {
            app: "ts",
            input: "pow",
        },
    ];
    let st_sizes = [64usize, 48, 32, 16, 8];
    let sweep = Sweep::new("fig22")
        .workloads(combos.iter().map(workload_spec))
        .st_entries(st_sizes);
    let results = run_scenarios(&sweep.scenarios().expect("valid sweep"));

    let mut table = Table::new(
        "Figure 22: slowdown vs ST size (normalized to 64 entries) and overflowed requests",
        &["app.input", "ST entries", "slowdown", "overflowed %"],
    );
    for combo in &combos {
        let baseline = format!("fig22/{}/st=64", combo.label());
        for &st in &st_sizes {
            let label = format!("fig22/{}/st={st}", combo.label());
            table.push_row(vec![
                combo.label(),
                st.to_string(),
                f2(expect_slowdown(&results, &label, &baseline)),
                f2(results
                    .report(&label)
                    .expect("swept")
                    .sync
                    .overflow_fraction()
                    * 100.0),
            ]);
        }
    }
    table
}

/// Fairness extension (Section 4.4.2): effect of the local-grant threshold on a
/// high-contention lock microbenchmark. This experiment goes beyond the paper's
/// evaluation, which leaves fairness exploration to future work.
pub fn fig24_fairness() -> Table {
    let thresholds: [Option<u32>; 4] = [None, Some(32), Some(8), Some(2)];
    let iterations = scaled(30, 6);
    let sweep = Sweep::new("fig24")
        .workload(WorkloadSpec::Micro {
            primitive: SyncPrimitive::Lock,
            interval: 100,
            iterations,
        })
        .fairness_thresholds(thresholds);
    let results = run_scenarios(&sweep.scenarios().expect("valid sweep"));

    let mut table = Table::new(
        "Fairness extension: lock microbenchmark vs local-grant threshold",
        &["threshold", "total time (us)", "ops/ms", "remote messages"],
    );
    for &threshold in &thresholds {
        let fragment = threshold.map_or("off".to_string(), |t| t.to_string());
        let report = results
            .report(&format!("fig24/lock-micro.i100/fair={fragment}"))
            .expect("swept");
        table.push_row(vec![
            fragment,
            f2(report.sim_time.as_us_f64()),
            f2(report.ops_per_ms()),
            report.sync.global_messages.to_string(),
        ]);
    }
    table
}

/// Scaling sensitivity beyond Figure 13's range: Figure 13 stops at 4 NDP units
/// (64 cores); this experiment grows the machine to 64 units (1024 cores) at the
/// paper's 16 cores per unit and reports each scheme's throughput scaling relative
/// to its own 4-unit run on a contended barrier microbenchmark. Declarative twin:
/// `scenarios/scaling_sensitivity.toml`.
pub fn scaling_beyond_fig13() -> Table {
    let unit_steps = [4usize, 16, 64];
    let sweep = Sweep::new("scaling")
        .workload(WorkloadSpec::Micro {
            primitive: SyncPrimitive::Barrier,
            interval: 200,
            iterations: scaled(4, 2),
        })
        .units(unit_steps)
        .compared_mechanisms();
    let results = run_scenarios(&sweep.scenarios().expect("valid sweep"));

    let mut table = Table::new(
        "Scaling beyond Figure 13: barrier throughput scaling vs a 4-unit machine",
        &["units", "cores", "Central", "Hier", "SynCron", "Ideal"],
    );
    let label = |kind: MechanismKind, units: usize| {
        format!("scaling/barrier-micro.i200/u={units}/mech={}", kind.name())
    };
    for &units in &unit_steps {
        let mut cells = vec![units.to_string(), (units * 16).to_string()];
        for kind in MechanismKind::COMPARED {
            let base = results.report(&label(kind, 4)).expect("swept");
            let run = results.report(&label(kind, units)).expect("swept");
            assert!(
                base.completed && run.completed,
                "scaling runs must complete within their event budget"
            );
            // Throughput ratio: > 1 means the scheme scales past its 4-unit run.
            cells.push(f2(run.ops_per_ms() / base.ops_per_ms()));
        }
        table.push_row(cells);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_experiment_covers_1024_cores_and_completes() {
        std::env::set_var("SYNCRON_SCALE", "0.2");
        let t = scaling_beyond_fig13();
        assert_eq!(t.rows.len(), 3);
        assert_eq!(t.rows[2][0], "64", "largest step is 64 units");
        assert_eq!(t.rows[2][1], "1024", "1024 cores, beyond Fig 13's 64");
        // Every cell parsed as a finite ratio (the runs completed).
        for row in &t.rows {
            for cell in &row[2..] {
                let v: f64 = cell.parse().unwrap();
                assert!(v.is_finite() && v > 0.0, "{cell}");
            }
        }
    }

    #[test]
    fn fig22_baseline_row_is_unity() {
        std::env::set_var("SYNCRON_SCALE", "0.2");
        let t = fig22();
        // Every first row of each block is the 64-entry baseline → slowdown 1.00.
        assert!(t.rows.iter().step_by(5).all(|r| r[2] == "1.00"));
    }

    #[test]
    fn fairness_thresholds_increase_remote_messages() {
        std::env::set_var("SYNCRON_SCALE", "0.2");
        let t = fig24_fairness();
        let off: u64 = t.rows[0][3].parse().unwrap();
        let aggressive: u64 = t.rows[3][3].parse().unwrap();
        assert!(
            aggressive >= off,
            "fairness hand-offs should add global traffic"
        );
    }
}
