//! Hardware area and power model of the Synchronization Engine.
//!
//! Table 8 of the paper compares one SE against an ARM Cortex-A7 core:
//!
//! | | SE (40 nm) | ARM Cortex-A7 (28 nm) |
//! |---|---|---|
//! | SPU | 0.0141 mm² | — |
//! | ST | 0.0112 mm² | — |
//! | Indexing counters | 0.0208 mm² | — |
//! | Total area | 0.0461 mm² | 0.45 mm² (with 32 KB L1) |
//! | Power | 2.7 mW | 100 mW |
//!
//! The paper derives the SPU numbers from Aladdin and the SRAM structures from CACTI.
//! We reproduce Table 8 analytically: the published component values are constants for
//! the paper's configuration (64-entry ST, 256 indexing counters, 4 units × 16 cores)
//! and SRAM area/power scale linearly in capacity for other configurations.

use crate::table::StEntry;

/// Area and power estimate of one Synchronization Engine.
#[derive(Clone, Copy, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SeCost {
    /// Synchronization Processing Unit area, mm² at 40 nm.
    pub spu_mm2: f64,
    /// Synchronization Table area, mm² at 40 nm.
    pub st_mm2: f64,
    /// Indexing-counter file area, mm² at 40 nm.
    pub counters_mm2: f64,
    /// Total power, mW.
    pub power_mw: f64,
}

/// Reference numbers for the ARM Cortex-A7 comparison point of Table 8.
#[derive(Clone, Copy, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CortexA7 {
    /// Core + 32 KB L1 area, mm² at 28 nm.
    pub area_mm2: f64,
    /// Power, mW.
    pub power_mw: f64,
}

impl CortexA7 {
    /// The reference values used in Table 8.
    pub const REFERENCE: CortexA7 = CortexA7 {
        area_mm2: 0.45,
        power_mw: 100.0,
    };
}

/// Paper-published component values for the default configuration.
const SPU_MM2: f64 = 0.0141;
const ST64_MM2: f64 = 0.0112;
const COUNTERS256_MM2: f64 = 0.0208;
const SE_POWER_MW: f64 = 2.7;
/// ST capacity in bytes for the paper's configuration (64 entries × 149 bits).
const ST64_BYTES: f64 = 1192.0;
/// Indexing-counter capacity in bytes for the paper's configuration (Table 5: 2304 B).
const COUNTERS256_BYTES: f64 = 2304.0;

impl SeCost {
    /// Cost of an SE with the paper's default configuration (64-entry ST, 256 indexing
    /// counters, 4 units × 16 cores).
    pub fn paper_default() -> Self {
        SeCost::for_config(64, 256, 4, 16)
    }

    /// Cost of an SE for an arbitrary configuration. SRAM structures scale linearly in
    /// capacity from the published CACTI-derived values; the SPU is configuration
    /// independent; power scales with total SRAM capacity.
    pub fn for_config(
        st_entries: usize,
        indexing_counters: usize,
        units: usize,
        cores_per_unit: usize,
    ) -> Self {
        let st_bytes = st_entries as f64 * f64::from(StEntry::bits(units, cores_per_unit)) / 8.0;
        let counter_bytes = indexing_counters as f64 * (COUNTERS256_BYTES / 256.0);
        let st_mm2 = ST64_MM2 * st_bytes / ST64_BYTES;
        let counters_mm2 = COUNTERS256_MM2 * counter_bytes / COUNTERS256_BYTES;
        let sram_scale = (st_bytes + counter_bytes) / (ST64_BYTES + COUNTERS256_BYTES);
        SeCost {
            spu_mm2: SPU_MM2,
            st_mm2,
            counters_mm2,
            power_mw: SE_POWER_MW * (0.5 + 0.5 * sram_scale),
        }
    }

    /// Total SE area in mm².
    pub fn total_mm2(&self) -> f64 {
        self.spu_mm2 + self.st_mm2 + self.counters_mm2
    }

    /// Area of the SE relative to an ARM Cortex-A7 (Table 8's headline comparison).
    pub fn area_vs_cortex_a7(&self) -> f64 {
        self.total_mm2() / CortexA7::REFERENCE.area_mm2
    }

    /// Power of the SE relative to an ARM Cortex-A7.
    pub fn power_vs_cortex_a7(&self) -> f64 {
        self.power_mw / CortexA7::REFERENCE.power_mw
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_table8() {
        let se = SeCost::paper_default();
        assert!((se.spu_mm2 - 0.0141).abs() < 1e-6);
        assert!((se.st_mm2 - 0.0112).abs() < 1e-6);
        assert!((se.counters_mm2 - 0.0208).abs() < 1e-6);
        assert!((se.total_mm2() - 0.0461).abs() < 1e-4);
        assert!((se.power_mw - 2.7).abs() < 1e-6);
    }

    #[test]
    fn se_is_an_order_of_magnitude_smaller_than_a7() {
        let se = SeCost::paper_default();
        assert!(se.area_vs_cortex_a7() < 0.15);
        assert!(se.power_vs_cortex_a7() < 0.05);
    }

    #[test]
    fn smaller_st_means_smaller_area() {
        let small = SeCost::for_config(16, 256, 4, 16);
        let big = SeCost::for_config(256, 256, 4, 16);
        assert!(small.st_mm2 < SeCost::paper_default().st_mm2);
        assert!(big.st_mm2 > SeCost::paper_default().st_mm2);
        assert!(small.total_mm2() < big.total_mm2());
        assert!(small.power_mw < big.power_mw);
    }

    #[test]
    fn spu_area_is_configuration_independent() {
        let a = SeCost::for_config(8, 64, 2, 8);
        let b = SeCost::for_config(256, 1024, 8, 32);
        assert_eq!(a.spu_mm2, b.spu_mm2);
    }
}
