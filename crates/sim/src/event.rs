//! Discrete-event queue.
//!
//! The simulator advances time by repeatedly popping the earliest pending event.
//! Events scheduled for the same timestamp are delivered in FIFO order (insertion
//! order), which keeps simulations deterministic and makes protocol races easy to
//! reason about in tests.

use crate::time::Time;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A time-ordered, insertion-stable event queue.
///
/// # Example
///
/// ```
/// use syncron_sim::event::EventQueue;
/// use syncron_sim::time::Time;
///
/// let mut q = EventQueue::new();
/// q.push(Time::from_ns(5), "b");
/// q.push(Time::from_ns(1), "a");
/// q.push(Time::from_ns(5), "c");
/// assert_eq!(q.pop(), Some((Time::from_ns(1), "a")));
/// assert_eq!(q.pop(), Some((Time::from_ns(5), "b")));
/// assert_eq!(q.pop(), Some((Time::from_ns(5), "c")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
    popped: u64,
}

#[derive(Debug)]
struct Entry<E> {
    at: Time,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.at.cmp(&other.at).then(self.seq.cmp(&other.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty event queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            popped: 0,
        }
    }

    /// Creates an empty event queue with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            seq: 0,
            popped: 0,
        }
    }

    /// Schedules `event` to fire at absolute time `at`.
    pub fn push(&mut self, at: Time, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry { at, seq, event }));
    }

    /// Removes and returns the earliest pending event, or `None` if the queue is empty.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        self.heap.pop().map(|Reverse(e)| {
            self.popped += 1;
            (e.at, e.event)
        })
    }

    /// Returns the timestamp of the earliest pending event without removing it.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|Reverse(e)| e.at)
    }

    /// Number of events currently pending.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events scheduled so far (including already-delivered ones).
    pub fn scheduled_total(&self) -> u64 {
        self.seq
    }

    /// Total number of events delivered so far.
    pub fn delivered_total(&self) -> u64 {
        self.popped
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.push(Time::from_ps(30), 3);
        q.push(Time::from_ps(10), 1);
        q.push(Time::from_ps(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn fifo_within_same_timestamp() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(Time::from_ps(7), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn counts_scheduled_and_delivered() {
        let mut q = EventQueue::new();
        q.push(Time::ZERO, ());
        q.push(Time::ZERO, ());
        assert_eq!(q.scheduled_total(), 2);
        assert_eq!(q.delivered_total(), 0);
        q.pop();
        assert_eq!(q.delivered_total(), 1);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn peek_time_reports_earliest() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(Time::from_ns(9), 'x');
        q.push(Time::from_ns(2), 'y');
        assert_eq!(q.peek_time(), Some(Time::from_ns(2)));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::rng::SimRng;

    // Deterministic stand-ins for proptest properties (no crates.io access).

    /// Popping always yields events in non-decreasing time order, and events with
    /// equal timestamps preserve insertion order.
    #[test]
    fn pops_are_monotone_and_stable() {
        for case in 0..64u64 {
            let mut rng = SimRng::seed_from(0xE4E7_0000 + case);
            let count = 1 + rng.gen_range(199) as usize;
            let times: Vec<u64> = (0..count).map(|_| rng.gen_range(50)).collect();
            let mut q = EventQueue::new();
            for (i, t) in times.iter().enumerate() {
                q.push(Time::from_ps(*t), i);
            }
            let mut last: Option<(Time, usize)> = None;
            while let Some((t, idx)) = q.pop() {
                if let Some((lt, lidx)) = last {
                    assert!(t >= lt);
                    if t == lt {
                        assert!(idx > lidx);
                    }
                }
                last = Some((t, idx));
            }
        }
    }

    /// Every pushed event is delivered exactly once.
    #[test]
    fn conservation() {
        for case in 0..64u64 {
            let mut rng = SimRng::seed_from(0xC0_5E4B + case);
            let count = rng.gen_range(300) as usize;
            let times: Vec<u64> = (0..count).map(|_| rng.gen_range(1000)).collect();
            let mut q = EventQueue::new();
            for (i, t) in times.iter().enumerate() {
                q.push(Time::from_ps(*t), i);
            }
            let mut seen = vec![false; times.len()];
            while let Some((_, idx)) = q.pop() {
                assert!(!seen[idx]);
                seen[idx] = true;
            }
            assert!(seen.iter().all(|&s| s));
        }
    }
}
