//! Graph applications (Crono push style) with fine-grained synchronization.
//!
//! Table 6 of the paper: BFS, Connected Components, SSSP, PageRank, Teenage Followers
//! and Triangle Counting, all in the "push" style where a vertex pushes updates into
//! its neighbors' entries of a shared output array. The output array is read-write
//! shared data protected by **per-vertex locks** (fine-grained synchronization, low
//! contention), and iterations are separated by **global barriers** — exactly the
//! pattern the paper's real-application evaluation (Figures 12–15) exercises.

use std::collections::VecDeque;
use std::sync::Arc;
use std::sync::Mutex;

use crate::graph::{partition_greedy, partition_striped, Graph, GraphInput};
use syncron_core::request::{BarrierScope, SyncRequest};
use syncron_sim::rng::SimRng;
use syncron_sim::time::Time;
use syncron_sim::{Addr, GlobalCoreId, UnitId};
use syncron_system::address::{AddressSpace, DataClass};
use syncron_system::config::NdpConfig;
use syncron_system::workload::{Action, CoreProgram, Workload};

/// The six graph algorithms of Table 6.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum GraphAlgo {
    /// Breadth-First Search (level-synchronous push).
    Bfs,
    /// Connected Components (label propagation).
    Cc,
    /// Single-Source Shortest Paths (Bellman–Ford rounds, unit weights).
    Sssp,
    /// PageRank (fixed number of push iterations).
    Pr,
    /// Teenage Followers (single pass, counter updates).
    Tf,
    /// Triangle Counting (single pass, neighborhood intersections).
    Tc,
}

impl GraphAlgo {
    /// All algorithms in the paper's order.
    pub const ALL: [GraphAlgo; 6] = [
        GraphAlgo::Bfs,
        GraphAlgo::Cc,
        GraphAlgo::Sssp,
        GraphAlgo::Pr,
        GraphAlgo::Tf,
        GraphAlgo::Tc,
    ];

    /// Short name used in reports (matches the paper's abbreviations).
    pub fn name(self) -> &'static str {
        match self {
            GraphAlgo::Bfs => "bfs",
            GraphAlgo::Cc => "cc",
            GraphAlgo::Sssp => "sssp",
            GraphAlgo::Pr => "pr",
            GraphAlgo::Tf => "tf",
            GraphAlgo::Tc => "tc",
        }
    }

    /// Looks up an algorithm by name.
    pub fn by_name(name: &str) -> Option<GraphAlgo> {
        GraphAlgo::ALL.iter().copied().find(|a| a.name() == name)
    }
}

/// How vertices are placed onto NDP units.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Partitioning {
    /// Stripe vertex IDs across units (the paper's default static partitioning).
    #[default]
    Striped,
    /// Greedy min-edge-cut partitioning (the Metis stand-in of Figure 19).
    Greedy,
}

/// A graph application workload: one algorithm over one (synthetic) input graph.
#[derive(Clone, Copy, Debug)]
pub struct GraphApp {
    /// Algorithm to run.
    pub algo: GraphAlgo,
    /// Input graph configuration.
    pub input: GraphInput,
    /// Vertex placement policy.
    pub partitioning: Partitioning,
}

impl GraphApp {
    /// Creates a workload with the default (striped) partitioning.
    pub fn new(algo: GraphAlgo, input: GraphInput) -> Self {
        GraphApp {
            algo,
            input,
            partitioning: Partitioning::Striped,
        }
    }

    /// Uses the greedy (Metis-like) partitioning instead.
    pub fn with_partitioning(mut self, partitioning: Partitioning) -> Self {
        self.partitioning = partitioning;
        self
    }
}

/// Global (functional) algorithm state shared by all cores.
struct AlgoState {
    graph: Graph,
    algo: GraphAlgo,
    /// Per-vertex value: BFS/SSSP distance, CC label, PR rank bucket, TF count, TC count.
    value: Vec<u32>,
    /// Vertices active in the iteration currently being generated.
    frontier: Vec<u32>,
    /// Vertices that become active next iteration.
    next_frontier: Vec<u32>,
    /// Neighbors that receive a locked update this iteration (per vertex flag).
    updated: Vec<bool>,
    iteration: u32,
    prepared_iteration: u32,
    finished: bool,
    max_iterations: u32,
    teen: Vec<bool>,
}

impl std::fmt::Debug for AlgoState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "AlgoState({}, iter={}, finished={})",
            self.algo.name(),
            self.iteration,
            self.finished
        )
    }
}

impl AlgoState {
    fn new(graph: Graph, algo: GraphAlgo, seed: u64) -> Self {
        let n = graph.vertices;
        let mut rng = SimRng::seed_from(seed);
        let teen = (0..n).map(|_| rng.gen_bool(0.3)).collect();
        let mut state = AlgoState {
            graph,
            algo,
            value: vec![u32::MAX; n],
            frontier: Vec::new(),
            next_frontier: Vec::new(),
            updated: vec![false; n],
            iteration: 0,
            prepared_iteration: u32::MAX,
            finished: false,
            max_iterations: match algo {
                GraphAlgo::Bfs | GraphAlgo::Sssp => 40,
                GraphAlgo::Cc => 12,
                GraphAlgo::Pr => 3,
                GraphAlgo::Tf | GraphAlgo::Tc => 1,
            },
            teen,
        };
        state.prepare_first();
        state
    }

    fn prepare_first(&mut self) {
        let n = self.graph.vertices;
        match self.algo {
            GraphAlgo::Bfs | GraphAlgo::Sssp => {
                self.value[0] = 0;
                self.frontier = vec![0];
            }
            GraphAlgo::Cc => {
                for v in 0..n {
                    self.value[v] = v as u32;
                }
                self.frontier = (0..n as u32).collect();
            }
            GraphAlgo::Pr | GraphAlgo::Tf | GraphAlgo::Tc => {
                for v in 0..n {
                    self.value[v] = 0;
                }
                self.frontier = (0..n as u32).collect();
            }
        }
        self.prepared_iteration = 0;
    }

    /// Functionally advances the algorithm to iteration `k`, computing the active set
    /// and which neighbors receive locked updates. Called lazily by the first core
    /// that starts generating iteration `k`.
    fn prepare(&mut self, k: u32) {
        if self.finished || self.prepared_iteration == k {
            return;
        }
        debug_assert_eq!(k, self.prepared_iteration.wrapping_add(1));
        if k >= self.max_iterations {
            self.finished = true;
            self.frontier.clear();
            self.prepared_iteration = k;
            return;
        }
        self.updated.iter_mut().for_each(|u| *u = false);
        match self.algo {
            GraphAlgo::Bfs | GraphAlgo::Sssp => {
                self.next_frontier.clear();
                let frontier = std::mem::take(&mut self.frontier);
                for &v in &frontier {
                    for &u in self.graph.neighbors(v) {
                        if self.value[u as usize] == u32::MAX {
                            self.value[u as usize] = k;
                            self.updated[u as usize] = true;
                            self.next_frontier.push(u);
                        }
                    }
                }
                self.frontier = std::mem::take(&mut self.next_frontier);
            }
            GraphAlgo::Cc => {
                self.next_frontier.clear();
                let frontier = std::mem::take(&mut self.frontier);
                for &v in &frontier {
                    for &u in self.graph.neighbors(v) {
                        if self.value[v as usize] < self.value[u as usize] {
                            self.value[u as usize] = self.value[v as usize];
                            self.updated[u as usize] = true;
                            self.next_frontier.push(u);
                        }
                    }
                }
                self.frontier = std::mem::take(&mut self.next_frontier);
            }
            GraphAlgo::Pr => {
                // Every vertex pushes every iteration.
                self.frontier = (0..self.graph.vertices as u32).collect();
                self.updated.iter_mut().for_each(|u| *u = true);
            }
            GraphAlgo::Tf | GraphAlgo::Tc => {
                self.frontier.clear();
            }
        }
        self.prepared_iteration = k;
        if self.frontier.is_empty() || k >= self.max_iterations {
            self.finished = true;
        }
    }
}

/// Per-vertex address mapping derived from the partitioning.
#[derive(Clone, Debug)]
struct VertexLayout {
    assignment: Vec<u32>,
    local_index: Vec<u32>,
    out_parts: Vec<Addr>,
    lock_parts: Vec<Addr>,
    adj_parts: Vec<Addr>,
}

impl VertexLayout {
    fn out(&self, v: u32) -> Addr {
        self.part_addr(&self.out_parts, v)
    }
    fn lock(&self, v: u32) -> Addr {
        self.part_addr(&self.lock_parts, v)
    }
    fn adj(&self, v: u32, line: u64) -> Addr {
        self.part_addr(&self.adj_parts, v).offset(line * 64)
    }
    fn part_addr(&self, parts: &[Addr], v: u32) -> Addr {
        parts[self.assignment[v as usize] as usize]
            .offset(u64::from(self.local_index[v as usize]) * 64)
    }
}

struct GraphProgram {
    state: Arc<Mutex<AlgoState>>,
    layout: Arc<VertexLayout>,
    my_vertices: Vec<u32>,
    barrier: Addr,
    participants: u32,
    script: VecDeque<Action>,
    iteration: u32,
    at_barrier: bool,
    done: bool,
    ops: u64,
    rng: SimRng,
}

impl GraphProgram {
    /// Emits the actions of iteration `self.iteration` for this core's vertices.
    fn generate_iteration(&mut self) {
        let mut state = self.state.lock().expect("workload state poisoned");
        state.prepare(self.iteration);
        if state.finished && state.frontier.is_empty() {
            // Nothing left to push; the cores still meet at the final barrier.
            return;
        }
        let algo = state.algo;
        let active: Vec<u32> = match algo {
            // Single-pass algorithms touch every owned vertex exactly once.
            GraphAlgo::Tf | GraphAlgo::Tc => {
                if self.iteration == 0 {
                    self.my_vertices.clone()
                } else {
                    Vec::new()
                }
            }
            _ => {
                let mut in_frontier = vec![false; state.graph.vertices];
                for &v in &state.frontier {
                    in_frontier[v as usize] = true;
                }
                self.my_vertices
                    .iter()
                    .copied()
                    .filter(|&v| in_frontier[v as usize])
                    .collect()
            }
        };

        for &v in &active {
            self.ops += 1;
            // Read this vertex's own state and its adjacency list (read-only, cacheable;
            // one load per cache line of 8 edges).
            self.script.push_back(Action::Load {
                addr: self.layout.out(v),
            });
            let degree = state.graph.degree(v);
            for line in 0..degree.div_ceil(8).max(1) as u64 {
                self.script.push_back(Action::Load {
                    addr: self.layout.adj(v, line),
                });
            }
            match algo {
                GraphAlgo::Bfs | GraphAlgo::Sssp | GraphAlgo::Cc => {
                    for &u in state.graph.neighbors(v) {
                        self.script.push_back(Action::Compute { instrs: 4 });
                        self.script.push_back(Action::Load {
                            addr: self.layout.out(u),
                        });
                        if state.updated[u as usize] {
                            let lock = self.layout.lock(u);
                            self.script
                                .push_back(Action::Sync(SyncRequest::LockAcquire { var: lock }));
                            self.script.push_back(Action::Store {
                                addr: self.layout.out(u),
                            });
                            self.script
                                .push_back(Action::Sync(SyncRequest::LockRelease { var: lock }));
                        }
                    }
                }
                GraphAlgo::Pr => {
                    for &u in state.graph.neighbors(v) {
                        self.script.push_back(Action::Compute { instrs: 6 });
                        let lock = self.layout.lock(u);
                        self.script
                            .push_back(Action::Sync(SyncRequest::LockAcquire { var: lock }));
                        self.script.push_back(Action::Load {
                            addr: self.layout.out(u),
                        });
                        self.script.push_back(Action::Store {
                            addr: self.layout.out(u),
                        });
                        self.script
                            .push_back(Action::Sync(SyncRequest::LockRelease { var: lock }));
                    }
                }
                GraphAlgo::Tf => {
                    for &u in state.graph.neighbors(v) {
                        self.script.push_back(Action::Compute { instrs: 3 });
                        if state.teen[u as usize] {
                            let lock = self.layout.lock(u);
                            self.script
                                .push_back(Action::Sync(SyncRequest::LockAcquire { var: lock }));
                            self.script.push_back(Action::Load {
                                addr: self.layout.out(u),
                            });
                            self.script.push_back(Action::Store {
                                addr: self.layout.out(u),
                            });
                            self.script
                                .push_back(Action::Sync(SyncRequest::LockRelease { var: lock }));
                        }
                    }
                }
                GraphAlgo::Tc => {
                    for &u in state.graph.neighbors(v) {
                        if u <= v {
                            continue;
                        }
                        // Intersect the two adjacency lists (bounded scan).
                        let scan = state.graph.degree(u).min(16) as u64;
                        for line in 0..scan.div_ceil(8).max(1) {
                            self.script.push_back(Action::Load {
                                addr: self.layout.adj(u, line),
                            });
                        }
                        self.script.push_back(Action::Compute { instrs: 8 });
                    }
                    // One locked update of this vertex's triangle counter.
                    let lock = self.layout.lock(v);
                    self.script
                        .push_back(Action::Sync(SyncRequest::LockAcquire { var: lock }));
                    self.script.push_back(Action::Store {
                        addr: self.layout.out(v),
                    });
                    self.script
                        .push_back(Action::Sync(SyncRequest::LockRelease { var: lock }));
                }
            }
            // A little per-vertex bookkeeping outside the locks.
            self.script.push_back(Action::Compute {
                instrs: 10 + self.rng.gen_range(8),
            });
        }
    }
}

impl CoreProgram for GraphProgram {
    fn step(&mut self, _core: GlobalCoreId, _now: Time) -> Action {
        loop {
            if let Some(action) = self.script.pop_front() {
                return action;
            }
            if self.done {
                return Action::Done;
            }
            if self.at_barrier {
                // The barrier for this iteration completed.
                self.at_barrier = false;
                self.iteration += 1;
                let finished = {
                    let state = self.state.lock().expect("workload state poisoned");
                    state.finished && state.prepared_iteration < self.iteration
                };
                if finished
                    || self.iteration
                        > self
                            .state
                            .lock()
                            .expect("workload state poisoned")
                            .max_iterations
                {
                    self.done = true;
                    return Action::Done;
                }
                continue;
            }
            // Generate this iteration's work, then meet the other cores at the barrier.
            self.generate_iteration();
            self.at_barrier = true;
            self.script
                .push_back(Action::Sync(SyncRequest::BarrierWait {
                    var: self.barrier,
                    participants: self.participants,
                    scope: BarrierScope::AcrossUnits,
                }));
        }
    }

    fn ops_completed(&self) -> u64 {
        self.ops
    }
}

impl Workload for GraphApp {
    fn name(&self) -> String {
        format!("{}.{}", self.algo.name(), self.input.name)
    }

    fn build(
        &self,
        space: &mut AddressSpace,
        config: &NdpConfig,
        clients: &[GlobalCoreId],
    ) -> Vec<Box<dyn CoreProgram>> {
        let graph = self.input.generate(config.seed);
        let units = config.units;
        let assignment = match self.partitioning {
            Partitioning::Striped => partition_striped(graph.vertices, units),
            Partitioning::Greedy => partition_greedy(&graph, units),
        };
        // Dense per-unit local indices.
        let mut counters = vec![0u32; units];
        let mut local_index = vec![0u32; graph.vertices];
        for v in 0..graph.vertices {
            let part = assignment[v] as usize;
            local_index[v] = counters[part];
            counters[part] += 1;
        }
        let max_per_unit = counters.iter().copied().max().unwrap_or(1).max(1) as u64;
        let out_parts = space.allocate_partitioned(max_per_unit * 64, DataClass::SharedReadWrite);
        let lock_parts = space.allocate_partitioned(max_per_unit * 64, DataClass::SharedReadWrite);
        let adj_parts = space.allocate_partitioned(
            max_per_unit * 64 * 8, // room for up to 64 neighbours per vertex line-wise
            DataClass::SharedReadOnly,
        );
        let barrier = space.allocate_shared_rw(64, UnitId(0));

        let layout = Arc::new(VertexLayout {
            assignment: assignment.clone(),
            local_index,
            out_parts,
            lock_parts,
            adj_parts,
        });
        let state = Arc::new(Mutex::new(AlgoState::new(graph, self.algo, config.seed)));

        // Distribute each unit's vertices round-robin over that unit's client cores.
        let clients_of_unit = |unit: usize| -> Vec<usize> {
            clients
                .iter()
                .enumerate()
                .filter(|(_, c)| c.unit.index() == unit)
                .map(|(i, _)| i)
                .collect()
        };
        let mut my_vertices: Vec<Vec<u32>> = vec![Vec::new(); clients.len()];
        for unit in 0..units {
            let owners = clients_of_unit(unit);
            if owners.is_empty() {
                continue;
            }
            let mut next = 0usize;
            for v in 0..state
                .lock()
                .expect("workload state poisoned")
                .graph
                .vertices as u32
            {
                if assignment[v as usize] as usize == unit {
                    my_vertices[owners[next % owners.len()]].push(v);
                    next += 1;
                }
            }
        }

        clients
            .iter()
            .enumerate()
            .map(|(i, _)| {
                Box::new(GraphProgram {
                    state: Arc::clone(&state),
                    layout: Arc::clone(&layout),
                    my_vertices: std::mem::take(&mut my_vertices[i]),
                    barrier,
                    participants: clients.len() as u32,
                    script: VecDeque::new(),
                    iteration: 0,
                    at_barrier: false,
                    done: false,
                    ops: 0,
                    rng: SimRng::seed_from(config.seed ^ ((i as u64) << 32)),
                }) as Box<dyn CoreProgram>
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use syncron_core::MechanismKind;
    use syncron_system::run_workload;

    fn tiny_input() -> GraphInput {
        GraphInput {
            name: "tiny",
            vertices: 300,
            avg_degree: 6,
            rmat: true,
        }
    }

    fn config(kind: MechanismKind) -> NdpConfig {
        NdpConfig::builder()
            .units(2)
            .cores_per_unit(4)
            .mechanism(kind)
            .build()
            .expect("valid config")
    }

    #[test]
    fn every_algorithm_completes() {
        for algo in GraphAlgo::ALL {
            let wl = GraphApp::new(algo, tiny_input());
            let report = run_workload(&config(MechanismKind::SynCron), &wl);
            assert!(report.completed, "{} did not complete", wl.name());
            assert!(report.total_ops > 0, "{}", wl.name());
            assert!(report.sync_requests > 0, "{}", wl.name());
        }
    }

    #[test]
    fn bfs_visits_every_reachable_vertex_functionally() {
        let wl = GraphApp::new(GraphAlgo::Bfs, tiny_input());
        let report = run_workload(&config(MechanismKind::Ideal), &wl);
        assert!(report.completed);
        // The per-vertex push operations processed across cores should cover at least
        // the vertices of the giant component once.
        assert!(
            report.total_ops >= 100,
            "only {} vertex-pushes",
            report.total_ops
        );
    }

    #[test]
    fn greedy_partitioning_reduces_inter_unit_traffic() {
        let striped = GraphApp::new(GraphAlgo::Pr, tiny_input());
        let greedy = striped.with_partitioning(Partitioning::Greedy);
        let r_striped = run_workload(&config(MechanismKind::SynCron), &striped);
        let r_greedy = run_workload(&config(MechanismKind::SynCron), &greedy);
        assert!(r_striped.completed && r_greedy.completed);
        assert!(
            r_greedy.traffic.inter_unit_bytes < r_striped.traffic.inter_unit_bytes,
            "greedy {} vs striped {}",
            r_greedy.traffic.inter_unit_bytes,
            r_striped.traffic.inter_unit_bytes
        );
    }

    #[test]
    fn hierarchical_schemes_beat_central_on_pagerank_at_scale() {
        // The Central server core becomes the bottleneck once all 60 client cores of
        // the paper's configuration issue fine-grained lock requests (Figure 12); with
        // only a handful of cores the single server is not saturated, so this check
        // uses the full-size system.
        let full = |kind| {
            NdpConfig::builder()
                .units(4)
                .cores_per_unit(16)
                .mechanism(kind)
                .build()
                .expect("valid config")
        };
        let wl = GraphApp::new(GraphAlgo::Pr, tiny_input());
        let central = run_workload(&full(MechanismKind::Central), &wl);
        let syncron = run_workload(&full(MechanismKind::SynCron), &wl);
        assert!(central.completed && syncron.completed);
        assert!(
            syncron.sim_time < central.sim_time,
            "SynCron {} vs Central {}",
            syncron.sim_time,
            central.sim_time
        );
    }

    #[test]
    fn algo_lookup_by_name() {
        assert_eq!(GraphAlgo::by_name("pr"), Some(GraphAlgo::Pr));
        assert_eq!(GraphAlgo::by_name("nope"), None);
        assert_eq!(GraphApp::new(GraphAlgo::Cc, tiny_input()).name(), "cc.tiny");
    }
}
