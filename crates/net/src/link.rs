//! Inter-unit serial link model.
//!
//! Table 5 of the paper: "Interconnection links across NDP units: 12.8 GB/s per
//! direction; 40 ns per cache line; 20-cycle [controller latency]; 4 pJ/bit". The
//! paper's sensitivity studies (Figures 16, 17 and 21) sweep the per-cache-line
//! transfer latency from 40 ns up to 9 µs, so the latency is a configuration knob.
//!
//! The model keeps one serial resource per *directed* unit pair: a message occupies the
//! link for its serialization time (bytes / bandwidth), experiences the fixed transfer
//! latency, and pays the 20-cycle controller overhead on each side.

use syncron_sim::queueing::{Memo2, Serializer};
use syncron_sim::stats::Counter;
use syncron_sim::time::{Freq, Time};
use syncron_sim::UnitId;

/// Configuration of the inter-unit links.
#[derive(Clone, Copy, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LinkConfig {
    /// Bandwidth per direction in bytes per second (Table 5: 12.8 GB/s).
    pub bandwidth_bytes_per_s: f64,
    /// Fixed transfer latency per cache-line-sized message (Table 5: 40 ns; swept up to
    /// 9 µs in the sensitivity studies).
    pub transfer_latency: Time,
    /// Link/controller overhead in core cycles on each traversal (Table 5: 20 cycles).
    pub controller_cycles: u64,
    /// Clock used to convert `controller_cycles` into time.
    pub clock: Freq,
    /// Energy per bit, in picojoules (Table 5: 4 pJ/bit).
    pub pj_per_bit: f64,
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig {
            bandwidth_bytes_per_s: 12.8e9,
            transfer_latency: Time::from_ns(40),
            controller_cycles: 20,
            clock: Freq::ghz(2.5),
            pj_per_bit: 4.0,
        }
    }
}

impl LinkConfig {
    /// Returns a copy of the configuration with a different per-cache-line transfer
    /// latency, used by the link-latency sensitivity experiments.
    pub fn with_transfer_latency(mut self, latency: Time) -> Self {
        self.transfer_latency = latency;
        self
    }

    /// Link energy of moving `bytes` in total, in picojoules.
    pub fn energy_pj_of_bytes(&self, bytes: u64) -> f64 {
        bytes as f64 * 8.0 * self.pj_per_bit
    }

    /// Serialization time of `bytes` at the configured bandwidth.
    pub fn serialization(&self, bytes: u64) -> Time {
        let ps = bytes as f64 / self.bandwidth_bytes_per_s * 1e12;
        Time::from_ps(ps.round() as u64)
    }
}

/// Traffic and energy counters of the inter-unit link fabric.
#[derive(Clone, Copy, Debug, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LinkStats {
    /// Messages transferred across units.
    pub messages: Counter,
    /// Bytes transferred across units.
    pub bytes: Counter,
    /// Accumulated time spent waiting for a busy link.
    pub contention_ps: Counter,
}

/// The serial links connecting NDP units.
///
/// # Example
///
/// ```
/// use syncron_net::link::{InterUnitLink, LinkConfig};
/// use syncron_sim::{Time, UnitId};
///
/// let mut links = InterUnitLink::new(LinkConfig::default(), 4);
/// let latency = links.transfer(Time::ZERO, UnitId(0), UnitId(1), 64);
/// assert!(latency >= Time::from_ns(40));
/// ```
#[derive(Clone, Debug)]
pub struct InterUnitLink {
    config: LinkConfig,
    units: usize,
    /// One serializer per *directed* unit pair, in a dense `units × units`
    /// row-major table (`from * units + to`). The machine geometry is fixed at
    /// construction, so the dense table replaces the per-pair hash map that used
    /// to sit on every remote hop; the diagonal is never used (`transfer` rejects
    /// intra-unit traffic).
    channels: Vec<Serializer>,
    stats: LinkStats,
    /// Memoized `bytes → serialization time`: skips the float division of
    /// [`LinkConfig::serialization`] for the (two) hot packet sizes without
    /// changing a bit of the result.
    serialization_memo: Memo2<Time>,
}

impl InterUnitLink {
    /// Creates an idle link fabric connecting `units` NDP units.
    ///
    /// # Panics
    ///
    /// Panics if `units` is zero.
    pub fn new(config: LinkConfig, units: usize) -> Self {
        assert!(units > 0, "link fabric needs at least one unit");
        InterUnitLink {
            config,
            units,
            channels: vec![Serializer::new(); units * units],
            stats: LinkStats::default(),
            serialization_memo: Memo2::new(),
        }
    }

    /// The link configuration.
    pub fn config(&self) -> &LinkConfig {
        &self.config
    }

    /// Transfers `bytes` from unit `from` to unit `to` starting at `now`, and returns
    /// the end-to-end latency (controller + wait-for-link + serialization + transfer).
    ///
    /// # Panics
    ///
    /// Panics if `from == to` (intra-unit traffic goes through the crossbar
    /// instead), or if either unit is outside the fabric's geometry.
    pub fn transfer(&mut self, now: Time, from: UnitId, to: UnitId, bytes: u64) -> Time {
        assert_ne!(from, to, "inter-unit link used for intra-unit transfer");
        assert!(
            from.index() < self.units && to.index() < self.units,
            "link transfer {from:?} -> {to:?} outside the {}-unit fabric",
            self.units
        );
        let cfg = &self.config;
        let controller = cfg.clock.cycles_to_ps(cfg.controller_cycles);
        let serialization = self
            .serialization_memo
            .get_or_insert_with(bytes, || cfg.serialization(bytes));

        let channel = &mut self.channels[from.index() * self.units + to.index()];
        let start = channel.acquire(now + controller, serialization);
        let wait = start.saturating_sub(now + controller);

        self.stats.messages.inc();
        self.stats.bytes.add(bytes);
        self.stats.contention_ps.add(wait.as_ps());

        (start + serialization + cfg.transfer_latency + controller) - now
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &LinkStats {
        &self.stats
    }

    /// Total link energy in picojoules.
    ///
    /// Computed from the integer byte counter rather than accumulated per
    /// transfer: a single multiply gives a value independent of transfer order,
    /// so per-shard link instances of a partitioned run merge exactly (sum the
    /// byte counters, multiply once) into the same energy the sequential run
    /// reports.
    pub fn energy_pj(&self) -> f64 {
        self.config.energy_pj_of_bytes(self.stats.bytes.get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_latency_includes_transfer_and_controller() {
        let cfg = LinkConfig::default();
        let mut links = InterUnitLink::new(cfg, 4);
        let lat = links.transfer(Time::ZERO, UnitId(0), UnitId(1), 64);
        // 2 x 20 cycles @2.5GHz = 16 ns, + 40 ns + 5 ns serialization.
        let expected_min = Time::from_ns(40) + cfg.clock.cycles_to_ps(40);
        assert!(lat >= expected_min);
        assert!(lat < Time::from_ns(100));
    }

    #[test]
    fn serialization_respects_bandwidth() {
        let cfg = LinkConfig::default();
        // 12.8 GB/s → 64 bytes take 5 ns.
        assert_eq!(cfg.serialization(64), Time::from_ps(5000));
        assert_eq!(cfg.serialization(128), Time::from_ps(10000));
    }

    #[test]
    fn contention_serializes_same_direction() {
        let mut links = InterUnitLink::new(LinkConfig::default(), 4);
        let a = links.transfer(Time::ZERO, UnitId(0), UnitId(1), 4096);
        let b = links.transfer(Time::ZERO, UnitId(0), UnitId(1), 4096);
        assert!(b > a, "second message should wait for the link");
        assert!(links.stats().contention_ps.get() > 0);
    }

    #[test]
    fn opposite_directions_do_not_contend() {
        let mut links = InterUnitLink::new(LinkConfig::default(), 4);
        let a = links.transfer(Time::ZERO, UnitId(0), UnitId(1), 4096);
        let b = links.transfer(Time::ZERO, UnitId(1), UnitId(0), 4096);
        assert_eq!(a, b);
    }

    #[test]
    fn latency_knob_scales_latency() {
        let slow_cfg = LinkConfig::default().with_transfer_latency(Time::from_ns(500));
        let mut fast = InterUnitLink::new(LinkConfig::default(), 4);
        let mut slow = InterUnitLink::new(slow_cfg, 4);
        let f = fast.transfer(Time::ZERO, UnitId(0), UnitId(1), 64);
        let s = slow.transfer(Time::ZERO, UnitId(0), UnitId(1), 64);
        assert!(s > f + Time::from_ns(400));
    }

    #[test]
    fn energy_and_stats() {
        let mut links = InterUnitLink::new(LinkConfig::default(), 4);
        links.transfer(Time::ZERO, UnitId(0), UnitId(2), 64);
        links.transfer(Time::ZERO, UnitId(2), UnitId(0), 17);
        assert_eq!(links.stats().messages.get(), 2);
        assert_eq!(links.stats().bytes.get(), 81);
        let expected = 81.0 * 8.0 * 4.0;
        assert!((links.energy_pj() - expected).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn same_unit_transfer_panics() {
        let mut links = InterUnitLink::new(LinkConfig::default(), 4);
        links.transfer(Time::ZERO, UnitId(1), UnitId(1), 64);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use syncron_sim::SimRng;

    /// End-to-end latency always covers the configured transfer latency plus
    /// serialization, regardless of contention.
    ///
    /// Deterministic stand-in for a proptest property (no crates.io access).
    #[test]
    fn latency_lower_bound() {
        for case in 0..64u64 {
            let mut rng = SimRng::seed_from(0x117C_0000 + case);
            let count = 1 + rng.gen_range(99) as usize;
            let mut msgs: Vec<(u64, u8, u8, u64)> = (0..count)
                .map(|_| {
                    (
                        rng.gen_range(1_000_000),
                        rng.gen_range(4) as u8,
                        rng.gen_range(4) as u8,
                        1 + rng.gen_range(511),
                    )
                })
                .collect();
            let cfg = LinkConfig::default();
            let mut links = InterUnitLink::new(cfg, 4);
            msgs.sort();
            for &(t, from, to, bytes) in &msgs {
                if from == to {
                    continue;
                }
                let lat = links.transfer(Time::from_ps(t), UnitId(from), UnitId(to), bytes);
                assert!(lat >= cfg.transfer_latency + cfg.serialization(bytes));
            }
        }
    }
}
