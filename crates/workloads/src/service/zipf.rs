//! Zipf-skewed key sampling over large key spaces.
//!
//! Production key-value traffic is heavily skewed — a small set of hot keys
//! absorbs most requests — which is exactly what stresses a synchronization
//! mechanism: the hot keys' locks serialize, and the skew concentrates ST
//! occupancy far beyond what uniform sweeps exercise. This sampler implements
//! Hörmann & Derflinger's rejection-inversion method, which draws from
//! `P(k) ∝ 1/k^s` over `k ∈ [1, n]` in O(1) expected time with no per-key
//! tables, so key spaces of millions of sync variables cost nothing to set up.

use syncron_sim::rng::SimRng;

/// An O(1) sampler for the Zipf distribution `P(k) ∝ 1/k^s`, returning 0-based
/// ranks in `[0, n)`. Rank 0 is the hottest key. `s == 0` degenerates to the
/// uniform distribution.
#[derive(Clone, Copy, Debug)]
pub struct ZipfSampler {
    n: u64,
    exponent: f64,
    h_integral_x1: f64,
    h_integral_n: f64,
    threshold: f64,
}

impl ZipfSampler {
    /// Creates a sampler over `n ≥ 1` keys with skew exponent `s ≥ 0`.
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n >= 1, "key space must be non-empty");
        assert!(s >= 0.0 && s.is_finite(), "zipf exponent must be ≥ 0");
        let mut sampler = ZipfSampler {
            n,
            exponent: s,
            h_integral_x1: 0.0,
            h_integral_n: 0.0,
            threshold: 0.0,
        };
        if s > 0.0 {
            sampler.h_integral_x1 = sampler.h_integral(1.5) - 1.0;
            sampler.h_integral_n = sampler.h_integral(n as f64 + 0.5);
            sampler.threshold =
                2.0 - sampler.h_integral_inverse(sampler.h_integral(2.5) - sampler.h(2.0));
        }
        sampler
    }

    /// Number of keys.
    pub fn keys(&self) -> u64 {
        self.n
    }

    /// Draws one 0-based key rank.
    pub fn sample(&self, rng: &mut SimRng) -> u64 {
        if self.exponent == 0.0 {
            return rng.gen_range(self.n);
        }
        loop {
            let u = self.h_integral_n + rng.gen_f64() * (self.h_integral_x1 - self.h_integral_n);
            let x = self.h_integral_inverse(u);
            let k = (x + 0.5).floor().clamp(1.0, self.n as f64);
            if k - x <= self.threshold || u >= self.h_integral(k + 0.5) - self.h(k) {
                return k as u64 - 1;
            }
        }
    }

    /// `H(x) = ∫ 1/t^s dt`, the antiderivative of the unnormalized density,
    /// written via `expm1`/`log1p` helpers so `s == 1` needs no special case.
    fn h_integral(&self, x: f64) -> f64 {
        let log_x = x.ln();
        helper2((1.0 - self.exponent) * log_x) * log_x
    }

    /// The unnormalized density `h(x) = x^-s`.
    fn h(&self, x: f64) -> f64 {
        (-self.exponent * x.ln()).exp()
    }

    /// Inverse of [`h_integral`](Self::h_integral).
    fn h_integral_inverse(&self, x: f64) -> f64 {
        let mut t = x * (1.0 - self.exponent);
        if t < -1.0 {
            // Numerical guard: t could slip marginally below the domain edge.
            t = -1.0;
        }
        (helper1(t) * x).exp()
    }
}

/// `log1p(x)/x`, continuous at 0.
fn helper1(x: f64) -> f64 {
    if x.abs() > 1e-8 {
        x.ln_1p() / x
    } else {
        1.0 - x * (0.5 - x * (1.0 / 3.0 - x * 0.25))
    }
}

/// `expm1(x)/x`, continuous at 0.
fn helper2(x: f64) -> f64 {
    if x.abs() > 1e-8 {
        x.exp_m1() / x
    } else {
        1.0 + x * 0.5 * (1.0 + x * (1.0 / 3.0) * (1.0 + x * 0.25))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Generalized harmonic number H_{n,s}.
    fn harmonic(n: u64, s: f64) -> f64 {
        (1..=n).map(|k| (k as f64).powf(-s)).sum()
    }

    fn sample_counts(n: u64, s: f64, draws: usize, seed: u64) -> Vec<u64> {
        let sampler = ZipfSampler::new(n, s);
        let mut rng = SimRng::seed_from(seed);
        let mut counts = vec![0u64; n as usize];
        for _ in 0..draws {
            let k = sampler.sample(&mut rng);
            assert!(k < n, "rank {k} out of range");
            counts[k as usize] += 1;
        }
        counts
    }

    #[test]
    fn hottest_key_frequency_matches_theory() {
        // P(rank 0) = 1 / H_{1000, 1.0} ≈ 0.1336.
        let draws = 200_000;
        let counts = sample_counts(1000, 1.0, draws, 0x21F);
        let expect = 1.0 / harmonic(1000, 1.0);
        let got = counts[0] as f64 / draws as f64;
        assert!(
            (got - expect).abs() / expect < 0.05,
            "hottest-key frequency {got:.4} vs theoretical {expect:.4}"
        );
    }

    #[test]
    fn top_ten_mass_matches_theory() {
        let draws = 200_000;
        let counts = sample_counts(1000, 0.99, draws, 0x5EED);
        let expect = harmonic(10, 0.99) / harmonic(1000, 0.99);
        let got = counts[..10].iter().sum::<u64>() as f64 / draws as f64;
        assert!(
            (got - expect).abs() / expect < 0.05,
            "top-10 mass {got:.4} vs theoretical {expect:.4}"
        );
    }

    #[test]
    fn zero_exponent_is_uniform() {
        let draws = 100_000;
        let counts = sample_counts(64, 0.0, draws, 7);
        let expect = draws as f64 / 64.0;
        for (k, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - expect).abs() / expect < 0.15,
                "key {k}: count {c} vs expected {expect:.0}"
            );
        }
    }

    #[test]
    fn large_key_space_is_cheap_and_in_range() {
        // Millions of keys: construction is O(1), samples stay in range, and
        // the head is still hot.
        let sampler = ZipfSampler::new(4_000_000, 0.99);
        let mut rng = SimRng::seed_from(11);
        let mut head = 0u64;
        for _ in 0..50_000 {
            let k = sampler.sample(&mut rng);
            assert!(k < 4_000_000);
            if k < 100 {
                head += 1;
            }
        }
        // H_100 / H_4e6 at s=0.99 is ≈ 0.23; uniform would give 2.5e-5.
        assert!(
            head > 5_000,
            "head not hot enough: {head} / 50000 in top-100"
        );
    }

    #[test]
    fn same_seed_means_identical_draws() {
        let sampler = ZipfSampler::new(1 << 20, 1.2);
        let mut a = SimRng::seed_from(99);
        let mut b = SimRng::seed_from(99);
        for _ in 0..2_000 {
            assert_eq!(sampler.sample(&mut a), sampler.sample(&mut b));
        }
    }
}
