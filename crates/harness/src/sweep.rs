//! Declarative cartesian sweeps over the paper's evaluation axes.
//!
//! A [`Sweep`] produces a labelled `Vec<Scenario>`: the cartesian product of one or
//! more workloads with any combination of the paper's configuration axes (mechanism,
//! NDP units, inter-unit link latency, ST size, memory technology, overflow mode,
//! fairness threshold). Labels are generated deterministically from the axis values,
//! so results can be looked up by key instead of input-order arithmetic.

use syncron_core::mechanism::MechanismKind;
use syncron_core::protocol::OverflowMode;
use syncron_mem::MemTech;

use crate::error::HarnessError;
use crate::json::Value;
use crate::scenario::{expand_tables, expansion_axes, ConfigSpec, Scenario};
use crate::spec::WorkloadSpec;

/// Builder for a labelled cartesian product of scenarios.
#[derive(Clone, Debug)]
pub struct Sweep {
    name: String,
    base: ConfigSpec,
    workloads: Vec<WorkloadSpec>,
    mechanisms: Option<Vec<MechanismKind>>,
    units: Option<Vec<usize>>,
    link_latencies_ns: Option<Vec<u64>>,
    st_entries: Option<Vec<usize>>,
    mem_techs: Option<Vec<MemTech>>,
    overflow_modes: Option<Vec<OverflowMode>>,
    fairness_thresholds: Option<Vec<Option<u32>>>,
}

impl Sweep {
    /// Starts a sweep named `name` from the paper-default configuration.
    pub fn new(name: impl Into<String>) -> Self {
        Sweep {
            name: name.into(),
            base: ConfigSpec::default(),
            workloads: Vec::new(),
            mechanisms: None,
            units: None,
            link_latencies_ns: None,
            st_entries: None,
            mem_techs: None,
            overflow_modes: None,
            fairness_thresholds: None,
        }
    }

    /// Replaces the base configuration every axis combination starts from.
    pub fn base(mut self, base: ConfigSpec) -> Self {
        self.base = base;
        self
    }

    /// Adds one workload to the workload axis.
    pub fn workload(mut self, spec: WorkloadSpec) -> Self {
        self.workloads.push(spec);
        self
    }

    /// Adds several workloads to the workload axis.
    pub fn workloads(mut self, specs: impl IntoIterator<Item = WorkloadSpec>) -> Self {
        self.workloads.extend(specs);
        self
    }

    /// Sweeps the synchronization mechanism.
    pub fn mechanisms(mut self, kinds: impl IntoIterator<Item = MechanismKind>) -> Self {
        self.mechanisms = Some(kinds.into_iter().collect());
        self
    }

    /// Sweeps the four schemes the paper compares (Central, Hier, SynCron, Ideal).
    pub fn compared_mechanisms(self) -> Self {
        self.mechanisms(MechanismKind::COMPARED)
    }

    /// Sweeps the number of NDP units.
    pub fn units(mut self, units: impl IntoIterator<Item = usize>) -> Self {
        self.units = Some(units.into_iter().collect());
        self
    }

    /// Sweeps the inter-unit link transfer latency (nanoseconds).
    pub fn link_latencies_ns(mut self, ns: impl IntoIterator<Item = u64>) -> Self {
        self.link_latencies_ns = Some(ns.into_iter().collect());
        self
    }

    /// Sweeps the ST size.
    pub fn st_entries(mut self, entries: impl IntoIterator<Item = usize>) -> Self {
        self.st_entries = Some(entries.into_iter().collect());
        self
    }

    /// Sweeps the memory technology.
    pub fn mem_techs(mut self, techs: impl IntoIterator<Item = MemTech>) -> Self {
        self.mem_techs = Some(techs.into_iter().collect());
        self
    }

    /// Sweeps the overflow-management mode.
    pub fn overflow_modes(mut self, modes: impl IntoIterator<Item = OverflowMode>) -> Self {
        self.overflow_modes = Some(modes.into_iter().collect());
        self
    }

    /// Sweeps the fairness threshold (`None` = off).
    pub fn fairness_thresholds(
        mut self,
        thresholds: impl IntoIterator<Item = Option<u32>>,
    ) -> Self {
        self.fairness_thresholds = Some(thresholds.into_iter().collect());
        self
    }

    /// Expands the sweep into labelled scenarios.
    ///
    /// Iteration order (outer to inner): workload, units, memory technology, link
    /// latency, ST size, overflow mode, fairness threshold, mechanism. Every axis
    /// explicitly set on the builder contributes a `key=value` fragment to the label,
    /// so labels are unique whenever workload labels are.
    pub fn scenarios(&self) -> Result<Vec<Scenario>, HarnessError> {
        if self.workloads.is_empty() {
            return Err(HarnessError::spec(format!(
                "sweep '{}' has no workloads",
                self.name
            )));
        }
        let explicitly_empty: [(&str, bool); 7] = [
            (
                "mechanisms",
                self.mechanisms.as_ref().is_some_and(Vec::is_empty),
            ),
            ("units", self.units.as_ref().is_some_and(Vec::is_empty)),
            (
                "link_latencies_ns",
                self.link_latencies_ns.as_ref().is_some_and(Vec::is_empty),
            ),
            (
                "st_entries",
                self.st_entries.as_ref().is_some_and(Vec::is_empty),
            ),
            (
                "mem_techs",
                self.mem_techs.as_ref().is_some_and(Vec::is_empty),
            ),
            (
                "overflow_modes",
                self.overflow_modes.as_ref().is_some_and(Vec::is_empty),
            ),
            (
                "fairness_thresholds",
                self.fairness_thresholds.as_ref().is_some_and(Vec::is_empty),
            ),
        ];
        if let Some((axis_name, _)) = explicitly_empty.iter().find(|(_, empty)| *empty) {
            return Err(HarnessError::spec(format!(
                "sweep '{}': axis {axis_name} is empty",
                self.name
            )));
        }

        let units_axis = self.units.clone().unwrap_or_else(|| vec![self.base.units]);
        let mem_axis = self
            .mem_techs
            .clone()
            .unwrap_or_else(|| vec![self.base.mem_tech]);
        let lat_axis = self
            .link_latencies_ns
            .clone()
            .unwrap_or_else(|| vec![self.base.link_latency_ns]);
        let st_axis = self
            .st_entries
            .clone()
            .unwrap_or_else(|| vec![self.base.st_entries]);
        let ovfl_axis = self
            .overflow_modes
            .clone()
            .unwrap_or_else(|| vec![self.base.overflow_mode]);
        let fair_axis = self
            .fairness_thresholds
            .clone()
            .unwrap_or_else(|| vec![self.base.fairness_threshold]);
        let mech_axis = self
            .mechanisms
            .clone()
            .unwrap_or_else(|| vec![self.base.mechanism]);

        let mut scenarios = Vec::new();
        for workload in &self.workloads {
            for &units in &units_axis {
                for &mem in &mem_axis {
                    for &lat in &lat_axis {
                        for &st in &st_axis {
                            for &ovfl in &ovfl_axis {
                                for &fair in &fair_axis {
                                    for &mech in &mech_axis {
                                        let mut config = self.base.clone();
                                        config.units = units;
                                        config.mem_tech = mem;
                                        config.link_latency_ns = lat;
                                        config.st_entries = st;
                                        config.overflow_mode = ovfl;
                                        config.fairness_threshold = fair;
                                        config.mechanism = mech;

                                        let mut label =
                                            format!("{}/{}", self.name, workload.label());
                                        if self.units.is_some() {
                                            label.push_str(&format!("/u={units}"));
                                        }
                                        if self.mem_techs.is_some() {
                                            label.push_str(&format!("/mem={}", mem.name()));
                                        }
                                        if self.link_latencies_ns.is_some() {
                                            label.push_str(&format!("/lat={lat}"));
                                        }
                                        if self.st_entries.is_some() {
                                            label.push_str(&format!("/st={st}"));
                                        }
                                        if self.overflow_modes.is_some() {
                                            label.push_str(&format!("/ovfl={}", ovfl.name()));
                                        }
                                        if self.fairness_thresholds.is_some() {
                                            match fair {
                                                Some(t) => label.push_str(&format!("/fair={t}")),
                                                None => label.push_str("/fair=off"),
                                            }
                                        }
                                        if self.mechanisms.is_some() {
                                            label.push_str(&format!("/mech={}", mech.name()));
                                        }
                                        scenarios.push(Scenario::new(
                                            label,
                                            config,
                                            workload.clone(),
                                        ));
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        Ok(scenarios)
    }

    /// Parses a sweep from a document table of the shape:
    ///
    /// ```toml
    /// [sweep]
    /// label = "fig17"
    ///
    /// [sweep.config]               # any ConfigSpec field; arrays become axes
    /// mechanism = ["Central", "Hier", "SynCron", "Ideal"]
    /// link_latency_ns = [40, 100, 200, 500]
    ///
    /// [sweep.workload]             # one table (arrays become axes) or an array
    /// kind = "graph"
    /// algo = "pr"
    /// input = "wk"
    /// ```
    ///
    /// Returns the labelled scenarios (config-axis fragments are appended to labels in
    /// sorted key order).
    pub fn scenarios_from_value(sweep: &Value) -> Result<Vec<Scenario>, HarnessError> {
        let name = sweep
            .get("label")
            .and_then(Value::as_str)
            .unwrap_or("sweep")
            .to_string();
        let config_doc = sweep
            .get("config")
            .cloned()
            .unwrap_or_else(|| Value::table::<_, String>([]));
        let axes = expansion_axes(&config_doc);
        let configs = expand_tables(&config_doc)?;

        let workload_doc = sweep
            .get("workload")
            .ok_or_else(|| HarnessError::spec("sweep needs a 'workload' table"))?;
        // Each workload is kept with the `key=value` fragments of the axes it was
        // expanded from, in case its own label does not reflect them.
        let mut workloads: Vec<(WorkloadSpec, String)> = Vec::new();
        let entries: Vec<&Value> = match workload_doc {
            Value::Array(entries) => entries.iter().collect(),
            table => vec![table],
        };
        for entry in entries {
            let wl_axes = expansion_axes(entry);
            for concrete in expand_tables(entry)? {
                let spec = WorkloadSpec::from_value(&concrete)?;
                let fragments = wl_axes
                    .iter()
                    .map(|axis| {
                        let value = concrete.get(axis).expect("expanded axis present");
                        format!("/{}={}", axis, scalar_to_label(value))
                    })
                    .collect::<String>();
                workloads.push((spec, fragments));
            }
        }
        if workloads.is_empty() {
            return Err(HarnessError::spec(format!(
                "sweep '{name}' has no workloads"
            )));
        }

        // First try labels without the workload-axis fragments (workload labels often
        // already encode them, e.g. `lock-micro.i50`); fall back to including the
        // fragments when that would collide.
        for include_wl_fragments in [false, true] {
            let mut scenarios = Vec::new();
            let mut seen = std::collections::BTreeSet::new();
            let mut collision = false;
            for (workload, wl_fragments) in &workloads {
                for config_doc in &configs {
                    let config = ConfigSpec::from_value(config_doc)?;
                    let mut label = format!("{}/{}", name, workload.label());
                    if include_wl_fragments {
                        label.push_str(wl_fragments);
                    }
                    for axis in &axes {
                        let value = config_doc.get(axis).expect("expanded axis present");
                        label.push_str(&format!("/{}={}", axis, scalar_to_label(value)));
                    }
                    if !seen.insert(label.clone()) {
                        collision = true;
                    }
                    scenarios.push(Scenario::new(label, config, workload.clone()));
                }
            }
            if !collision {
                return Ok(scenarios);
            }
            if include_wl_fragments {
                let dup = scenarios
                    .iter()
                    .map(|s| s.label.clone())
                    .find(|l| scenarios.iter().filter(|s| &s.label == l).count() > 1)
                    .unwrap_or_default();
                return Err(HarnessError::DuplicateLabel(dup));
            }
        }
        unreachable!("loop always returns")
    }
}

fn scalar_to_label(value: &Value) -> String {
    match value {
        Value::Str(s) => s.clone(),
        Value::Int(i) => i.to_string(),
        Value::Float(f) => f.to_string(),
        Value::Bool(b) => b.to_string(),
        other => other.to_json(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use syncron_workloads::micro::SyncPrimitive;

    fn lock_micro(interval: u64) -> WorkloadSpec {
        WorkloadSpec::Micro {
            primitive: SyncPrimitive::Lock,
            interval,
            iterations: 4,
        }
    }

    #[test]
    fn cardinality_is_the_cartesian_product() {
        let scenarios = Sweep::new("t")
            .workloads([lock_micro(50), lock_micro(100), lock_micro(200)])
            .compared_mechanisms()
            .link_latencies_ns([40, 500])
            .scenarios()
            .unwrap();
        assert_eq!(scenarios.len(), 3 * 4 * 2);
    }

    #[test]
    fn labels_are_unique_and_keyed_by_axis_values() {
        let scenarios = Sweep::new("fig")
            .workloads([lock_micro(50), lock_micro(100)])
            .compared_mechanisms()
            .st_entries([16, 64])
            .scenarios()
            .unwrap();
        let mut labels: Vec<&str> = scenarios.iter().map(|s| s.label.as_str()).collect();
        assert!(labels.contains(&"fig/lock-micro.i50/st=16/mech=Central"));
        assert!(labels.contains(&"fig/lock-micro.i100/st=64/mech=Ideal"));
        labels.sort();
        let n = labels.len();
        labels.dedup();
        assert_eq!(n, labels.len(), "labels must be unique");
    }

    #[test]
    fn axis_values_reach_the_config() {
        let scenarios = Sweep::new("t")
            .workload(lock_micro(50))
            .mechanisms([MechanismKind::Hier])
            .units([2])
            .mem_techs([MemTech::Hmc])
            .link_latencies_ns([200])
            .st_entries([32])
            .overflow_modes([OverflowMode::MiSarCentral])
            .fairness_thresholds([Some(8)])
            .scenarios()
            .unwrap();
        assert_eq!(scenarios.len(), 1);
        let c = &scenarios[0].config;
        assert_eq!(c.mechanism, MechanismKind::Hier);
        assert_eq!(c.units, 2);
        assert_eq!(c.mem_tech, MemTech::Hmc);
        assert_eq!(c.link_latency_ns, 200);
        assert_eq!(c.st_entries, 32);
        assert_eq!(c.overflow_mode, OverflowMode::MiSarCentral);
        assert_eq!(c.fairness_threshold, Some(8));
    }

    #[test]
    fn empty_sweeps_are_rejected() {
        assert!(Sweep::new("t").scenarios().is_err());
        assert!(Sweep::new("t")
            .workload(lock_micro(50))
            .mechanisms([])
            .scenarios()
            .is_err());
    }

    #[test]
    fn file_driven_sweep_expands_config_and_workload_axes() {
        let doc = crate::toml::parse(
            r#"
[sweep]
label = "fig10-lock"

[sweep.config]
mechanism = ["Central", "Hier", "SynCron", "Ideal"]

[sweep.workload]
kind = "micro"
primitive = "lock"
interval = [50, 100, 200]
iterations = 4
"#,
        )
        .unwrap();
        let scenarios = Sweep::scenarios_from_value(doc.get("sweep").unwrap()).unwrap();
        assert_eq!(scenarios.len(), 12);
        assert!(scenarios
            .iter()
            .any(|s| s.label == "fig10-lock/lock-micro.i50/mechanism=Central"));
        assert!(scenarios
            .iter()
            .all(|s| matches!(s.workload, WorkloadSpec::Micro { .. })));
    }
}
