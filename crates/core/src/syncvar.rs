//! The in-memory `syncronVar` structure used during ST overflow.
//!
//! Section 4.3.1 of the paper: synchronization variables are allocated by the NDP
//! driver as an opaque `syncronVar` structure in main memory. During ST overflow the
//! Master SE coordinates synchronization by reading and writing this structure instead
//! of its (full) Synchronization Table. The structure holds one waiting list per SE of
//! the system (one bit per NDP core of that unit), a `VarInfo` field with the same
//! per-primitive meaning as the ST's `TableInfo`, and an `OverflowInfo` bitmask
//! recording which SEs have overflowed for this variable.

use core::fmt;

use crate::table::Waitlist;
use syncron_sim::{Addr, UnitId};

/// Error returned when a lock address cannot be packed into the low
/// [`SyncronVar::COND_LOCK_BITS`] bits of a condition variable's `VarInfo`.
///
/// Before this error existed, an oversized address was silently truncated when the
/// variable was served from memory, associating the condition variable with a
/// different (wrong) lock.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CondLockOverflow {
    /// The lock address that does not fit the packed layout.
    pub lock: Addr,
}

impl fmt::Display for CondLockOverflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "condvar lock address {} needs more than {} bits and cannot be packed \
             into the syncronVar VarInfo field",
            self.lock,
            SyncronVar::COND_LOCK_BITS
        )
    }
}

impl std::error::Error for CondLockOverflow {}

/// The driver-allocated, memory-resident synchronization variable (Figure 9).
#[derive(Clone, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SyncronVar {
    /// Address the variable is allocated at (its home NDP unit is derived from it).
    pub addr: Addr,
    /// One waiting list per SE of the system; each holds one bit per NDP core of the
    /// corresponding unit (`uint16_t Waitlist[4]` in the paper's 4-unit configuration;
    /// grows with the geometry here).
    pub waitlists: Vec<Waitlist>,
    /// Per-primitive information (lock owner, barrier count, semaphore resources, or
    /// associated lock address), `uint64_t VarInfo` in the paper.
    pub var_info: u64,
    /// One bit per SE that has overflowed for this variable (`uint8_t OverflowInfo`
    /// in the paper's 4-unit configuration; grows with the number of units here, so
    /// systems with more than 8 units do not alias overflow records).
    pub overflow_info: Waitlist,
}

impl SyncronVar {
    /// Size of the structure in bytes for a system of `units` NDP units with
    /// `cores_per_unit` cores each: one waiting list of `cores_per_unit` bits per
    /// unit, the 8-byte `VarInfo`, and an overflow bitmask of one bit per unit. For
    /// the paper's 4×16 machine this is the `struct syncronVar_t` of Figure 9:
    /// `uint16_t Waitlist[4]` + `uint64_t VarInfo` + `uint8_t OverflowInfo` = 17 B.
    pub fn size_bytes(units: usize, cores_per_unit: usize) -> u64 {
        (units * cores_per_unit.div_ceil(8) + 8 + units.div_ceil(8)) as u64
    }

    /// Creates an empty variable for a system with `units` NDP units. Waitlists are
    /// sized lazily; use [`SyncronVar::with_geometry`] to pre-size them for large
    /// units.
    pub fn new(addr: Addr, units: usize) -> Self {
        SyncronVar {
            addr,
            waitlists: vec![Waitlist::EMPTY; units],
            var_info: 0,
            overflow_info: Waitlist::EMPTY,
        }
    }

    /// Creates an empty variable whose per-unit waitlists are pre-sized for
    /// `cores_per_unit` cores, so waiter tracking never allocates per event.
    pub fn with_geometry(addr: Addr, units: usize, cores_per_unit: usize) -> Self {
        SyncronVar {
            addr,
            waitlists: vec![Waitlist::with_capacity(cores_per_unit); units],
            var_info: 0,
            overflow_info: Waitlist::with_capacity(units),
        }
    }

    /// Sets the waiting bit of `core_index` in the waiting list of `unit`.
    pub fn set_waiter(&mut self, unit: UnitId, core_index: usize) {
        self.waitlists[unit.index()].set(core_index);
    }

    /// Clears the waiting bit of `core_index` in the waiting list of `unit`.
    pub fn clear_waiter(&mut self, unit: UnitId, core_index: usize) {
        self.waitlists[unit.index()].clear(core_index);
    }

    /// Sets **all** bits of `unit`'s waiting list — how the Master SE represents "some
    /// cores of this (non-overflowed) unit are waiting" when it only receives an
    /// aggregated global message from that unit's SE (Section 4.3.2).
    pub fn set_unit_waiting(&mut self, unit: UnitId, cores_per_unit: usize) {
        for i in 0..cores_per_unit {
            self.waitlists[unit.index()].set(i);
        }
    }

    /// Clears all bits of `unit`'s waiting list.
    pub fn clear_unit_waiting(&mut self, unit: UnitId) {
        self.waitlists[unit.index()] = Waitlist::EMPTY;
    }

    /// Marks `unit`'s SE as overflowed for this variable.
    pub fn mark_overflowed(&mut self, unit: UnitId) {
        self.overflow_info.set(unit.index());
    }

    /// Returns whether `unit`'s SE is marked overflowed.
    pub fn is_overflowed(&self, unit: UnitId) -> bool {
        self.overflow_info.contains(unit.index())
    }

    /// Returns `true` when no core of any unit is waiting — the point at which the
    /// Master SE decrements its indexing counter and notifies overflowed SEs with
    /// `decrease_indexing_counter` messages.
    pub fn all_waitlists_empty(&self) -> bool {
        self.waitlists.iter().all(|w| w.is_empty())
    }

    /// Units whose SEs are marked overflowed (targets of `decrease_indexing_counter`).
    pub fn overflowed_units(&self) -> Vec<UnitId> {
        self.overflow_info
            .iter()
            .take_while(|&u| u < self.waitlists.len())
            .map(|u| UnitId(u as u8))
            .collect()
    }

    // ------------------------------------------------------------------
    // Condition-variable VarInfo layout (signal-coalescing extension)
    // ------------------------------------------------------------------
    //
    // For condition variables, the paper stores the associated lock's address in
    // `VarInfo`. Synchronization variables are cache-line aligned and user-space
    // addresses fit in 48 bits, so this reproduction packs the coalesced
    // pending-signal count into the otherwise-unused top 16 bits:
    //
    //   bits 63..48  pending-signal count (signals banked while no waiter queued)
    //   bits 47..0   associated lock address

    /// Number of low `VarInfo` bits holding the associated lock address.
    pub const COND_LOCK_BITS: u32 = 48;

    /// Returns whether a lock address fits the packed cond `VarInfo` layout.
    pub fn cond_lock_fits(lock: Addr) -> bool {
        lock.value() < (1 << Self::COND_LOCK_BITS)
    }

    /// Sets the condition-variable `VarInfo` — associated `lock` address plus the
    /// coalesced `pending` signal count — rejecting lock addresses that need more
    /// than [`Self::COND_LOCK_BITS`] bits instead of silently truncating them.
    pub fn try_set_cond_info(&mut self, lock: Addr, pending: u16) -> Result<(), CondLockOverflow> {
        if !Self::cond_lock_fits(lock) {
            return Err(CondLockOverflow { lock });
        }
        self.var_info = (u64::from(pending) << Self::COND_LOCK_BITS) | lock.value();
        Ok(())
    }

    /// Sets the condition-variable `VarInfo`: associated `lock` address plus the
    /// coalesced `pending` signal count.
    ///
    /// # Panics
    ///
    /// Panics — in release builds too — if the lock address needs more than
    /// [`Self::COND_LOCK_BITS`] bits; the old `debug_assert!` guard let release
    /// builds truncate the address and serve the wrong lock from memory. Callers
    /// that can recover should use [`Self::try_set_cond_info`].
    pub fn set_cond_info(&mut self, lock: Addr, pending: u16) {
        if let Err(e) = self.try_set_cond_info(lock, pending) {
            panic!("{e}");
        }
    }

    /// The associated lock address of a condition variable's `VarInfo`.
    pub fn cond_lock(&self) -> Addr {
        Addr(self.var_info & ((1 << Self::COND_LOCK_BITS) - 1))
    }

    /// The coalesced pending-signal count of a condition variable's `VarInfo`.
    pub fn cond_pending_signals(&self) -> u16 {
        (self.var_info >> Self::COND_LOCK_BITS) as u16
    }

    /// Banks one more pending signal (saturating), returning the new count.
    pub fn add_pending_signal(&mut self) -> u16 {
        let next = self.cond_pending_signals().saturating_add(1);
        self.set_cond_info(self.cond_lock(), next);
        next
    }

    /// Consumes one pending signal if any is banked; returns whether one was consumed.
    pub fn take_pending_signal(&mut self) -> bool {
        let pending = self.cond_pending_signals();
        if pending == 0 {
            return false;
        }
        self.set_cond_info(self.cond_lock(), pending - 1);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_matches_paper_struct() {
        // uint16_t Waitlist[4] + uint64_t VarInfo + uint8_t OverflowInfo = 17 bytes.
        assert_eq!(SyncronVar::size_bytes(4, 16), 17);
        // The structure grows with the geometry: 16 units x 256 cores needs
        // 16 x 32-byte waitlists + 8-byte VarInfo + 2-byte OverflowInfo.
        assert_eq!(SyncronVar::size_bytes(16, 256), 16 * 32 + 8 + 2);
    }

    #[test]
    fn overflow_tracking_beyond_eight_units() {
        // Regression: `OverflowInfo` was a u8 bitmask, so `1 << unit.index()` for
        // units 8.. overflowed the shift and aliased overflow records.
        let mut v = SyncronVar::with_geometry(Addr(0x100), 16, 256);
        v.mark_overflowed(UnitId(15));
        v.mark_overflowed(UnitId(9));
        assert!(v.is_overflowed(UnitId(15)));
        assert!(v.is_overflowed(UnitId(9)));
        assert!(!v.is_overflowed(UnitId(1)), "unit 9 must not alias unit 1");
        assert_eq!(v.overflowed_units(), vec![UnitId(9), UnitId(15)]);
    }

    #[test]
    fn geometry_sized_waitlists_track_large_units() {
        let mut v = SyncronVar::with_geometry(Addr(0x100), 2, 128);
        v.set_waiter(UnitId(1), 127);
        assert!(v.waitlists[1].contains(127));
        assert!(!v.waitlists[1].contains(63), "waiter 127 must not alias 63");
        v.set_unit_waiting(UnitId(0), 128);
        assert_eq!(v.waitlists[0].count(), 128);
        v.clear_unit_waiting(UnitId(0));
        v.clear_waiter(UnitId(1), 127);
        assert!(v.all_waitlists_empty());
    }

    #[test]
    fn oversized_cond_lock_is_rejected_not_truncated() {
        let mut v = SyncronVar::new(Addr(0x100), 4);
        let oversized = Addr(1 << SyncronVar::COND_LOCK_BITS);
        assert!(!SyncronVar::cond_lock_fits(oversized));
        assert_eq!(
            v.try_set_cond_info(oversized, 0),
            Err(CondLockOverflow { lock: oversized })
        );
        assert_eq!(v.var_info, 0, "a rejected pack must not corrupt VarInfo");
        let max_ok = Addr((1 << SyncronVar::COND_LOCK_BITS) - 64);
        v.try_set_cond_info(max_ok, 3).unwrap();
        assert_eq!(v.cond_lock(), max_ok);
        assert_eq!(v.cond_pending_signals(), 3);
    }

    #[test]
    #[should_panic(expected = "cannot be packed")]
    fn set_cond_info_panics_on_oversized_lock_in_release_too() {
        let mut v = SyncronVar::new(Addr(0x100), 4);
        v.set_cond_info(Addr(!63u64), 0);
    }

    #[test]
    fn waiter_bits_per_unit() {
        let mut v = SyncronVar::new(Addr(0x100), 4);
        v.set_waiter(UnitId(2), 5);
        assert!(!v.all_waitlists_empty());
        assert!(v.waitlists[2].contains(5));
        v.clear_waiter(UnitId(2), 5);
        assert!(v.all_waitlists_empty());
    }

    #[test]
    fn unit_level_aggregation() {
        let mut v = SyncronVar::new(Addr(0x100), 4);
        v.set_unit_waiting(UnitId(1), 16);
        assert_eq!(v.waitlists[1].count(), 16);
        v.clear_unit_waiting(UnitId(1));
        assert!(v.all_waitlists_empty());
    }

    #[test]
    fn cond_varinfo_packs_lock_and_pending_count() {
        let mut v = SyncronVar::new(Addr(0x100), 4);
        let lock = Addr(0xDEAD_BEC0); // line-aligned, fits in 48 bits
        v.set_cond_info(lock, 0);
        assert_eq!(v.cond_lock(), lock);
        assert_eq!(v.cond_pending_signals(), 0);
        assert!(!v.take_pending_signal(), "nothing banked yet");
        assert_eq!(v.add_pending_signal(), 1);
        assert_eq!(v.add_pending_signal(), 2);
        assert_eq!(v.cond_pending_signals(), 2);
        assert_eq!(
            v.cond_lock(),
            lock,
            "count must not disturb the lock address"
        );
        assert!(v.take_pending_signal());
        assert!(v.take_pending_signal());
        assert!(
            !v.take_pending_signal(),
            "each signal is consumed exactly once"
        );
        assert_eq!(v.cond_lock(), lock);
    }

    #[test]
    fn cond_pending_count_saturates() {
        let mut v = SyncronVar::new(Addr(0x100), 4);
        v.set_cond_info(Addr(0x40), u16::MAX);
        assert_eq!(v.add_pending_signal(), u16::MAX);
    }

    #[test]
    fn overflow_bookkeeping() {
        let mut v = SyncronVar::new(Addr(0x100), 4);
        assert!(!v.is_overflowed(UnitId(3)));
        v.mark_overflowed(UnitId(3));
        v.mark_overflowed(UnitId(0));
        assert!(v.is_overflowed(UnitId(3)));
        assert_eq!(v.overflowed_units(), vec![UnitId(0), UnitId(3)]);
    }
}
