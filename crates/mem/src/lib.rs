//! # syncron-mem
//!
//! Memory-subsystem models for the SynCron (HPCA 2021) NDP simulator.
//!
//! The paper's baseline NDP architecture (Section 2.1, Table 5) gives each NDP unit a
//! 3D-stacked (or planar) DRAM device and each NDP core a small private L1 cache.
//! There is **no shared cache** and **no hardware cache coherence**: data is classified
//! as thread-private, shared read-only (both cacheable), or shared read-write
//! (uncacheable), i.e. software-assisted coherence.
//!
//! This crate provides:
//!
//! * [`dram`] — DRAM timing and energy models for the three memory technologies the
//!   paper evaluates: HBM (2.5D NDP), HMC (3D NDP) and DDR4 (2D NDP), with per-bank
//!   open-row tracking and bank-conflict serialization.
//! * [`cache`] — the private per-core L1 model (16 KB, 2-way, 64 B lines, 4-cycle hits,
//!   23/47 pJ per hit/miss) and the software-assisted [`cache::DataClass`] policy.
//! * [`mesi`] — a directory-based MESI coherence model used **only** by the paper's
//!   motivational baselines (the `mesi-lock` stack of Figure 2 and the CPU lock
//!   microbenchmark of Table 1); the NDP system itself does not use hardware coherence.
//! * [`energy`] — the energy tally (cache / network / memory picojoules) that the
//!   evaluation reports (Figure 14) are built from.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod dram;
pub mod energy;
pub mod mesi;

pub use cache::{CacheConfig, CacheOutcome, DataClass, L1Cache};
pub use dram::{DramModel, DramSpec, MemTech};
pub use energy::EnergyTally;
pub use mesi::{MesiDirectory, MesiOutcome, MesiParams};
