//! Figures 11, 16 and 23: pointer-chasing data structures.

use crate::{f2, run_scenarios, scaled, ConfigSpec, Sweep, Table, WorkloadSpec};
use syncron_core::protocol::OverflowMode;
use syncron_core::MechanismKind;
use syncron_workloads::datastructures::{self, DsConfig};

fn ds_spec(name: &str, ops: u32) -> WorkloadSpec {
    WorkloadSpec::DataStructure {
        name: name.to_string(),
        ops_per_core: ops,
    }
}

/// Figure 11: throughput (operations/ms) of the nine data structures as the number of
/// NDP cores grows from 15 to 60 (one NDP unit added per step), for each scheme.
pub fn fig11() -> Vec<Table> {
    let ops = scaled(40, 8);
    let unit_steps = [1usize, 2, 3, 4];
    datastructures::ALL_NAMES
        .iter()
        .map(|&name| {
            let sweep = Sweep::new(format!("fig11-{name}"))
                .workload(ds_spec(name, ops))
                .units(unit_steps)
                .compared_mechanisms();
            let results = run_scenarios(&sweep.scenarios().expect("valid sweep"));
            let mut table = Table::new(
                format!("Figure 11 ({name}): throughput in operations/ms vs NDP cores"),
                &["cores", "Central", "Hier", "SynCron", "Ideal"],
            );
            for &units in &unit_steps {
                let mut cells = vec![(units * 15).to_string()];
                for kind in MechanismKind::COMPARED {
                    let label = format!("fig11-{name}/{name}/u={units}/mech={}", kind.name());
                    cells.push(f2(results.report(&label).expect("swept").ops_per_ms()));
                }
                table.push_row(cells);
            }
            table
        })
        .collect()
}

/// Figure 16: throughput of the stack and the priority queue (operations/µs) as the
/// inter-unit link transfer latency grows from 40 ns to 9 µs (high contention).
pub fn fig16() -> Vec<Table> {
    let ops = scaled(40, 8);
    let latencies_ns: [u64; 8] = [40, 100, 200, 500, 1_000, 2_000, 4_500, 9_000];
    ["stack", "priority-queue"]
        .iter()
        .map(|&name| {
            let sweep = Sweep::new(format!("fig16-{name}"))
                .workload(ds_spec(name, ops))
                .link_latencies_ns(latencies_ns)
                .compared_mechanisms();
            let results = run_scenarios(&sweep.scenarios().expect("valid sweep"));
            let mut table = Table::new(
                format!("Figure 16 ({name}): operations/us vs inter-unit link transfer latency"),
                &["latency_ns", "Central", "Hier", "SynCron", "Ideal"],
            );
            for &lat in &latencies_ns {
                let mut cells = vec![lat.to_string()];
                for kind in MechanismKind::COMPARED {
                    let label = format!("fig16-{name}/{name}/lat={lat}/mech={}", kind.name());
                    cells.push(format!(
                        "{:.3}",
                        results.report(&label).expect("swept").ops_per_us()
                    ));
                }
                table.push_row(cells);
            }
            table
        })
        .collect()
}

/// Figure 23: throughput of BST_FG under the three overflow-management schemes as the
/// ST size varies, plus the fraction of overflowed requests.
pub fn fig23() -> Table {
    let ops = scaled(30, 6);
    let st_sizes = [16usize, 32, 48, 64, 128, 256];
    let modes = [
        ("SynCron", OverflowMode::Integrated),
        ("SynCron_CentralOvrfl", OverflowMode::MiSarCentral),
        ("SynCron_DistribOvrfl", OverflowMode::MiSarDistributed),
    ];
    let sweep = Sweep::new("fig23")
        .workload(ds_spec("bst-fg", ops))
        .st_entries(st_sizes)
        .overflow_modes(modes.iter().map(|&(_, m)| m));
    let results = run_scenarios(&sweep.scenarios().expect("valid sweep"));

    let mut table = Table::new(
        "Figure 23: BST_FG throughput (operations/ms) under different overflow schemes",
        &[
            "ST entries",
            "SynCron",
            "SynCron_CentralOvrfl",
            "SynCron_DistribOvrfl",
            "overflowed %",
        ],
    );
    for &st in &st_sizes {
        let label = |mode: OverflowMode| format!("fig23/bst-fg/st={st}/ovfl={}", mode.name());
        let mut cells = vec![st.to_string()];
        for &(_, mode) in &modes {
            cells.push(f2(results
                .report(&label(mode))
                .expect("swept")
                .ops_per_ms()));
        }
        cells.push(f2(results
            .report(&label(OverflowMode::Integrated))
            .expect("swept")
            .sync
            .overflow_fraction()
            * 100.0));
        table.push_row(cells);
    }
    table
}

/// Building block shared by tests and quick examples: runs one structure under one
/// scheme at the paper's default system size.
pub fn run_structure(name: &str, kind: MechanismKind, ops: u32) -> syncron_system::RunReport {
    let scenario = crate::Scenario::new(
        format!("{name}/{}", kind.name()),
        ConfigSpec::default().with_mechanism(kind),
        ds_spec(name, ops),
    );
    scenario.run().expect("known structure")
}

/// Default data-structure sizing used by examples.
pub fn example_config(initial: usize, ops: u32) -> DsConfig {
    DsConfig::new(initial, ops)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stack_throughput_ranks_schemes_like_the_paper() {
        let central = run_structure("stack", MechanismKind::Central, 20);
        let syncron = run_structure("stack", MechanismKind::SynCron, 20);
        let ideal = run_structure("stack", MechanismKind::Ideal, 20);
        assert!(syncron.ops_per_ms() > central.ops_per_ms());
        assert!(ideal.ops_per_ms() >= syncron.ops_per_ms());
    }

    #[test]
    fn bst_fg_overflows_small_sts() {
        let config = ConfigSpec {
            st_entries: 16,
            ..ConfigSpec::default()
        };
        let scenario = crate::Scenario::new("bst-fg-16", config, ds_spec("bst-fg", 10));
        let report = scenario.run().unwrap();
        assert!(report.completed);
        assert!(
            report.sync.overflow_fraction() > 0.0,
            "a 16-entry ST should overflow under BST_FG"
        );
    }
}
