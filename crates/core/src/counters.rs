//! Indexing counters for ST overflow tracking, and the signal-coalescing counters.
//!
//! Section 4.2.3 of the paper: when the ST is full, the SE keeps track of which
//! synchronization variables are currently serviced via main memory using a small set
//! of counters (256 in the paper's implementation), indexed by the least-significant
//! bits of the variable's address. Acquire-type messages for an overflowed variable
//! increment the counter; release-type messages decrement it. A variable is serviced
//! via memory while its counter is non-zero. Different variables may alias onto the
//! same counter; aliasing never affects correctness, only performance (an aliased
//! variable may be serviced via memory even though the ST has room).
//!
//! This module also hosts [`SignalCounters`], the per-engine bookkeeping of the
//! condvar signal-coalescing / backoff extension (see [`crate::protocol`]): how many
//! signals were banked as pending, consumed by a later wait, or NACKed with a backoff
//! delay. The protocol engine aggregates them into
//! [`SyncMechanismStats`](crate::mechanism::SyncMechanismStats) for reporting.

use syncron_sim::Addr;

/// The per-SE indexing counter file.
///
/// # Example
///
/// ```
/// use syncron_core::counters::IndexingCounters;
/// use syncron_sim::Addr;
///
/// let mut ctrs = IndexingCounters::new(256);
/// assert!(!ctrs.is_overflowed(Addr(0x1240)));
/// ctrs.increment(Addr(0x1240));
/// assert!(ctrs.is_overflowed(Addr(0x1240)));
/// ctrs.decrement(Addr(0x1240));
/// assert!(!ctrs.is_overflowed(Addr(0x1240)));
/// ```
#[derive(Clone, Debug)]
pub struct IndexingCounters {
    counters: Vec<u32>,
    index_bits: u32,
    increments: u64,
    saturations: u64,
}

impl IndexingCounters {
    /// Creates a counter file with `entries` counters. `entries` is rounded up to the
    /// next power of two (the paper uses 256, indexed by the 8 LSBs of the address).
    pub fn new(entries: usize) -> Self {
        let entries = entries.max(1).next_power_of_two();
        IndexingCounters {
            counters: vec![0; entries],
            index_bits: entries.trailing_zeros(),
            increments: 0,
            saturations: 0,
        }
    }

    /// Number of counters.
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// Returns `true` if the counter file is empty (it never is after construction).
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }

    fn index(&self, addr: Addr) -> usize {
        // Index by the LSBs of the *line* address so variables in different cache
        // lines spread across counters (the paper indexes by the address LSBs).
        (addr.line_index() & ((1 << self.index_bits) - 1) as u64) as usize
    }

    /// Increments the counter for `addr` (acquire-type message for an overflowed
    /// variable).
    pub fn increment(&mut self, addr: Addr) {
        let idx = self.index(addr);
        if self.counters[idx] == u32::MAX {
            self.saturations += 1;
        } else {
            self.counters[idx] += 1;
        }
        self.increments += 1;
    }

    /// Decrements the counter for `addr` (release-type message for an overflowed
    /// variable). Saturates at zero.
    pub fn decrement(&mut self, addr: Addr) {
        let idx = self.index(addr);
        if self.counters[idx] > 0 {
            self.counters[idx] -= 1;
        }
    }

    /// Returns `true` if the variable at `addr` is currently serviced via main memory
    /// (its counter — possibly shared with aliasing variables — is non-zero).
    pub fn is_overflowed(&self, addr: Addr) -> bool {
        self.counters[self.index(addr)] > 0
    }

    /// Current value of the counter for `addr`.
    pub fn value(&self, addr: Addr) -> u32 {
        self.counters[self.index(addr)]
    }

    /// Total number of increments performed (≈ overflowed acquire-type messages).
    pub fn increments(&self) -> u64 {
        self.increments
    }

    /// Number of counters that are currently non-zero.
    pub fn active(&self) -> usize {
        self.counters.iter().filter(|&&c| c > 0).count()
    }
}

/// Per-engine counters of the condvar signal-coalescing / backoff extension.
///
/// One `cond_signal` arriving at the serving engine ends in exactly one of three
/// ways, each tracked by one counter:
///
/// * **delivered** — a waiter was queued and is woken;
/// * **coalesced** — no waiter was queued, the signal is banked in the pending count;
/// * **nacked** — no waiter was queued and the pending count was at its cap, so the
///   signaler is NACKed with a backoff delay.
///
/// `consumed` counts the pending signals a later `cond_wait` picked up; at quiescence
/// `consumed <= coalesced` (banked signals may outlive the run).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SignalCounters {
    delivered: u64,
    coalesced: u64,
    consumed: u64,
    nacked: u64,
    max_pending: u16,
}

impl SignalCounters {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        SignalCounters::default()
    }

    /// Records a signal that woke a queued waiter.
    pub fn record_delivered(&mut self) {
        self.delivered += 1;
    }

    /// Records a signal banked into the pending count, which now stands at
    /// `pending_now`.
    pub fn record_coalesced(&mut self, pending_now: u16) {
        self.coalesced += 1;
        self.max_pending = self.max_pending.max(pending_now);
    }

    /// Records a pending signal consumed by a later `cond_wait`.
    pub fn record_consumed(&mut self) {
        self.consumed += 1;
    }

    /// Records a signal NACKed with a backoff delay.
    pub fn record_nacked(&mut self) {
        self.nacked += 1;
    }

    /// Signals that woke a queued waiter.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Signals banked into the pending count.
    pub fn coalesced(&self) -> u64 {
        self.coalesced
    }

    /// Pending signals consumed by a later `cond_wait`.
    pub fn consumed(&self) -> u64 {
        self.consumed
    }

    /// Signals NACKed with a backoff delay.
    pub fn nacked(&self) -> u64 {
        self.nacked
    }

    /// High-water mark of the pending-signal count.
    pub fn max_pending(&self) -> u16 {
        self.max_pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configuration_is_256_entries() {
        let ctrs = IndexingCounters::new(256);
        assert_eq!(ctrs.len(), 256);
        assert!(!ctrs.is_empty());
    }

    #[test]
    fn rounds_up_to_power_of_two() {
        assert_eq!(IndexingCounters::new(200).len(), 256);
        assert_eq!(IndexingCounters::new(1).len(), 1);
    }

    #[test]
    fn increment_decrement_cycle() {
        let mut ctrs = IndexingCounters::new(256);
        let a = Addr(0x4040);
        ctrs.increment(a);
        ctrs.increment(a);
        assert_eq!(ctrs.value(a), 2);
        assert!(ctrs.is_overflowed(a));
        ctrs.decrement(a);
        assert!(ctrs.is_overflowed(a));
        ctrs.decrement(a);
        assert!(!ctrs.is_overflowed(a));
        // Extra decrements saturate at zero.
        ctrs.decrement(a);
        assert_eq!(ctrs.value(a), 0);
        assert_eq!(ctrs.increments(), 2);
    }

    #[test]
    fn aliasing_shares_a_counter() {
        let mut ctrs = IndexingCounters::new(256);
        // Two variables whose line indices differ by exactly 256 alias.
        let a = Addr(0);
        let b = Addr(256 * 64);
        ctrs.increment(a);
        assert!(ctrs.is_overflowed(b), "aliased variable shares the counter");
        assert_eq!(ctrs.active(), 1);
    }

    #[test]
    fn signal_counters_track_each_outcome() {
        let mut s = SignalCounters::new();
        s.record_delivered();
        s.record_coalesced(1);
        s.record_coalesced(2);
        s.record_consumed();
        s.record_nacked();
        s.record_nacked();
        assert_eq!(s.delivered(), 1);
        assert_eq!(s.coalesced(), 2);
        assert_eq!(s.consumed(), 1);
        assert_eq!(s.nacked(), 2);
        assert_eq!(s.max_pending(), 2);
        // The high-water mark never decreases.
        s.record_coalesced(1);
        assert_eq!(s.max_pending(), 2);
        assert!(s.consumed() <= s.coalesced());
    }

    #[test]
    fn distinct_lines_use_distinct_counters() {
        let mut ctrs = IndexingCounters::new(256);
        ctrs.increment(Addr(0));
        ctrs.increment(Addr(64));
        assert_eq!(ctrs.active(), 2);
        assert!(!ctrs.is_overflowed(Addr(128)));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use syncron_sim::SimRng;

    /// A counter's value equals max(0, increments - decrements) applied in order,
    /// for any interleaving on a single address.
    ///
    /// Deterministic stand-in for a proptest property (no crates.io access): many
    /// randomized op sequences driven by the in-tree RNG.
    #[test]
    fn counter_tracks_balance() {
        for case in 0..64u64 {
            let mut rng = SimRng::seed_from(0xC0_0000 + case);
            let ops = 1 + rng.gen_range(199) as usize;
            let mut ctrs = IndexingCounters::new(64);
            let addr = Addr(0x80);
            let mut model: i64 = 0;
            for _ in 0..ops {
                if rng.gen_bool(0.5) {
                    ctrs.increment(addr);
                    model += 1;
                } else {
                    ctrs.decrement(addr);
                    model = (model - 1).max(0);
                }
                assert_eq!(ctrs.value(addr) as i64, model);
                assert_eq!(ctrs.is_overflowed(addr), model > 0);
            }
        }
    }
}
