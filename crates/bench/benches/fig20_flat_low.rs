//! Regenerates Figure 20 of the paper (SynCron vs flat, low contention).
fn main() {
    syncron_bench::experiments::sensitivity::fig20().print();
}
