//! # syncron-system
//!
//! NDP system assembly for the SynCron (HPCA 2021) reproduction.
//!
//! This crate glues the substrates together into the simulated machine of Table 5:
//! several NDP units, each with in-order NDP cores (2.5 GHz, private L1s), a local
//! buffered crossbar and a DRAM device; serial links between units; and one
//! synchronization mechanism (SynCron, Central, Hier, Ideal, …) serving the cores'
//! `req_sync`/`req_async` requests.
//!
//! * [`config`] — the [`config::NdpConfig`] describing the machine (units, cores,
//!   memory technology, link latency, mechanism parameters, coherence mode).
//! * [`address`] — the shared physical address space, data placement (home units) and
//!   software-assisted coherence data classes.
//! * [`workload`] — the execution model: workloads provide one [`workload::CoreProgram`]
//!   per client core, which the machine steps one [`workload::Action`] at a time.
//! * [`machine`] — the event-driven machine itself.
//! * [`report`] — the [`report::RunReport`] with execution time, energy breakdown,
//!   data movement and synchronization statistics, mirroring the paper's figures.
//!
//! # Example
//!
//! ```
//! use syncron_system::config::NdpConfig;
//! use syncron_system::workload::{Action, CoreProgram, Workload};
//! use syncron_system::{run_workload, AddressSpace};
//! use syncron_core::{MechanismKind, SyncRequest};
//! use syncron_sim::{Addr, GlobalCoreId, Time, UnitId};
//!
//! /// Each core acquires and releases one global lock a few times.
//! struct TinyLock;
//! struct TinyLockProgram { lock: Addr, remaining: u32, phase: u8 }
//!
//! impl CoreProgram for TinyLockProgram {
//!     fn step(&mut self, _core: GlobalCoreId, _now: Time) -> Action {
//!         if self.remaining == 0 { return Action::Done; }
//!         match self.phase {
//!             0 => { self.phase = 1; Action::Sync(SyncRequest::LockAcquire { var: self.lock }) }
//!             _ => {
//!                 self.phase = 0;
//!                 self.remaining -= 1;
//!                 Action::Sync(SyncRequest::LockRelease { var: self.lock })
//!             }
//!         }
//!     }
//!     fn ops_completed(&self) -> u64 { 3 }
//! }
//!
//! impl Workload for TinyLock {
//!     fn name(&self) -> String { "tiny-lock".into() }
//!     fn build(
//!         &self,
//!         space: &mut AddressSpace,
//!         _config: &NdpConfig,
//!         clients: &[GlobalCoreId],
//!     ) -> Vec<Box<dyn CoreProgram>> {
//!         let lock = space.allocate_shared_rw(64, UnitId(0));
//!         clients
//!             .iter()
//!             .map(|_| {
//!                 Box::new(TinyLockProgram { lock, remaining: 3, phase: 0 })
//!                     as Box<dyn CoreProgram>
//!             })
//!             .collect()
//!     }
//! }
//!
//! let config = NdpConfig::builder()
//!     .units(2)
//!     .cores_per_unit(4)
//!     .mechanism(MechanismKind::SynCron)
//!     .build()
//!     .expect("a valid machine geometry");
//! let report = run_workload(&config, &TinyLock);
//! assert!(report.completed);
//! assert!(report.sim_time > Time::ZERO);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod address;
pub mod config;
pub mod machine;
pub mod report;
pub mod workload;

pub use address::{AddressSpace, DataClass};
pub use config::{CoherenceMode, ConfigError, FaultConfig, MemTech, NdpConfig};
pub use machine::{run_workload, NdpMachine};
pub use report::{
    BlockedCore, FaultStats, IncompleteReason, RunReport, SimPerf, StallKind, StallReport,
};
pub use workload::{Action, CoreProgram, Workload};
