//! Regenerates Table 7 of the paper (ST occupancy in real applications).
fn main() {
    syncron_bench::experiments::realapps::table07().print();
}
