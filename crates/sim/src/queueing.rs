//! Analytic queueing models.
//!
//! The paper's simulation methodology (Table 5) models the queueing latency of the
//! intra-unit buffered crossbar with an **M/D/1** model: Poisson arrivals, a
//! deterministic service time, and a single server. This module provides that model
//! plus a small utilization tracker that estimates the arrival rate from the stream
//! of packets observed during simulation.

use crate::time::Time;

/// Mean waiting time of an M/D/1 queue.
///
/// For arrival rate `lambda` (packets per picosecond) and deterministic service time
/// `service` the mean *waiting* time (excluding service) is
/// `W = rho / (2 * mu * (1 - rho))` where `rho = lambda / mu` and `mu = 1 / service`.
///
/// The returned waiting time is clamped: if the utilization is at or above
/// `max_utilization` (default callers use 0.95) the wait at that utilization is
/// returned instead, keeping the model stable when the simulated network saturates.
///
/// # Example
///
/// ```
/// use syncron_sim::queueing::md1_wait;
/// use syncron_sim::time::Time;
/// // Utilization 0.5 with a 1 ns service time waits 0.5 ns on average.
/// let w = md1_wait(0.0005, Time::from_ns(1), 0.95);
/// assert_eq!(w.as_ps(), 500);
/// ```
pub fn md1_wait(lambda_per_ps: f64, service: Time, max_utilization: f64) -> Time {
    if service == Time::ZERO {
        return Time::ZERO;
    }
    let mu = 1.0 / (service.as_ps() as f64);
    md1_wait_with_mu(lambda_per_ps, mu, max_utilization)
}

/// [`md1_wait`] with the service rate `mu = 1 / service_ps` supplied by the
/// caller.
///
/// `1.0 / s` is one of the three serial-dependency float divides on the crossbar
/// hot path, and it depends only on the packet's service time — one of a handful
/// of values (header- and line-sized packets). Callers that memoize `mu` per
/// service time (see the crossbar) skip that divide per packet; the remaining
/// operations are performed in exactly the order [`md1_wait`] performs them, so
/// the result is bit-identical.
pub fn md1_wait_with_mu(lambda_per_ps: f64, mu: f64, max_utilization: f64) -> Time {
    if lambda_per_ps <= 0.0 || mu <= 0.0 {
        return Time::ZERO;
    }
    let rho = (lambda_per_ps / mu).min(max_utilization.clamp(0.0, 0.999));
    if rho <= 0.0 {
        return Time::ZERO;
    }
    let wait = rho / (2.0 * mu * (1.0 - rho));
    Time::from_ps(wait.round() as u64)
}

/// Which evaluation strategy the analytic M/D/1 model uses on the hot path.
///
/// `Exact` is the closed-form expression of [`md1_wait`]: two serial float
/// divides per packet (profiling attributed ~30% of run-loop wall time to
/// them). `Quantized` replaces the per-packet divides with a lookup into a
/// precomputed waiting-time table ([`Md1Table`]) — log-spaced in the idle
/// fraction `1 - rho`, linearly interpolated — built once per (link, service
/// time). The two models agree to within [`Md1Table::ERROR_BOUND_PS`] of each
/// other at the paper's packet sizes, but **not** bit for bit: switching the
/// model is a conscious re-baseline of every simulated latency.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Md1Model {
    /// Per-packet closed-form evaluation (bit-exact against [`md1_wait`]).
    Exact,
    /// Per-service-time lookup table with linear interpolation (default).
    #[default]
    Quantized,
}

impl Md1Model {
    /// Every model, in declaration order (sweep/validation helper).
    pub const ALL: [Md1Model; 2] = [Md1Model::Exact, Md1Model::Quantized];

    /// The model's lower-case config-file name.
    pub fn name(self) -> &'static str {
        match self {
            Md1Model::Exact => "exact",
            Md1Model::Quantized => "quantized",
        }
    }

    /// Parses a config-file name (`"exact"` / `"quantized"`).
    pub fn parse(name: &str) -> Option<Md1Model> {
        Md1Model::ALL.into_iter().find(|m| m.name() == name)
    }
}

/// Sub-bucket resolution of the [`Md1Table`] grid: each power-of-two octave of
/// the idle fraction `u = 1 - rho` is split into `2^MD1_SUB_BITS` buckets.
const MD1_SUB_BITS: u64 = 7;
/// Right-shift applied to `u.to_bits()` to obtain a bucket index: buckets are
/// delimited by the exponent plus the top [`MD1_SUB_BITS`] mantissa bits, so
/// consecutive indices tile `(0, 1]` with geometrically growing widths.
const MD1_SHIFT: u64 = 52 - MD1_SUB_BITS;

/// Precomputed M/D/1 waiting-time table for one deterministic service time.
///
/// The closed form `W(rho) = service * rho / (2 (1 - rho))` diverges as the
/// utilization `rho` approaches 1, so the table is keyed on the idle fraction
/// `u = 1 - rho` with **log-spaced** buckets (equal width per octave of `u`,
/// `2^7` sub-buckets each — `MD1_SUB_BITS`): resolution automatically concentrates
/// where the curvature `W'' = service / u^3` is largest. Each bucket stores the
/// exact waiting time at its left edge plus the chord slope to the next edge;
/// evaluation is one multiply (`rho = lambda * service`), one float-bit
/// extraction and one fused interpolation — no divides.
///
/// The interpolant passes through exact values at every bucket edge and every
/// chord of a monotone function is monotone, so the table preserves the
/// model's monotonicity in load. The interpolation error is bounded by
/// `W'' h^2 / 8` with `h ≈ u * 2^-MD1_SUB_BITS`, i.e. about
/// `service * 4e-6 / u`: under 0.25 ps for the paper's packet sizes
/// (service ≤ 1.6 ns) at the default utilization cap 0.95 — see
/// [`Md1Table::ERROR_BOUND_PS`], which the property tests pin.
#[derive(Clone, Debug)]
pub struct Md1Table {
    /// Deterministic service time in picoseconds (as f64: `rho = lambda * this`).
    service_ps: f64,
    /// Utilization clamp (mirrors [`md1_wait`]'s `max_utilization` handling).
    rho_cap: f64,
    /// Bucket index of the smallest reachable idle fraction `1 - rho_cap`.
    base: u64,
    /// Per-bucket `(waiting time at left edge, chord slope)` in picoseconds.
    buckets: Vec<(f64, f64)>,
}

impl Md1Table {
    /// Guaranteed absolute agreement with [`md1_wait`], in picoseconds, for
    /// service times up to 1.6 ns (the paper's line-sized packet) at
    /// utilization caps up to the default 0.95. Asserted by the property tests
    /// and recorded in `EXPERIMENTS.md`.
    pub const ERROR_BOUND_PS: u64 = 1;

    /// Builds the table for one deterministic `service` time and utilization
    /// clamp. A zero service time (or non-positive clamp) yields an empty
    /// table whose [`Md1Table::wait`] is always zero, matching [`md1_wait`].
    pub fn new(service: Time, max_utilization: f64) -> Self {
        let rho_cap = max_utilization.clamp(0.0, 0.999);
        let service_ps = service.as_ps() as f64;
        if service == Time::ZERO || rho_cap <= 0.0 {
            return Md1Table {
                service_ps: 0.0,
                rho_cap: 0.0,
                base: 0,
                buckets: Vec::new(),
            };
        }
        // Reachable idle fractions: u ∈ [1 - rho_cap, 1). The clamp in `wait`
        // computes `1.0 - rho` with the identical rounding, so `u` can never
        // fall below the table floor.
        let u_floor = 1.0 - rho_cap;
        let base = u_floor.to_bits() >> MD1_SHIFT;
        let top = 1.0f64.to_bits() >> MD1_SHIFT;
        let count = (top - base) as usize;
        let exact = |u: f64| service_ps * (1.0 - u) / (2.0 * u);
        let edge = |k: u64| f64::from_bits((base + k) << MD1_SHIFT);
        let mut buckets = Vec::with_capacity(count);
        for k in 0..count as u64 {
            let (u0, u1) = (edge(k), edge(k + 1));
            let (w0, w1) = (exact(u0), exact(u1));
            buckets.push((w0, (w1 - w0) / (u1 - u0)));
        }
        Md1Table {
            service_ps,
            rho_cap,
            base,
            buckets,
        }
    }

    /// Mean waiting time at arrival rate `lambda_per_ps`, interpolated from the
    /// table. Agrees with `md1_wait(lambda, service, max_utilization)` to
    /// within [`Md1Table::ERROR_BOUND_PS`] and is monotone in `lambda_per_ps`.
    #[inline]
    pub fn wait(&self, lambda_per_ps: f64) -> Time {
        if lambda_per_ps <= 0.0 || self.buckets.is_empty() {
            return Time::ZERO;
        }
        let rho = (lambda_per_ps * self.service_ps).min(self.rho_cap);
        if rho <= 0.0 {
            return Time::ZERO;
        }
        let u = 1.0 - rho;
        let k = ((u.to_bits() >> MD1_SHIFT) - self.base) as usize;
        let (w0, slope) = self.buckets[k];
        let u0 = f64::from_bits((self.base + k as u64) << MD1_SHIFT);
        Time::from_ps((w0 + slope * (u - u0)).round() as u64)
    }
}

/// A two-way direct-mapped memo for pure `u64 → V` computations.
///
/// Sized for key streams that alternate between (at most) two hot values — the
/// network models' packet sizes are almost entirely header- or line-sized, and
/// the remote data path interleaves the two back to back, so one entry would
/// thrash while two make the memo fire. A hit returns exactly what the
/// computation produced for that key, so memoizing a deterministic function is
/// bit-exact by construction.
#[derive(Clone, Copy, Debug)]
pub struct Memo2<V> {
    entries: [Option<(u64, V)>; 2],
    evict: usize,
}

impl<V: Copy> Memo2<V> {
    /// An empty memo.
    pub fn new() -> Self {
        Memo2 {
            entries: [None, None],
            evict: 0,
        }
    }

    /// Returns the memoized value for `key`, computing (and caching) it on a
    /// miss; a miss evicts the older of the two entries.
    pub fn get_or_insert_with(&mut self, key: u64, compute: impl FnOnce() -> V) -> V {
        if let Some((k, v)) = self.entries[0] {
            if k == key {
                return v;
            }
        }
        if let Some((k, v)) = self.entries[1] {
            if k == key {
                return v;
            }
        }
        let value = compute();
        self.entries[self.evict] = Some((key, value));
        self.evict ^= 1;
        value
    }
}

impl<V: Copy> Default for Memo2<V> {
    fn default() -> Self {
        Memo2::new()
    }
}

/// Tracks the recent arrival rate of packets at a network port so the M/D/1 model can
/// be evaluated with a locally-measured `lambda`.
///
/// The tracker uses an exponentially-decayed packet count over a configurable window,
/// which reacts to bursts (high contention phases) but forgets idle periods.
#[derive(Clone, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RateTracker {
    window: Time,
    last: Time,
    weight: f64,
    total_packets: u64,
    /// Memoized decay factors: a direct-mapped `dt → exp(-dt/w)` cache over the
    /// exact picosecond gap. Event-driven traffic draws its inter-arrival gaps
    /// from a discrete grid (core cycles, service times, hop latencies) that
    /// repeats heavily across phases, but *not* always back to back — the
    /// predecessor of this cache was a single entry, which burst traffic with
    /// alternating gaps missed almost every time, paying the `exp` call (the
    /// single most expensive float operation on the crossbar hot path) per
    /// packet. Keying on the exact `dt` keeps every returned factor bit-exact.
    factor_cache: Vec<(u64, f64)>,
}

/// Ways in the `dt → exp` factor cache (power of two; 4 KiB per tracker).
const FACTOR_WAYS: usize = 256;
/// Multiplicative hash constant (splitmix64 / golden-ratio derived).
const WAY_MIX: u64 = 0x9E37_79B9_7F4A_7C15;

impl RateTracker {
    /// Creates a tracker with the given averaging window.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: Time) -> Self {
        assert!(window > Time::ZERO, "rate window must be positive");
        RateTracker {
            window,
            last: Time::ZERO,
            weight: 0.0,
            total_packets: 0,
            // `dt == 0` never reaches the cache (`decay_to` early-returns), so
            // it doubles as the empty marker.
            factor_cache: vec![(0, 1.0); FACTOR_WAYS],
        }
    }

    /// Records the arrival of one packet at time `now`.
    pub fn record(&mut self, now: Time) {
        self.decay_to(now);
        self.weight += 1.0;
        self.total_packets += 1;
    }

    /// Returns the estimated arrival rate in packets per picosecond at time `now`.
    pub fn rate_per_ps(&mut self, now: Time) -> f64 {
        self.decay_to(now);
        self.weight / self.window.as_ps() as f64
    }

    /// Records one packet at `now` and returns the updated arrival rate, with a
    /// single decay step. Bit-identical to `record(now)` followed by
    /// `rate_per_ps(now)` — the second decay there is always a no-op — but the hot
    /// crossbar path pays the `now <= last` comparison once instead of twice.
    pub fn record_and_rate(&mut self, now: Time) -> f64 {
        self.decay_to(now);
        self.weight += 1.0;
        self.total_packets += 1;
        self.weight / self.window.as_ps() as f64
    }

    /// Total packets ever recorded.
    pub fn total_packets(&self) -> u64 {
        self.total_packets
    }

    fn decay_to(&mut self, now: Time) {
        if now <= self.last {
            return;
        }
        let dt_ps = (now - self.last).as_ps();
        // Exponential decay with time constant = window; `exp` of an identical
        // `dt` is identical, so the keyed memo is bit-exact.
        let way = (dt_ps.wrapping_mul(WAY_MIX) >> 56) as usize & (FACTOR_WAYS - 1);
        let entry = &mut self.factor_cache[way];
        let factor = if entry.0 == dt_ps {
            entry.1
        } else {
            let w = self.window.as_ps() as f64;
            let factor = (-(dt_ps as f64) / w).exp();
            *entry = (dt_ps, factor);
            factor
        };
        self.weight *= factor;
        self.last = now;
    }
}

/// A single-resource serializer: models a component (DRAM bank, inter-unit link,
/// Synchronization Engine SPU) that can service one request at a time.
///
/// [`Serializer::acquire`] returns the time at which a request arriving at `now` and
/// occupying the resource for `busy` actually starts service, after waiting for all
/// previously accepted requests.
#[derive(Clone, Copy, Debug, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Serializer {
    busy_until: Time,
}

impl Serializer {
    /// Creates an idle serializer.
    pub fn new() -> Self {
        Serializer {
            busy_until: Time::ZERO,
        }
    }

    /// Accepts a request arriving at `now` that occupies the resource for `busy`.
    /// Returns the time service **starts**; the resource is then busy until
    /// `start + busy`.
    pub fn acquire(&mut self, now: Time, busy: Time) -> Time {
        let start = now.max(self.busy_until);
        self.busy_until = start + busy;
        start
    }

    /// Time at which the resource becomes idle.
    pub fn busy_until(&self) -> Time {
        self.busy_until
    }

    /// Returns `true` if the resource is idle at `now`.
    pub fn is_idle_at(&self, now: Time) -> bool {
        self.busy_until <= now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn md1_zero_load_is_zero_wait() {
        assert_eq!(md1_wait(0.0, Time::from_ns(1), 0.95), Time::ZERO);
        assert_eq!(md1_wait(0.5, Time::ZERO, 0.95), Time::ZERO);
    }

    #[test]
    fn md1_wait_grows_with_load() {
        let s = Time::from_ns(1);
        let w1 = md1_wait(0.0001, s, 0.95);
        let w2 = md1_wait(0.0005, s, 0.95);
        let w3 = md1_wait(0.0009, s, 0.95);
        assert!(w1 < w2 && w2 < w3, "{w1:?} {w2:?} {w3:?}");
    }

    #[test]
    fn md1_wait_clamps_at_saturation() {
        let s = Time::from_ns(1);
        let at_limit = md1_wait(0.00095, s, 0.95);
        let beyond = md1_wait(0.5, s, 0.95);
        assert_eq!(at_limit, beyond);
    }

    #[test]
    fn md1_with_mu_is_bit_exact_against_the_plain_function() {
        // Supplying the memoized reciprocal must agree with md1_wait everywhere,
        // bit for bit — including boundary cases and near-duplicate lambdas
        // differing in the last mantissa bit.
        for service in [Time::from_ps(400), Time::from_ns(1), Time::from_ps(1600)] {
            let mu = 1.0 / (service.as_ps() as f64);
            let lambdas = [
                0.0,
                1e-9,
                0.0001,
                0.0005,
                f64::from_bits(0.0005f64.to_bits() + 1),
                0.00095,
                0.5,
            ];
            for &l in &lambdas {
                for util in [0.5, 0.95] {
                    assert_eq!(
                        md1_wait_with_mu(l, mu, util),
                        md1_wait(l, service, util),
                        "lambda={l} util={util} service={service}"
                    );
                }
            }
        }
        assert_eq!(md1_wait(0.1, Time::ZERO, 0.95), Time::ZERO);
        assert_eq!(md1_wait_with_mu(0.1, 0.0, 0.95), Time::ZERO);
    }

    #[test]
    fn md1_model_names_round_trip() {
        for model in Md1Model::ALL {
            assert_eq!(Md1Model::parse(model.name()), Some(model));
        }
        assert_eq!(Md1Model::parse("fast"), None);
        assert_eq!(Md1Model::default(), Md1Model::Quantized);
    }

    #[test]
    fn md1_table_degenerate_inputs_are_zero_wait() {
        // Zero service time, non-positive clamp and non-positive load all match
        // md1_wait's corner behavior exactly.
        let zero_service = Md1Table::new(Time::ZERO, 0.95);
        assert_eq!(zero_service.wait(0.5), Time::ZERO);
        let zero_cap = Md1Table::new(Time::from_ns(1), 0.0);
        assert_eq!(zero_cap.wait(0.5), Time::ZERO);
        let t = Md1Table::new(Time::from_ns(1), 0.95);
        assert_eq!(t.wait(0.0), Time::ZERO);
        assert_eq!(t.wait(-1.0), Time::ZERO);
    }

    #[test]
    fn md1_table_clamps_at_saturation_like_the_exact_model() {
        let s = Time::from_ns(1);
        let t = Md1Table::new(s, 0.95);
        // Past the utilization clamp every load maps to the same (capped) wait.
        assert_eq!(t.wait(0.00095), t.wait(0.5));
        let diff = t.wait(0.5).as_ps().abs_diff(md1_wait(0.5, s, 0.95).as_ps());
        assert!(diff <= Md1Table::ERROR_BOUND_PS);
    }

    #[test]
    fn memo2_caches_two_hot_keys_and_evicts_round_robin() {
        let mut memo: Memo2<u64> = Memo2::new();
        let mut computes = 0;
        let get = |memo: &mut Memo2<u64>, k: u64, computes: &mut u32| {
            memo.get_or_insert_with(k, || {
                *computes += 1;
                k.wrapping_mul(10)
            })
        };
        // Alternating two keys computes each exactly once.
        for _ in 0..5 {
            assert_eq!(get(&mut memo, 16, &mut computes), 160);
            assert_eq!(get(&mut memo, 64, &mut computes), 640);
        }
        assert_eq!(computes, 2);
        // A third key evicts one entry; the sentinel-free design also serves
        // u64::MAX as an ordinary key.
        assert_eq!(
            get(&mut memo, u64::MAX, &mut computes),
            u64::MAX.wrapping_mul(10)
        );
        assert_eq!(computes, 3);
        assert_eq!(
            get(&mut memo, u64::MAX, &mut computes),
            u64::MAX.wrapping_mul(10)
        );
        assert_eq!(computes, 3);
    }

    #[test]
    fn record_and_rate_matches_record_then_rate() {
        let mut a = RateTracker::new(Time::from_ns(100));
        let mut b = RateTracker::new(Time::from_ns(100));
        for i in 0..300u64 {
            let now = Time::from_ps(i * 137);
            b.record(now);
            let rb = b.rate_per_ps(now);
            let ra = a.record_and_rate(now);
            assert_eq!(ra.to_bits(), rb.to_bits(), "step {i}");
        }
        assert_eq!(a.total_packets(), b.total_packets());
    }

    #[test]
    fn rate_tracker_estimates_rate() {
        let mut rt = RateTracker::new(Time::from_ns(100));
        // One packet every 1 ns for 200 packets: rate ≈ 0.001 packets/ps.
        for i in 0..200u64 {
            rt.record(Time::from_ns(i));
        }
        let rate = rt.rate_per_ps(Time::from_ns(200));
        assert!(rate > 0.0004 && rate < 0.0012, "rate {rate}");
        assert_eq!(rt.total_packets(), 200);
    }

    #[test]
    fn rate_tracker_decays_when_idle() {
        let mut rt = RateTracker::new(Time::from_ns(10));
        for i in 0..50u64 {
            rt.record(Time::from_ns(i));
        }
        let busy = rt.rate_per_ps(Time::from_ns(50));
        let idle = rt.rate_per_ps(Time::from_us(1));
        assert!(idle < busy / 10.0);
    }

    #[test]
    fn serializer_orders_requests() {
        let mut s = Serializer::new();
        let start1 = s.acquire(Time::from_ns(0), Time::from_ns(5));
        let start2 = s.acquire(Time::from_ns(1), Time::from_ns(5));
        let start3 = s.acquire(Time::from_ns(20), Time::from_ns(5));
        assert_eq!(start1, Time::from_ns(0));
        assert_eq!(start2, Time::from_ns(5));
        assert_eq!(start3, Time::from_ns(20));
        assert!(s.is_idle_at(Time::from_ns(25)));
        assert!(!s.is_idle_at(Time::from_ns(24)));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::rng::SimRng;

    // Deterministic stand-ins for proptest properties (no crates.io access).

    /// The serializer never starts a request before it arrives and never overlaps
    /// two requests.
    #[test]
    fn serializer_no_overlap() {
        for case in 0..64u64 {
            let mut rng = SimRng::seed_from(0x5E7A_0000 + case);
            let count = 1 + rng.gen_range(99) as usize;
            let mut reqs: Vec<(u64, u64)> = (0..count)
                .map(|_| (rng.gen_range(10_000), 1 + rng.gen_range(99)))
                .collect();
            let mut s = Serializer::new();
            reqs.sort();
            let mut prev_end = Time::ZERO;
            for &(arrive, busy) in &reqs {
                let start = s.acquire(Time::from_ps(arrive), Time::from_ps(busy));
                assert!(start >= Time::from_ps(arrive));
                assert!(start >= prev_end);
                prev_end = start + Time::from_ps(busy);
            }
        }
    }

    /// M/D/1 waiting time is monotone in the arrival rate.
    #[test]
    fn md1_monotone() {
        for case in 0..64u64 {
            let mut rng = SimRng::seed_from(0x3D1_0000 + case);
            let count = 2 + rng.gen_range(18) as usize;
            let mut lams: Vec<f64> = (0..count).map(|_| rng.gen_f64() * 0.002).collect();
            let s = Time::from_ns(1);
            lams.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let waits: Vec<Time> = lams.iter().map(|&l| md1_wait(l, s, 0.95)).collect();
            for w in waits.windows(2) {
                assert!(w[0] <= w[1]);
            }
        }
    }

    /// The quantized table agrees with the exact closed form to within the
    /// documented absolute bound across a (λ, packet size, utilization cap)
    /// grid covering the paper's packet sizes from idle to past saturation.
    #[test]
    fn md1_table_tracks_exact_within_documented_bound() {
        // Deterministic grid sweep first: every service time the paper's
        // crossbar produces (16 B token → 1 flit, 64 B line → 4 flits) plus a
        // round 1 ns, against dense λ coverage of the whole stable region.
        for service in [Time::from_ps(400), Time::from_ps(1600), Time::from_ns(1)] {
            for cap in [0.5, 0.9, 0.95] {
                let table = Md1Table::new(service, cap);
                let saturation = cap / service.as_ps() as f64;
                for step in 0..=2000 {
                    // Sweep to 1.5× the clamp so the capped region is covered.
                    let lambda = saturation * 1.5 * (step as f64 / 2000.0);
                    let exact = md1_wait(lambda, service, cap);
                    let quant = table.wait(lambda);
                    let diff = exact.as_ps().abs_diff(quant.as_ps());
                    assert!(
                        diff <= Md1Table::ERROR_BOUND_PS,
                        "service={service} cap={cap} lambda={lambda}: \
                         exact {exact} vs quantized {quant}"
                    );
                }
            }
        }
        // Randomized cases on top (deterministic stand-in for a proptest).
        for case in 0..64u64 {
            let mut rng = SimRng::seed_from(0x3D1_7AB0 + case);
            let service = Time::from_ps(1 + rng.gen_range(4000));
            let cap = 0.05 + rng.gen_f64() * 0.90;
            let table = Md1Table::new(service, cap);
            for _ in 0..50 {
                let lambda = rng.gen_f64() * 2.0 / service.as_ps() as f64;
                let exact = md1_wait(lambda, service, cap);
                let quant = table.wait(lambda);
                assert!(
                    exact.as_ps().abs_diff(quant.as_ps()) <= Md1Table::ERROR_BOUND_PS,
                    "service={service} cap={cap} lambda={lambda}"
                );
            }
        }
    }

    /// Beyond the documented absolute regime (utilization clamps past 0.95 push
    /// the idle fraction below 0.05, where the curve steepens as 1/u³) the
    /// table still tracks the exact model to a tight relative error.
    #[test]
    fn md1_table_relative_error_stays_tight_at_extreme_caps() {
        for service in [Time::from_ps(400), Time::from_ps(1600), Time::from_ns(1)] {
            let cap = 0.999;
            let table = Md1Table::new(service, cap);
            let saturation = cap / service.as_ps() as f64;
            for step in 1..=2000 {
                let lambda = saturation * 1.5 * (step as f64 / 2000.0);
                let exact = md1_wait(lambda, service, cap).as_ps() as f64;
                let quant = table.wait(lambda).as_ps() as f64;
                // Both sides round to integer picoseconds, so tiny waits can
                // differ by the 1 ps rounding step; past that, relative.
                let allowed = (exact * 1e-4).max(Md1Table::ERROR_BOUND_PS as f64);
                assert!(
                    (exact - quant).abs() <= allowed,
                    "service={service} lambda={lambda}: exact {exact} vs quantized {quant}"
                );
            }
        }
    }

    /// The quantized waiting time is monotone in the arrival rate, exactly like
    /// the closed form: chords of a monotone function are monotone, and the
    /// interpolant passes through exact values at every bucket edge.
    #[test]
    fn md1_table_monotone_in_load() {
        for case in 0..64u64 {
            let mut rng = SimRng::seed_from(0x3D1_0A57 + case);
            let service = Time::from_ps(1 + rng.gen_range(4000));
            let table = Md1Table::new(service, 0.95);
            let count = 2 + rng.gen_range(48) as usize;
            let mut lams: Vec<f64> = (0..count)
                .map(|_| rng.gen_f64() * 2.0 / service.as_ps() as f64)
                .collect();
            lams.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let waits: Vec<Time> = lams.iter().map(|&l| table.wait(l)).collect();
            for w in waits.windows(2) {
                assert!(w[0] <= w[1], "service={service}: {:?}", waits);
            }
        }
    }
}
