//! System configuration.
//!
//! [`NdpConfig`] captures the simulated machine of Table 5 of the paper and the knobs
//! its sensitivity studies sweep: number of NDP units and cores, memory technology
//! (HBM / HMC / DDR4), inter-unit link latency, synchronization mechanism and its
//! parameters (ST size, overflow mode, fairness threshold), and the coherence mode
//! used by the motivational MESI experiments.

pub use syncron_mem::dram::MemTech;
pub use syncron_net::fault::FaultConfig;

use core::fmt;

use syncron_core::mechanism::{MechanismKind, MechanismParams};
use syncron_core::protocol::OverflowMode;
use syncron_mem::cache::CacheConfig;
use syncron_mem::mesi::MesiParams;
use syncron_net::crossbar::CrossbarConfig;
use syncron_net::link::LinkConfig;
use syncron_sim::queueing::Md1Model;
use syncron_sim::time::{Freq, Time};
use syncron_sim::{CoreId, GlobalCoreId, SchedulerKind, UnitId};

/// Largest number of NDP units a configuration may request, bounded by the 8-bit
/// unit IDs ([`UnitId::MAX_COUNT`]).
pub const MAX_UNITS: usize = UnitId::MAX_COUNT;

/// Largest number of NDP cores per unit a configuration may request, bounded by the
/// 8-bit local core IDs ([`CoreId::MAX_COUNT`]).
pub const MAX_CORES_PER_UNIT: usize = CoreId::MAX_COUNT;

/// A rejected machine configuration, naming the offending field.
///
/// Produced by [`NdpConfigBuilder::build`] and [`NdpConfig::validate`]. Before this
/// existed, impossible geometries were silently clamped or — worse — accepted:
/// `cores_per_unit(128)` built fine while the 64-bit waiting lists aliased waiters
/// modulo 64 in release builds.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ConfigError {
    /// A count field that must be at least 1 was 0.
    Zero {
        /// Name of the offending field.
        field: &'static str,
    },
    /// A geometry field exceeded what the hardware IDs can address.
    TooLarge {
        /// Name of the offending field.
        field: &'static str,
        /// The rejected value.
        value: usize,
        /// The largest supported value.
        max: usize,
    },
    /// A field whose value is outside its valid domain (e.g. a probability
    /// not in `[0, 1]`).
    OutOfRange {
        /// Name of the offending field.
        field: &'static str,
        /// What the valid domain is.
        detail: &'static str,
    },
}

impl ConfigError {
    /// The name of the offending configuration field.
    pub fn field(&self) -> &'static str {
        match self {
            ConfigError::Zero { field }
            | ConfigError::TooLarge { field, .. }
            | ConfigError::OutOfRange { field, .. } => field,
        }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::Zero { field } => {
                write!(f, "invalid config: {field} must be at least 1")
            }
            ConfigError::TooLarge { field, value, max } => write!(
                f,
                "invalid config: {field} = {value} exceeds the supported maximum of {max}"
            ),
            ConfigError::OutOfRange { field, detail } => {
                write!(f, "invalid config: {field} {detail}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// How shared read-write data is kept coherent.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum CoherenceMode {
    /// The NDP baseline (Section 2.1): software-assisted coherence; shared read-write
    /// data is uncacheable.
    #[default]
    SoftwareAssisted,
    /// A directory-based MESI protocol over the cores' private caches. Used only by the
    /// motivational experiments (Figure 2 and Table 1); real NDP systems do not
    /// support it.
    MesiDirectory,
}

/// Configuration of the simulated NDP system.
#[derive(Clone, Copy, Debug)]
pub struct NdpConfig {
    /// Number of NDP units (Table 5: 4).
    pub units: usize,
    /// NDP cores per unit (Table 5: 16).
    pub cores_per_unit: usize,
    /// NDP core clock (Table 5: 2.5 GHz, in-order, CPI 1 for compute).
    pub core_freq: Freq,
    /// Memory technology attached to each unit.
    pub mem_tech: MemTech,
    /// Private L1 configuration.
    pub l1: CacheConfig,
    /// Intra-unit crossbar configuration.
    pub crossbar: CrossbarConfig,
    /// Inter-unit link configuration.
    pub link: LinkConfig,
    /// Synchronization mechanism and its parameters.
    pub mechanism: MechanismParams,
    /// Coherence mode for shared read-write data.
    pub coherence: CoherenceMode,
    /// Latency parameters of the MESI directory protocol (only used when `coherence`
    /// is [`CoherenceMode::MesiDirectory`]).
    pub mesi: MesiParams,
    /// Whether one core per unit is reserved as a synchronization server / disabled for
    /// SynCron, so that every scheme runs the same number of client cores (Section 5).
    pub reserve_server_core: bool,
    /// Deterministic seed used by workloads.
    pub seed: u64,
    /// Safety limit on delivered events, after which the run is aborted and the report
    /// is marked incomplete.
    pub max_events: u64,
    /// Event-queue backend the run loop schedules through. The calendar queue (the
    /// default) and the heap pop in exactly the same order, so reports are
    /// bit-identical under either; the heap is kept as the differential-testing
    /// reference and the throughput-benchmark baseline.
    pub scheduler: SchedulerKind,
    /// Fairness budget of the run loop's inline dispatch: how many consecutive
    /// steps of one core may execute without a queue round-trip when that core's
    /// next step strictly precedes every queued event. `0` disables inlining
    /// (every step round-trips through the queue, as the pre-calendar simulator
    /// did). Inlining never changes simulated behaviour — the strict-precedence
    /// condition makes the inlined event the unique next pop — so this knob only
    /// trades queue traffic against loop latency.
    pub inline_step_budget: u32,
    /// Whether broadcast completions coalesce into one `CoreResumeBurst` event
    /// per (unit, time) instead of one `CoreResume` per waiter. A pure
    /// simulator optimization: the burst resumes its members in exactly the
    /// order the individual events would have popped, so reports are
    /// bit-identical either way; `false` restores the O(waiters) event path
    /// for differential testing and benchmarking.
    pub burst_resume: bool,
    /// Number of worker threads the sharded (conservative-PDES) execution mode
    /// may use. `1` (the default) runs the classic sequential loop. Values
    /// above 1 partition the units into up to `sim_threads` shards that advance
    /// in lookahead-bounded windows; reports are bit-identical to `1` whenever
    /// the configuration is shardable (the machine documents its fallbacks and
    /// falls back to sequential execution otherwise). The effective shard count
    /// is `min(sim_threads, units)`.
    pub sim_threads: usize,
    /// Deterministic fault injection on inter-unit synchronization messages
    /// (drops, duplicates, jitter, SE stall windows). Off by default; when
    /// enabled with all probabilities zero the run is bit-identical to a
    /// faults-off run (knob aliveness).
    pub fault: FaultConfig,
    /// Whether the liveness watchdog is armed. When on, a run that delivers
    /// events without any core making forward progress for longer than
    /// [`NdpConfig::watchdog_limit`] aborts with a structured stall report
    /// instead of burning the remaining event budget.
    pub watchdog: bool,
    /// Watchdog threshold in delivered events without progress. `0` (the
    /// default) derives the threshold automatically:
    /// `max(10_000, max_events / 100)`.
    pub watchdog_events: u64,
}

impl NdpConfig {
    /// The paper's default configuration: 4 NDP units × 16 cores, HBM (2.5D NDP),
    /// 40 ns / 12.8 GB/s inter-unit links, SynCron with a 64-entry ST.
    pub fn paper_default() -> Self {
        NdpConfig {
            units: 4,
            cores_per_unit: 16,
            core_freq: Freq::ghz(2.5),
            mem_tech: MemTech::Hbm,
            l1: CacheConfig::ndp_l1(),
            crossbar: CrossbarConfig::default(),
            link: LinkConfig::default(),
            mechanism: MechanismParams::new(MechanismKind::SynCron),
            coherence: CoherenceMode::SoftwareAssisted,
            mesi: MesiParams::ndp_default(),
            reserve_server_core: true,
            seed: 0x5EED_5EED,
            max_events: 400_000_000,
            scheduler: SchedulerKind::Calendar,
            inline_step_budget: 64,
            burst_resume: true,
            sim_threads: 1,
            fault: FaultConfig::default(),
            watchdog: true,
            watchdog_events: 0,
        }
    }

    /// Starts building a configuration from the paper defaults.
    pub fn builder() -> NdpConfigBuilder {
        NdpConfigBuilder {
            config: NdpConfig::paper_default(),
        }
    }

    /// Validates the machine geometry and mechanism parameters, naming the offending
    /// field on rejection.
    ///
    /// [`NdpConfigBuilder::build`] runs this automatically; call it directly when a
    /// configuration is assembled field-by-field rather than through the builder.
    pub fn validate(&self) -> Result<(), ConfigError> {
        let at_least_one = [
            ("units", self.units),
            ("cores_per_unit", self.cores_per_unit),
            ("st_entries", self.mechanism.st_entries),
            ("indexing_counters", self.mechanism.indexing_counters),
        ];
        for (field, value) in at_least_one {
            if value == 0 {
                return Err(ConfigError::Zero { field });
            }
        }
        if self.max_events == 0 {
            return Err(ConfigError::Zero {
                field: "max_events",
            });
        }
        if self.sim_threads == 0 {
            return Err(ConfigError::Zero {
                field: "sim_threads",
            });
        }
        let bounded = [
            ("units", self.units, MAX_UNITS),
            ("cores_per_unit", self.cores_per_unit, MAX_CORES_PER_UNIT),
        ];
        for (field, value, max) in bounded {
            if value > max {
                return Err(ConfigError::TooLarge { field, value, max });
            }
        }
        let probabilities = [
            ("fault_drop", self.fault.drop_prob),
            ("fault_dup", self.fault.dup_prob),
        ];
        for (field, value) in probabilities {
            if !value.is_finite() || !(0.0..=1.0).contains(&value) {
                return Err(ConfigError::OutOfRange {
                    field,
                    detail: "must be a probability in [0, 1]",
                });
            }
        }
        if self.fault.enabled && self.fault.retry_timeout_ns == 0 {
            return Err(ConfigError::Zero {
                field: "fault_retry_ns",
            });
        }
        if self.fault.stall_period_ns > 0 && self.fault.stall_ns >= self.fault.stall_period_ns {
            return Err(ConfigError::OutOfRange {
                field: "fault_stall_ns",
                detail: "must be shorter than fault_stall_period_ns",
            });
        }
        Ok(())
    }

    /// Effective watchdog threshold: delivered events without forward progress
    /// before the run aborts with a stall report. `0` means the watchdog is
    /// disarmed ([`NdpConfig::watchdog`] is off); an explicit
    /// [`NdpConfig::watchdog_events`] wins; otherwise the threshold is derived
    /// as `max(10_000, max_events / 100)` so a stalled run burns at most ~1% of
    /// its event budget.
    pub fn watchdog_limit(&self) -> u64 {
        if !self.watchdog {
            0
        } else if self.watchdog_events != 0 {
            self.watchdog_events
        } else {
            10_000.max(self.max_events / 100)
        }
    }

    /// Total number of NDP cores, including any reserved server cores.
    pub fn total_cores(&self) -> usize {
        self.units * self.cores_per_unit
    }

    /// Whether each unit actually dedicates one core to synchronization serving.
    ///
    /// `reserve_server_core` only takes effect when a unit has more than one core:
    /// with `cores_per_unit == 1` the lone core must keep executing the workload, so
    /// it doubles as the server (message-passing schemes time-share it) and no core is
    /// set aside.
    pub fn has_dedicated_server(&self) -> bool {
        self.reserve_server_core && self.cores_per_unit > 1
    }

    /// Number of client cores per unit (cores that execute the workload).
    ///
    /// With a dedicated server core this is `cores_per_unit - 1`; otherwise every core
    /// is a client — including the single-core-per-unit edge case, where the lone core
    /// is a client *and* implicitly serves synchronization requests (see
    /// [`NdpConfig::has_dedicated_server`]).
    pub fn clients_per_unit(&self) -> usize {
        if self.has_dedicated_server() {
            self.cores_per_unit - 1
        } else {
            self.cores_per_unit
        }
    }

    /// Total number of client cores.
    pub fn total_clients(&self) -> usize {
        self.units * self.clients_per_unit()
    }

    /// The identities of the client cores, unit-major (the order workloads receive
    /// them in [`crate::workload::Workload::build`]).
    pub fn client_cores(&self) -> Vec<GlobalCoreId> {
        let per_unit = self.clients_per_unit();
        (0..self.units)
            .flat_map(move |u| {
                (0..per_unit).map(move |c| GlobalCoreId::new(UnitId(u as u8), CoreId(c as u8)))
            })
            .collect()
    }

    /// Period of one NDP core cycle.
    pub fn core_cycle(&self) -> Time {
        self.core_freq.period()
    }
}

impl Default for NdpConfig {
    fn default() -> Self {
        NdpConfig::paper_default()
    }
}

/// Builder for [`NdpConfig`].
#[derive(Clone, Copy, Debug)]
pub struct NdpConfigBuilder {
    config: NdpConfig,
}

impl NdpConfigBuilder {
    /// Sets the number of NDP units. Out-of-range values are reported by
    /// [`NdpConfigBuilder::build`] rather than silently clamped.
    pub fn units(mut self, units: usize) -> Self {
        self.config.units = units;
        self
    }

    /// Sets the number of NDP cores per unit. Out-of-range values are reported by
    /// [`NdpConfigBuilder::build`] rather than silently clamped.
    pub fn cores_per_unit(mut self, cores: usize) -> Self {
        self.config.cores_per_unit = cores;
        self
    }

    /// Sets the memory technology (Figure 18 sweep).
    pub fn mem_tech(mut self, tech: MemTech) -> Self {
        self.config.mem_tech = tech;
        self
    }

    /// Sets the synchronization mechanism with its default parameters.
    pub fn mechanism(mut self, kind: MechanismKind) -> Self {
        self.config.mechanism = MechanismParams::new(kind);
        self
    }

    /// Sets the synchronization mechanism with explicit parameters.
    pub fn mechanism_params(mut self, params: MechanismParams) -> Self {
        self.config.mechanism = params;
        self
    }

    /// Sets the ST size (Figure 22/23 sweeps).
    pub fn st_entries(mut self, entries: usize) -> Self {
        self.config.mechanism.st_entries = entries;
        self
    }

    /// Sets the overflow mode (Figure 23 comparison).
    pub fn overflow_mode(mut self, mode: OverflowMode) -> Self {
        self.config.mechanism.overflow_mode = mode;
        self
    }

    /// Sets the contention depth at which the Adaptive mechanism escalates a
    /// variable from flat to hierarchical serving (ignored by the other kinds).
    pub fn adaptive_threshold(mut self, threshold: u32) -> Self {
        self.config.mechanism.adaptive_threshold = threshold;
        self
    }

    /// Enables or disables condvar signal coalescing / backoff (on by default; see
    /// `syncron_core::protocol` for the extension's semantics).
    pub fn signal_coalescing(mut self, enabled: bool) -> Self {
        self.config.mechanism.signal_coalescing = enabled;
        self
    }

    /// Sets the base NACK backoff delay in nanoseconds for repeat condvar signalers
    /// (`0` keeps NACK replies but adds no delay).
    pub fn signal_backoff_ns(mut self, ns: u64) -> Self {
        self.config.mechanism.signal_backoff_ns = ns;
        self
    }

    /// Enables or disables the protocol engine's equal-timestamp message
    /// batching (on by default). A pure simulator optimization: reports are
    /// bit-identical either way; `false` restores one queued event per message
    /// for differential testing and benchmarking.
    pub fn message_batching(mut self, enabled: bool) -> Self {
        self.config.mechanism.message_batching = enabled;
        self
    }

    /// Enables or disables column-wise processing of delivered message batches
    /// (on by default). A pure simulator optimization layered on
    /// [`NdpConfigBuilder::message_batching`]: reports are bit-identical
    /// either way.
    pub fn column_batching(mut self, enabled: bool) -> Self {
        self.config.mechanism.column_batching = enabled;
        self
    }

    /// Enables or disables burst-resume events for broadcast completions (on
    /// by default; see [`NdpConfig::burst_resume`]). A pure simulator
    /// optimization: reports are bit-identical either way.
    pub fn burst_resume(mut self, enabled: bool) -> Self {
        self.config.burst_resume = enabled;
        self
    }

    /// Selects how the crossbars evaluate the M/D/1 queueing model (see
    /// [`Md1Model`]). Unlike the other performance knobs this one changes
    /// simulated latencies — by at most the table's documented error bound —
    /// so `Exact` vs `Quantized` runs are different baselines.
    pub fn md1_model(mut self, model: Md1Model) -> Self {
        self.config.crossbar.md1_model = model;
        self
    }

    /// Sets the inter-unit per-cache-line transfer latency (Figures 16, 17, 21 sweeps).
    pub fn link_latency(mut self, latency: Time) -> Self {
        self.config.link.transfer_latency = latency;
        self
    }

    /// Sets the coherence mode (MESI only for the motivational experiments).
    pub fn coherence(mut self, mode: CoherenceMode) -> Self {
        self.config.coherence = mode;
        self
    }

    /// Sets the MESI latency parameters (e.g. [`MesiParams::cpu_two_socket`] for the
    /// Table 1 CPU experiment).
    pub fn mesi_params(mut self, params: MesiParams) -> Self {
        self.config.mesi = params;
        self
    }

    /// Controls whether one core per unit is reserved as a synchronization server.
    pub fn reserve_server_core(mut self, reserve: bool) -> Self {
        self.config.reserve_server_core = reserve;
        self
    }

    /// Sets the workload seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Sets the event safety limit.
    pub fn max_events(mut self, max_events: u64) -> Self {
        self.config.max_events = max_events;
        self
    }

    /// Selects the event-queue backend (see [`NdpConfig::scheduler`]).
    pub fn scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.config.scheduler = scheduler;
        self
    }

    /// Sets the inline-dispatch fairness budget (see
    /// [`NdpConfig::inline_step_budget`]; `0` disables inlining).
    pub fn inline_step_budget(mut self, budget: u32) -> Self {
        self.config.inline_step_budget = budget;
        self
    }

    /// Sets the sharded execution mode's worker-thread budget (see
    /// [`NdpConfig::sim_threads`]; `1` = sequential).
    pub fn sim_threads(mut self, threads: usize) -> Self {
        self.config.sim_threads = threads;
        self
    }

    /// Sets the deterministic fault-injection plan (see [`NdpConfig::fault`];
    /// disabled by default).
    pub fn fault(mut self, fault: FaultConfig) -> Self {
        self.config.fault = fault;
        self
    }

    /// Arms or disarms the liveness watchdog (see [`NdpConfig::watchdog`]; on
    /// by default).
    pub fn watchdog(mut self, enabled: bool) -> Self {
        self.config.watchdog = enabled;
        self
    }

    /// Sets an explicit watchdog threshold in delivered events without
    /// progress (see [`NdpConfig::watchdog_events`]; `0` = automatic).
    pub fn watchdog_events(mut self, events: u64) -> Self {
        self.config.watchdog_events = events;
        self
    }

    /// Finalizes the configuration, validating the machine geometry.
    ///
    /// Returns a [`ConfigError`] naming the offending field for degenerate layouts
    /// (zero units/cores/ST entries/event budget) and for geometries beyond what the
    /// hardware IDs can address ([`MAX_UNITS`] × [`MAX_CORES_PER_UNIT`]).
    pub fn build(self) -> Result<NdpConfig, ConfigError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_table5() {
        let cfg = NdpConfig::paper_default();
        assert_eq!(cfg.units, 4);
        assert_eq!(cfg.cores_per_unit, 16);
        assert_eq!(cfg.total_cores(), 64);
        assert_eq!(cfg.core_freq.period(), Time::from_ps(400));
        assert_eq!(cfg.mem_tech, MemTech::Hbm);
        assert_eq!(cfg.link.transfer_latency, Time::from_ns(40));
        assert_eq!(cfg.mechanism.kind, MechanismKind::SynCron);
        assert_eq!(cfg.mechanism.st_entries, 64);
        // Extension default: condvar signal coalescing is on.
        assert!(cfg.mechanism.signal_coalescing);
        // Scheduling defaults: calendar queue with inline dispatch enabled.
        assert_eq!(cfg.scheduler, SchedulerKind::Calendar);
        assert_eq!(cfg.inline_step_budget, 64);
    }

    #[test]
    fn scheduler_knobs_build() {
        let cfg = NdpConfig::builder()
            .scheduler(SchedulerKind::Heap)
            .inline_step_budget(0)
            .build()
            .unwrap();
        assert_eq!(cfg.scheduler, SchedulerKind::Heap);
        assert_eq!(cfg.inline_step_budget, 0);
    }

    #[test]
    fn sim_threads_knob_builds_and_rejects_zero() {
        assert_eq!(NdpConfig::paper_default().sim_threads, 1);
        let cfg = NdpConfig::builder().sim_threads(4).build().unwrap();
        assert_eq!(cfg.sim_threads, 4);
        let err = NdpConfig::builder().sim_threads(0).build().unwrap_err();
        assert_eq!(
            err,
            ConfigError::Zero {
                field: "sim_threads"
            }
        );
    }

    #[test]
    fn message_batching_knob_builds_and_defaults_on() {
        assert!(NdpConfig::paper_default().mechanism.message_batching);
        let cfg = NdpConfig::builder()
            .message_batching(false)
            .build()
            .unwrap();
        assert!(!cfg.mechanism.message_batching);
    }

    #[test]
    fn fastpath_knobs_build_and_default_on() {
        // The three PR-9 fast-path knobs: column batching and burst resume are
        // bit-invisible and default on; the quantized M/D/1 model is the
        // default baseline.
        let cfg = NdpConfig::paper_default();
        assert!(cfg.mechanism.column_batching);
        assert!(cfg.burst_resume);
        assert_eq!(cfg.crossbar.md1_model, Md1Model::Quantized);
        let cfg = NdpConfig::builder()
            .column_batching(false)
            .burst_resume(false)
            .md1_model(Md1Model::Exact)
            .build()
            .unwrap();
        assert!(!cfg.mechanism.column_batching);
        assert!(!cfg.burst_resume);
        assert_eq!(cfg.crossbar.md1_model, Md1Model::Exact);
    }

    #[test]
    fn fault_and_watchdog_knobs_build_and_validate() {
        // Defaults: faults off, watchdog armed with an automatic threshold.
        let cfg = NdpConfig::paper_default();
        assert!(!cfg.fault.enabled);
        assert!(cfg.watchdog);
        assert_eq!(cfg.watchdog_events, 0);
        assert_eq!(cfg.watchdog_limit(), cfg.max_events / 100);

        let fault = FaultConfig {
            enabled: true,
            drop_prob: 0.25,
            ..FaultConfig::default()
        };
        let cfg = NdpConfig::builder()
            .fault(fault)
            .watchdog_events(5_000)
            .build()
            .unwrap();
        assert_eq!(cfg.fault.drop_prob, 0.25);
        assert_eq!(cfg.watchdog_limit(), 5_000);

        // Disarmed watchdog reports a zero limit; the automatic threshold has
        // a 10k floor for tiny event budgets.
        let cfg = NdpConfig::builder().watchdog(false).build().unwrap();
        assert_eq!(cfg.watchdog_limit(), 0);
        let cfg = NdpConfig::builder().max_events(50_000).build().unwrap();
        assert_eq!(cfg.watchdog_limit(), 10_000);

        // Out-of-domain fault knobs are typed errors.
        let err = NdpConfig::builder()
            .fault(FaultConfig {
                drop_prob: 1.5,
                ..FaultConfig::default()
            })
            .build()
            .unwrap_err();
        assert_eq!(err.field(), "fault_drop");
        assert!(err.to_string().contains("probability"));
        let err = NdpConfig::builder()
            .fault(FaultConfig {
                dup_prob: f64::NAN,
                ..FaultConfig::default()
            })
            .build()
            .unwrap_err();
        assert_eq!(err.field(), "fault_dup");
        let err = NdpConfig::builder()
            .fault(FaultConfig {
                enabled: true,
                retry_timeout_ns: 0,
                ..FaultConfig::default()
            })
            .build()
            .unwrap_err();
        assert_eq!(err.field(), "fault_retry_ns");
        let err = NdpConfig::builder()
            .fault(FaultConfig {
                stall_ns: 100,
                stall_period_ns: 100,
                ..FaultConfig::default()
            })
            .build()
            .unwrap_err();
        assert_eq!(err.field(), "fault_stall_ns");
    }

    #[test]
    fn client_cores_exclude_the_server_core() {
        let cfg = NdpConfig::paper_default();
        // Section 5: 15 client cores per NDP unit for every scheme.
        assert_eq!(cfg.clients_per_unit(), 15);
        assert_eq!(cfg.total_clients(), 60);
        let clients = cfg.client_cores();
        assert_eq!(clients.len(), 60);
        assert!(clients.iter().all(|c| c.core.index() < 15));
        // Without the reservation all cores are clients.
        let cfg = NdpConfig::builder()
            .reserve_server_core(false)
            .build()
            .unwrap();
        assert_eq!(cfg.total_clients(), 64);
    }

    #[test]
    fn single_core_units_keep_their_only_core_as_client() {
        // Edge case: with one core per unit the reservation cannot take effect — the
        // lone core stays a client and implicitly doubles as the server.
        let cfg = NdpConfig::builder()
            .units(2)
            .cores_per_unit(1)
            .reserve_server_core(true)
            .build()
            .unwrap();
        assert!(!cfg.has_dedicated_server());
        assert_eq!(cfg.clients_per_unit(), 1);
        assert_eq!(cfg.total_clients(), 2);
        assert_eq!(cfg.client_cores().len(), 2);

        // With two or more cores the reservation is real.
        let cfg = NdpConfig::builder()
            .units(2)
            .cores_per_unit(2)
            .reserve_server_core(true)
            .build()
            .unwrap();
        assert!(cfg.has_dedicated_server());
        assert_eq!(cfg.clients_per_unit(), 1);
        assert_eq!(cfg.total_clients(), 2);
    }

    #[test]
    fn builder_overrides() {
        let cfg = NdpConfig::builder()
            .units(2)
            .cores_per_unit(8)
            .mem_tech(MemTech::Ddr4)
            .mechanism(MechanismKind::Central)
            .st_entries(16)
            .link_latency(Time::from_ns(500))
            .coherence(CoherenceMode::MesiDirectory)
            .signal_coalescing(false)
            .signal_backoff_ns(75)
            .seed(7)
            .max_events(1000)
            .build()
            .unwrap();
        assert!(!cfg.mechanism.signal_coalescing);
        assert_eq!(cfg.mechanism.signal_backoff_ns, 75);
        assert_eq!(cfg.units, 2);
        assert_eq!(cfg.cores_per_unit, 8);
        assert_eq!(cfg.mem_tech, MemTech::Ddr4);
        assert_eq!(cfg.mechanism.kind, MechanismKind::Central);
        assert_eq!(cfg.mechanism.st_entries, 16);
        assert_eq!(cfg.link.transfer_latency, Time::from_ns(500));
        assert_eq!(cfg.coherence, CoherenceMode::MesiDirectory);
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.max_events, 1000);
    }

    #[test]
    fn degenerate_geometries_are_typed_errors() {
        // Zero-sized fields name themselves.
        let err = NdpConfig::builder().units(0).build().unwrap_err();
        assert_eq!(err, ConfigError::Zero { field: "units" });
        let err = NdpConfig::builder().cores_per_unit(0).build().unwrap_err();
        assert_eq!(err.field(), "cores_per_unit");
        let err = NdpConfig::builder().st_entries(0).build().unwrap_err();
        assert_eq!(err.field(), "st_entries");
        let err = NdpConfig::builder().max_events(0).build().unwrap_err();
        assert_eq!(err.field(), "max_events");

        // Geometries beyond the 8-bit hardware IDs are rejected, not aliased.
        let err = NdpConfig::builder()
            .cores_per_unit(MAX_CORES_PER_UNIT + 1)
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            ConfigError::TooLarge {
                field: "cores_per_unit",
                value: MAX_CORES_PER_UNIT + 1,
                max: MAX_CORES_PER_UNIT,
            }
        );
        assert!(err.to_string().contains("cores_per_unit"));
        let err = NdpConfig::builder()
            .units(MAX_UNITS + 1)
            .build()
            .unwrap_err();
        assert_eq!(err.field(), "units");
    }

    #[test]
    fn large_geometries_within_the_id_width_build() {
        // The fixed-width waitlists used to cap the machine at 64 cores/units; the
        // full ID-addressable range now builds.
        for (units, cores) in [
            (1, 128),
            (16, 256),
            (64, 64),
            (MAX_UNITS, MAX_CORES_PER_UNIT),
        ] {
            let cfg = NdpConfig::builder()
                .units(units)
                .cores_per_unit(cores)
                .build()
                .unwrap_or_else(|e| panic!("{units}x{cores}: {e}"));
            assert_eq!(cfg.total_cores(), units * cores);
        }
    }

    #[test]
    fn client_core_order_is_unit_major() {
        let cfg = NdpConfig::builder()
            .units(2)
            .cores_per_unit(3)
            .build()
            .unwrap();
        let clients = cfg.client_cores();
        assert_eq!(clients[0], GlobalCoreId::new(UnitId(0), CoreId(0)));
        assert_eq!(clients[2], GlobalCoreId::new(UnitId(1), CoreId(0)));
    }
}
