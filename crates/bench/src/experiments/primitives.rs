//! Figure 10: speedup of the four synchronization primitives over Central, as a
//! function of the number of instructions between synchronization points.

use crate::{f2, run_many, scaled, Table};
use syncron_core::MechanismKind;
use syncron_system::config::NdpConfig;
use syncron_system::workload::Workload;
use syncron_workloads::micro::{microbench, SyncPrimitive};

fn paper_config(kind: MechanismKind) -> NdpConfig {
    NdpConfig::builder().mechanism(kind).build()
}

/// The instruction intervals swept for each primitive (the x-axes of Figure 10).
pub fn intervals_for(primitive: SyncPrimitive) -> &'static [u64] {
    match primitive {
        SyncPrimitive::Lock => &[50, 100, 200, 400, 1_000, 2_000, 5_000],
        SyncPrimitive::Barrier => &[20, 50, 100, 200, 500, 1_000, 2_000],
        SyncPrimitive::Semaphore => &[100, 200, 400, 1_000, 2_000, 5_000, 10_000],
        SyncPrimitive::CondVar => &[200, 400, 1_000, 2_000, 5_000, 10_000, 50_000],
    }
}

/// Runs the Figure 10 sweep for one primitive and returns one row per interval with the
/// speedup of every scheme over Central.
pub fn fig10_primitive(primitive: SyncPrimitive) -> Table {
    let iterations = scaled(24, 4);
    let schemes = MechanismKind::COMPARED;
    let mut jobs: Vec<(NdpConfig, Box<dyn Workload + Send + Sync>)> = Vec::new();
    for &interval in intervals_for(primitive) {
        for kind in schemes {
            jobs.push((paper_config(kind), microbench(primitive, interval, iterations)));
        }
    }
    let reports = run_many(jobs);

    let mut table = Table::new(
        format!(
            "Figure 10 ({}): speedup over Central vs instructions between sync points",
            primitive.name()
        ),
        &["interval", "Central", "Hier", "SynCron", "Ideal"],
    );
    for (i, &interval) in intervals_for(primitive).iter().enumerate() {
        let base = i * schemes.len();
        let central = &reports[base];
        let mut cells = vec![interval.to_string()];
        for j in 0..schemes.len() {
            cells.push(f2(reports[base + j].speedup_over(central)));
        }
        table.push_row(cells);
    }
    table
}

/// Runs Figure 10 for all four primitives.
pub fn fig10_all() -> Vec<Table> {
    SyncPrimitive::ALL.iter().map(|&p| fig10_primitive(p)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_sweep_has_expected_shape() {
        std::env::set_var("SYNCRON_SCALE", "0.25");
        let t = fig10_primitive(SyncPrimitive::Lock);
        assert_eq!(t.rows.len(), intervals_for(SyncPrimitive::Lock).len());
        // At the shortest interval SynCron must beat Central, and Ideal must be the
        // fastest scheme.
        let first = &t.rows[0];
        let syncron: f64 = first[3].parse().unwrap();
        let ideal: f64 = first[4].parse().unwrap();
        assert!(syncron > 1.0, "SynCron speedup {syncron}");
        assert!(ideal >= syncron);
    }
}
