//! Motivational experiments: Table 1 and Figure 2.

use crate::{
    expect_slowdown, f2, run_scenarios, scaled, ConfigSpec, Scenario, Sweep, Table, WorkloadSpec,
};
use syncron_core::MechanismKind;
use syncron_harness::MesiProfile;
use syncron_system::config::CoherenceMode;
use syncron_workloads::spinlock::{Placement, SpinKind, StackLock};

/// The simulated two-socket CPU of Table 1: MESI directory coherence with CPU
/// latencies, no synchronization mechanism involved.
fn cpu_config(units: usize, cores: usize) -> ConfigSpec {
    let mut config = ConfigSpec::default().with_geometry(units, cores);
    config.coherence = CoherenceMode::MesiDirectory;
    config.mesi = MesiProfile::CpuTwoSocket;
    config.mechanism = MechanismKind::Ideal;
    config.reserve_server_core = false;
    config
}

/// Table 1: throughput (operations per second, reported in millions) of two
/// coherence-based lock algorithms on a simulated two-socket CPU.
pub fn table01() -> Table {
    let iters = scaled(200, 20);
    let scenarios: Vec<(&str, usize, Placement)> = vec![
        ("1 thread single-socket", 1, Placement::Packed),
        ("14 threads single-socket", 14, Placement::Packed),
        ("2 threads same-socket", 2, Placement::Packed),
        ("2 threads different-socket", 2, Placement::Spread),
    ];
    let sweep = Sweep::new("table01").base(cpu_config(2, 14)).workloads(
        [SpinKind::Ttas, SpinKind::HierarchicalTicket]
            .iter()
            .flat_map(|&kind| {
                scenarios
                    .iter()
                    .map(move |&(_, threads, placement)| WorkloadSpec::SpinLock {
                        kind,
                        threads,
                        placement,
                        iterations: iters,
                    })
            }),
    );
    let results = run_scenarios(&sweep.scenarios().expect("valid sweep"));

    let mut table = Table::new(
        "Table 1: coherence-based lock throughput (Mops/s) on a simulated 2-socket CPU",
        &[
            "lock",
            "1thr 1-socket",
            "14thr 1-socket",
            "2thr same-socket",
            "2thr diff-socket",
        ],
    );
    for kind in [SpinKind::Ttas, SpinKind::HierarchicalTicket] {
        let mut cells = vec![kind.name().to_string()];
        for &(_, threads, placement) in &scenarios {
            let spec = WorkloadSpec::SpinLock {
                kind,
                threads,
                placement,
                iterations: iters,
            };
            let report = results
                .report(&format!("table01/{}", spec.label()))
                .expect("swept");
            let mops = report.total_ops as f64 / report.sim_time.as_secs_f64() / 1e6;
            cells.push(f2(mops));
        }
        table.push_row(cells);
    }
    table
}

/// Figure 2: slowdown of a coarse-lock stack with a MESI lock over an ideal zero-cost
/// lock, (a) varying cores within one NDP unit and (b) varying NDP units at 60 cores.
///
/// Units and cores vary *together* here (60 cores split over 1–4 units), which a
/// cartesian sweep cannot express — so the scenario list is built explicitly.
pub fn fig02() -> Table {
    let pushes = scaled(60, 10);
    let mut table = Table::new(
        "Figure 2: slowdown of a lock-based stack, mesi-lock vs ideal-lock",
        &["configuration", "cores", "units", "mesi-lock slowdown"],
    );

    let ndp_config = |units: usize, cores: usize, mesi: bool| {
        let mut config = ConfigSpec::default().with_geometry(units, cores);
        config.mechanism = MechanismKind::Ideal;
        config.reserve_server_core = false;
        if mesi {
            config.coherence = CoherenceMode::MesiDirectory;
        }
        config
    };
    let stack = |lock: StackLock| WorkloadSpec::LockedStack { lock, pushes };

    let mut scenarios = Vec::new();
    // (a) 15..60 cores within a single NDP unit; (b) 60 cores split over 1..4 units.
    let core_counts = [15usize, 30, 45, 60];
    let unit_counts = [1usize, 2, 3, 4];
    for &cores in &core_counts {
        scenarios.push(Scenario::new(
            format!("fig02/a/c{cores}/mesi"),
            ndp_config(1, cores, true),
            stack(StackLock::MesiSpin),
        ));
        scenarios.push(Scenario::new(
            format!("fig02/a/c{cores}/ideal"),
            ndp_config(1, cores, false),
            stack(StackLock::SyncPrimitive),
        ));
    }
    for &units in &unit_counts {
        let cores = 60 / units;
        scenarios.push(Scenario::new(
            format!("fig02/b/u{units}/mesi"),
            ndp_config(units, cores, true),
            stack(StackLock::MesiSpin),
        ));
        scenarios.push(Scenario::new(
            format!("fig02/b/u{units}/ideal"),
            ndp_config(units, cores, false),
            stack(StackLock::SyncPrimitive),
        ));
    }
    let results = run_scenarios(&scenarios);

    for &cores in &core_counts {
        table.push_row(vec![
            "(a) single unit".into(),
            cores.to_string(),
            "1".into(),
            f2(expect_slowdown(
                &results,
                &format!("fig02/a/c{cores}/mesi"),
                &format!("fig02/a/c{cores}/ideal"),
            )),
        ]);
    }
    for &units in &unit_counts {
        table.push_row(vec![
            "(b) 60 cores total".into(),
            "60".into(),
            units.to_string(),
            f2(expect_slowdown(
                &results,
                &format!("fig02/b/u{units}/mesi"),
                &format!("fig02/b/u{units}/ideal"),
            )),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table01_shape_matches_paper_trends() {
        std::env::set_var("SYNCRON_SCALE", "0.2");
        let t = table01();
        assert_eq!(t.rows.len(), 2);
        let parse = |s: &String| s.parse::<f64>().unwrap();
        for row in &t.rows {
            let one = parse(&row[1]);
            let fourteen = parse(&row[2]);
            let same = parse(&row[3]);
            let diff = parse(&row[4]);
            // Adding threads to one socket collapses per-lock throughput, and crossing
            // sockets is slower than staying within one (Table 1's two observations).
            assert!(fourteen < one, "{row:?}");
            assert!(diff < same, "{row:?}");
        }
    }
}
