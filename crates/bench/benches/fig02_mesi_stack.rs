//! Regenerates Figure 2 of the paper.
fn main() {
    syncron_bench::experiments::motivation::fig02().print();
}
