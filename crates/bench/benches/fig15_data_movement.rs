//! Regenerates Figure 15 of the paper (data movement inside/across NDP units).
fn main() {
    syncron_bench::experiments::realapps::fig15().print();
}
