//! The in-memory `syncronVar` structure used during ST overflow.
//!
//! Section 4.3.1 of the paper: synchronization variables are allocated by the NDP
//! driver as an opaque `syncronVar` structure in main memory. During ST overflow the
//! Master SE coordinates synchronization by reading and writing this structure instead
//! of its (full) Synchronization Table. The structure holds one waiting list per SE of
//! the system (one bit per NDP core of that unit), a `VarInfo` field with the same
//! per-primitive meaning as the ST's `TableInfo`, and an `OverflowInfo` bitmask
//! recording which SEs have overflowed for this variable.

use crate::table::Waitlist;
use syncron_sim::{Addr, UnitId};

/// The driver-allocated, memory-resident synchronization variable (Figure 9).
#[derive(Clone, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SyncronVar {
    /// Address the variable is allocated at (its home NDP unit is derived from it).
    pub addr: Addr,
    /// One waiting list per SE of the system; each holds one bit per NDP core of the
    /// corresponding unit (`uint16_t Waitlist[4]` in the paper's 4-unit configuration).
    pub waitlists: Vec<Waitlist>,
    /// Per-primitive information (lock owner, barrier count, semaphore resources, or
    /// associated lock address), `uint64_t VarInfo` in the paper.
    pub var_info: u64,
    /// Bitmask of SEs that have overflowed for this variable, `uint8_t OverflowInfo`.
    pub overflow_info: u8,
}

impl SyncronVar {
    /// Size of the structure in bytes for a system with `units` NDP units: the paper's
    /// `struct syncronVar_t` is 4 × 2-byte waitlists + 8-byte VarInfo + 1-byte
    /// OverflowInfo.
    pub fn size_bytes(units: usize) -> u64 {
        (units * 2 + 8 + 1) as u64
    }

    /// Creates an empty variable for a system with `units` NDP units.
    pub fn new(addr: Addr, units: usize) -> Self {
        SyncronVar {
            addr,
            waitlists: vec![Waitlist::EMPTY; units],
            var_info: 0,
            overflow_info: 0,
        }
    }

    /// Sets the waiting bit of `core_index` in the waiting list of `unit`.
    pub fn set_waiter(&mut self, unit: UnitId, core_index: usize) {
        self.waitlists[unit.index()].set(core_index);
    }

    /// Clears the waiting bit of `core_index` in the waiting list of `unit`.
    pub fn clear_waiter(&mut self, unit: UnitId, core_index: usize) {
        self.waitlists[unit.index()].clear(core_index);
    }

    /// Sets **all** bits of `unit`'s waiting list — how the Master SE represents "some
    /// cores of this (non-overflowed) unit are waiting" when it only receives an
    /// aggregated global message from that unit's SE (Section 4.3.2).
    pub fn set_unit_waiting(&mut self, unit: UnitId, cores_per_unit: usize) {
        for i in 0..cores_per_unit {
            self.waitlists[unit.index()].set(i);
        }
    }

    /// Clears all bits of `unit`'s waiting list.
    pub fn clear_unit_waiting(&mut self, unit: UnitId) {
        self.waitlists[unit.index()] = Waitlist::EMPTY;
    }

    /// Marks `unit`'s SE as overflowed for this variable.
    pub fn mark_overflowed(&mut self, unit: UnitId) {
        self.overflow_info |= 1 << unit.index();
    }

    /// Returns whether `unit`'s SE is marked overflowed.
    pub fn is_overflowed(&self, unit: UnitId) -> bool {
        self.overflow_info & (1 << unit.index()) != 0
    }

    /// Returns `true` when no core of any unit is waiting — the point at which the
    /// Master SE decrements its indexing counter and notifies overflowed SEs with
    /// `decrease_indexing_counter` messages.
    pub fn all_waitlists_empty(&self) -> bool {
        self.waitlists.iter().all(|w| w.is_empty())
    }

    /// Units whose SEs are marked overflowed (targets of `decrease_indexing_counter`).
    pub fn overflowed_units(&self) -> Vec<UnitId> {
        (0..self.waitlists.len())
            .filter(|&u| self.overflow_info & (1 << u) != 0)
            .map(|u| UnitId(u as u8))
            .collect()
    }

    // ------------------------------------------------------------------
    // Condition-variable VarInfo layout (signal-coalescing extension)
    // ------------------------------------------------------------------
    //
    // For condition variables, the paper stores the associated lock's address in
    // `VarInfo`. Synchronization variables are cache-line aligned and user-space
    // addresses fit in 48 bits, so this reproduction packs the coalesced
    // pending-signal count into the otherwise-unused top 16 bits:
    //
    //   bits 63..48  pending-signal count (signals banked while no waiter queued)
    //   bits 47..0   associated lock address

    /// Number of low `VarInfo` bits holding the associated lock address.
    pub const COND_LOCK_BITS: u32 = 48;

    /// Sets the condition-variable `VarInfo`: associated `lock` address plus the
    /// coalesced `pending` signal count.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the lock address needs more than
    /// [`Self::COND_LOCK_BITS`] bits.
    pub fn set_cond_info(&mut self, lock: Addr, pending: u16) {
        debug_assert!(lock.value() < (1 << Self::COND_LOCK_BITS));
        self.var_info = (u64::from(pending) << Self::COND_LOCK_BITS)
            | (lock.value() & ((1 << Self::COND_LOCK_BITS) - 1));
    }

    /// The associated lock address of a condition variable's `VarInfo`.
    pub fn cond_lock(&self) -> Addr {
        Addr(self.var_info & ((1 << Self::COND_LOCK_BITS) - 1))
    }

    /// The coalesced pending-signal count of a condition variable's `VarInfo`.
    pub fn cond_pending_signals(&self) -> u16 {
        (self.var_info >> Self::COND_LOCK_BITS) as u16
    }

    /// Banks one more pending signal (saturating), returning the new count.
    pub fn add_pending_signal(&mut self) -> u16 {
        let next = self.cond_pending_signals().saturating_add(1);
        self.set_cond_info(self.cond_lock(), next);
        next
    }

    /// Consumes one pending signal if any is banked; returns whether one was consumed.
    pub fn take_pending_signal(&mut self) -> bool {
        let pending = self.cond_pending_signals();
        if pending == 0 {
            return false;
        }
        self.set_cond_info(self.cond_lock(), pending - 1);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_matches_paper_struct() {
        // uint16_t Waitlist[4] + uint64_t VarInfo + uint8_t OverflowInfo = 17 bytes.
        assert_eq!(SyncronVar::size_bytes(4), 17);
    }

    #[test]
    fn waiter_bits_per_unit() {
        let mut v = SyncronVar::new(Addr(0x100), 4);
        v.set_waiter(UnitId(2), 5);
        assert!(!v.all_waitlists_empty());
        assert!(v.waitlists[2].contains(5));
        v.clear_waiter(UnitId(2), 5);
        assert!(v.all_waitlists_empty());
    }

    #[test]
    fn unit_level_aggregation() {
        let mut v = SyncronVar::new(Addr(0x100), 4);
        v.set_unit_waiting(UnitId(1), 16);
        assert_eq!(v.waitlists[1].count(), 16);
        v.clear_unit_waiting(UnitId(1));
        assert!(v.all_waitlists_empty());
    }

    #[test]
    fn cond_varinfo_packs_lock_and_pending_count() {
        let mut v = SyncronVar::new(Addr(0x100), 4);
        let lock = Addr(0xDEAD_BEC0); // line-aligned, fits in 48 bits
        v.set_cond_info(lock, 0);
        assert_eq!(v.cond_lock(), lock);
        assert_eq!(v.cond_pending_signals(), 0);
        assert!(!v.take_pending_signal(), "nothing banked yet");
        assert_eq!(v.add_pending_signal(), 1);
        assert_eq!(v.add_pending_signal(), 2);
        assert_eq!(v.cond_pending_signals(), 2);
        assert_eq!(
            v.cond_lock(),
            lock,
            "count must not disturb the lock address"
        );
        assert!(v.take_pending_signal());
        assert!(v.take_pending_signal());
        assert!(
            !v.take_pending_signal(),
            "each signal is consumed exactly once"
        );
        assert_eq!(v.cond_lock(), lock);
    }

    #[test]
    fn cond_pending_count_saturates() {
        let mut v = SyncronVar::new(Addr(0x100), 4);
        v.set_cond_info(Addr(0x40), u16::MAX);
        assert_eq!(v.add_pending_signal(), u16::MAX);
    }

    #[test]
    fn overflow_bookkeeping() {
        let mut v = SyncronVar::new(Addr(0x100), 4);
        assert!(!v.is_overflowed(UnitId(3)));
        v.mark_overflowed(UnitId(3));
        v.mark_overflowed(UnitId(0));
        assert!(v.is_overflowed(UnitId(3)));
        assert_eq!(v.overflowed_units(), vec![UnitId(0), UnitId(3)]);
    }
}
