//! Offered-load experiment: open-loop service traffic pushed past saturation.
//!
//! The closed-loop experiments elsewhere in this crate measure *throughput*:
//! every core issues its next operation as soon as the previous one retires, so
//! latency is hidden by the feedback loop. This experiment removes the loop —
//! requests arrive on a Poisson clock that does not wait for the cores (the
//! `service` workload family of `syncron-workloads`), so queueing delay lands
//! in the measured per-request latency. Sweeping the arrival rate produces the
//! classic open-loop curve: p99 latency tracks the service time below the knee
//! and grows without bound past it. The knee is the mechanism's saturation
//! throughput, and its position orders the schemes exactly like the paper's
//! closed-loop speedups (Ideal > SynCron > Hier > Central).
//!
//! The bench target `offered_load` prints the table; the same sweep is
//! available declaratively as `scenarios/offered_load_sweep.toml`.
//! `EXPERIMENTS.md` ("Offered load vs. saturation") records the measured knees.

use crate::{f2, run_scenarios, scaled, ConfigSpec, Sweep, Table, WorkloadSpec};
use syncron_core::MechanismKind;
use syncron_workloads::service::{ArrivalProcess, ServiceShape};

/// Offered loads swept, in requests per microsecond per core. The grid spans
/// the region where every scheme is unsaturated (0.05) to where even Ideal
/// queues (4.0).
pub const RATES: [f64; 7] = [0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 4.0];

/// A knee is declared at the first rate whose p99 exceeds this multiple of the
/// lowest-rate p99. Below saturation p99 creeps (contention grows with load,
/// staying within a small factor of the unloaded tail); past it, p99 is
/// queueing-dominated and jumps by an order of magnitude per grid step, so the
/// factor only needs to sit above the creep and below the jump.
pub const KNEE_FACTOR: f64 = 5.0;

/// One (mechanism, rate) point of the offered-load curve.
#[derive(Clone, Copy, Debug)]
pub struct LoadPoint {
    /// Synchronization scheme.
    pub mechanism: MechanismKind,
    /// Offered load in requests per microsecond per core.
    pub rate_per_us: f64,
    /// Achieved throughput (operations per simulated millisecond).
    pub ops_per_ms: f64,
    /// Median request latency in nanoseconds (admission to completion).
    pub p50_ns: f64,
    /// 99th-percentile request latency in nanoseconds.
    pub p99_ns: f64,
    /// 99.9th-percentile request latency in nanoseconds.
    pub p999_ns: f64,
    /// Whether the run finished before its event budget.
    pub completed: bool,
}

/// Runs the offered-load sweep at explicit rates and request count (exposed so
/// tests can run a tiny instance; use [`measure`] for the real experiment).
///
/// # Panics
///
/// Panics if any run comes back without a latency summary — the service
/// workloads must always measure their requests.
pub fn measure_rates(
    units: usize,
    cores_per_unit: usize,
    rates: &[f64],
    requests: u32,
) -> Vec<LoadPoint> {
    let scenarios = Sweep::new("offered-load")
        .base(ConfigSpec::default().with_geometry(units, cores_per_unit))
        .workloads(rates.iter().map(|&rate_per_us| WorkloadSpec::Service {
            shape: ServiceShape::Kv,
            arrival: ArrivalProcess::Poisson { rate_per_us },
            keys: 1_000_000,
            zipf_s: 0.99,
            requests,
        }))
        .compared_mechanisms()
        .scenarios()
        .unwrap_or_else(|e| panic!("offered-load sweep failed to expand: {e}"));
    let results = run_scenarios(&scenarios);
    let mut points = Vec::new();
    // Iterate mechanism-major so each mechanism's curve is contiguous and
    // ordered by rate regardless of the sweep's expansion order.
    for mechanism in MechanismKind::COMPARED {
        for &rate_per_us in rates {
            let entry = results
                .find(|s| {
                    s.config.mechanism == mechanism
                        && matches!(
                            s.workload,
                            WorkloadSpec::Service {
                                arrival: ArrivalProcess::Poisson { rate_per_us: r },
                                ..
                            } if r == rate_per_us
                        )
                })
                .unwrap_or_else(|| panic!("no run for {} at rate {rate_per_us}", mechanism.name()));
            let r = &entry.report;
            let latency = r.latency.unwrap_or_else(|| {
                panic!(
                    "{}: open-loop run has no latency summary",
                    entry.scenario.label
                )
            });
            points.push(LoadPoint {
                mechanism,
                rate_per_us,
                ops_per_ms: r.ops_per_ms(),
                p50_ns: latency.p50_ns,
                p99_ns: latency.p99_ns,
                p999_ns: latency.p999_ns,
                completed: r.completed,
            });
        }
    }
    points
}

/// Runs the full offered-load sweep: the paper-default-adjacent 4×8 machine
/// over [`RATES`] under all compared schemes (respects `SYNCRON_SCALE` through
/// the per-core request count).
pub fn measure() -> Vec<LoadPoint> {
    measure_rates(4, 8, &RATES, scaled(48, 8))
}

/// The saturation knee of one mechanism: the first swept rate whose p99
/// exceeds [`KNEE_FACTOR`] × the lowest-rate p99, or `None` if the curve never
/// leaves the flat region (the mechanism kept up with every offered load).
pub fn knee(points: &[LoadPoint], mechanism: MechanismKind) -> Option<f64> {
    let mut curve: Vec<&LoadPoint> = points.iter().filter(|p| p.mechanism == mechanism).collect();
    curve.sort_by(|a, b| a.rate_per_us.total_cmp(&b.rate_per_us));
    let baseline = curve.first()?.p99_ns;
    curve
        .iter()
        .find(|p| p.p99_ns > baseline * KNEE_FACTOR)
        .map(|p| p.rate_per_us)
}

/// Renders the sweep as the experiment's text table, one row per point plus a
/// per-mechanism knee summary.
pub fn offered_load_table(points: &[LoadPoint]) -> Table {
    let mut table = Table::new(
        "Offered load vs. saturation: sharded-KV service, open-loop Poisson arrivals \
         (per-request latency, microseconds)",
        &[
            "mechanism",
            "rate/us/core",
            "ops/ms",
            "p50 us",
            "p99 us",
            "p999 us",
            "complete",
        ],
    );
    for p in points {
        table.push_row(vec![
            p.mechanism.name().to_string(),
            format!("{}", p.rate_per_us),
            f2(p.ops_per_ms),
            f2(p.p50_ns / 1000.0),
            f2(p.p99_ns / 1000.0),
            f2(p.p999_ns / 1000.0),
            if p.completed { "yes" } else { "NO" }.to_string(),
        ]);
    }
    for mechanism in MechanismKind::COMPARED {
        if points.iter().all(|p| p.mechanism != mechanism) {
            continue;
        }
        table.push_row(vec![
            mechanism.name().to_string(),
            "(knee)".to_string(),
            String::new(),
            String::new(),
            match knee(points, mechanism) {
                Some(rate) => format!("p99 > {KNEE_FACTOR}x at rate {rate}"),
                None => "unsaturated".to_string(),
            },
            String::new(),
            String::new(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_sweep_produces_monotone_p99_curves() {
        // A small machine with a rate grid wide enough to straddle saturation:
        // the low end is far below one request per service time, the high end
        // far above it.
        let rates = [0.02, 5.0];
        let points = measure_rates(2, 4, &rates, 8);
        assert_eq!(points.len(), rates.len() * MechanismKind::COMPARED.len());
        for mechanism in MechanismKind::COMPARED {
            let curve: Vec<&LoadPoint> =
                points.iter().filter(|p| p.mechanism == mechanism).collect();
            assert_eq!(curve.len(), rates.len());
            assert!(curve.iter().all(|p| p.completed), "{}", mechanism.name());
            // Overload must cost tail latency: the saturated point dominates.
            assert!(
                curve[1].p99_ns > curve[0].p99_ns,
                "{}: p99 did not grow with offered load ({} vs {})",
                mechanism.name(),
                curve[0].p99_ns,
                curve[1].p99_ns
            );
        }
    }

    #[test]
    fn knee_finds_the_first_saturated_rate() {
        let mk = |rate_per_us: f64, p99_ns: f64| LoadPoint {
            mechanism: MechanismKind::SynCron,
            rate_per_us,
            ops_per_ms: 0.0,
            p50_ns: 0.0,
            p99_ns,
            p999_ns: 0.0,
            completed: true,
        };
        let points = vec![mk(0.1, 500.0), mk(0.5, 900.0), mk(1.0, 40_000.0)];
        assert_eq!(knee(&points, MechanismKind::SynCron), Some(1.0));
        assert_eq!(knee(&points, MechanismKind::Central), None);
        let flat = vec![mk(0.1, 500.0), mk(0.5, 600.0)];
        assert_eq!(knee(&flat, MechanismKind::SynCron), None);
        let table = offered_load_table(&points);
        assert!(table.render().contains("(knee)"));
    }
}
