//! Message encoding and opcodes.
//!
//! Section 4.1.2 of the paper defines the message exchanged between NDP cores and
//! Synchronization Engines: a 64-bit address, a 6-bit opcode, a 6-bit core ID and a
//! 64-bit `MessageInfo` field — 140 bits in total. Global messages between SEs
//! additionally carry the sender SE's global ID, and the ST entry that processes them
//! is 149 bits wide (Figure 6). Table 3 lists the full opcode set, including the
//! overflow opcodes used by the hardware-only overflow management scheme.
//!
//! Beyond Table 3, this reproduction adds three `cond_signal_nack` reply opcodes for
//! the signal-coalescing extension (see [`crate::protocol`]): when a `cond_signal`
//! reaches the serving engine, finds no queued waiter and cannot be banked as a
//! pending signal, the engine replies with a NACK whose `MessageInfo` field carries a
//! backoff delay hint; the signaling core stalls for that delay before re-issuing.
//! The extended set still fits the 6-bit opcode field.

use crate::request::PrimitiveKind;
use syncron_sim::{Addr, GlobalCoreId, UnitId};

/// Whether a message travels between a core and its local SE, or between SEs of
/// different NDP units.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum MessageScope {
    /// Core ↔ local SE, inside one NDP unit.
    Local,
    /// SE ↔ Master SE, across NDP units.
    Global,
    /// Local SE ↔ Master SE during ST overflow (Section 4.3.2).
    Overflow,
}

/// The complete message opcode set of Table 3.
#[allow(missing_docs)] // the variant names are the paper's opcode names
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum SyncOpcode {
    // Locks
    LockAcquireGlobal,
    LockAcquireLocal,
    LockReleaseGlobal,
    LockReleaseLocal,
    LockGrantGlobal,
    LockGrantLocal,
    LockAcquireOverflow,
    LockReleaseOverflow,
    LockGrantOverflow,
    // Barriers
    BarrierWaitGlobal,
    BarrierWaitLocalWithinUnit,
    BarrierWaitLocalAcrossUnits,
    BarrierDepartGlobal,
    BarrierDepartLocal,
    BarrierWaitOverflow,
    BarrierDepartureOverflow,
    // Semaphores
    SemWaitGlobal,
    SemWaitLocal,
    SemGrantGlobal,
    SemGrantLocal,
    SemPostGlobal,
    SemPostLocal,
    SemWaitOverflow,
    SemGrantOverflow,
    SemPostOverflow,
    // Condition variables
    CondWaitGlobal,
    CondWaitLocal,
    CondSignalGlobal,
    CondSignalLocal,
    CondBroadGlobal,
    CondBroadLocal,
    CondGrantGlobal,
    CondGrantLocal,
    CondWaitOverflow,
    CondSignalOverflow,
    CondBroadOverflow,
    CondGrantOverflow,
    // Other
    DecreaseIndexingCounter,
    // Extension beyond Table 3: NACK-with-delay replies to a signaler whose
    // cond_signal could not be delivered or banked (signal coalescing / backoff).
    CondSignalNackLocal,
    CondSignalNackGlobal,
    CondSignalNackOverflow,
}

impl SyncOpcode {
    /// Every opcode: the 38 of Table 3 in the paper's order, followed by the
    /// 3 signal-coalescing extension opcodes.
    pub const ALL: [SyncOpcode; 41] = [
        SyncOpcode::LockAcquireGlobal,
        SyncOpcode::LockAcquireLocal,
        SyncOpcode::LockReleaseGlobal,
        SyncOpcode::LockReleaseLocal,
        SyncOpcode::LockGrantGlobal,
        SyncOpcode::LockGrantLocal,
        SyncOpcode::LockAcquireOverflow,
        SyncOpcode::LockReleaseOverflow,
        SyncOpcode::LockGrantOverflow,
        SyncOpcode::BarrierWaitGlobal,
        SyncOpcode::BarrierWaitLocalWithinUnit,
        SyncOpcode::BarrierWaitLocalAcrossUnits,
        SyncOpcode::BarrierDepartGlobal,
        SyncOpcode::BarrierDepartLocal,
        SyncOpcode::BarrierWaitOverflow,
        SyncOpcode::BarrierDepartureOverflow,
        SyncOpcode::SemWaitGlobal,
        SyncOpcode::SemWaitLocal,
        SyncOpcode::SemGrantGlobal,
        SyncOpcode::SemGrantLocal,
        SyncOpcode::SemPostGlobal,
        SyncOpcode::SemPostLocal,
        SyncOpcode::SemWaitOverflow,
        SyncOpcode::SemGrantOverflow,
        SyncOpcode::SemPostOverflow,
        SyncOpcode::CondWaitGlobal,
        SyncOpcode::CondWaitLocal,
        SyncOpcode::CondSignalGlobal,
        SyncOpcode::CondSignalLocal,
        SyncOpcode::CondBroadGlobal,
        SyncOpcode::CondBroadLocal,
        SyncOpcode::CondGrantGlobal,
        SyncOpcode::CondGrantLocal,
        SyncOpcode::CondWaitOverflow,
        SyncOpcode::CondSignalOverflow,
        SyncOpcode::CondBroadOverflow,
        SyncOpcode::CondGrantOverflow,
        SyncOpcode::DecreaseIndexingCounter,
        SyncOpcode::CondSignalNackLocal,
        SyncOpcode::CondSignalNackGlobal,
        SyncOpcode::CondSignalNackOverflow,
    ];

    /// The number of bits needed to encode an opcode. The paper uses a 6-bit field,
    /// which covers all 38 paper opcodes plus the 3 extension opcodes.
    pub const OPCODE_BITS: u32 = 6;

    /// A dense numeric encoding of the opcode (fits in [`Self::OPCODE_BITS`]).
    pub fn encode(self) -> u8 {
        Self::ALL.iter().position(|&op| op == self).unwrap_or(0) as u8
    }

    /// Decodes an opcode produced by [`SyncOpcode::encode`].
    pub fn decode(code: u8) -> Option<SyncOpcode> {
        Self::ALL.get(code as usize).copied()
    }

    /// The primitive this opcode belongs to (`None` for `decrease_indexing_counter`).
    pub fn primitive(self) -> Option<PrimitiveKind> {
        use SyncOpcode::*;
        Some(match self {
            LockAcquireGlobal | LockAcquireLocal | LockReleaseGlobal | LockReleaseLocal
            | LockGrantGlobal | LockGrantLocal | LockAcquireOverflow | LockReleaseOverflow
            | LockGrantOverflow => PrimitiveKind::Lock,
            BarrierWaitGlobal
            | BarrierWaitLocalWithinUnit
            | BarrierWaitLocalAcrossUnits
            | BarrierDepartGlobal
            | BarrierDepartLocal
            | BarrierWaitOverflow
            | BarrierDepartureOverflow => PrimitiveKind::Barrier,
            SemWaitGlobal | SemWaitLocal | SemGrantGlobal | SemGrantLocal | SemPostGlobal
            | SemPostLocal | SemWaitOverflow | SemGrantOverflow | SemPostOverflow => {
                PrimitiveKind::Semaphore
            }
            CondWaitGlobal
            | CondWaitLocal
            | CondSignalGlobal
            | CondSignalLocal
            | CondBroadGlobal
            | CondBroadLocal
            | CondGrantGlobal
            | CondGrantLocal
            | CondWaitOverflow
            | CondSignalOverflow
            | CondBroadOverflow
            | CondGrantOverflow
            | CondSignalNackLocal
            | CondSignalNackGlobal
            | CondSignalNackOverflow => PrimitiveKind::CondVar,
            DecreaseIndexingCounter => return None,
        })
    }

    /// Whether this opcode is used on the global (SE ↔ Master SE) level.
    pub fn is_global(self) -> bool {
        use SyncOpcode::*;
        matches!(
            self,
            LockAcquireGlobal
                | LockReleaseGlobal
                | LockGrantGlobal
                | BarrierWaitGlobal
                | BarrierDepartGlobal
                | SemWaitGlobal
                | SemGrantGlobal
                | SemPostGlobal
                | CondWaitGlobal
                | CondSignalGlobal
                | CondBroadGlobal
                | CondGrantGlobal
                | CondSignalNackGlobal
        )
    }

    /// Whether this opcode is part of the overflow protocol (Section 4.3.2).
    pub fn is_overflow(self) -> bool {
        use SyncOpcode::*;
        matches!(
            self,
            LockAcquireOverflow
                | LockReleaseOverflow
                | LockGrantOverflow
                | BarrierWaitOverflow
                | BarrierDepartureOverflow
                | SemWaitOverflow
                | SemGrantOverflow
                | SemPostOverflow
                | CondWaitOverflow
                | CondSignalOverflow
                | CondBroadOverflow
                | CondGrantOverflow
                | CondSignalNackOverflow
                | DecreaseIndexingCounter
        )
    }
}

/// The identity of a message sender.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Sender {
    /// An NDP core (identified by its global ID; the wire format carries the local ID).
    Core(GlobalCoreId),
    /// A Synchronization Engine (identified by its NDP unit).
    Engine(UnitId),
}

/// A synchronization message (Figure 5 of the paper).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SyncMessage {
    /// Address of the synchronization variable (64 bits on the wire).
    pub addr: Addr,
    /// Message opcode (6 bits on the wire).
    pub opcode: SyncOpcode,
    /// Sender (6-bit core/SE ID on the wire).
    pub sender: Sender,
    /// `MessageInfo`: number of barrier participants, initial semaphore resources, or
    /// the address of the lock associated with a condition variable (64 bits).
    pub info: u64,
}

impl SyncMessage {
    /// Size in bits of a local (core ↔ SE) message: 64 + 6 + 6 + 64 = 140 bits.
    pub const LOCAL_BITS: u32 = 140;
    /// Size in bits of a global (SE ↔ Master SE) message, which also carries the
    /// sender SE's global ID and overflow bookkeeping: 149 bits (Figure 6).
    pub const GLOBAL_BITS: u32 = 149;

    /// Size of the message in bytes, rounded up to whole bytes, for traffic accounting.
    pub fn wire_bytes(scope: MessageScope) -> u64 {
        let bits = match scope {
            MessageScope::Local => Self::LOCAL_BITS,
            MessageScope::Global | MessageScope::Overflow => Self::GLOBAL_BITS,
        };
        bits.div_ceil(8) as u64
    }

    /// The scope implied by the message's opcode.
    pub fn scope(&self) -> MessageScope {
        if self.opcode.is_overflow() {
            MessageScope::Overflow
        } else if self.opcode.is_global() {
            MessageScope::Global
        } else {
            MessageScope::Local
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use syncron_sim::CoreId;

    #[test]
    fn opcode_count_matches_table3_plus_extension() {
        // Table 3 lists 9 lock + 7 barrier + 9 semaphore + 12 condvar + 1 other opcodes
        // (38); the signal-coalescing extension adds 3 cond_signal_nack replies.
        assert_eq!(SyncOpcode::ALL.len(), 38 + 3);
        // The paper's opcodes keep their Table 3 positions (stable encoding prefix).
        assert_eq!(SyncOpcode::ALL[37], SyncOpcode::DecreaseIndexingCounter);
    }

    #[test]
    fn opcodes_fit_in_six_bits() {
        for op in SyncOpcode::ALL {
            assert!(u32::from(op.encode()) < (1 << SyncOpcode::OPCODE_BITS));
        }
    }

    #[test]
    fn encode_decode_round_trips() {
        for op in SyncOpcode::ALL {
            assert_eq!(SyncOpcode::decode(op.encode()), Some(op));
        }
        assert_eq!(SyncOpcode::decode(200), None);
    }

    #[test]
    fn primitives_partition_the_opcodes() {
        let locks = SyncOpcode::ALL
            .iter()
            .filter(|o| o.primitive() == Some(PrimitiveKind::Lock))
            .count();
        let barriers = SyncOpcode::ALL
            .iter()
            .filter(|o| o.primitive() == Some(PrimitiveKind::Barrier))
            .count();
        let sems = SyncOpcode::ALL
            .iter()
            .filter(|o| o.primitive() == Some(PrimitiveKind::Semaphore))
            .count();
        let conds = SyncOpcode::ALL
            .iter()
            .filter(|o| o.primitive() == Some(PrimitiveKind::CondVar))
            .count();
        // 12 paper condvar opcodes + the 3 NACK extension opcodes.
        assert_eq!((locks, barriers, sems, conds), (9, 7, 9, 15));
    }

    #[test]
    fn message_sizes_match_paper() {
        assert_eq!(SyncMessage::LOCAL_BITS, 140);
        assert_eq!(SyncMessage::GLOBAL_BITS, 149);
        assert_eq!(SyncMessage::wire_bytes(MessageScope::Local), 18);
        assert_eq!(SyncMessage::wire_bytes(MessageScope::Global), 19);
    }

    #[test]
    fn scope_derived_from_opcode() {
        let core = Sender::Core(GlobalCoreId::new(UnitId(0), CoreId(3)));
        let local = SyncMessage {
            addr: Addr(0x40),
            opcode: SyncOpcode::LockAcquireLocal,
            sender: core,
            info: 0,
        };
        assert_eq!(local.scope(), MessageScope::Local);
        let global = SyncMessage {
            opcode: SyncOpcode::LockAcquireGlobal,
            sender: Sender::Engine(UnitId(1)),
            ..local
        };
        assert_eq!(global.scope(), MessageScope::Global);
        let overflow = SyncMessage {
            opcode: SyncOpcode::LockAcquireOverflow,
            ..global
        };
        assert_eq!(overflow.scope(), MessageScope::Overflow);
    }

    #[test]
    fn global_and_overflow_sets_are_disjoint() {
        for op in SyncOpcode::ALL {
            assert!(!(op.is_global() && op.is_overflow()), "{op:?}");
        }
    }
}
