//! Regenerates Figure 22 of the paper (ST size sensitivity).
fn main() {
    syncron_bench::experiments::sensitivity::fig22().print();
}
