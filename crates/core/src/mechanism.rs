//! The interface between synchronization mechanisms and the simulated NDP system.
//!
//! A [`SyncMechanism`] models "everything that happens after an NDP core issues a
//! `req_sync`/`req_async` instruction": message travel, Synchronization Engine (or
//! server core) processing, global coordination, and finally the response that unblocks
//! the core. The mechanism does not own the clock, the network, or the memory — it
//! asks for those through the [`SyncContext`] the system provides, which also lets the
//! system account traffic and energy uniformly across mechanisms.
//!
//! The paper's comparison points (Section 5) map onto [`MechanismKind`]:
//! `Central` (one server core for the whole system, as in Tesseract), `Hier` (one
//! server core per NDP unit, as in Gao et al.), `SynCron` (this paper), `SynCronFlat`
//! (the flat variant ablated in Section 6.7.1) and `Ideal` (zero-overhead
//! synchronization).

pub use crate::protocol::RemotePayload;
use crate::protocol::{OverflowMode, ProtocolConfig, ProtocolMechanism};
use crate::request::SyncRequest;
use syncron_sim::time::Time;
use syncron_sim::{Addr, GlobalCoreId, UnitId};

/// Which synchronization mechanism to instantiate.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum MechanismKind {
    /// Zero-overhead synchronization (upper bound used throughout the evaluation).
    Ideal,
    /// One NDP core of the whole system acts as synchronization server
    /// (message-passing scheme extending the Tesseract barrier).
    Central,
    /// One NDP core per NDP unit acts as synchronization server (hierarchical
    /// message-passing similar to Gao et al.).
    Hier,
    /// SynCron: one Synchronization Engine per NDP unit, hierarchical protocol,
    /// direct ST buffering, integrated overflow management.
    #[default]
    SynCron,
    /// SynCron's flat variant: cores send every request directly to the Master SE
    /// (Section 6.7.1 ablation).
    SynCronFlat,
    /// MCS-style hardware queue lock on the SE substrate: a tail pointer at the
    /// Master SE and per-waiter next pointers at the waiters' local SEs, so a
    /// release hands the lock to its successor in O(1) without a master
    /// round-trip or broadcast wake. Non-lock primitives behave as in SynCron.
    /// (Beyond the paper; enabled by the component/policy split.)
    Mcs,
    /// Adaptive Central↔Hier: every variable starts on the flat two-hop path at
    /// its home unit and stickily escalates to hierarchical aggregation once
    /// the master observes a global lock queue at the configured contention
    /// threshold. (Beyond the paper; enabled by the component/policy split.)
    Adaptive,
}

impl MechanismKind {
    /// All mechanisms, in the order the paper's figures present them (the two
    /// post-paper schemes slot in before the Ideal upper bound).
    pub const ALL: [MechanismKind; 7] = [
        MechanismKind::Central,
        MechanismKind::Hier,
        MechanismKind::SynCron,
        MechanismKind::SynCronFlat,
        MechanismKind::Mcs,
        MechanismKind::Adaptive,
        MechanismKind::Ideal,
    ];

    /// The four schemes compared in the paper's main figures (Central, Hier, SynCron,
    /// Ideal).
    pub const COMPARED: [MechanismKind; 4] = [
        MechanismKind::Central,
        MechanismKind::Hier,
        MechanismKind::SynCron,
        MechanismKind::Ideal,
    ];

    /// Short name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            MechanismKind::Ideal => "Ideal",
            MechanismKind::Central => "Central",
            MechanismKind::Hier => "Hier",
            MechanismKind::SynCron => "SynCron",
            MechanismKind::SynCronFlat => "SynCron-flat",
            MechanismKind::Mcs => "MCS",
            MechanismKind::Adaptive => "Adaptive",
        }
    }
}

impl std::fmt::Display for MechanismKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Services the simulated system offers to a synchronization mechanism.
///
/// All latency-producing activities (network hops, memory accesses) are requested
/// through this trait so that traffic, energy and data-movement accounting stays in
/// one place (the system crate) and is identical across mechanisms.
pub trait SyncContext {
    /// Current simulation time.
    fn now(&self) -> Time;

    /// Schedules `token` to be delivered back to the mechanism (via
    /// [`SyncMechanism::deliver`]) at absolute time `at`. `unit` names the unit
    /// whose engine the token concerns: a sharded system uses it to keep the
    /// event on the shard owning that unit (scheduling a token for a unit the
    /// current shard does not own is a hard error there).
    ///
    /// Contract: one call pushes exactly one event onto the system's event
    /// queue, so [`SyncContext::schedule_stamp`] advances by exactly one per
    /// call (the protocol's message batching relies on this to watermark "no
    /// pushes in between" without re-reading the stamp).
    fn schedule(&mut self, at: Time, unit: UnitId, token: u64);

    /// A monotone count of every event the whole system has scheduled so far
    /// (the mechanism's tokens *and* the system's own events), or `None` when the
    /// context does not track one.
    ///
    /// The protocol engine uses this as a watermark to coalesce messages it
    /// schedules *back to back* for the same engine at the same timestamp into
    /// one delivery: if the count has not moved since the previous message's
    /// event was pushed, no other event can pop between them, so merging them
    /// preserves the global `(time, tiebreak key)` delivery order bit for bit.
    /// The value need not be a plain counter — the sharded machine returns its
    /// next per-unit event key, which additionally encodes *which* unit's
    /// counter it is — it only has to change on every push and advance by
    /// exactly one per [`SyncContext::schedule`] call.
    /// Contexts that return `None` (the default) disable the optimization.
    fn schedule_stamp(&self) -> Option<u64> {
        None
    }

    /// Models one message hop inside `unit` (core ↔ SE / server). Returns its latency
    /// and accounts traffic/energy.
    fn local_hop(&mut self, unit: UnitId, bytes: u64) -> Time;

    /// Sends `payload` from the engine of `from` (departing at `at`) to the
    /// engine of `to` in another unit: charges the sender-side legs (source
    /// crossbar, inter-unit link) and traffic, and arranges for
    /// [`SyncMechanism::deliver_remote`] to run on the destination unit's shard
    /// at the arrival time. The arrival is always at least the link's transfer
    /// latency after `at` — the lookahead bound sharded execution relies on.
    fn send_remote(
        &mut self,
        at: Time,
        from: UnitId,
        to: UnitId,
        bytes: u64,
        payload: RemotePayload,
    );

    /// Models the receive-side crossbar hop of a remote message arriving at
    /// `unit` (charged by [`SyncMechanism::deliver_remote`] at the arrival
    /// time). Returns its latency; traffic was accounted at the send side.
    fn recv_hop(&mut self, unit: UnitId, bytes: u64) -> Time;

    /// Models a memory access performed on behalf of synchronization by the
    /// engine/server of `unit` to the synchronization variable at `addr` (which is
    /// homed in that unit). `cached` selects whether the access may be served from the
    /// server core's private cache (Central/Hier servers) or must reach DRAM
    /// (SynCron's ST-overflow path). Returns its latency.
    fn sync_mem_access(&mut self, unit: UnitId, addr: Addr, write: bool, cached: bool) -> Time;

    /// The NDP unit that owns (is the home of) address `addr`; its engine is the
    /// Master SE for variables at that address.
    fn home_unit(&self, addr: Addr) -> UnitId;

    /// Completes a blocking request previously issued by `core`; the core resumes
    /// execution at time `at`.
    fn complete(&mut self, core: GlobalCoreId, at: Time);

    /// Number of NDP units in the system.
    fn units(&self) -> usize;

    /// Number of NDP cores per unit.
    fn cores_per_unit(&self) -> usize;
}

/// Aggregate statistics a mechanism exposes for the evaluation reports.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SyncMechanismStats {
    /// Synchronization requests issued by cores.
    pub requests: u64,
    /// Blocking requests completed.
    pub completions: u64,
    /// Messages exchanged between cores and their local engine/server.
    pub local_messages: u64,
    /// Messages exchanged between engines/servers of different units.
    pub global_messages: u64,
    /// Messages belonging to the overflow protocol.
    pub overflow_messages: u64,
    /// Memory accesses performed on behalf of synchronization.
    pub mem_accesses: u64,
    /// Acquire-type requests that were serviced via main memory because of ST overflow.
    pub overflowed_requests: u64,
    /// Acquire-type requests in total (denominator for the overflow fraction).
    pub acquire_requests: u64,
    /// Condvar signals that woke a queued waiter.
    pub delivered_signals: u64,
    /// Condvar signals banked as pending because no waiter was queued
    /// (signal-coalescing extension).
    pub coalesced_signals: u64,
    /// Banked pending signals later consumed by a `cond_wait`.
    pub consumed_signals: u64,
    /// Condvar signals NACKed with a backoff delay (pending count at its cap).
    pub signal_nacks: u64,
    /// High-water mark of the pending-signal count on any engine / variable.
    pub max_pending_signals: u64,
    /// Time-weighted average ST occupancy across engines, as a fraction of capacity.
    pub st_avg_occupancy: f64,
    /// Maximum ST occupancy observed on any engine, as a fraction of capacity.
    pub st_max_occupancy: f64,
}

impl SyncMechanismStats {
    /// Fraction of acquire-type requests that overflowed, in `[0, 1]`.
    pub fn overflow_fraction(&self) -> f64 {
        if self.acquire_requests == 0 {
            0.0
        } else {
            self.overflowed_requests as f64 / self.acquire_requests as f64
        }
    }
}

/// A synchronization mechanism driven by the simulated NDP system.
///
/// `Send` because the sharded execution mode moves the mechanism's state across
/// worker threads (each shard owns a full mechanism instance for its units).
pub trait SyncMechanism: Send {
    /// Human-readable name for reports.
    fn name(&self) -> &'static str;

    /// Whether `req` blocks the issuing core until the mechanism completes it.
    ///
    /// Defaults to the ISA-level classification ([`SyncRequest::is_blocking`]).
    /// Mechanisms with delayed-grant replies override this for requests they will
    /// explicitly complete even though `req_async` issues them — e.g. the
    /// signal-coalescing protocol ACK/NACKs every `cond_signal`, so the signaling
    /// core stalls until the (possibly backoff-delayed) reply arrives.
    fn blocks_core(&self, req: &SyncRequest) -> bool {
        req.is_blocking()
    }

    /// An NDP core issues a synchronization request at `ctx.now()`.
    ///
    /// For blocking requests (see [`SyncMechanism::blocks_core`]) the mechanism must
    /// eventually call [`SyncContext::complete`] for `core`. Non-blocking requests
    /// return immediately on the core side; the mechanism still models their effect.
    fn request(&mut self, ctx: &mut dyn SyncContext, core: GlobalCoreId, req: SyncRequest);

    /// Delivers a token previously scheduled through [`SyncContext::schedule`].
    fn deliver(&mut self, ctx: &mut dyn SyncContext, token: u64);

    /// Delivers a cross-unit payload previously sent through
    /// [`SyncContext::send_remote`], running at the arrival time on the shard
    /// owning the destination unit. The mechanism charges the receive-side
    /// crossbar hop here (via [`SyncContext::recv_hop`]).
    ///
    /// The default panics: mechanisms that never call `send_remote` (e.g. the
    /// zero-latency ideal mechanism) can never receive one.
    fn deliver_remote(&mut self, _ctx: &mut dyn SyncContext, payload: RemotePayload) {
        panic!(
            "mechanism {:?} received a remote payload it cannot route: {payload:?}",
            self.name()
        );
    }

    /// Statistics accumulated up to `end` (the end of the simulation).
    fn stats(&self, end: Time) -> SyncMechanismStats;

    /// Time-weighted `(average, maximum)` ST occupancy of the engine of `unit`
    /// up to `end`, as fractions of capacity, or `None` when the mechanism has
    /// no per-unit occupancy (server-based schemes, ideal).
    ///
    /// The sharded report merge recomputes the global average/maximum from
    /// these per-unit values in global unit order, so the f64 reduction
    /// associates exactly as in a sequential run.
    fn st_unit_occupancy(&self, end: Time, unit: usize) -> Option<(f64, f64)> {
        let _ = (end, unit);
        None
    }
}

/// Tunable parameters for [`build_mechanism`].
#[derive(Clone, Copy, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MechanismParams {
    /// Which mechanism to build.
    pub kind: MechanismKind,
    /// Synchronization Table entries per SE (paper default: 64).
    pub st_entries: usize,
    /// Indexing counters per SE (paper default: 256).
    pub indexing_counters: usize,
    /// Overflow-management scheme (paper default: the integrated hardware scheme).
    pub overflow_mode: OverflowMode,
    /// Optional lock-fairness threshold: maximum consecutive local grants before the
    /// lock is handed to another NDP unit (Section 4.4.2 extension).
    pub fairness_threshold: Option<u32>,
    /// Whether condvar signals that find no queued waiter are coalesced into a
    /// pending-signal count and ACK/NACKed, instead of silently dropped (default:
    /// enabled; prevents signaler loops from flooding the serving engine).
    pub signal_coalescing: bool,
    /// Base NACK backoff delay in nanoseconds for repeat signalers; the delay doubles
    /// per consecutive NACK up to 64x the base. `0` keeps the NACK replies but without
    /// any delay. Ignored when `signal_coalescing` is off.
    pub signal_backoff_ns: u64,
    /// Whether the protocol engine coalesces equal-timestamp messages scheduled
    /// back to back for the same engine into one queued event (default: enabled).
    /// Purely a simulator optimization: delivery order — and therefore every
    /// report — is bit-identical either way (see
    /// [`SyncContext::schedule_stamp`]).
    pub message_batching: bool,
    /// Whether the protocol engine processes the members of one delivered
    /// equal-timestamp batch column-wise against the component tables — runs of
    /// messages for the same variable share one slot resolve/release
    /// round-trip (default: enabled). Purely a simulator optimization layered
    /// on `message_batching`: the skipped release-then-resolve pair is a state
    /// no-op under the LIFO slot free list, so every report is bit-identical
    /// either way.
    pub column_batching: bool,
    /// Contention threshold of the [`MechanismKind::Adaptive`] policy: a
    /// variable escalates from the flat to the hierarchical protocol once its
    /// master observes this many grantees queued globally on its lock. Ignored
    /// by the other kinds.
    pub adaptive_threshold: u32,
}

impl MechanismParams {
    /// Default parameters for a given mechanism kind.
    pub fn new(kind: MechanismKind) -> Self {
        MechanismParams {
            kind,
            st_entries: 64,
            indexing_counters: 256,
            overflow_mode: OverflowMode::Integrated,
            fairness_threshold: None,
            signal_coalescing: true,
            signal_backoff_ns: DEFAULT_SIGNAL_BACKOFF_NS,
            message_batching: true,
            column_batching: true,
            adaptive_threshold: DEFAULT_ADAPTIVE_THRESHOLD,
        }
    }

    /// Sets the number of ST entries (Figure 22 / 23 sweeps).
    pub fn with_st_entries(mut self, entries: usize) -> Self {
        self.st_entries = entries;
        self
    }

    /// Sets the overflow-management scheme (Figure 23 comparison).
    pub fn with_overflow_mode(mut self, mode: OverflowMode) -> Self {
        self.overflow_mode = mode;
        self
    }

    /// Sets the lock-fairness threshold (Section 4.4.2 extension).
    pub fn with_fairness_threshold(mut self, threshold: u32) -> Self {
        self.fairness_threshold = Some(threshold);
        self
    }

    /// Enables or disables condvar signal coalescing / backoff.
    pub fn with_signal_coalescing(mut self, enabled: bool) -> Self {
        self.signal_coalescing = enabled;
        self
    }

    /// Sets the base NACK backoff delay in nanoseconds (`0` = NACK without delay).
    pub fn with_signal_backoff_ns(mut self, ns: u64) -> Self {
        self.signal_backoff_ns = ns;
        self
    }

    /// Enables or disables equal-timestamp message batching (a simulator
    /// optimization; results are bit-identical either way).
    pub fn with_message_batching(mut self, enabled: bool) -> Self {
        self.message_batching = enabled;
        self
    }

    /// Enables or disables column-wise processing of delivered message batches
    /// (a simulator optimization; results are bit-identical either way).
    pub fn with_column_batching(mut self, enabled: bool) -> Self {
        self.column_batching = enabled;
        self
    }

    /// Sets the contention threshold of the adaptive Central↔Hier policy.
    pub fn with_adaptive_threshold(mut self, threshold: u32) -> Self {
        self.adaptive_threshold = threshold;
        self
    }
}

/// Default base NACK backoff delay in nanoseconds (doubles per consecutive NACK up to
/// 64x this base).
pub const DEFAULT_SIGNAL_BACKOFF_NS: u64 = 200;

/// Default contention threshold of the adaptive Central↔Hier policy.
pub const DEFAULT_ADAPTIVE_THRESHOLD: u32 = 4;

impl Default for MechanismParams {
    fn default() -> Self {
        MechanismParams::new(MechanismKind::SynCron)
    }
}

/// Builds a synchronization mechanism for a system of `units × cores_per_unit` cores.
pub fn build_mechanism(
    params: &MechanismParams,
    units: usize,
    cores_per_unit: usize,
) -> Box<dyn SyncMechanism> {
    match params.kind {
        MechanismKind::Ideal => Box::new(
            crate::ideal::IdealMechanism::new().with_signal_coalescing(params.signal_coalescing),
        ),
        kind => {
            let config = ProtocolConfig::for_kind(kind, units, cores_per_unit)
                .with_st_entries(params.st_entries)
                .with_indexing_counters(params.indexing_counters)
                .with_overflow_mode(params.overflow_mode)
                .with_fairness_threshold(params.fairness_threshold)
                .with_signal_coalescing(params.signal_coalescing)
                .with_signal_backoff_ns(params.signal_backoff_ns)
                .with_message_batching(params.message_batching)
                .with_column_batching(params.column_batching)
                .with_adaptive_threshold(params.adaptive_threshold);
            Box::new(ProtocolMechanism::new(config))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_unique() {
        let mut names: Vec<&str> = MechanismKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), MechanismKind::ALL.len());
        assert_eq!(MechanismKind::SynCron.to_string(), "SynCron");
    }

    #[test]
    fn compared_set_matches_paper_figures() {
        assert_eq!(MechanismKind::COMPARED.len(), 4);
        assert!(MechanismKind::COMPARED.contains(&MechanismKind::Ideal));
        assert!(!MechanismKind::COMPARED.contains(&MechanismKind::SynCronFlat));
    }

    #[test]
    fn params_builder() {
        let p = MechanismParams::new(MechanismKind::SynCron)
            .with_st_entries(16)
            .with_overflow_mode(OverflowMode::MiSarCentral)
            .with_fairness_threshold(8);
        assert_eq!(p.st_entries, 16);
        assert_eq!(p.overflow_mode, OverflowMode::MiSarCentral);
        assert_eq!(p.fairness_threshold, Some(8));
        assert_eq!(MechanismParams::default().kind, MechanismKind::SynCron);
        assert_eq!(MechanismParams::default().st_entries, 64);
        assert_eq!(MechanismParams::default().indexing_counters, 256);
        // Signal coalescing is on by default with the documented backoff base.
        assert!(MechanismParams::default().signal_coalescing);
        assert_eq!(
            MechanismParams::default().signal_backoff_ns,
            DEFAULT_SIGNAL_BACKOFF_NS
        );
        let p = MechanismParams::default()
            .with_signal_coalescing(false)
            .with_signal_backoff_ns(50);
        assert!(!p.signal_coalescing);
        assert_eq!(p.signal_backoff_ns, 50);
        // Message batching is a pure simulator optimization, on by default.
        assert!(MechanismParams::default().message_batching);
        assert!(
            !MechanismParams::default()
                .with_message_batching(false)
                .message_batching
        );
        // Column batching layers on it, also on by default and bit-invisible.
        assert!(MechanismParams::default().column_batching);
        assert!(
            !MechanismParams::default()
                .with_column_batching(false)
                .column_batching
        );
    }

    #[test]
    fn overflow_fraction_handles_zero() {
        let s = SyncMechanismStats::default();
        assert_eq!(s.overflow_fraction(), 0.0);
        let s = SyncMechanismStats {
            acquire_requests: 10,
            overflowed_requests: 3,
            ..Default::default()
        };
        assert!((s.overflow_fraction() - 0.3).abs() < 1e-9);
    }

    #[test]
    fn build_every_kind() {
        for kind in MechanismKind::ALL {
            let m = build_mechanism(&MechanismParams::new(kind), 4, 16);
            assert!(!m.name().is_empty());
        }
    }
}
