//! Time-series motif discovery (SCRIMP-style matrix profile) on the simulated NDP
//! system — the paper's most synchronization-intensive real application. Shows how the
//! benefit of SynCron's direct ST buffering grows as the memory gets slower
//! (the Figure 18 scenario).
//!
//! ```bash
//! cargo run --release --example time_series_motifs
//! ```

use syncron::prelude::*;
use syncron::workloads::timeseries::TimeSeries;

fn main() {
    let dataset = TimeSeries::air().with_diagonals_per_core(4);
    println!(
        "SCRIMP matrix profile, dataset '{}' ({} samples, window {})\n",
        dataset.name, dataset.length, dataset.window
    );

    for tech in [MemTech::Hbm, MemTech::Hmc, MemTech::Ddr4] {
        println!("--- memory technology: {tech} ---");
        let mut hier_time = None;
        for kind in [
            MechanismKind::Hier,
            MechanismKind::SynCron,
            MechanismKind::Ideal,
        ] {
            let config = NdpConfig::builder()
                .mem_tech(tech)
                .mechanism(kind)
                .build()
                .expect("valid config");
            let report = syncron::system::run_workload(&config, &dataset);
            let vs_hier = hier_time
                .map(|t: Time| t.as_ps() as f64 / report.sim_time.as_ps() as f64)
                .unwrap_or(1.0);
            if kind == MechanismKind::Hier {
                hier_time = Some(report.sim_time);
            }
            println!(
                "  {:<10} time={:<12} speedup-vs-Hier={:<6.2} sync-memory-accesses={}",
                kind.name(),
                report.sim_time.to_string(),
                vs_hier,
                report.sync.mem_accesses,
            );
        }
    }

    println!("\nThe SynCron-vs-Hier gap should widen from HBM to DDR4: direct ST buffering");
    println!("avoids the per-request memory accesses whose cost grows with memory latency.");
}
