//! Regenerates Figure 19 of the paper (effect of better data placement).
fn main() {
    syncron_bench::experiments::sensitivity::fig19().print();
}
