//! Global simulation time base.
//!
//! Every component of the simulated NDP system runs at a different clock frequency:
//! NDP cores at 2.5 GHz, Synchronization Engines at 1 GHz, HBM at 500 MHz, the
//! inter-unit links are specified in nanoseconds. To compose them without rounding
//! surprises, the simulator keeps a single integer time unit of **picoseconds**.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

/// A point in (or duration of) simulated time, in picoseconds.
///
/// `Time` is a thin newtype over `u64`; a `u64` of picoseconds covers more than
/// 200 days of simulated time, far beyond any experiment in this repository.
///
/// # Example
///
/// ```
/// use syncron_sim::time::Time;
/// let a = Time::from_ns(40);
/// let b = Time::from_ps(400);
/// assert_eq!((a + b).as_ps(), 40_400);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Time(u64);

impl Time {
    /// The zero time (simulation start).
    pub const ZERO: Time = Time(0);
    /// The maximum representable time; used as "never"/"idle forever" sentinel.
    pub const MAX: Time = Time(u64::MAX);

    /// Creates a time value from picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        Time(ps)
    }

    /// Creates a time value from nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        Time(ns * 1_000)
    }

    /// Creates a time value from microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        Time(us * 1_000_000)
    }

    /// Creates a time value from milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        Time(ms * 1_000_000_000)
    }

    /// Returns the raw number of picoseconds.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Returns the time in nanoseconds (truncating).
    #[inline]
    pub const fn as_ns(self) -> u64 {
        self.0 / 1_000
    }

    /// Returns the time in (fractional) nanoseconds.
    #[inline]
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Returns the time in (fractional) microseconds.
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Returns the time in (fractional) milliseconds.
    #[inline]
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Returns the time in (fractional) seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// Saturating subtraction: returns `self - other`, or zero if `other > self`.
    #[inline]
    pub fn saturating_sub(self, other: Time) -> Time {
        Time(self.0.saturating_sub(other.0))
    }

    /// Checked addition; returns `None` on overflow.
    #[inline]
    pub fn checked_add(self, other: Time) -> Option<Time> {
        self.0.checked_add(other.0).map(Time)
    }

    /// Returns the larger of two times.
    #[inline]
    pub fn max(self, other: Time) -> Time {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns the smaller of two times.
    #[inline]
    pub fn min(self, other: Time) -> Time {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// Multiplies a duration by an integer factor (saturating).
    #[inline]
    pub fn saturating_mul(self, factor: u64) -> Time {
        Time(self.0.saturating_mul(factor))
    }
}

impl Add for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Time) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Time) {
        self.0 += rhs.0;
    }
}

impl Sub for Time {
    type Output = Time;
    #[inline]
    fn sub(self, rhs: Time) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ps", self.0)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}ms", self.as_ms_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}us", self.as_us_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ns", self.as_ns_f64())
        } else {
            write!(f, "{}ps", self.0)
        }
    }
}

/// A clock frequency, used to convert between cycle counts and [`Time`].
///
/// Internally the frequency is stored as the clock **period in picoseconds**, which
/// keeps every conversion exact for the frequencies used in the paper's configuration
/// (2.5 GHz → 400 ps, 1 GHz → 1000 ps, 1.25 GHz → 800 ps, 500 MHz → 2000 ps).
///
/// # Example
///
/// ```
/// use syncron_sim::time::Freq;
/// let se = Freq::ghz(1.0);
/// assert_eq!(se.cycles_to_ps(12).as_ns(), 12);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Freq {
    period_ps: u64,
}

impl Freq {
    /// Creates a frequency from a period expressed in picoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `period_ps` is zero.
    pub fn from_period_ps(period_ps: u64) -> Self {
        assert!(period_ps > 0, "clock period must be non-zero");
        Freq { period_ps }
    }

    /// Creates a frequency from a value in GHz. The period is rounded to the
    /// nearest picosecond.
    ///
    /// # Panics
    ///
    /// Panics if `ghz` is not a positive finite number.
    pub fn ghz(ghz: f64) -> Self {
        assert!(ghz.is_finite() && ghz > 0.0, "frequency must be positive");
        let period = (1000.0 / ghz).round() as u64;
        Freq::from_period_ps(period.max(1))
    }

    /// Creates a frequency from a value in MHz.
    ///
    /// # Panics
    ///
    /// Panics if `mhz` is not a positive finite number.
    pub fn mhz(mhz: f64) -> Self {
        Freq::ghz(mhz / 1000.0)
    }

    /// The clock period.
    #[inline]
    pub fn period(self) -> Time {
        Time::from_ps(self.period_ps)
    }

    /// Converts a number of cycles of this clock into simulated time.
    #[inline]
    pub fn cycles_to_ps(self, cycles: u64) -> Time {
        Time::from_ps(cycles.saturating_mul(self.period_ps))
    }

    /// Converts a duration into a number of cycles of this clock (rounding up).
    #[inline]
    pub fn ps_to_cycles(self, t: Time) -> u64 {
        t.as_ps().div_ceil(self.period_ps)
    }

    /// The frequency in GHz.
    #[inline]
    pub fn as_ghz(self) -> f64 {
        1000.0 / self.period_ps as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ps_ns_conversions() {
        assert_eq!(Time::from_ns(40).as_ps(), 40_000);
        assert_eq!(Time::from_us(2).as_ns(), 2_000);
        assert_eq!(Time::from_ms(1).as_ps(), 1_000_000_000);
        assert_eq!(Time::from_ps(1500).as_ns(), 1);
    }

    #[test]
    fn arithmetic() {
        let a = Time::from_ps(100);
        let b = Time::from_ps(40);
        assert_eq!((a + b).as_ps(), 140);
        assert_eq!((a - b).as_ps(), 60);
        assert_eq!(b.saturating_sub(a), Time::ZERO);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
        assert_eq!(a.saturating_mul(3).as_ps(), 300);
    }

    #[test]
    fn add_assign_accumulates() {
        let mut t = Time::ZERO;
        for _ in 0..10 {
            t += Time::from_ps(25);
        }
        assert_eq!(t.as_ps(), 250);
    }

    #[test]
    fn freq_paper_clocks_are_exact() {
        // Table 5: NDP cores @2.5GHz, SE SPU @1GHz, HBM @500MHz, HMC @1250MHz.
        assert_eq!(Freq::ghz(2.5).period().as_ps(), 400);
        assert_eq!(Freq::ghz(1.0).period().as_ps(), 1000);
        assert_eq!(Freq::mhz(500.0).period().as_ps(), 2000);
        assert_eq!(Freq::mhz(1250.0).period().as_ps(), 800);
    }

    #[test]
    fn cycles_round_trip() {
        let f = Freq::ghz(2.5);
        assert_eq!(f.cycles_to_ps(4).as_ps(), 1600);
        assert_eq!(f.ps_to_cycles(Time::from_ps(1600)), 4);
        // Rounds up partial cycles.
        assert_eq!(f.ps_to_cycles(Time::from_ps(1601)), 5);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", Time::from_ps(12)), "12ps");
        assert_eq!(format!("{}", Time::from_ns(40)), "40.000ns");
        assert_eq!(format!("{}", Time::from_us(3)), "3.000us");
        assert_eq!(format!("{}", Time::from_ms(7)), "7.000ms");
    }

    #[test]
    #[should_panic]
    fn zero_period_rejected() {
        let _ = Freq::from_period_ps(0);
    }
}
