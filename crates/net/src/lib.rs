//! # syncron-net
//!
//! Interconnect models for the SynCron (HPCA 2021) NDP simulator.
//!
//! The paper's system (Table 5) has two levels of interconnect with very different
//! costs, and that asymmetry is the central motivation for SynCron's hierarchical
//! design:
//!
//! * **Inside an NDP unit** — a buffered crossbar with packet flow control, a 1-cycle
//!   arbiter, 1 cycle per hop, M/D/1 queueing latency, and 0.4 pJ/bit/hop
//!   ([`crossbar::Crossbar`]).
//! * **Across NDP units** — serial interconnection links with 12.8 GB/s per direction,
//!   40 ns per cache line, an extra 20-cycle controller latency, and 4 pJ/bit
//!   ([`link::InterUnitLink`]).
//!
//! Both models account transferred bytes and energy so the evaluation can reproduce the
//! paper's data-movement (Figure 15) and energy (Figure 14) results.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod crossbar;
pub mod fault;
pub mod link;
pub mod traffic;

pub use crossbar::{Crossbar, CrossbarConfig};
pub use fault::{DedupSet, FaultConfig, FaultEngine, FaultStats, SendVerdict};
pub use link::{InterUnitLink, LinkConfig};
pub use traffic::TrafficStats;
