//! Data-movement accounting.
//!
//! Figure 15 of the paper reports data movement split into bytes transferred *inside*
//! NDP units and bytes transferred *across* NDP units. [`TrafficStats`] is the
//! accumulator both the network models and the system crate write into.

/// Bytes and messages moved through the system, split by locality.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TrafficStats {
    /// Bytes moved inside NDP units (core ↔ local memory, core ↔ local SE).
    pub intra_unit_bytes: u64,
    /// Bytes moved across NDP units (remote memory accesses, SE ↔ Master SE messages).
    pub inter_unit_bytes: u64,
    /// Messages moved inside NDP units.
    pub intra_unit_msgs: u64,
    /// Messages moved across NDP units.
    pub inter_unit_msgs: u64,
}

impl TrafficStats {
    /// Creates an empty tally.
    pub fn new() -> Self {
        TrafficStats::default()
    }

    /// Records an intra-unit transfer.
    pub fn add_intra(&mut self, bytes: u64) {
        self.intra_unit_bytes += bytes;
        self.intra_unit_msgs += 1;
    }

    /// Records an inter-unit transfer.
    pub fn add_inter(&mut self, bytes: u64) {
        self.inter_unit_bytes += bytes;
        self.inter_unit_msgs += 1;
    }

    /// Total bytes moved.
    pub fn total_bytes(&self) -> u64 {
        self.intra_unit_bytes + self.inter_unit_bytes
    }

    /// Fraction of bytes that crossed NDP units, in `[0, 1]` (0 if no traffic).
    pub fn inter_unit_fraction(&self) -> f64 {
        let total = self.total_bytes();
        if total == 0 {
            0.0
        } else {
            self.inter_unit_bytes as f64 / total as f64
        }
    }

    /// Merges another tally into this one.
    pub fn merge(&mut self, other: &TrafficStats) {
        self.intra_unit_bytes += other.intra_unit_bytes;
        self.inter_unit_bytes += other.inter_unit_bytes;
        self.intra_unit_msgs += other.intra_unit_msgs;
        self.inter_unit_msgs += other.inter_unit_msgs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_by_locality() {
        let mut t = TrafficStats::new();
        t.add_intra(64);
        t.add_intra(64);
        t.add_inter(17);
        assert_eq!(t.intra_unit_bytes, 128);
        assert_eq!(t.inter_unit_bytes, 17);
        assert_eq!(t.intra_unit_msgs, 2);
        assert_eq!(t.inter_unit_msgs, 1);
        assert_eq!(t.total_bytes(), 145);
    }

    #[test]
    fn fraction_handles_empty() {
        assert_eq!(TrafficStats::new().inter_unit_fraction(), 0.0);
        let mut t = TrafficStats::new();
        t.add_intra(50);
        t.add_inter(50);
        assert!((t.inter_unit_fraction() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn merge_sums() {
        let mut a = TrafficStats::new();
        a.add_intra(10);
        let mut b = TrafficStats::new();
        b.add_inter(20);
        a.merge(&b);
        assert_eq!(a.total_bytes(), 30);
        assert_eq!(a.inter_unit_msgs, 1);
    }
}
