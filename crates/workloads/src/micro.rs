//! Synchronization-primitive microbenchmarks (Figure 10 of the paper).
//!
//! "We devise simple benchmarks, where cores repeatedly request a single
//! synchronization variable. For lock, the critical section is empty […]. For semaphore
//! and condition variable, half of the cores execute `sem_wait`/`cond_wait`, while the
//! rest execute `sem_post`/`cond_signal`." The x-axis of Figure 10 is the number of
//! instructions between two synchronization points; these workloads expose that as the
//! `interval` parameter.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use syncron_core::request::{BarrierScope, SyncRequest};
use syncron_sim::time::Time;
use syncron_sim::{Addr, GlobalCoreId, UnitId};
use syncron_system::address::AddressSpace;
use syncron_system::config::NdpConfig;
use syncron_system::workload::{Action, CoreProgram, Workload};

/// The four primitives Figure 10 sweeps.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SyncPrimitive {
    /// `lock_acquire` / `lock_release` with an empty critical section.
    Lock,
    /// `barrier_wait` across all client cores.
    Barrier,
    /// `sem_wait` / `sem_post`, half of the cores each.
    Semaphore,
    /// `cond_wait` / `cond_signal` (plus the associated lock), half of the cores each.
    CondVar,
}

impl SyncPrimitive {
    /// All primitives in the order of Figure 10.
    pub const ALL: [SyncPrimitive; 4] = [
        SyncPrimitive::Lock,
        SyncPrimitive::Barrier,
        SyncPrimitive::Semaphore,
        SyncPrimitive::CondVar,
    ];

    /// Short name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            SyncPrimitive::Lock => "lock",
            SyncPrimitive::Barrier => "barrier",
            SyncPrimitive::Semaphore => "semaphore",
            SyncPrimitive::CondVar => "condvar",
        }
    }
}

// ---------------------------------------------------------------------------
// Lock microbenchmark
// ---------------------------------------------------------------------------

/// Every core repeatedly computes for `interval` instructions, then acquires and
/// releases one global lock with an empty critical section.
#[derive(Clone, Copy, Debug)]
pub struct LockMicrobench {
    /// Instructions between critical sections.
    pub interval: u64,
    /// Lock acquisitions per core.
    pub iterations: u32,
}

impl LockMicrobench {
    /// Creates the benchmark.
    pub fn new(interval: u64, iterations: u32) -> Self {
        LockMicrobench {
            interval,
            iterations,
        }
    }
}

#[derive(Debug)]
struct LockProgram {
    lock: Addr,
    interval: u64,
    remaining: u32,
    phase: u8,
    ops: u64,
}

impl CoreProgram for LockProgram {
    fn step(&mut self, _core: GlobalCoreId, _now: Time) -> Action {
        if self.remaining == 0 {
            return Action::Done;
        }
        match self.phase {
            0 => {
                self.phase = 1;
                Action::Compute {
                    instrs: self.interval.max(1),
                }
            }
            1 => {
                self.phase = 2;
                Action::Sync(SyncRequest::LockAcquire { var: self.lock })
            }
            _ => {
                self.phase = 0;
                self.remaining -= 1;
                self.ops += 1;
                Action::Sync(SyncRequest::LockRelease { var: self.lock })
            }
        }
    }

    fn ops_completed(&self) -> u64 {
        self.ops
    }
}

impl Workload for LockMicrobench {
    fn shard_safe(&self) -> bool {
        // Programs keep all state private; cores interact only through
        // simulated synchronization.
        true
    }

    fn name(&self) -> String {
        format!("lock-micro.i{}", self.interval)
    }

    fn build(
        &self,
        space: &mut AddressSpace,
        _config: &NdpConfig,
        clients: &[GlobalCoreId],
    ) -> Vec<Box<dyn CoreProgram>> {
        let lock = space.allocate_shared_rw(64, UnitId(0));
        clients
            .iter()
            .map(|_| {
                Box::new(LockProgram {
                    lock,
                    interval: self.interval,
                    remaining: self.iterations,
                    phase: 0,
                    ops: 0,
                }) as Box<dyn CoreProgram>
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Barrier microbenchmark
// ---------------------------------------------------------------------------

/// Every core repeatedly computes for `interval` instructions and waits on one global
/// barrier that all client cores participate in.
#[derive(Clone, Copy, Debug)]
pub struct BarrierMicrobench {
    /// Instructions between barrier episodes.
    pub interval: u64,
    /// Barrier episodes per core.
    pub iterations: u32,
}

impl BarrierMicrobench {
    /// Creates the benchmark.
    pub fn new(interval: u64, iterations: u32) -> Self {
        BarrierMicrobench {
            interval,
            iterations,
        }
    }
}

#[derive(Debug)]
struct BarrierProgram {
    barrier: Addr,
    participants: u32,
    interval: u64,
    remaining: u32,
    compute_next: bool,
    ops: u64,
}

impl CoreProgram for BarrierProgram {
    fn step(&mut self, _core: GlobalCoreId, _now: Time) -> Action {
        if self.remaining == 0 {
            return Action::Done;
        }
        if self.compute_next {
            self.compute_next = false;
            Action::Compute {
                instrs: self.interval.max(1),
            }
        } else {
            self.compute_next = true;
            self.remaining -= 1;
            self.ops += 1;
            Action::Sync(SyncRequest::BarrierWait {
                var: self.barrier,
                participants: self.participants,
                scope: BarrierScope::AcrossUnits,
            })
        }
    }

    fn ops_completed(&self) -> u64 {
        self.ops
    }
}

impl Workload for BarrierMicrobench {
    fn shard_safe(&self) -> bool {
        // Programs keep all state private; cores interact only through
        // simulated synchronization.
        true
    }

    fn name(&self) -> String {
        format!("barrier-micro.i{}", self.interval)
    }

    fn build(
        &self,
        space: &mut AddressSpace,
        _config: &NdpConfig,
        clients: &[GlobalCoreId],
    ) -> Vec<Box<dyn CoreProgram>> {
        let barrier = space.allocate_shared_rw(64, UnitId(0));
        clients
            .iter()
            .map(|_| {
                Box::new(BarrierProgram {
                    barrier,
                    participants: clients.len() as u32,
                    interval: self.interval,
                    remaining: self.iterations,
                    compute_next: true,
                    ops: 0,
                }) as Box<dyn CoreProgram>
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Semaphore microbenchmark
// ---------------------------------------------------------------------------

/// Half of the cores repeatedly `sem_wait`, the other half `sem_post`, on a single
/// semaphore.
#[derive(Clone, Copy, Debug)]
pub struct SemaphoreMicrobench {
    /// Instructions between semaphore operations.
    pub interval: u64,
    /// Operations per core.
    pub iterations: u32,
}

impl SemaphoreMicrobench {
    /// Creates the benchmark.
    pub fn new(interval: u64, iterations: u32) -> Self {
        SemaphoreMicrobench {
            interval,
            iterations,
        }
    }
}

#[derive(Debug)]
struct SemProgram {
    sem: Addr,
    interval: u64,
    remaining: u32,
    waiter: bool,
    compute_next: bool,
    ops: u64,
}

impl CoreProgram for SemProgram {
    fn step(&mut self, _core: GlobalCoreId, _now: Time) -> Action {
        if self.remaining == 0 {
            return Action::Done;
        }
        if self.compute_next {
            self.compute_next = false;
            return Action::Compute {
                instrs: self.interval.max(1),
            };
        }
        self.compute_next = true;
        self.remaining -= 1;
        self.ops += 1;
        if self.waiter {
            Action::Sync(SyncRequest::SemWait {
                var: self.sem,
                initial: 1,
            })
        } else {
            Action::Sync(SyncRequest::SemPost { var: self.sem })
        }
    }

    fn ops_completed(&self) -> u64 {
        self.ops
    }
}

impl Workload for SemaphoreMicrobench {
    fn shard_safe(&self) -> bool {
        // Programs keep all state private; cores interact only through
        // simulated synchronization.
        true
    }

    fn name(&self) -> String {
        format!("semaphore-micro.i{}", self.interval)
    }

    fn build(
        &self,
        space: &mut AddressSpace,
        _config: &NdpConfig,
        clients: &[GlobalCoreId],
    ) -> Vec<Box<dyn CoreProgram>> {
        let sem = space.allocate_shared_rw(64, UnitId(0));
        clients
            .iter()
            .enumerate()
            .map(|(i, _)| {
                Box::new(SemProgram {
                    sem,
                    interval: self.interval,
                    remaining: self.iterations,
                    // Alternate waiters and posters within each unit so both halves are
                    // spread across the system.
                    waiter: i % 2 == 0,
                    compute_next: true,
                    ops: 0,
                }) as Box<dyn CoreProgram>
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Condition-variable microbenchmark
// ---------------------------------------------------------------------------

/// Half of the cores `cond_wait` on a condition variable (with its associated lock),
/// the other half keep signalling until every wait has been satisfied.
#[derive(Clone, Copy, Debug)]
pub struct CondVarMicrobench {
    /// Instructions between condition-variable operations.
    pub interval: u64,
    /// Waits per waiting core.
    pub iterations: u32,
}

impl CondVarMicrobench {
    /// Creates the benchmark.
    pub fn new(interval: u64, iterations: u32) -> Self {
        CondVarMicrobench {
            interval,
            iterations,
        }
    }
}

#[derive(Debug)]
struct CondWaiterProgram {
    cond: Addr,
    lock: Addr,
    interval: u64,
    remaining: u32,
    phase: u8,
    pending_waits: Arc<AtomicU64>,
    ops: u64,
}

impl CoreProgram for CondWaiterProgram {
    fn step(&mut self, _core: GlobalCoreId, _now: Time) -> Action {
        if self.remaining == 0 {
            return Action::Done;
        }
        match self.phase {
            0 => {
                self.phase = 1;
                Action::Compute {
                    instrs: self.interval.max(1),
                }
            }
            1 => {
                self.phase = 2;
                Action::Sync(SyncRequest::LockAcquire { var: self.lock })
            }
            2 => {
                self.phase = 3;
                Action::Sync(SyncRequest::CondWait {
                    var: self.cond,
                    lock: self.lock,
                })
            }
            _ => {
                self.phase = 0;
                self.remaining -= 1;
                self.ops += 1;
                self.pending_waits.store(
                    self.pending_waits.load(Ordering::Relaxed).saturating_sub(1),
                    Ordering::Relaxed,
                );
                Action::Sync(SyncRequest::LockRelease { var: self.lock })
            }
        }
    }

    fn ops_completed(&self) -> u64 {
        self.ops
    }
}

/// The signaling half of the condvar benchmark.
///
/// Under signal coalescing `cond_signal` follows the delayed-grant path: the core
/// stalls until the engine's ACK (or backoff-delayed NACK) arrives, so this program
/// is only stepped again once the reply lands — possibly much later than the one
/// `req_async` cycle the paper's interface implies. The program re-checks the
/// outstanding-wait count at that point so a signaler retires as soon as the last
/// wait was satisfied while it was stalled. It always executes the full `interval`
/// compute block between signals, keeping the benchmark's "instructions between two
/// synchronization points" definition identical across mechanisms regardless of
/// their reply latencies.
#[derive(Debug)]
struct CondSignalerProgram {
    cond: Addr,
    interval: u64,
    compute_next: bool,
    pending_waits: Arc<AtomicU64>,
    ops: u64,
}

impl CoreProgram for CondSignalerProgram {
    fn step(&mut self, _core: GlobalCoreId, _now: Time) -> Action {
        if self.pending_waits.load(Ordering::Relaxed) == 0 {
            return Action::Done;
        }
        if self.compute_next {
            self.compute_next = false;
            Action::Compute {
                instrs: self.interval.max(1),
            }
        } else {
            self.compute_next = true;
            self.ops += 1;
            Action::Sync(SyncRequest::CondSignal { var: self.cond })
        }
    }

    fn ops_completed(&self) -> u64 {
        self.ops
    }
}

impl Workload for CondVarMicrobench {
    // shard_safe stays at the false default: signalers poll `pending_waits`
    // outside any simulated critical section, so their retirement point depends
    // on the real-time stepping order of the waiter programs.

    fn name(&self) -> String {
        format!("condvar-micro.i{}", self.interval)
    }

    fn build(
        &self,
        space: &mut AddressSpace,
        _config: &NdpConfig,
        clients: &[GlobalCoreId],
    ) -> Vec<Box<dyn CoreProgram>> {
        let cond = space.allocate_shared_rw(64, UnitId(0));
        let lock = space.allocate_shared_rw(64, UnitId(0));
        let waiters = (clients.len() / 2).max(1) as u64;
        let pending = Arc::new(AtomicU64::new(waiters * u64::from(self.iterations)));
        clients
            .iter()
            .enumerate()
            .map(|(i, _)| {
                if i % 2 == 0 && (i / 2) < waiters as usize {
                    Box::new(CondWaiterProgram {
                        cond,
                        lock,
                        interval: self.interval,
                        remaining: self.iterations,
                        phase: 0,
                        pending_waits: Arc::clone(&pending),
                        ops: 0,
                    }) as Box<dyn CoreProgram>
                } else {
                    Box::new(CondSignalerProgram {
                        cond,
                        interval: self.interval,
                        compute_next: true,
                        pending_waits: Arc::clone(&pending),
                        ops: 0,
                    }) as Box<dyn CoreProgram>
                }
            })
            .collect()
    }
}

/// Builds the Figure 10 microbenchmark for `primitive` with the given interval and
/// iteration count.
pub fn microbench(
    primitive: SyncPrimitive,
    interval: u64,
    iterations: u32,
) -> Box<dyn Workload + Send + Sync> {
    match primitive {
        SyncPrimitive::Lock => Box::new(LockMicrobench::new(interval, iterations)),
        SyncPrimitive::Barrier => Box::new(BarrierMicrobench::new(interval, iterations)),
        SyncPrimitive::Semaphore => Box::new(SemaphoreMicrobench::new(interval, iterations)),
        SyncPrimitive::CondVar => Box::new(CondVarMicrobench::new(interval, iterations)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use syncron_core::MechanismKind;
    use syncron_system::run_workload;

    fn config(kind: MechanismKind) -> NdpConfig {
        NdpConfig::builder()
            .units(2)
            .cores_per_unit(4)
            .mechanism(kind)
            .build()
            .expect("valid config")
    }

    #[test]
    fn lock_micro_completes_and_counts_ops() {
        let report = run_workload(
            &config(MechanismKind::SynCron),
            &LockMicrobench::new(100, 10),
        );
        assert!(report.completed);
        // 6 client cores (2 units x 3 clients) x 10 acquisitions.
        assert_eq!(report.total_ops, 60);
    }

    #[test]
    fn barrier_micro_completes_under_all_mechanisms() {
        for kind in MechanismKind::ALL {
            let report = run_workload(&config(kind), &BarrierMicrobench::new(50, 5));
            assert!(report.completed, "{kind:?}");
            assert!(report.total_ops > 0);
        }
    }

    #[test]
    fn semaphore_micro_completes() {
        for kind in [
            MechanismKind::SynCron,
            MechanismKind::Central,
            MechanismKind::Ideal,
        ] {
            let report = run_workload(&config(kind), &SemaphoreMicrobench::new(100, 8));
            assert!(report.completed, "{kind:?}");
        }
    }

    #[test]
    fn condvar_micro_completes() {
        for kind in [
            MechanismKind::SynCron,
            MechanismKind::Hier,
            MechanismKind::Ideal,
        ] {
            let report = run_workload(&config(kind), &CondVarMicrobench::new(200, 4));
            assert!(report.completed, "{kind:?}");
        }
    }

    #[test]
    fn condvar_micro_completes_within_event_budget_under_central_and_hier() {
        // Regression test for the signaler flood: before signal coalescing, the
        // signaler half of the cores re-signalled an empty condvar fast enough to
        // saturate the single Central server, and even this small configuration
        // burned millions of events. The explicit max_events budget is the assertion:
        // hitting it reports completed = false.
        for kind in [MechanismKind::Central, MechanismKind::Hier] {
            let cfg = NdpConfig::builder()
                .units(2)
                .cores_per_unit(4)
                .mechanism(kind)
                .max_events(300_000)
                .build()
                .expect("valid config");
            let report = run_workload(&cfg, &CondVarMicrobench::new(200, 8));
            assert!(
                report.completed,
                "{kind:?} blew the 300k event budget (signal coalescing regressed?)"
            );
            assert!(report.total_ops > 0, "{kind:?}");
        }
    }

    #[test]
    fn condvar_micro_completes_at_paper_geometry() {
        // The paper-scale Figure 10 condvar point that used to hit the 400M-event
        // safety limit under Central, shrunk to 2 iterations to stay CI-friendly.
        // The budget is three orders of magnitude below the old blow-up.
        for kind in [MechanismKind::Central, MechanismKind::Hier] {
            let cfg = NdpConfig::builder()
                .units(4)
                .cores_per_unit(16)
                .mechanism(kind)
                .max_events(2_000_000)
                .build()
                .expect("valid config");
            let report = run_workload(&cfg, &CondVarMicrobench::new(200, 2));
            assert!(report.completed, "{kind:?} (4x16, 60 clients)");
            assert!(
                report.sync.coalesced_signals > 0,
                "{kind:?}: coalescing active"
            );
        }
    }

    #[test]
    fn condvar_micro_still_completes_with_coalescing_disabled_at_small_scale() {
        // The knob is sweepable: with coalescing off the old fire-and-forget
        // semantics still finish at a small scale (the flood only bites at paper
        // scale), they just burn far more events.
        use syncron_core::mechanism::MechanismParams;
        let params = MechanismParams::new(MechanismKind::SynCron).with_signal_coalescing(false);
        let cfg = NdpConfig::builder()
            .units(2)
            .cores_per_unit(4)
            .mechanism_params(params)
            .build()
            .expect("valid config");
        let report = run_workload(&cfg, &CondVarMicrobench::new(200, 4));
        assert!(report.completed);
        assert_eq!(report.sync.coalesced_signals, 0);
        assert_eq!(report.sync.signal_nacks, 0);
    }

    #[test]
    fn shorter_interval_is_more_sync_intensive() {
        // With a shorter compute interval, synchronization dominates and SynCron's
        // advantage over Central grows (the trend of Figure 10).
        let short_central = run_workload(
            &config(MechanismKind::Central),
            &LockMicrobench::new(50, 20),
        );
        let short_syncron = run_workload(
            &config(MechanismKind::SynCron),
            &LockMicrobench::new(50, 20),
        );
        let long_central = run_workload(
            &config(MechanismKind::Central),
            &LockMicrobench::new(5000, 20),
        );
        let long_syncron = run_workload(
            &config(MechanismKind::SynCron),
            &LockMicrobench::new(5000, 20),
        );
        let short_speedup = short_syncron.speedup_over(&short_central);
        let long_speedup = long_syncron.speedup_over(&long_central);
        assert!(
            short_speedup > 1.0,
            "SynCron should beat Central: {short_speedup}"
        );
        assert!(
            short_speedup > long_speedup,
            "benefit should shrink with longer intervals ({short_speedup:.2} vs {long_speedup:.2})"
        );
    }

    #[test]
    fn primitive_names() {
        assert_eq!(SyncPrimitive::ALL.len(), 4);
        assert_eq!(SyncPrimitive::Lock.name(), "lock");
        let wl = microbench(SyncPrimitive::Barrier, 100, 2);
        assert!(wl.name().contains("barrier"));
    }
}
