//! The Synchronization Table (ST).
//!
//! Section 4.2.2 of the paper: each Synchronization Engine contains a 64-entry ST.
//! Each entry holds (i) the 64-bit address of a synchronization variable, (ii) a
//! *global waiting list* — one bit per SE of the system, used by the Master SE,
//! (iii) a *local waiting list* — one bit per NDP core of the unit, (iv) a free/occupied
//! state bit, and (v) a 64-bit `TableInfo` field whose meaning depends on the primitive
//! (lock owner, barrier arrival count, available semaphore resources, or the lock
//! address associated with a condition variable).
//!
//! The ST is the structure that gives SynCron its *direct buffering* property: as long
//! as a variable has an ST entry, no memory access is needed to synchronize on it.
//! Occupancy of the ST is reported in Table 7 of the paper and swept in Figure 22.

use crate::request::PrimitiveKind;
use syncron_sim::stats::TimeWeighted;
use syncron_sim::time::Time;
use syncron_sim::FxHashMap;
use syncron_sim::{Addr, BitQueue, CoreId, UnitId};

/// A hardware bit queue holding one bit per waiter (local NDP cores or SEs).
///
/// Backed by [`BitQueue`]: waitlists of up to 64 waiters (the paper's geometry) stay
/// inline in one machine word; larger geometries spill to a boxed word slice instead
/// of silently aliasing waiter indices modulo 64 the way the old fixed-width `u64`
/// mask did. [`SynchronizationTable`] pre-sizes the waitlists of fresh entries for
/// the configured geometry so the pop/wake hot path never allocates.
pub type Waitlist = BitQueue;

/// Per-primitive `TableInfo` field of an ST entry (Figure 7 of the paper).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum TableInfo {
    /// Lock: the current owner — either a local core or a remote SE.
    LockOwner {
        /// Owning SE (global ID), when the lock is held by another NDP unit.
        global: Option<UnitId>,
        /// Owning local core (local ID), when the lock is held within this unit.
        local: Option<CoreId>,
    },
    /// Barrier: number of cores that have arrived so far.
    BarrierCount(u32),
    /// Semaphore: number of available resources.
    SemResources(i64),
    /// Condition variable: address of the associated lock, plus the coalesced
    /// pending-signal count of the signal-coalescing extension (signals that arrived
    /// with no queued waiter and have not yet been consumed by a later `cond_wait`).
    /// The count packs into `TableInfo` bits the 64-bit lock address leaves unused
    /// (synchronization variables are cache-line aligned), so the entry width of
    /// Figure 7 is unchanged.
    CondLock {
        /// Address of the associated lock.
        lock: Addr,
        /// Signals banked while no waiter was queued.
        pending_signals: u16,
    },
}

/// One Synchronization Table entry.
#[derive(Clone, PartialEq, Eq, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct StEntry {
    /// Address of the synchronization variable buffered by this entry.
    pub addr: Addr,
    /// Global waiting list: one bit per SE of the system (used by the Master SE).
    pub global_waitlist: Waitlist,
    /// Local waiting list: one bit per NDP core of this unit.
    pub local_waitlist: Waitlist,
    /// Primitive-specific information.
    pub info: TableInfo,
    /// Primitive kind tracked by this entry.
    pub kind: PrimitiveKind,
}

impl StEntry {
    /// Size of one entry in bits (Figure 7): 64 address + 4 global + 16 local +
    /// 1 state + 64 TableInfo = 149 bits for the paper's 4-unit / 16-core configuration.
    pub fn bits(units: usize, cores_per_unit: usize) -> u32 {
        64 + units as u32 + cores_per_unit as u32 + 1 + 64
    }
}

/// The Synchronization Table of one Synchronization Engine.
///
/// # Example
///
/// ```
/// use syncron_core::table::SynchronizationTable;
/// use syncron_core::request::PrimitiveKind;
/// use syncron_sim::{Addr, Time};
///
/// let mut st = SynchronizationTable::new(64);
/// assert!(st.allocate(Time::ZERO, Addr(0x40), PrimitiveKind::Lock).is_some());
/// assert!(st.lookup(Addr(0x40)).is_some());
/// st.release(Time::from_ns(10), Addr(0x40));
/// assert!(st.lookup(Addr(0x40)).is_none());
/// ```
#[derive(Clone, Debug)]
pub struct SynchronizationTable {
    entries: Vec<Option<StEntry>>,
    occupancy: TimeWeighted,
    occupied: usize,
    allocations: u64,
    rejections: u64,
    /// Bits to pre-size the global waitlist of fresh entries for (one per SE).
    global_waiter_bits: usize,
    /// Bits to pre-size the local waitlist of fresh entries for (one per NDP core).
    local_waiter_bits: usize,
    /// Address -> slot index of the occupied entries. The hardware performs this
    /// match associatively in one cycle; scanning all entries per lookup made the
    /// ST the hottest structure of the simulator, so the model keeps a side index
    /// (behaviour, including which slot an allocation picks, is unchanged).
    index: FxHashMap<Addr, u32>,
}

impl SynchronizationTable {
    /// Creates an empty ST with `capacity` entries (the paper uses 64; Figure 22
    /// sweeps 8–64, Figure 23 up to 256). Waitlists are pre-sized for the paper's
    /// machine word; use [`SynchronizationTable::with_waiter_hint`] for larger
    /// geometries.
    pub fn new(capacity: usize) -> Self {
        Self::with_waiter_hint(capacity, 64, 64)
    }

    /// Creates an empty ST whose entries pre-size their waitlists for `global_bits`
    /// SEs and `local_bits` cores per unit, so that tracking waiters on the hot
    /// pop/wake path never allocates even beyond 64 waiters.
    pub fn with_waiter_hint(capacity: usize, global_bits: usize, local_bits: usize) -> Self {
        SynchronizationTable {
            entries: vec![None; capacity.max(1)],
            occupancy: TimeWeighted::new(),
            occupied: 0,
            allocations: 0,
            rejections: 0,
            global_waiter_bits: global_bits,
            local_waiter_bits: local_bits,
            index: FxHashMap::default(),
        }
    }

    /// Total number of entries.
    pub fn capacity(&self) -> usize {
        self.entries.len()
    }

    /// Number of currently occupied entries.
    pub fn occupied(&self) -> usize {
        self.occupied
    }

    /// Returns `true` if every entry is occupied.
    pub fn is_full(&self) -> bool {
        self.occupied == self.entries.len()
    }

    /// Looks up the entry for `addr`, if present.
    pub fn lookup(&self, addr: Addr) -> Option<&StEntry> {
        let slot = *self.index.get(&addr)?;
        self.entries[slot as usize].as_ref()
    }

    /// Looks up the entry for `addr` mutably, if present.
    pub fn lookup_mut(&mut self, addr: Addr) -> Option<&mut StEntry> {
        let slot = *self.index.get(&addr)?;
        self.entries[slot as usize].as_mut()
    }

    /// Allocates an entry for `addr`. Returns `None` (and counts a rejection) if the
    /// table is full; the caller must then fall back to the overflow path.
    ///
    /// If an entry for `addr` already exists it is returned unchanged.
    pub fn allocate(&mut self, now: Time, addr: Addr, kind: PrimitiveKind) -> Option<&mut StEntry> {
        if self.index.contains_key(&addr) {
            return self.lookup_mut(addr);
        }
        // First-free-slot choice is part of the modelled behaviour; keep the scan.
        let free = self.entries.iter().position(|e| e.is_none());
        match free {
            Some(slot) => {
                let info = match kind {
                    PrimitiveKind::Lock => TableInfo::LockOwner {
                        global: None,
                        local: None,
                    },
                    PrimitiveKind::Barrier => TableInfo::BarrierCount(0),
                    PrimitiveKind::Semaphore => TableInfo::SemResources(0),
                    PrimitiveKind::CondVar => TableInfo::CondLock {
                        lock: Addr(0),
                        pending_signals: 0,
                    },
                };
                self.entries[slot] = Some(StEntry {
                    addr,
                    global_waitlist: Waitlist::with_capacity(self.global_waiter_bits),
                    local_waitlist: Waitlist::with_capacity(self.local_waiter_bits),
                    info,
                    kind,
                });
                self.index.insert(addr, slot as u32);
                self.occupied += 1;
                self.allocations += 1;
                self.occupancy.update(now, self.occupied as f64);
                self.entries[slot].as_mut()
            }
            None => {
                self.rejections += 1;
                None
            }
        }
    }

    /// Releases the entry for `addr` (no-op if absent).
    pub fn release(&mut self, now: Time, addr: Addr) {
        if let Some(slot) = self.index.remove(&addr) {
            debug_assert!(self.entries[slot as usize]
                .as_ref()
                .is_some_and(|e| e.addr == addr));
            self.entries[slot as usize] = None;
            self.occupied -= 1;
            self.occupancy.update(now, self.occupied as f64);
        }
    }

    /// Number of successful allocations so far.
    pub fn allocations(&self) -> u64 {
        self.allocations
    }

    /// Number of allocation attempts rejected because the table was full.
    pub fn rejections(&self) -> u64 {
        self.rejections
    }

    /// Maximum occupancy observed, as a fraction of capacity.
    pub fn max_occupancy(&self) -> f64 {
        self.occupancy.max() / self.capacity() as f64
    }

    /// Time-weighted average occupancy until `end`, as a fraction of capacity.
    pub fn avg_occupancy(&self, end: Time) -> f64 {
        self.occupancy.average_until(end) / self.capacity() as f64
    }

    /// Iterates over the occupied entries.
    pub fn iter(&self) -> impl Iterator<Item = &StEntry> {
        self.entries.iter().flatten()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waitlist_set_clear_pop() {
        let mut w = Waitlist::EMPTY;
        assert!(w.is_empty());
        w.set(3);
        w.set(7);
        assert!(w.contains(3));
        assert!(!w.contains(4));
        assert_eq!(w.count(), 2);
        assert_eq!(w.first(), Some(3));
        assert_eq!(w.pop_first(), Some(3));
        assert_eq!(w.pop_first(), Some(7));
        assert_eq!(w.pop_first(), None);
        assert!(w.is_empty());
    }

    #[test]
    fn waitlist_tracks_waiters_beyond_the_hardware_word() {
        // Regression: the old `Waitlist(u64)` wrapped `1u64 << index` for indices at
        // or beyond 64, silently aliasing waiter 64 onto waiter 0 (release builds) or
        // panicking (debug builds). The grown geometry must track every index
        // distinctly.
        for count in [65usize, 128, 4096] {
            let mut w = Waitlist::EMPTY;
            for i in 0..count {
                w.set(i);
            }
            assert_eq!(w.count() as usize, count, "{count} waiters");
            // FIFO-by-index service order, each waiter exactly once.
            for expect in 0..count {
                assert_eq!(w.pop_first(), Some(expect), "{count} waiters");
            }
            assert!(w.is_empty());
        }
    }

    #[test]
    fn waiter_hints_pre_size_fresh_entries() {
        let mut st = SynchronizationTable::with_waiter_hint(4, 16, 256);
        let entry = st
            .allocate(Time::ZERO, Addr(0x40), PrimitiveKind::Lock)
            .unwrap();
        assert!(entry.local_waitlist.capacity() >= 256);
        // Setting the highest local waiter bit never grows the pre-sized storage.
        let before = entry.local_waitlist.capacity();
        entry.local_waitlist.set(255);
        assert_eq!(entry.local_waitlist.capacity(), before);
    }

    #[test]
    fn entry_size_matches_figure7() {
        // 4 SEs, 16 cores per unit → 149 bits per entry.
        assert_eq!(StEntry::bits(4, 16), 149);
    }

    #[test]
    fn st_capacity_64_total_size_matches_table5() {
        // Table 5 reports the ST as 1192 bytes for 64 entries: 64 * 149 bits = 9536 bits
        // = 1192 bytes.
        let bits = 64 * StEntry::bits(4, 16) as usize;
        assert_eq!(bits / 8, 1192);
    }

    #[test]
    fn allocate_lookup_release() {
        let mut st = SynchronizationTable::new(4);
        assert!(st
            .allocate(Time::ZERO, Addr(0x100), PrimitiveKind::Lock)
            .is_some());
        assert_eq!(st.occupied(), 1);
        assert!(st.lookup(Addr(0x100)).is_some());
        // Re-allocating the same address does not consume another entry.
        assert!(st
            .allocate(Time::ZERO, Addr(0x100), PrimitiveKind::Lock)
            .is_some());
        assert_eq!(st.occupied(), 1);
        st.release(Time::from_ns(5), Addr(0x100));
        assert_eq!(st.occupied(), 0);
        assert!(st.lookup(Addr(0x100)).is_none());
    }

    #[test]
    fn full_table_rejects() {
        let mut st = SynchronizationTable::new(2);
        assert!(st
            .allocate(Time::ZERO, Addr(0x40), PrimitiveKind::Lock)
            .is_some());
        assert!(st
            .allocate(Time::ZERO, Addr(0x80), PrimitiveKind::Barrier)
            .is_some());
        assert!(st.is_full());
        assert!(st
            .allocate(Time::ZERO, Addr(0xC0), PrimitiveKind::Lock)
            .is_none());
        assert_eq!(st.rejections(), 1);
        // Releasing one entry makes room again.
        st.release(Time::from_ns(1), Addr(0x40));
        assert!(st
            .allocate(Time::from_ns(2), Addr(0xC0), PrimitiveKind::Lock)
            .is_some());
    }

    #[test]
    fn occupancy_statistics() {
        let mut st = SynchronizationTable::new(4);
        st.allocate(Time::ZERO, Addr(0x40), PrimitiveKind::Lock);
        st.allocate(Time::ZERO, Addr(0x80), PrimitiveKind::Lock);
        st.release(Time::from_ns(50), Addr(0x40));
        st.release(Time::from_ns(100), Addr(0x80));
        // Max occupancy was 2/4 = 0.5.
        assert!((st.max_occupancy() - 0.5).abs() < 1e-9);
        let avg = st.avg_occupancy(Time::from_ns(100));
        assert!(avg > 0.0 && avg <= 0.5, "avg {avg}");
    }

    #[test]
    fn table_info_defaults_per_primitive() {
        let mut st = SynchronizationTable::new(8);
        let lock = st
            .allocate(Time::ZERO, Addr(0x40), PrimitiveKind::Lock)
            .unwrap();
        assert!(matches!(
            lock.info,
            TableInfo::LockOwner {
                global: None,
                local: None
            }
        ));
        let bar = st
            .allocate(Time::ZERO, Addr(0x80), PrimitiveKind::Barrier)
            .unwrap();
        assert!(matches!(bar.info, TableInfo::BarrierCount(0)));
        let sem = st
            .allocate(Time::ZERO, Addr(0xC0), PrimitiveKind::Semaphore)
            .unwrap();
        assert!(matches!(sem.info, TableInfo::SemResources(0)));
        let cond = st
            .allocate(Time::ZERO, Addr(0x140), PrimitiveKind::CondVar)
            .unwrap();
        assert!(matches!(
            cond.info,
            TableInfo::CondLock {
                lock: Addr(0),
                pending_signals: 0
            }
        ));
        assert_eq!(st.iter().count(), 4);
    }

    #[test]
    fn cond_entry_tracks_pending_signals() {
        let mut st = SynchronizationTable::new(4);
        st.allocate(Time::ZERO, Addr(0x140), PrimitiveKind::CondVar);
        let entry = st.lookup_mut(Addr(0x140)).unwrap();
        if let TableInfo::CondLock {
            lock,
            pending_signals,
        } = &mut entry.info
        {
            *lock = Addr(0x180);
            *pending_signals = 3;
        } else {
            panic!("condvar entry must carry CondLock info");
        }
        assert!(matches!(
            st.lookup(Addr(0x140)).unwrap().info,
            TableInfo::CondLock {
                lock: Addr(0x180),
                pending_signals: 3
            }
        ));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use syncron_sim::SimRng;

    // Deterministic stand-ins for proptest properties (no crates.io access): many
    // randomized op sequences driven by the in-tree RNG.

    /// Occupancy never exceeds capacity, lookups find exactly the live entries, and
    /// allocations minus releases equals the occupied count.
    #[test]
    fn st_invariants() {
        for case in 0..64u64 {
            let mut rng = SimRng::seed_from(0x57_0000 + case);
            let ops = 1 + rng.gen_range(299) as usize;
            let mut st = SynchronizationTable::new(8);
            let mut live: std::collections::HashSet<u64> = std::collections::HashSet::new();
            let mut t = 0u64;
            for _ in 0..ops {
                t += 1;
                let slot = rng.gen_range(32);
                let addr = Addr(slot * 64);
                if rng.gen_bool(0.5) {
                    if st
                        .allocate(Time::from_ns(t), addr, PrimitiveKind::Lock)
                        .is_some()
                    {
                        live.insert(slot);
                    }
                } else {
                    st.release(Time::from_ns(t), addr);
                    live.remove(&slot);
                }
                assert!(st.occupied() <= st.capacity());
                assert_eq!(st.occupied(), live.len());
                for &s in &live {
                    assert!(st.lookup(Addr(s * 64)).is_some());
                }
            }
        }
    }

    /// Waitlist set/clear behaves like a set of small integers.
    #[test]
    fn waitlist_matches_model() {
        for case in 0..64u64 {
            let mut rng = SimRng::seed_from(0x3A17_0000 + case);
            let ops = 1 + rng.gen_range(199) as usize;
            let mut w = Waitlist::EMPTY;
            let mut model = std::collections::BTreeSet::new();
            for _ in 0..ops {
                let idx = rng.gen_range(16) as usize;
                if rng.gen_bool(0.5) {
                    w.set(idx);
                    model.insert(idx);
                } else {
                    w.clear(idx);
                    model.remove(&idx);
                }
                assert_eq!(w.count() as usize, model.len());
                assert_eq!(w.first(), model.iter().next().copied());
                for i in 0..16 {
                    assert_eq!(w.contains(i), model.contains(&i));
                }
            }
        }
    }
}
