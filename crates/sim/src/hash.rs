//! Deterministic fast hashing for simulator-internal maps.
//!
//! `std`'s default `HashMap` hasher (SipHash-1-3 with a per-process random key)
//! costs tens of nanoseconds per lookup and randomizes iteration order between
//! processes. Simulator state keyed by small integer-like keys (addresses, core
//! IDs, tokens) sits on the per-event hot path and needs neither HashDoS
//! protection nor per-process randomization — the opposite: a fixed key makes
//! runs reproducible byte-for-byte across processes.
//!
//! [`FxHasher`] is the Firefox/rustc `FxHash` function: one rotate, one xor and
//! one multiply per 8-byte word, seeded identically in every process. Use the
//! [`FxHashMap`]/[`FxHashSet`] aliases for any map the event loop touches.
//!
//! Results of simulations MUST NOT depend on map iteration order (with any
//! hasher); these aliases only make lookups cheap and iteration order stable per
//! build, they do not make iteration order a contract.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// The `FxHash` multiplier (golden-ratio derived, as in rustc's `FxHasher`).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, deterministic, non-cryptographic hasher for simulator maps.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        // The multiply pushes entropy towards the high bits, but hashbrown picks
        // buckets from the LOW bits — fold the high half back down and re-spread,
        // or 64-byte-aligned address keys would collide into a handful of buckets.
        let h = self.hash;
        (h ^ (h >> 32)).wrapping_mul(SEED)
    }
}

/// A `HashMap` using the deterministic [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// A `HashSet` using the deterministic [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_hashers() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u64(0xDEAD_BEEF);
        b.write_u64(0xDEAD_BEEF);
        assert_eq!(a.finish(), b.finish());
        // Fixed function, fixed value: pin one hash so accidental algorithm
        // changes (which would silently reorder iteration everywhere) show up.
        let mut c = FxHasher::default();
        c.write_u64(1);
        // (0.rotate_left(5) ^ 1) * SEED, folded by the finish mix.
        let state = super::SEED;
        assert_eq!(
            c.finish(),
            (state ^ (state >> 32)).wrapping_mul(super::SEED)
        );
    }

    #[test]
    fn distributes_small_keys() {
        // 64-byte-aligned addresses (the dominant key shape) should not collide
        // into a handful of buckets.
        let mut set = std::collections::BTreeSet::new();
        for i in 0..1024u64 {
            let mut h = FxHasher::default();
            h.write_u64(i * 64);
            set.insert(h.finish() % 1024);
        }
        assert!(set.len() > 512, "only {} distinct buckets", set.len());
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut map: FxHashMap<u64, &str> = FxHashMap::default();
        map.insert(7, "seven");
        assert_eq!(map.get(&7), Some(&"seven"));
        let mut set: FxHashSet<u64> = FxHashSet::default();
        set.insert(7);
        assert!(set.contains(&7));
    }

    #[test]
    fn partial_writes_cover_all_bytes() {
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 4]);
        assert_ne!(a.finish(), b.finish());
    }
}
