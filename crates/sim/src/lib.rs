//! # syncron-sim
//!
//! Deterministic discrete-event simulation kernel used by every other crate of the
//! SynCron reproduction (HPCA 2021).
//!
//! The crate provides the small set of primitives that the memory, network,
//! synchronization and system crates are built on:
//!
//! * [`time`] — the global time base. All models operate on a single integer time
//!   unit of **picoseconds** ([`time::Time`]) so that components running at different
//!   clock frequencies (2.5 GHz NDP cores, 1 GHz Synchronization Engines, 500 MHz HBM)
//!   can be composed without fractional cycles.
//! * [`ids`] — strongly-typed identifiers for NDP units, per-unit cores, and
//!   system-global cores, plus physical addresses.
//! * [`bitqueue`] — a growable, allocation-light waiter bit queue (inline `u64` fast
//!   path, spilling past 64 bits) backing the Synchronization Table waiting lists.
//! * [`event`] — a stable (FIFO-within-timestamp) event queue with two
//!   interchangeable, order-identical backends: a hierarchical calendar queue
//!   (time wheel, the default) and the reference binary heap it is differentially
//!   tested against.
//! * [`rng`] — a small, fully deterministic `SplitMix64`/`xoshiro256**` random number
//!   generator so simulations are reproducible regardless of platform.
//! * [`stats`] — counters, running statistics, histograms and time-weighted averages
//!   used for the evaluation reports (energy, traffic, occupancy).
//! * [`queueing`] — the M/D/1 queueing-delay model used by the paper for the
//!   intra-unit crossbar (Table 5 of the paper).
//! * [`shard`] — conservative-PDES building blocks (shard map, stable event
//!   keys, cross-shard mailboxes, the two-phase window barrier) used by the
//!   system crate's sharded execution mode.
//!
//! # Example
//!
//! ```
//! use syncron_sim::event::EventQueue;
//! use syncron_sim::time::{Time, Freq};
//!
//! let core = Freq::ghz(2.5);
//! let mut q: EventQueue<&'static str> = EventQueue::new();
//! q.push(core.cycles_to_ps(4), "l1-hit");
//! q.push(core.cycles_to_ps(1), "issue");
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!(ev, "issue");
//! assert_eq!(t, Time::from_ps(400));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod bitqueue;
pub mod event;
pub mod hash;
pub mod ids;
pub mod queueing;
pub mod rng;
pub mod shard;
pub mod stats;
pub mod time;

pub use bitqueue::BitQueue;
pub use event::{CalendarParams, EventQueue, SchedulerKind};
pub use hash::{FxHashMap, FxHashSet};
pub use ids::{Addr, CoreId, GlobalCoreId, UnitId};
pub use rng::SimRng;
pub use time::{Freq, Time};
