//! Intra-unit buffered crossbar model.
//!
//! Table 5 of the paper: "buffered crossbar network with packet flow control; 1-cycle
//! arbiter; 1-cycle per hop; 0.4 pJ/bit per hop; M/D/1 model for queueing latency".
//!
//! The model composes a fixed pipeline latency (arbiter + hops) with an analytic
//! M/D/1 queueing delay whose arrival rate is measured online from the packet stream
//! crossing the crossbar. The measured-load approach lets contention phases (e.g. all
//! 16 cores hammering the local Synchronization Engine) see growing queueing delay
//! without simulating individual flits.

use syncron_sim::queueing::{md1_wait_with_mu, Memo2, RateTracker};
use syncron_sim::stats::Counter;
use syncron_sim::time::{Freq, Time};

/// Configuration of an intra-unit crossbar.
#[derive(Clone, Copy, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CrossbarConfig {
    /// Core/network clock used for the arbiter and hop cycles.
    pub clock: Freq,
    /// Arbiter latency in cycles (Table 5: 1).
    pub arbiter_cycles: u64,
    /// Number of hops a packet traverses on average (request + response paths are
    /// charged separately by the caller).
    pub hops: u64,
    /// Flit width in bytes; a packet of `n` bytes occupies the switch for
    /// `ceil(n / flit_bytes)` cycles.
    pub flit_bytes: u64,
    /// Energy per bit per hop, in picojoules (Table 5: 0.4 pJ/bit/hop).
    pub pj_per_bit_hop: f64,
    /// Maximum utilization the M/D/1 model is evaluated at (stability clamp).
    pub max_utilization: f64,
}

impl Default for CrossbarConfig {
    fn default() -> Self {
        CrossbarConfig {
            clock: Freq::ghz(2.5),
            arbiter_cycles: 1,
            hops: 2,
            flit_bytes: 16,
            pj_per_bit_hop: 0.4,
            max_utilization: 0.95,
        }
    }
}

/// Traffic and energy counters of a [`Crossbar`].
#[derive(Clone, Copy, Debug, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CrossbarStats {
    /// Packets transferred.
    pub packets: Counter,
    /// Bytes transferred.
    pub bytes: Counter,
    /// Accumulated queueing delay (for average-latency reporting).
    pub queueing_ps: Counter,
}

/// The intra-unit crossbar connecting NDP cores, the Synchronization Engine and the
/// memory controller of one NDP unit.
///
/// # Example
///
/// ```
/// use syncron_net::crossbar::{Crossbar, CrossbarConfig};
/// use syncron_sim::Time;
///
/// let mut xbar = Crossbar::new(CrossbarConfig::default());
/// let latency = xbar.transfer(Time::ZERO, 64);
/// assert!(latency >= Time::from_ps(3 * 400)); // arbiter + 2 hops at 2.5 GHz
/// assert_eq!(xbar.stats().bytes.get(), 64);
/// ```
#[derive(Clone, Debug)]
pub struct Crossbar {
    config: CrossbarConfig,
    rate: RateTracker,
    stats: CrossbarStats,
    energy_pj: f64,
    /// Arbiter + hop latency, fixed by the configuration; computed once instead of
    /// per packet.
    pipeline: Time,
    /// Memoized `bytes → (service time, service rate)`: a hit skips the flit
    /// division and — via [`md1_wait_with_mu`] — the `1.0 / service` divide of
    /// the M/D/1 model, without changing a bit of any result.
    service_memo: Memo2<(Time, f64)>,
}

impl Crossbar {
    /// Creates an idle crossbar.
    pub fn new(config: CrossbarConfig) -> Self {
        Crossbar {
            config,
            // Measure load over a 2 µs window: long enough to smooth individual
            // packets, short enough to follow contention phases.
            rate: RateTracker::new(Time::from_us(2)),
            stats: CrossbarStats::default(),
            energy_pj: 0.0,
            pipeline: config
                .clock
                .cycles_to_ps(config.arbiter_cycles + config.hops),
            service_memo: Memo2::new(),
        }
    }

    /// The crossbar's configuration.
    pub fn config(&self) -> &CrossbarConfig {
        &self.config
    }

    /// Transfers a packet of `bytes` across the crossbar at time `now` and returns the
    /// latency the packet experiences (pipeline + serialization + queueing).
    pub fn transfer(&mut self, now: Time, bytes: u64) -> Time {
        let cfg = &self.config;
        let (service, mu) = self.service_memo.get_or_insert_with(bytes, || {
            let flits = bytes.div_ceil(cfg.flit_bytes).max(1);
            let service = cfg.clock.cycles_to_ps(flits);
            // Exactly the reciprocal md1_wait would compute; memoizing it is what
            // makes the per-packet M/D/1 evaluation two divides instead of three.
            let mu = if service == Time::ZERO {
                0.0
            } else {
                1.0 / (service.as_ps() as f64)
            };
            (service, mu)
        });
        let pipeline = self.pipeline;

        let lambda = self.rate.record_and_rate(now);
        let queueing = if service == Time::ZERO {
            Time::ZERO
        } else {
            md1_wait_with_mu(lambda, mu, cfg.max_utilization)
        };

        self.stats.packets.inc();
        self.stats.bytes.add(bytes);
        self.stats.queueing_ps.add(queueing.as_ps());
        self.energy_pj += bytes as f64 * 8.0 * cfg.pj_per_bit_hop * cfg.hops as f64;

        pipeline + service + queueing
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &CrossbarStats {
        &self.stats
    }

    /// Total crossbar energy in picojoules.
    pub fn energy_pj(&self) -> f64 {
        self.energy_pj
    }

    /// Average queueing delay per packet.
    pub fn avg_queueing(&self) -> Time {
        let pkts = self.stats.packets.get();
        self.stats
            .queueing_ps
            .get()
            .checked_div(pkts)
            .map_or(Time::ZERO, Time::from_ps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_latency_matches_pipeline() {
        let mut xbar = Crossbar::new(CrossbarConfig::default());
        // A single 16-byte packet on an idle crossbar: 1 arbiter + 2 hops + 1 flit cycle.
        let lat = xbar.transfer(Time::ZERO, 16);
        assert_eq!(lat, Time::from_ps(4 * 400));
    }

    #[test]
    fn larger_packets_take_longer() {
        let mut a = Crossbar::new(CrossbarConfig::default());
        let mut b = Crossbar::new(CrossbarConfig::default());
        let small = a.transfer(Time::ZERO, 16);
        let large = b.transfer(Time::ZERO, 64);
        assert!(large > small);
    }

    #[test]
    fn queueing_grows_under_load() {
        let mut xbar = Crossbar::new(CrossbarConfig::default());
        let idle = xbar.transfer(Time::ZERO, 64);
        // Hammer the crossbar with a packet every nanosecond.
        let mut last = Time::ZERO;
        for i in 1..2000u64 {
            last = xbar.transfer(Time::from_ns(i), 64);
        }
        assert!(
            last > idle,
            "loaded latency {last} should exceed idle {idle}"
        );
        assert!(xbar.avg_queueing() > Time::ZERO);
    }

    #[test]
    fn memoized_fast_path_matches_unmemoized_model() {
        // Drive the crossbar and a hand-rolled (RateTracker + md1_wait) reference
        // in lockstep over a bursty, repeating packet stream: the Md1Cache /
        // record_and_rate fast path must reproduce every latency bit for bit.
        use syncron_sim::queueing::{md1_wait, RateTracker};
        let cfg = CrossbarConfig::default();
        let mut xbar = Crossbar::new(cfg);
        let mut rate = RateTracker::new(Time::from_us(2));
        for round in 0..50u64 {
            for (offset, bytes) in [(0u64, 16u64), (0, 16), (3, 64), (40, 16), (40, 64)] {
                let now = Time::from_ns(round * 200 + offset);
                let flits = bytes.div_ceil(cfg.flit_bytes).max(1);
                let service = cfg.clock.cycles_to_ps(flits);
                let pipeline = cfg.clock.cycles_to_ps(cfg.arbiter_cycles + cfg.hops);
                rate.record(now);
                let lambda = rate.rate_per_ps(now);
                let expected = pipeline + service + md1_wait(lambda, service, cfg.max_utilization);
                assert_eq!(xbar.transfer(now, bytes), expected, "round {round}");
            }
        }
    }

    #[test]
    fn energy_proportional_to_bytes_and_hops() {
        let cfg = CrossbarConfig::default();
        let mut xbar = Crossbar::new(cfg);
        xbar.transfer(Time::ZERO, 100);
        let expected = 100.0 * 8.0 * cfg.pj_per_bit_hop * cfg.hops as f64;
        assert!((xbar.energy_pj() - expected).abs() < 1e-9);
    }

    #[test]
    fn stats_accumulate() {
        let mut xbar = Crossbar::new(CrossbarConfig::default());
        for i in 0..10u64 {
            xbar.transfer(Time::from_ns(i * 100), 32);
        }
        assert_eq!(xbar.stats().packets.get(), 10);
        assert_eq!(xbar.stats().bytes.get(), 320);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use syncron_sim::SimRng;

    /// Latency is always at least the unloaded pipeline latency and finite.
    ///
    /// Deterministic stand-in for a proptest property (no crates.io access).
    #[test]
    fn latency_bounded_below() {
        for case in 0..64u64 {
            let mut rng = SimRng::seed_from(0x8BA7_0000 + case);
            let count = 1 + rng.gen_range(199) as usize;
            let mut pkts: Vec<(u64, u64)> = (0..count)
                .map(|_| (rng.gen_range(1_000_000), 1 + rng.gen_range(255)))
                .collect();
            let cfg = CrossbarConfig::default();
            let mut xbar = Crossbar::new(cfg);
            let floor = cfg.clock.cycles_to_ps(cfg.arbiter_cycles + cfg.hops + 1);
            pkts.sort();
            for &(t, bytes) in &pkts {
                let lat = xbar.transfer(Time::from_ps(t), bytes);
                assert!(lat >= floor);
                assert!(lat < Time::from_ms(1));
            }
        }
    }
}
