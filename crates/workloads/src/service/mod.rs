//! Open-loop service workloads: production-shaped traffic for the NDP system.
//!
//! Every other workload in this crate is *closed-loop*: each core issues its next
//! operation as soon as the previous one finishes, so the offered load adapts
//! itself to whatever the synchronization mechanism can sustain and per-operation
//! latency is meaningless. This module family models the opposite regime — an
//! *open-loop* service where requests arrive on their own clock regardless of
//! whether the serving core is ready:
//!
//! * [`arrival`] — deterministic Poisson / bursty-MMPP / diurnal arrival-time
//!   generators, one per core, seeded from the workload seed.
//! * [`zipf`] — an O(1) Zipf-skewed key sampler over key spaces of up to millions
//!   of sync variables.
//! * [`kv`] — a sharded key-value store with per-bucket locks.
//! * [`fine`] — the same store with one lock per key, whose sync-variable
//!   population exceeds the Synchronization Table under Zipf-skewed popularity.
//! * [`deque`] — a work-stealing deque layer with per-queue locks and semaphore
//!   parking.
//! * [`epoch`] — reader-writer epoch reclamation on barriers and condition
//!   variables.
//!
//! Each request's latency is measured from its *scheduled arrival* (not from when
//! the backlogged core got around to it) to completion, so queueing delay counts —
//! this is what makes p99/p999 vs. offered load show a saturation knee. Latencies
//! are recorded per core into a [`LogHistogram`] and merged machine-wide into
//! [`RunReport::latency`](syncron_system::report::RunReport).
//!
//! Determinism: arrival times and key choices are pure functions of
//! `(config.seed, core index, parameters)`; a blocked core simply has its next
//! request wait, generating no extra events, so open-loop runs stay bit-exact
//! across schedulers and message-batching settings even past saturation.

pub mod arrival;
pub mod deque;
pub mod epoch;
pub mod fine;
pub mod kv;
pub mod zipf;

pub use arrival::{ArrivalGen, ArrivalProcess};
pub use deque::StealService;
pub use epoch::EpochService;
pub use fine::FineKvService;
pub use kv::KvService;
pub use zipf::ZipfSampler;

use syncron_sim::stats::LogHistogram;
use syncron_sim::time::Time;
use syncron_system::workload::{Action, Workload};

/// The four service shapes built on the open-loop driver.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ServiceShape {
    /// Sharded KV store with per-bucket locks ([`KvService`]).
    Kv,
    /// Fine-grained KV store with one lock per key — its sync-variable
    /// population scales with the key space and overflows the ST under
    /// Zipf-skewed traffic ([`FineKvService`]).
    KvFine,
    /// Work-stealing deque with per-queue locks + semaphore parking
    /// ([`StealService`]).
    Steal,
    /// Reader-writer epoch reclamation on barriers/condvars ([`EpochService`]).
    Epoch,
}

impl ServiceShape {
    /// All shapes.
    pub const ALL: [ServiceShape; 4] = [
        ServiceShape::Kv,
        ServiceShape::KvFine,
        ServiceShape::Steal,
        ServiceShape::Epoch,
    ];

    /// Short name used in labels and scenario files.
    pub fn name(self) -> &'static str {
        match self {
            ServiceShape::Kv => "kv",
            ServiceShape::KvFine => "kv-fine",
            ServiceShape::Steal => "steal",
            ServiceShape::Epoch => "epoch",
        }
    }

    /// Parses a shape name.
    pub fn by_name(name: &str) -> Option<ServiceShape> {
        ServiceShape::ALL.into_iter().find(|s| s.name() == name)
    }
}

/// Parameters shared by all three service shapes.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct ServiceParams {
    /// Per-core arrival process.
    pub arrival: ArrivalProcess,
    /// Size of the key space requests are drawn from.
    pub keys: u64,
    /// Zipf skew exponent over the key space (0 = uniform).
    pub zipf_s: f64,
    /// Open-loop requests per client core.
    pub requests: u32,
}

/// Builds the service workload for `shape`.
pub fn service_workload(
    shape: ServiceShape,
    params: ServiceParams,
) -> Box<dyn Workload + Send + Sync> {
    match shape {
        ServiceShape::Kv => Box::new(KvService::new(params)),
        ServiceShape::KvFine => Box::new(FineKvService::new(params)),
        ServiceShape::Steal => Box::new(StealService::new(params)),
        ServiceShape::Epoch => Box::new(EpochService::new(params)),
    }
}

/// Label fragment shared by the three shapes' [`Workload::name`] impls.
fn service_name(shape: ServiceShape, params: &ServiceParams) -> String {
    format!(
        "svc-{}.{}.r{}.z{}",
        shape.name(),
        params.arrival.kind_name(),
        params.arrival.rate_per_us(),
        params.zipf_s
    )
}

/// Per-core open-loop request driver shared by the service shapes.
///
/// Owns the core's arrival stream and the latency histogram. A shape's program
/// calls [`admit`](Self::admit) from its dispatch phase: either it gets back an
/// idle-compute action that parks the core until the next scheduled arrival, or
/// the request is admitted (stamped with its *scheduled* arrival time, which may
/// be in the past if the core is backlogged) and the program runs its service
/// phases. When the final action of a request has committed the program calls
/// [`complete`](Self::complete), which records admission→completion latency.
#[derive(Debug)]
struct OpenLoop {
    gen: ArrivalGen,
    next_arrival: Time,
    admitted_at: Option<Time>,
    hist: LogHistogram,
    remaining: u32,
    ops: u64,
    cycle_ps: u64,
}

impl OpenLoop {
    fn new(process: ArrivalProcess, seed: u64, requests: u32, cycle: Time) -> Self {
        let mut gen = ArrivalGen::new(process, seed);
        let next_arrival = gen.next_arrival();
        OpenLoop {
            gen,
            next_arrival,
            admitted_at: None,
            hist: LogHistogram::new(),
            remaining: requests,
            ops: 0,
            cycle_ps: cycle.as_ps().max(1),
        }
    }

    /// True once every request has been admitted and completed.
    fn exhausted(&self) -> bool {
        self.remaining == 0 && self.admitted_at.is_none()
    }

    /// Admits the next request if its arrival time has come. Returns `Some` with
    /// an idle-compute action spanning the gap when the core is ahead of the
    /// arrival stream, `None` when a request was admitted (the caller proceeds to
    /// its service phases).
    fn admit(&mut self, now: Time) -> Option<Action> {
        debug_assert!(self.admitted_at.is_none(), "request already in flight");
        debug_assert!(self.remaining > 0, "no requests left to admit");
        if self.next_arrival > now {
            let gap_ps = self.next_arrival.as_ps() - now.as_ps();
            return Some(Action::Compute {
                instrs: gap_ps.div_ceil(self.cycle_ps).max(1),
            });
        }
        // Admission is the scheduled arrival time, not `now`: a backlogged core's
        // requests have been queueing since their arrival, and that delay is the
        // whole point of the open-loop measurement.
        self.admitted_at = Some(self.next_arrival);
        self.next_arrival = self.gen.next_arrival();
        self.remaining -= 1;
        None
    }

    /// Records the in-flight request's latency (nanoseconds) and retires it.
    fn complete(&mut self, now: Time) {
        let admitted = self.admitted_at.take().expect("no request in flight");
        self.hist
            .record(now.saturating_sub(admitted).as_ps() / 1000);
        self.ops += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use syncron_core::MechanismKind;
    use syncron_system::config::NdpConfig;
    use syncron_system::run_workload;

    fn config(kind: MechanismKind) -> NdpConfig {
        NdpConfig::builder()
            .units(2)
            .cores_per_unit(4)
            .mechanism(kind)
            .build()
            .expect("valid config")
    }

    fn params(rate_per_us: f64, requests: u32) -> ServiceParams {
        ServiceParams {
            arrival: ArrivalProcess::Poisson { rate_per_us },
            keys: 10_000,
            zipf_s: 0.99,
            requests,
        }
    }

    #[test]
    fn shape_names_round_trip() {
        for shape in ServiceShape::ALL {
            assert_eq!(ServiceShape::by_name(shape.name()), Some(shape));
        }
        assert_eq!(ServiceShape::by_name("nope"), None);
    }

    #[test]
    fn every_shape_completes_under_all_mechanisms() {
        for shape in ServiceShape::ALL {
            for kind in MechanismKind::ALL {
                let wl = service_workload(shape, params(0.05, 12));
                let report = run_workload(&config(kind), wl.as_ref());
                assert!(report.completed, "{shape:?} under {kind:?}");
                assert!(report.total_ops > 0, "{shape:?} under {kind:?}");
                let lat = report
                    .latency
                    .unwrap_or_else(|| panic!("{shape:?} under {kind:?}: no latency report"));
                assert!(lat.ops > 0);
                assert!(lat.p50_ns <= lat.p99_ns && lat.p99_ns <= lat.p999_ns);
            }
        }
    }

    #[test]
    fn all_shapes_work_with_bursty_and_diurnal_arrivals() {
        for arrival in [
            ArrivalProcess::Mmpp {
                rate_per_us: 0.05,
                on_us: 20.0,
                off_us: 60.0,
            },
            ArrivalProcess::Diurnal {
                rate_per_us: 0.05,
                amplitude: 0.8,
                period_us: 500.0,
            },
        ] {
            for shape in ServiceShape::ALL {
                let wl = service_workload(
                    shape,
                    ServiceParams {
                        arrival,
                        keys: 1_000,
                        zipf_s: 0.99,
                        requests: 8,
                    },
                );
                let report = run_workload(&config(MechanismKind::SynCron), wl.as_ref());
                assert!(report.completed, "{shape:?} / {}", arrival.kind_name());
                assert!(report.latency.is_some());
            }
        }
    }

    #[test]
    fn same_seed_same_simulation_higher_load_higher_latency() {
        let cfg = config(MechanismKind::SynCron);
        let light = run_workload(&cfg, &KvService::new(params(0.01, 16)));
        let light_again = run_workload(&cfg, &KvService::new(params(0.01, 16)));
        assert!(light.same_simulation(&light_again), "determinism");

        // An offered load far beyond one core's service capacity must show up as
        // queueing delay in the tail.
        let heavy = run_workload(&cfg, &KvService::new(params(5.0, 16)));
        assert!(heavy.completed, "open-loop runs always drain");
        let (l, h) = (light.latency.unwrap(), heavy.latency.unwrap());
        assert!(
            h.p99_ns > l.p99_ns,
            "overload p99 {} should exceed light-load p99 {}",
            h.p99_ns,
            l.p99_ns
        );
    }

    #[test]
    fn open_loop_names_mention_shape_and_rate() {
        let wl = service_workload(ServiceShape::Steal, params(0.25, 4));
        let name = wl.name();
        assert!(name.contains("steal") && name.contains("0.25"), "{name}");
    }

    #[test]
    fn epoch_handles_single_client_units() {
        // 1 client per unit (dedicated server core eats the other): the epoch
        // shape must degrade to lone readers without a reclaimer or condvar.
        let cfg = NdpConfig::builder()
            .units(2)
            .cores_per_unit(2)
            .mechanism(MechanismKind::SynCron)
            .build()
            .expect("valid config");
        if cfg.clients_per_unit() == 1 {
            let report = run_workload(&cfg, &EpochService::new(params(0.1, 6)));
            assert!(report.completed);
            assert!(report.latency.is_some());
        }
    }
}
