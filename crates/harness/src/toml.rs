//! A minimal TOML-subset parser producing [`crate::json::Value`] trees.
//!
//! Scenario and sweep files are simple: tables, arrays of tables, and scalar /
//! array values. This parser supports exactly that subset of TOML:
//!
//! * `key = value` pairs with bare or double-quoted keys;
//! * basic strings (`"..."` with the common escapes), integers (with `_`
//!   separators), floats, booleans;
//! * arrays, including multi-line arrays, and inline tables `{ k = v, ... }`;
//! * `[table.path]` headers and `[[array.of.tables]]` headers;
//! * `#` comments and blank lines.
//!
//! Unsupported TOML (multi-line strings, dates, dotted keys) is rejected with a
//! line-numbered error rather than misparsed.

use std::collections::BTreeMap;

use crate::json::Value;

/// A TOML parse error with 1-based line number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TomlError {
    /// Human-readable description.
    pub message: String,
    /// 1-based line number.
    pub line: usize,
}

impl std::fmt::Display for TomlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} on line {}", self.message, self.line)
    }
}

impl std::error::Error for TomlError {}

fn err(message: impl Into<String>, line: usize) -> TomlError {
    TomlError {
        message: message.into(),
        line,
    }
}

/// Parses a TOML document into a [`Value::Table`].
pub fn parse(input: &str) -> Result<Value, TomlError> {
    let mut root: BTreeMap<String, Value> = BTreeMap::new();
    // Path of the table currently being filled, e.g. ["sweep", "config"].
    let mut current_path: Vec<String> = Vec::new();

    let lines: Vec<&str> = input.lines().collect();
    let mut i = 0usize;
    while i < lines.len() {
        let lineno = i + 1;
        let line = strip_comment(lines[i]);
        let trimmed = line.trim();
        i += 1;
        if trimmed.is_empty() {
            continue;
        }
        if let Some(header) = trimmed.strip_prefix("[[") {
            let header = header
                .strip_suffix("]]")
                .ok_or_else(|| err("malformed [[table]] header", lineno))?;
            current_path = split_path(header, lineno)?;
            let array = lookup_array(&mut root, &current_path, lineno)?;
            array.push(Value::Table(BTreeMap::new()));
        } else if let Some(header) = trimmed.strip_prefix('[') {
            let header = header
                .strip_suffix(']')
                .ok_or_else(|| err("malformed [table] header", lineno))?;
            current_path = split_path(header, lineno)?;
            lookup_table(&mut root, &current_path, lineno)?;
        } else {
            // key = value, where the value may span multiple lines for arrays.
            let eq = trimmed
                .find('=')
                .ok_or_else(|| err("expected 'key = value'", lineno))?;
            let key = parse_key(trimmed[..eq].trim(), lineno)?;
            let mut value_text = trimmed[eq + 1..].trim().to_string();
            // Accumulate continuation lines until brackets/braces balance outside
            // strings.
            while !balanced(&value_text) {
                if i >= lines.len() {
                    return Err(err("unterminated array or inline table", lineno));
                }
                value_text.push(' ');
                value_text.push_str(strip_comment(lines[i]).trim());
                i += 1;
            }
            let value = parse_value(&value_text, lineno)?;
            let table = lookup_table(&mut root, &current_path, lineno)?;
            if table.insert(key.clone(), value).is_some() {
                return Err(err(format!("duplicate key '{key}'"), lineno));
            }
        }
    }
    Ok(Value::Table(root))
}

/// Tracks whether a scan position is inside a basic string, honoring `\"` escapes.
#[derive(Default)]
struct StringState {
    in_string: bool,
    escaped: bool,
}

impl StringState {
    /// Feeds one character; returns `true` when the character is inside (or delimits)
    /// a string.
    fn feed(&mut self, c: char) -> bool {
        if self.in_string {
            if self.escaped {
                self.escaped = false;
            } else if c == '\\' {
                self.escaped = true;
            } else if c == '"' {
                self.in_string = false;
            }
            true
        } else {
            if c == '"' {
                self.in_string = true;
            }
            self.in_string
        }
    }
}

/// Removes a `#` comment, respecting strings (including `\"` escapes).
fn strip_comment(line: &str) -> &str {
    let mut state = StringState::default();
    for (idx, c) in line.char_indices() {
        if !state.feed(c) && c == '#' {
            return &line[..idx];
        }
    }
    line
}

/// True when brackets and braces balance outside of strings.
fn balanced(text: &str) -> bool {
    let mut depth = 0i32;
    let mut state = StringState::default();
    for c in text.chars() {
        if state.feed(c) {
            continue;
        }
        match c {
            '[' | '{' => depth += 1,
            ']' | '}' => depth -= 1,
            _ => {}
        }
    }
    depth <= 0 && !state.in_string
}

fn parse_key(raw: &str, line: usize) -> Result<String, TomlError> {
    let raw = raw.trim();
    if let Some(stripped) = raw.strip_prefix('"') {
        let inner = stripped
            .strip_suffix('"')
            .ok_or_else(|| err("malformed quoted key", line))?;
        return Ok(inner.to_string());
    }
    if raw.is_empty()
        || !raw
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
    {
        return Err(err(format!("invalid key '{raw}'"), line));
    }
    Ok(raw.to_string())
}

fn split_path(header: &str, line: usize) -> Result<Vec<String>, TomlError> {
    header
        .split('.')
        .map(|part| parse_key(part, line))
        .collect()
}

/// Descends to (creating as needed) the table at `path`. Descending into an array of
/// tables — mid-path or as the `[[...]]` tail — always means its most recent entry.
fn lookup_table<'a>(
    root: &'a mut BTreeMap<String, Value>,
    path: &[String],
    line: usize,
) -> Result<&'a mut BTreeMap<String, Value>, TomlError> {
    let mut current = root;
    for part in path {
        let entry = current
            .entry(part.clone())
            .or_insert_with(|| Value::Table(BTreeMap::new()));
        current = match entry {
            Value::Table(t) => t,
            Value::Array(a) => match a.last_mut() {
                Some(Value::Table(t)) => t,
                _ => return Err(err(format!("'{part}' is not a table"), line)),
            },
            _ => return Err(err(format!("'{part}' is not a table"), line)),
        };
    }
    Ok(current)
}

fn lookup_array<'a>(
    root: &'a mut BTreeMap<String, Value>,
    path: &[String],
    line: usize,
) -> Result<&'a mut Vec<Value>, TomlError> {
    let (last, parents) = path
        .split_last()
        .ok_or_else(|| err("empty table path", line))?;
    let parent = lookup_table(root, parents, line)?;
    let entry = parent
        .entry(last.clone())
        .or_insert_with(|| Value::Array(Vec::new()));
    match entry {
        Value::Array(a) => Ok(a),
        _ => Err(err(format!("'{last}' is not an array of tables"), line)),
    }
}

fn parse_value(text: &str, line: usize) -> Result<Value, TomlError> {
    let text = text.trim();
    if text.is_empty() {
        return Err(err("missing value", line));
    }
    if let Some(rest) = text.strip_prefix('"') {
        let (s, consumed) = parse_basic_string(rest, line)?;
        if !rest[consumed..].trim().is_empty() {
            return Err(err("trailing characters after string", line));
        }
        return Ok(Value::Str(s));
    }
    if text == "true" {
        return Ok(Value::Bool(true));
    }
    if text == "false" {
        return Ok(Value::Bool(false));
    }
    if text.starts_with('[') {
        return parse_array(text, line);
    }
    if text.starts_with('{') {
        return parse_inline_table(text, line);
    }
    let numeric: String = text.chars().filter(|&c| c != '_').collect();
    if numeric.contains(['.', 'e', 'E']) {
        if let Ok(f) = numeric.parse::<f64>() {
            return Ok(Value::Float(f));
        }
    } else if let Ok(i) = numeric.parse::<i64>() {
        return Ok(Value::Int(i));
    }
    Err(err(format!("unsupported value '{text}'"), line))
}

/// Parses the contents of a basic string after the opening quote; returns the string
/// and the number of bytes consumed (including the closing quote).
fn parse_basic_string(rest: &str, line: usize) -> Result<(String, usize), TomlError> {
    let mut s = String::new();
    let mut chars = rest.char_indices();
    while let Some((idx, c)) = chars.next() {
        match c {
            '"' => return Ok((s, idx + 1)),
            '\\' => match chars.next() {
                Some((_, 'n')) => s.push('\n'),
                Some((_, 't')) => s.push('\t'),
                Some((_, 'r')) => s.push('\r'),
                Some((_, '"')) => s.push('"'),
                Some((_, '\\')) => s.push('\\'),
                _ => return Err(err("unsupported string escape", line)),
            },
            c => s.push(c),
        }
    }
    Err(err("unterminated string", line))
}

/// Splits the interior of a bracketed list on top-level commas.
fn split_top_level(interior: &str, line: usize) -> Result<Vec<String>, TomlError> {
    let mut items = Vec::new();
    let mut depth = 0i32;
    let mut state = StringState::default();
    let mut start = 0usize;
    for (idx, c) in interior.char_indices() {
        if state.feed(c) {
            continue;
        }
        match c {
            '[' | '{' => depth += 1,
            ']' | '}' => depth -= 1,
            ',' if depth == 0 => {
                items.push(interior[start..idx].trim().to_string());
                start = idx + 1;
            }
            _ => {}
        }
    }
    if state.in_string || depth != 0 {
        return Err(err("malformed nested value", line));
    }
    let tail = interior[start..].trim();
    if !tail.is_empty() {
        items.push(tail.to_string());
    }
    Ok(items)
}

fn parse_array(text: &str, line: usize) -> Result<Value, TomlError> {
    let interior = text
        .strip_prefix('[')
        .and_then(|t| t.strip_suffix(']'))
        .ok_or_else(|| err("malformed array", line))?;
    let mut items = Vec::new();
    for part in split_top_level(interior, line)? {
        items.push(parse_value(&part, line)?);
    }
    Ok(Value::Array(items))
}

fn parse_inline_table(text: &str, line: usize) -> Result<Value, TomlError> {
    let interior = text
        .strip_prefix('{')
        .and_then(|t| t.strip_suffix('}'))
        .ok_or_else(|| err("malformed inline table", line))?;
    let mut map = BTreeMap::new();
    for part in split_top_level(interior, line)? {
        let eq = part
            .find('=')
            .ok_or_else(|| err("expected 'key = value' in inline table", line))?;
        let key = parse_key(part[..eq].trim(), line)?;
        let value = parse_value(part[eq + 1..].trim(), line)?;
        if map.insert(key.clone(), value).is_some() {
            return Err(err(format!("duplicate key '{key}' in inline table"), line));
        }
    }
    Ok(Value::Table(map))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_tables_scalars_and_arrays() {
        let doc = parse(
            r#"
# A sweep file.
title = "demo"

[sweep]
label = "fig16"
latencies = [40, 100, 9_000]  # ns

[sweep.config]
units = 4
ratio = 2.5
reserve = true

[sweep.workload]
kind = "data-structure"
name = "stack"
"#,
        )
        .unwrap();
        assert_eq!(doc.get("title").unwrap().as_str(), Some("demo"));
        let sweep = doc.get("sweep").unwrap();
        assert_eq!(sweep.get("label").unwrap().as_str(), Some("fig16"));
        let lats: Vec<u64> = sweep
            .get("latencies")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|v| v.as_u64().unwrap())
            .collect();
        assert_eq!(lats, vec![40, 100, 9000]);
        assert_eq!(
            sweep.get("config").unwrap().get("units").unwrap().as_i64(),
            Some(4)
        );
        assert_eq!(
            sweep.get("config").unwrap().get("ratio").unwrap().as_f64(),
            Some(2.5)
        );
        assert_eq!(
            sweep
                .get("config")
                .unwrap()
                .get("reserve")
                .unwrap()
                .as_bool(),
            Some(true)
        );
        assert_eq!(
            sweep.get("workload").unwrap().get("name").unwrap().as_str(),
            Some("stack")
        );
    }

    #[test]
    fn config_table_carries_signal_coalescing_knobs() {
        // The coalescing/backoff knob round-trips through the TOML codec into a
        // ConfigSpec, like any other config axis.
        let doc = parse(
            r#"
[scenario.config]
mechanism = "Central"
signal_coalescing = false
signal_backoff_ns = 350
"#,
        )
        .unwrap();
        let spec = crate::scenario::ConfigSpec::from_value(
            doc.get("scenario").unwrap().get("config").unwrap(),
        )
        .unwrap();
        assert!(!spec.signal_coalescing);
        assert_eq!(spec.signal_backoff_ns, 350);
        // Omitted fields keep the paper defaults: coalescing on.
        let defaults =
            crate::scenario::ConfigSpec::from_value(&parse("units = 2").unwrap()).unwrap();
        assert!(defaults.signal_coalescing);
    }

    #[test]
    fn parses_arrays_of_tables_and_multiline_arrays() {
        let doc = parse(
            r#"
[[scenario]]
label = "a"
sizes = [
    1,
    2,
    3,
]

[[scenario]]
label = "b"
opts = { kind = "micro", interval = 50 }
"#,
        )
        .unwrap();
        let scenarios = doc.get("scenario").unwrap().as_array().unwrap();
        assert_eq!(scenarios.len(), 2);
        assert_eq!(scenarios[0].get("label").unwrap().as_str(), Some("a"));
        assert_eq!(
            scenarios[0].get("sizes").unwrap().as_array().unwrap().len(),
            3
        );
        let opts = scenarios[1].get("opts").unwrap();
        assert_eq!(opts.get("kind").unwrap().as_str(), Some("micro"));
        assert_eq!(opts.get("interval").unwrap().as_i64(), Some(50));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("key").is_err());
        assert!(parse("[unclosed").is_err());
        assert!(parse("k = [1, 2").is_err());
        assert!(parse("k = \"unterminated").is_err());
        assert!(parse("k = 1\nk = 2").is_err());
    }

    #[test]
    fn strings_with_hashes_and_escapes() {
        let doc = parse("k = \"a # not comment\" # real comment\ne = \"x\\ny\"").unwrap();
        assert_eq!(doc.get("k").unwrap().as_str(), Some("a # not comment"));
        assert_eq!(doc.get("e").unwrap().as_str(), Some("x\ny"));
    }

    #[test]
    fn escaped_quotes_survive_everywhere() {
        // In plain values (with a trailing comment), inside arrays, and in inline
        // tables — the scanners must not treat \" as a string delimiter.
        let doc =
            parse("k = \"say \\\"hi\\\"\" # b\ntags = [\"a\\\"b\", \"c\"]\nt = { s = \"x\\\\\" }")
                .unwrap();
        assert_eq!(doc.get("k").unwrap().as_str(), Some("say \"hi\""));
        let tags: Vec<&str> = doc
            .get("tags")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|v| v.as_str().unwrap())
            .collect();
        assert_eq!(tags, vec!["a\"b", "c"]);
        assert_eq!(
            doc.get("t").unwrap().get("s").unwrap().as_str(),
            Some("x\\")
        );
    }

    #[test]
    fn inline_table_duplicate_keys_are_rejected() {
        assert!(parse("o = { a = 1, a = 2 }").is_err());
    }
}
