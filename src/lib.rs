//! # syncron
//!
//! A from-scratch Rust reproduction of **SynCron: Efficient Synchronization Support for
//! Near-Data-Processing Architectures** (Giannoula et al., HPCA 2021).
//!
//! This facade crate re-exports the individual workspace crates so applications and
//! examples can depend on a single crate:
//!
//! * [`sim`] — deterministic discrete-event simulation kernel (time, events, RNG, stats).
//! * [`mem`] — DRAM timing models (HBM / HMC / DDR4), private L1 caches, MESI directory.
//! * [`net`] — intra-unit crossbar and inter-unit link models.
//! * [`core`] — the SynCron mechanism (Synchronization Engines, Synchronization Table,
//!   hierarchical protocol, overflow management) and the Central / Hier / Ideal baselines.
//! * [`system`] — NDP system assembly, configuration, execution model and reports.
//! * [`workloads`] — microbenchmarks, concurrent data structures, graph applications and
//!   time-series analysis used in the paper's evaluation.
//! * [`harness`] — declarative scenarios and sweeps over the paper's evaluation axes,
//!   a parallel runner, and results keyed by scenario label with JSON/CSV export
//!   (also driven from TOML/JSON files by the `syncron-cli` binary).
//!
//! # Quickstart
//!
//! ```
//! use syncron::prelude::*;
//!
//! // A small NDP system: 2 units x 4 cores, HBM memory, SynCron synchronization.
//! let config = NdpConfig::builder()
//!     .units(2)
//!     .cores_per_unit(4)
//!     .mechanism(MechanismKind::SynCron)
//!     .build()
//!     .expect("a valid machine geometry");
//!
//! // Each core repeatedly acquires one global lock with an empty critical section.
//! let workload = syncron::workloads::micro::LockMicrobench::new(200, 32);
//! let report = syncron::system::run_workload(&config, &workload);
//! assert!(report.sim_time > Time::ZERO);
//! ```

pub use syncron_core as core;
pub use syncron_harness as harness;
pub use syncron_mem as mem;
pub use syncron_net as net;
pub use syncron_sim as sim;
pub use syncron_system as system;
pub use syncron_workloads as workloads;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use syncron_core::MechanismKind;
    pub use syncron_harness::{
        ConfigSpec, Md1Model, RunSet, Runner, Scenario, Sweep, WorkloadSpec,
    };
    pub use syncron_sim::{Addr, CoreId, Freq, GlobalCoreId, SchedulerKind, Time, UnitId};
    pub use syncron_system::config::{FaultConfig, MemTech, NdpConfig};
    pub use syncron_system::report::{IncompleteReason, RunReport};
    pub use syncron_system::run_workload;
    pub use syncron_system::workload::{Action, CoreProgram, Workload};
}
