//! Figure 10: speedup of the four synchronization primitives over Central, as a
//! function of the number of instructions between synchronization points.

use crate::{expect_speedup, f2, run_scenarios, scaled, Sweep, Table, WorkloadSpec};
use syncron_core::MechanismKind;
use syncron_workloads::micro::SyncPrimitive;

/// The instruction intervals swept for each primitive (the x-axes of Figure 10).
pub fn intervals_for(primitive: SyncPrimitive) -> &'static [u64] {
    match primitive {
        SyncPrimitive::Lock => &[50, 100, 200, 400, 1_000, 2_000, 5_000],
        SyncPrimitive::Barrier => &[20, 50, 100, 200, 500, 1_000, 2_000],
        SyncPrimitive::Semaphore => &[100, 200, 400, 1_000, 2_000, 5_000, 10_000],
        SyncPrimitive::CondVar => &[200, 400, 1_000, 2_000, 5_000, 10_000, 50_000],
    }
}

/// The Figure 10 sweep for one primitive: one microbenchmark per interval, across the
/// four compared schemes at the paper-default system size.
pub fn fig10_sweep(primitive: SyncPrimitive) -> Sweep {
    let iterations = scaled(24, 4);
    Sweep::new(format!("fig10-{}", primitive.name()))
        .workloads(
            intervals_for(primitive)
                .iter()
                .map(|&interval| WorkloadSpec::Micro {
                    primitive,
                    interval,
                    iterations,
                }),
        )
        .compared_mechanisms()
}

/// Runs the Figure 10 sweep for one primitive and returns one row per interval with the
/// speedup of every scheme over Central.
pub fn fig10_primitive(primitive: SyncPrimitive) -> Table {
    let sweep = fig10_sweep(primitive);
    let results = run_scenarios(&sweep.scenarios().expect("valid sweep"));

    let mut table = Table::new(
        format!(
            "Figure 10 ({}): speedup over Central vs instructions between sync points",
            primitive.name()
        ),
        &["interval", "Central", "Hier", "SynCron", "Ideal"],
    );
    for &interval in intervals_for(primitive) {
        let label = |kind: MechanismKind| {
            format!(
                "fig10-{}/{}-micro.i{}/mech={}",
                primitive.name(),
                primitive.name(),
                interval,
                kind.name()
            )
        };
        let central = label(MechanismKind::Central);
        let mut cells = vec![interval.to_string()];
        for kind in MechanismKind::COMPARED {
            cells.push(f2(expect_speedup(&results, &label(kind), &central)));
        }
        table.push_row(cells);
    }
    table
}

/// Runs Figure 10 for all four primitives.
pub fn fig10_all() -> Vec<Table> {
    SyncPrimitive::ALL
        .iter()
        .map(|&p| fig10_primitive(p))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_sweep_has_expected_shape() {
        std::env::set_var("SYNCRON_SCALE", "0.25");
        let t = fig10_primitive(SyncPrimitive::Lock);
        assert_eq!(t.rows.len(), intervals_for(SyncPrimitive::Lock).len());
        // At the shortest interval SynCron must beat Central, and Ideal must be the
        // fastest scheme.
        let first = &t.rows[0];
        let syncron: f64 = first[3].parse().unwrap();
        let ideal: f64 = first[4].parse().unwrap();
        assert!(syncron > 1.0, "SynCron speedup {syncron}");
        assert!(ideal >= syncron);
    }

    #[test]
    fn sweep_cardinality_matches_axes() {
        let scenarios = fig10_sweep(SyncPrimitive::Barrier).scenarios().unwrap();
        assert_eq!(
            scenarios.len(),
            intervals_for(SyncPrimitive::Barrier).len() * MechanismKind::COMPARED.len()
        );
    }
}
