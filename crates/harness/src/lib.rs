//! # syncron-harness
//!
//! Declarative scenarios, sweeps and a parallel runner for the SynCron (HPCA 2021)
//! reproduction — the evaluation's run API.
//!
//! The paper's evaluation spans ~20 figures and tables, each a cartesian product over
//! a few axes (mechanism × link latency × ST size × memory technology × units ×
//! workload). This crate makes those products first-class, serializable data instead
//! of hand-rolled `Vec<(NdpConfig, Box<dyn Workload>)>` job lists:
//!
//! * [`spec::WorkloadSpec`] — a plain-data description that can name and construct
//!   every workload in `syncron-workloads`;
//! * [`scenario::ConfigSpec`] / [`scenario::Scenario`] — a serializable system
//!   configuration and a labelled (config, workload) pair;
//! * [`sweep::Sweep`] — a builder producing labelled cartesian products over the
//!   paper's sweep axes, in code or from TOML/JSON documents;
//! * [`runner::Runner`] — a work-queue thread pool with progress callbacks;
//! * [`runset::RunSet`] — results keyed by scenario label, with `get` /
//!   `speedup_over` lookups and JSON / CSV export;
//! * [`json`] / [`toml`] — the self-contained document model and parsers behind the
//!   scenario files (the build environment has no crates.io access, so no serde).
//!
//! # Example
//!
//! ```
//! use syncron_harness::prelude::*;
//! use syncron_workloads::micro::SyncPrimitive;
//!
//! // Figure 10 (lock), narrowed down: two intervals x the four compared schemes.
//! let scenarios = Sweep::new("fig10-lock")
//!     .base(ConfigSpec::default().with_geometry(2, 4))
//!     .workloads([50, 500].map(|interval| WorkloadSpec::Micro {
//!         primitive: SyncPrimitive::Lock,
//!         interval,
//!         iterations: 4,
//!     }))
//!     .compared_mechanisms()
//!     .scenarios()
//!     .unwrap();
//! assert_eq!(scenarios.len(), 8);
//!
//! let results = Runner::new().run(&scenarios).unwrap();
//! let speedup = results
//!     .speedup_over(
//!         "fig10-lock/lock-micro.i50/mech=SynCron",
//!         "fig10-lock/lock-micro.i50/mech=Central",
//!     )
//!     .unwrap();
//! assert!(speedup > 1.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod error;
pub mod json;
pub mod runner;
pub mod runset;
pub mod scenario;
pub mod spec;
pub mod sweep;
pub mod toml;

pub use error::HarnessError;
pub use json::Value;
pub use runner::{Progress, Runner};
pub use runset::{report_to_value, RunEntry, RunSet};
pub use scenario::{ConfigSpec, MesiProfile, Scenario};
pub use spec::WorkloadSpec;
pub use sweep::Sweep;
pub use syncron_sim::queueing::Md1Model;
pub use syncron_sim::SchedulerKind;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::error::HarnessError;
    pub use crate::runner::{Progress, Runner};
    pub use crate::runset::{RunEntry, RunSet};
    pub use crate::scenario::{ConfigSpec, MesiProfile, Scenario};
    pub use crate::spec::WorkloadSpec;
    pub use crate::sweep::Sweep;
    pub use syncron_sim::queueing::Md1Model;
}
