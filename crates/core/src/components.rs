//! The shared ownership-of-state layer: per-primitive component tables.
//!
//! Every mechanism keeps its per-variable state here — lock, barrier, semaphore
//! and condition-variable sub-state live in separate dense arrays (one component
//! column per primitive), all keyed by the same arena slot index. A message
//! resolves its variable's slot **once** ([`ComponentTables::resolve`]); every
//! later state touch is a dense column access. This is the ECS-style split the
//! ROADMAP called for: the tables own the state, a
//! [`SyncPolicy`](crate::policy::SyncPolicy) decides who touches it, and the
//! protocol engine in [`crate::protocol`] merely moves messages between the two.
//!
//! Slot lifecycle: a slot is claimed on first touch and recycled through a free
//! list as soon as no component of its variable is present anymore. Absent
//! components are always in their reset condition, so claiming one sets only a
//! presence bit — the waiter containers (queues, bit-vectors) keep their
//! allocated buffers across lifecycles, and a slot freed as a lock comes back
//! clean when it is reused as a barrier (pinned by the recycling tests below).

use std::collections::VecDeque;

use crate::syncvar::SyncronVar;
use syncron_sim::{Addr, FxHashMap, GlobalCoreId, UnitId};

/// Who currently holds (or waits for) a lock at the master level: either a whole NDP
/// unit (hierarchical aggregation) or an individual core (flat topology, ST-overflow
/// redirection, MiSAR fallback).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Grantee {
    /// A whole NDP unit (its engine aggregates the unit's waiters).
    Unit(UnitId),
    /// An individual core.
    Core(GlobalCoreId),
}

/// Unit-local lock aggregation state (hierarchical topologies).
#[derive(Debug, Default)]
pub(crate) struct LocalLock {
    pub(crate) waiters: VecDeque<GlobalCoreId>,
    pub(crate) holder: Option<GlobalCoreId>,
    pub(crate) has_ownership: bool,
    pub(crate) pending_global: bool,
    pub(crate) local_grants: u32,
}

impl LocalLock {
    fn reset(&mut self) {
        self.waiters.clear();
        self.holder = None;
        self.has_ownership = false;
        self.pending_global = false;
        self.local_grants = 0;
    }
}

/// Master-side lock arbitration state.
#[derive(Debug, Default)]
pub(crate) struct MasterLock {
    pub(crate) owner: Option<Grantee>,
    pub(crate) waiting: VecDeque<Grantee>,
}

impl MasterLock {
    fn reset(&mut self) {
        self.owner = None;
        self.waiting.clear();
    }
}

/// Unit-local barrier aggregation state (two-level full-system barriers).
#[derive(Debug, Default)]
pub(crate) struct LocalBarrier {
    pub(crate) waiters: Vec<GlobalCoreId>,
    pub(crate) announced: bool,
}

impl LocalBarrier {
    fn reset(&mut self) {
        self.waiters.clear();
        self.announced = false;
    }
}

/// Master-side barrier state.
#[derive(Debug, Default)]
pub(crate) struct MasterBarrier {
    pub(crate) arrived: u32,
    pub(crate) participants: u32,
    pub(crate) arrived_units: Vec<UnitId>,
    pub(crate) direct_waiters: Vec<GlobalCoreId>,
}

impl MasterBarrier {
    fn reset(&mut self) {
        self.arrived = 0;
        self.participants = 0;
        self.arrived_units.clear();
        self.direct_waiters.clear();
    }
}

/// Master-side semaphore state.
#[derive(Debug, Default)]
pub(crate) struct MasterSem {
    pub(crate) initialized: bool,
    pub(crate) count: i64,
    pub(crate) waiters: VecDeque<GlobalCoreId>,
}

/// Master-side condition-variable state.
#[derive(Debug, Default)]
pub(crate) struct MasterCond {
    pub(crate) waiters: VecDeque<(GlobalCoreId, Addr)>,
    /// Signals banked while no waiter was queued (signal-coalescing extension).
    /// `u64` so the uncapped Ideal mechanism shares the component; the protocol
    /// engine bounds it by its (u16) pending-signal cap.
    pub(crate) pending: u64,
}

/// Master-side tail pointer of the MCS queue lock: the last enqueued waiter, or
/// `None` while the lock is free. The `(core, seq)` pair identifies one queue-node
/// *instance* — the sequence number disambiguates a core that releases and
/// immediately re-acquires while its release is still in flight (the classic ABA
/// hazard of a tail compare-and-swap).
#[derive(Debug, Default)]
pub(crate) struct McsTail {
    pub(crate) tail: Option<(GlobalCoreId, u32)>,
}

impl McsTail {
    fn reset(&mut self) {
        self.tail = None;
    }
}

/// One core's MCS queue node(s) at its local engine.
///
/// At most two instances exist per core and variable: the *live* one (queued or
/// holding the lock) and a *dying* one (released with no known successor, waiting
/// for the master to confirm the tail swap or for a late link to arrive). Each
/// instance carries the sequence number it was enqueued with.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct McsNode {
    /// A live instance exists (queued at the master or holding the lock).
    pub(crate) queued: bool,
    /// Sequence number of the live instance.
    pub(crate) queued_seq: u32,
    /// Successor recorded for the live instance (set by a link message).
    pub(crate) next: Option<GlobalCoreId>,
    /// A dying instance exists (release sent, tail confirmation pending).
    pub(crate) releasing: bool,
    /// Sequence number of the dying instance.
    pub(crate) releasing_seq: u32,
    /// Next sequence number to assign at enqueue.
    seq: u32,
}

/// Result of releasing an MCS lock at the holder's engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum McsRelease {
    /// A successor is already linked: grant it directly, the master is untouched.
    Handoff(GlobalCoreId),
    /// No successor known: the node turns dying and the master must confirm the
    /// tail swap for the instance with this sequence number.
    TailRace(u32),
}

/// The per-variable MCS queue nodes of one engine, indexed by local core.
#[derive(Debug, Default)]
pub(crate) struct McsNodes {
    pub(crate) nodes: Vec<McsNode>,
    /// Live + dying instances currently tracked (0 ⇒ the component is removable).
    pub(crate) active: u32,
}

impl McsNodes {
    fn reset(&mut self) {
        debug_assert_eq!(self.active, 0, "resetting MCS nodes with instances live");
        for n in &mut self.nodes {
            *n = McsNode::default();
        }
        self.active = 0;
    }

    /// Grows the node table to the engine's core count (buffer kept across reuse).
    pub(crate) fn ensure(&mut self, cores_per_unit: usize) {
        if self.nodes.len() < cores_per_unit {
            self.nodes.resize(cores_per_unit, McsNode::default());
        }
    }

    /// Claims a fresh live instance for local core `local`; returns its sequence
    /// number (to travel with the enqueue message).
    pub(crate) fn enqueue(&mut self, local: usize) -> u32 {
        let n = &mut self.nodes[local];
        debug_assert!(!n.queued, "core enqueued twice on one MCS lock");
        n.seq = n.seq.wrapping_add(1);
        n.queued = true;
        n.queued_seq = n.seq;
        n.next = None;
        self.active += 1;
        n.seq
    }

    /// Releases the live instance of `local`.
    pub(crate) fn release(&mut self, local: usize) -> McsRelease {
        let n = &mut self.nodes[local];
        debug_assert!(n.queued, "MCS release without a live node");
        if let Some(succ) = n.next.take() {
            n.queued = false;
            self.active -= 1;
            McsRelease::Handoff(succ)
        } else {
            debug_assert!(!n.releasing, "two dying MCS instances for one core");
            n.releasing = true;
            n.releasing_seq = n.queued_seq;
            n.queued = false;
            McsRelease::TailRace(n.releasing_seq)
        }
    }

    /// A link message arrived for instance `(local, seq)`: either records the
    /// successor on the live instance, or — if that instance is already dying —
    /// consumes it and returns the successor to grant directly.
    pub(crate) fn link(
        &mut self,
        local: usize,
        seq: u32,
        succ: GlobalCoreId,
    ) -> Option<GlobalCoreId> {
        let n = &mut self.nodes[local];
        if n.releasing && n.releasing_seq == seq {
            n.releasing = false;
            self.active -= 1;
            Some(succ)
        } else {
            debug_assert!(
                n.queued && n.queued_seq == seq,
                "MCS link for an unknown node instance"
            );
            n.next = Some(succ);
            None
        }
    }

    /// The master confirmed the tail swap for dying instance `(local, seq)`:
    /// reap it. Returns `false` for a stale confirmation (already reaped by a
    /// racing link), which callers treat as a no-op.
    pub(crate) fn reap(&mut self, local: usize, seq: u32) -> bool {
        let n = &mut self.nodes[local];
        if n.releasing && n.releasing_seq == seq {
            n.releasing = false;
            self.active -= 1;
            true
        } else {
            debug_assert!(false, "MCS node-free for an unknown node instance");
            false
        }
    }
}

/// Presence bits of the component columns. A bit plays the role the old
/// per-mechanism `FxHashMap` entry played: set = "the map would contain this
/// variable". Absent components are always in their reset condition, so claiming
/// one is just setting the bit — no construction, and the waiter containers keep
/// their allocated buffers across lifecycles.
const P_LOCAL_LOCK: u8 = 1 << 0;
const P_MASTER_LOCK: u8 = 1 << 1;
const P_LOCAL_BARRIER: u8 = 1 << 2;
const P_MASTER_BARRIER: u8 = 1 << 3;
const P_MASTER_SEM: u8 = 1 << 4;
const P_MASTER_COND: u8 = 1 << 5;
const P_MCS_TAIL: u8 = 1 << 6;
const P_MCS_NODES: u8 = 1 << 7;

macro_rules! component {
    ($(#[$doc:meta])* $get:ident, $get_mut:ident, $remove:ident, $field:ident, $ty:ty, $bit:ident) => {
        $(#[$doc])*
        pub(crate) fn $get(&self, slot: usize) -> Option<&$ty> {
            (self.present[slot] & $bit != 0).then(|| &self.$field[slot])
        }

        /// Mutable access, claiming the component if absent (absent components
        /// are kept reset, so claiming is just the presence bit).
        pub(crate) fn $get_mut(&mut self, slot: usize) -> &mut $ty {
            self.present[slot] |= $bit;
            &mut self.$field[slot]
        }

        /// Removes the component, resetting its state (buffers retained).
        pub(crate) fn $remove(&mut self, slot: usize) {
            if self.present[slot] & $bit != 0 {
                self.present[slot] &= !$bit;
                self.$field[slot].reset();
            }
        }
    };
}

/// One engine's per-variable state: a single `addr → slot` index plus dense
/// per-primitive component columns sharing one slot arena and free list.
///
/// Steady-state discipline: the index is probed **once per message**
/// ([`ComponentTables::resolve`]); every later state touch of that message is a
/// dense column access. Slots whose variable ends a message with no component
/// left are recycled — with their waiter-queue buffers intact — so the arena's
/// high-water mark is the number of *concurrently* tracked variables, and a
/// pre-size from the geometry keeps the hot path free of allocation and
/// rehashing.
#[derive(Debug, Default)]
pub(crate) struct ComponentTables {
    index: FxHashMap<Addr, u32>,
    free: Vec<u32>,
    addr: Vec<Addr>,
    present: Vec<u8>,
    /// Whether the MiSAR abort broadcast for this variable was already charged
    /// at this engine. Sticky: once set, the slot is pinned for the run.
    misar_abort_sent: Vec<bool>,
    local_lock: Vec<LocalLock>,
    master_lock: Vec<MasterLock>,
    local_barrier: Vec<LocalBarrier>,
    master_barrier: Vec<MasterBarrier>,
    master_sem: Vec<MasterSem>,
    master_cond: Vec<MasterCond>,
    mcs_tail: Vec<McsTail>,
    mcs_nodes: Vec<McsNodes>,
    /// In-memory `syncronVar` image for a variable this engine serves without an
    /// ST entry (server-core backends, and SynCron's overflow path). Boxed: the
    /// image is touched only on the (memory-charged) overflow path. Sticky once
    /// created, like the old map entry.
    syncron_var: Vec<Option<Box<SyncronVar>>>,
}

impl ComponentTables {
    /// Creates empty tables pre-sized for `capacity` concurrently tracked variables.
    pub(crate) fn with_capacity(capacity: usize) -> Self {
        let mut tables = ComponentTables {
            index: FxHashMap::default(),
            ..ComponentTables::default()
        };
        tables.index.reserve(capacity);
        tables.free.reserve(capacity);
        tables.addr.reserve(capacity);
        tables.present.reserve(capacity);
        tables.misar_abort_sent.reserve(capacity);
        tables.local_lock.reserve(capacity);
        tables.master_lock.reserve(capacity);
        tables.local_barrier.reserve(capacity);
        tables.master_barrier.reserve(capacity);
        tables.master_sem.reserve(capacity);
        tables.master_cond.reserve(capacity);
        tables.mcs_tail.reserve(capacity);
        tables.mcs_nodes.reserve(capacity);
        tables.syncron_var.reserve(capacity);
        tables
    }

    /// The slot currently tracking `var`, if any (no insertion).
    pub(crate) fn lookup(&self, var: Addr) -> Option<u32> {
        self.index.get(&var).copied()
    }

    /// The slot tracking `var`, claiming a recycled or fresh one if absent.
    pub(crate) fn resolve(&mut self, var: Addr) -> u32 {
        if let Some(&slot) = self.index.get(&var) {
            return slot;
        }
        let slot = match self.free.pop() {
            Some(slot) => {
                debug_assert!(
                    self.is_unused(slot as usize),
                    "free-listed slot still holds state"
                );
                self.addr[slot as usize] = var;
                slot
            }
            None => {
                let slot = self.addr.len() as u32;
                self.addr.push(var);
                self.present.push(0);
                self.misar_abort_sent.push(false);
                self.local_lock.push(LocalLock::default());
                self.master_lock.push(MasterLock::default());
                self.local_barrier.push(LocalBarrier::default());
                self.master_barrier.push(MasterBarrier::default());
                self.master_sem.push(MasterSem::default());
                self.master_cond.push(MasterCond::default());
                self.mcs_tail.push(McsTail::default());
                self.mcs_nodes.push(McsNodes::default());
                self.syncron_var.push(None);
                slot
            }
        };
        self.index.insert(var, slot);
        slot
    }

    /// Returns `slot` to the free list if its variable holds no state anymore.
    pub(crate) fn release_if_unused(&mut self, slot: u32) {
        if self.is_unused(slot as usize) {
            self.index.remove(&self.addr[slot as usize]);
            self.free.push(slot);
        }
    }

    /// Whether the slot holds no component at all and can return to the free list.
    fn is_unused(&self, slot: usize) -> bool {
        self.present[slot] == 0 && !self.misar_abort_sent[slot] && self.syncron_var[slot].is_none()
    }

    /// The variable tracked by `slot` (meaningful while indexed).
    #[cfg(test)]
    pub(crate) fn addr(&self, slot: usize) -> Addr {
        self.addr[slot]
    }

    component!(
        /// Unit-local lock aggregation component.
        local_lock,
        local_lock_mut,
        remove_local_lock,
        local_lock,
        LocalLock,
        P_LOCAL_LOCK
    );
    component!(
        /// Master-side lock arbitration component.
        master_lock_ref,
        master_lock_mut,
        remove_master_lock,
        master_lock,
        MasterLock,
        P_MASTER_LOCK
    );
    component!(
        /// Unit-local barrier aggregation component.
        local_barrier_ref,
        local_barrier_mut,
        remove_local_barrier,
        local_barrier,
        LocalBarrier,
        P_LOCAL_BARRIER
    );
    component!(
        /// Master-side barrier component.
        master_barrier_ref,
        master_barrier_mut,
        remove_master_barrier,
        master_barrier,
        MasterBarrier,
        P_MASTER_BARRIER
    );
    component!(
        /// Master-side MCS tail-pointer component.
        mcs_tail_ref,
        mcs_tail_mut,
        remove_mcs_tail,
        mcs_tail,
        McsTail,
        P_MCS_TAIL
    );
    component!(
        /// Per-waiter MCS queue-node component.
        mcs_nodes_ref,
        mcs_nodes_mut,
        remove_mcs_nodes,
        mcs_nodes,
        McsNodes,
        P_MCS_NODES
    );

    /// Master-side semaphore component (claiming; sticky at the serving engine,
    /// like the old map entry — semaphore state outlives quiescence).
    pub(crate) fn master_sem_mut(&mut self, slot: usize) -> &mut MasterSem {
        self.present[slot] |= P_MASTER_SEM;
        &mut self.master_sem[slot]
    }

    /// Master-side condition-variable component (claiming; sticky like semaphores).
    pub(crate) fn master_cond_mut(&mut self, slot: usize) -> &mut MasterCond {
        self.present[slot] |= P_MASTER_COND;
        &mut self.master_cond[slot]
    }

    /// Master-side semaphore component, if present.
    #[cfg(test)]
    pub(crate) fn master_sem_ref(&self, slot: usize) -> Option<&MasterSem> {
        (self.present[slot] & P_MASTER_SEM != 0).then(|| &self.master_sem[slot])
    }

    /// Depth of the master-side lock waiting queue (0 when the component is
    /// absent). The contention signal adaptive policies switch on.
    pub(crate) fn master_lock_depth(&self, slot: usize) -> u32 {
        self.master_lock_ref(slot)
            .map_or(0, |ml| ml.waiting.len() as u32)
    }

    /// Marks the MiSAR abort broadcast as charged for `slot`; returns `true` if
    /// this call was the first (the broadcast should be charged now).
    pub(crate) fn claim_misar_abort(&mut self, slot: usize) -> bool {
        !std::mem::replace(&mut self.misar_abort_sent[slot], true)
    }

    /// The slot's in-memory `syncronVar` image entry (for lazy creation).
    pub(crate) fn syncron_var_entry(&mut self, slot: usize) -> &mut Option<Box<SyncronVar>> {
        &mut self.syncron_var[slot]
    }

    /// The in-memory `syncronVar` image of `var`, if one exists.
    #[cfg(test)]
    pub(crate) fn syncron_var(&self, var: Addr) -> Option<&SyncronVar> {
        self.lookup(var)
            .and_then(|slot| self.syncron_var[slot as usize].as_deref())
    }

    /// Number of variables currently tracked.
    #[cfg(test)]
    pub(crate) fn live(&self) -> usize {
        self.index.len()
    }

    /// Allocated slot capacity (for the no-steady-state-growth tests).
    #[cfg(test)]
    pub(crate) fn capacity(&self) -> usize {
        self.addr.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use syncron_sim::{CoreId, SimRng};

    fn core(u: u8, c: u8) -> GlobalCoreId {
        GlobalCoreId::new(UnitId(u), CoreId(c))
    }

    #[test]
    fn slot_freed_as_lock_reused_as_barrier_leaks_nothing() {
        let mut t = ComponentTables::with_capacity(4);
        let a = Addr(0x40);
        let slot = t.resolve(a) as usize;
        {
            let ll = t.local_lock_mut(slot);
            ll.waiters.push_back(core(0, 1));
            ll.waiters.push_back(core(0, 2));
            ll.holder = Some(core(0, 0));
            ll.has_ownership = true;
            ll.local_grants = 7;
        }
        t.master_lock_mut(slot)
            .waiting
            .push_back(Grantee::Unit(UnitId(3)));
        t.remove_local_lock(slot);
        t.remove_master_lock(slot);
        t.release_if_unused(slot as u32);
        assert!(t.lookup(a).is_none(), "freed slot still indexed");

        // The recycled slot now tracks a *barrier* variable: the index answers
        // the new address and no lock state crossed the recycle.
        let b = Addr(0x80);
        let slot2 = t.resolve(b) as usize;
        assert_eq!(slot, slot2, "free list must hand the slot back");
        assert_eq!(t.addr(slot2), b);
        assert!(t.local_lock(slot2).is_none(), "lock presence leaked");
        assert!(t.master_lock_ref(slot2).is_none(), "master lock leaked");
        let mb = t.master_barrier_mut(slot2);
        assert_eq!(mb.arrived, 0);
        assert!(mb.arrived_units.is_empty());
        assert!(mb.direct_waiters.is_empty());
        // And the freshly claimed lock component (same slot) is reset too.
        let ll = t.local_lock_mut(slot2);
        assert!(ll.waiters.is_empty(), "waiters leaked across the recycle");
        assert_eq!(ll.holder, None);
        assert!(!ll.has_ownership);
        assert_eq!(ll.local_grants, 0);
    }

    #[test]
    fn recycling_is_clean_across_every_primitive_pair() {
        // Randomized property: claim a random subset of components on a slot,
        // populate them, remove them, recycle, and verify the next variable in
        // that slot observes fully reset state for *every* primitive.
        for case in 0..64u64 {
            let mut rng = SimRng::seed_from(0xEC5_0000 + case);
            let mut t = ComponentTables::with_capacity(2);
            for round in 0..20u64 {
                let var = Addr(0x40 * (round + 1));
                let slot = t.resolve(var) as usize;
                // Absent components must always read as reset.
                assert!(t.local_lock(slot).is_none());
                assert!(t.master_lock_ref(slot).is_none());
                assert!(t.local_barrier_ref(slot).is_none());
                assert!(t.master_barrier_ref(slot).is_none());
                assert!(t.mcs_tail_ref(slot).is_none());
                assert!(t.mcs_nodes_ref(slot).is_none());
                assert!(t.master_sem_ref(slot).is_none());
                if rng.gen_bool(0.5) {
                    t.local_lock_mut(slot).waiters.push_back(core(0, 0));
                }
                if rng.gen_bool(0.5) {
                    t.master_lock_mut(slot).owner = Some(Grantee::Core(core(1, 1)));
                }
                if rng.gen_bool(0.5) {
                    t.local_barrier_mut(slot).waiters.push(core(2, 2));
                }
                if rng.gen_bool(0.5) {
                    let mb = t.master_barrier_mut(slot);
                    mb.arrived = 3;
                    mb.arrived_units.push(UnitId(1));
                }
                if rng.gen_bool(0.5) {
                    t.mcs_tail_mut(slot).tail = Some((core(0, 3), 9));
                }
                t.remove_local_lock(slot);
                t.remove_master_lock(slot);
                t.remove_local_barrier(slot);
                t.remove_master_barrier(slot);
                t.remove_mcs_tail(slot);
                t.release_if_unused(slot as u32);
                assert!(t.lookup(var).is_none());
                assert!(t.live() == 0, "slot leaked in round {round}");
            }
        }
    }

    #[test]
    fn mcs_node_lifecycle_handles_the_requeue_race() {
        let mut nodes = McsNodes::default();
        nodes.ensure(4);
        // Uncontended: enqueue, release with no successor, reap on confirmation.
        let seq1 = nodes.enqueue(0);
        assert_eq!(nodes.release(0), McsRelease::TailRace(seq1));
        assert_eq!(nodes.active, 1);
        assert!(nodes.reap(0, seq1));
        assert_eq!(nodes.active, 0);

        // Handoff: a linked successor is granted directly.
        let seq2 = nodes.enqueue(0);
        assert_eq!(nodes.link(0, seq2, core(1, 0)), None);
        assert_eq!(nodes.release(0), McsRelease::Handoff(core(1, 0)));
        assert_eq!(nodes.active, 0);

        // ABA: the core re-enqueues while its previous instance is still dying;
        // a late link for the dying instance hands off without touching the new
        // live instance.
        let seq3 = nodes.enqueue(0);
        assert_eq!(nodes.release(0), McsRelease::TailRace(seq3));
        let seq4 = nodes.enqueue(0);
        assert_ne!(seq3, seq4);
        assert_eq!(nodes.active, 2);
        let granted = nodes.link(0, seq3, core(2, 5));
        assert_eq!(granted, Some(core(2, 5)), "dying instance must hand off");
        assert_eq!(nodes.active, 1);
        assert!(nodes.nodes[0].queued, "live instance untouched by the link");
        assert_eq!(nodes.nodes[0].queued_seq, seq4);
    }

    #[test]
    fn free_list_reuses_most_recently_freed_slot_first() {
        let mut t = ComponentTables::with_capacity(4);
        let s0 = t.resolve(Addr(0x40));
        let s1 = t.resolve(Addr(0x80));
        assert_ne!(s0, s1);
        t.local_lock_mut(s0 as usize).holder = Some(core(0, 0));
        t.remove_local_lock(s0 as usize);
        t.release_if_unused(s0);
        t.remove_local_lock(s1 as usize);
        t.release_if_unused(s1);
        // LIFO free list: the most recently freed slot (s1) is claimed first.
        assert_eq!(t.resolve(Addr(0xC0)), s1);
        assert_eq!(t.resolve(Addr(0x100)), s0);
    }
}
