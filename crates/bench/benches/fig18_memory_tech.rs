//! Regenerates Figure 18 of the paper (HBM / HMC / DDR4 memory technologies).
fn main() {
    syncron_bench::experiments::sensitivity::fig18().print();
}
