//! Regenerates Table 8 of the paper (SE area and power vs ARM Cortex-A7).
fn main() {
    syncron_bench::experiments::hwcost::table08().print();
    syncron_bench::experiments::hwcost::st_size_area_sweep().print();
}
