//! A no-op stand-in for the `serde` crate.
//!
//! This workspace builds in environments without access to crates.io, but the model
//! crates annotate their types with `#[cfg_attr(feature = "serde", derive(...))]` so
//! that real serde support is one dependency swap away. This shim makes the `serde`
//! feature *compile* offline: the derive macros expand to nothing and the traits carry
//! no methods. Replace the `serde = { package = "syncron-serde-stub", ... }` path
//! dependencies with the real `serde` crate (features = ["derive"]) to get actual
//! serialization; no source change is required.
//!
//! The harness crate does not rely on this shim — its scenario/report serialization is
//! implemented in-tree (see `syncron_harness::json`).

pub use syncron_serde_derive::{Deserialize, Serialize};

/// No-op stand-in for `serde::Serialize`.
pub trait SerializeMarker {}

/// No-op stand-in for `serde::Deserialize`.
pub trait DeserializeMarker {}
