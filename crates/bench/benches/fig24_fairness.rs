//! Fairness extension (Section 4.4.2 of the paper): local-grant threshold sweep.
fn main() {
    syncron_bench::experiments::sensitivity::fig24_fairness().print();
}
