//! Serializable workload specifications.
//!
//! A [`WorkloadSpec`] is a plain-data description that can name and construct every
//! workload of the evaluation (`crates/workloads`): the Figure 10 microbenchmarks, the
//! motivational spin-lock benchmarks, the nine concurrent data structures, the six
//! graph applications and the time-series analysis. Unlike a `Box<dyn Workload>`, a
//! spec is `Clone + Send + Sync + PartialEq` and converts to/from [`Value`] documents,
//! which is what lets the runner rebuild workloads inside worker threads and the CLI
//! read scenarios from TOML/JSON files.

use syncron_system::workload::Workload;
use syncron_workloads::datastructures;
use syncron_workloads::graph::{GraphAlgo, GraphApp, GraphInput, Partitioning};
use syncron_workloads::micro::{microbench, SyncPrimitive};
use syncron_workloads::service::{service_workload, ArrivalProcess, ServiceParams, ServiceShape};
use syncron_workloads::spinlock::{LockedStack, Placement, SpinKind, SpinLockBench, StackLock};
use syncron_workloads::timeseries::TimeSeries;

use crate::error::HarnessError;
use crate::json::Value;

/// A declarative, serializable description of one workload.
///
/// `PartialEq` only (not `Eq`): the open-loop [`Service`](WorkloadSpec::Service)
/// variant carries floating-point rate/skew parameters.
#[derive(Clone, Debug, PartialEq)]
pub enum WorkloadSpec {
    /// Single-variable synchronization-primitive microbenchmark (Figure 10).
    Micro {
        /// Which primitive to exercise.
        primitive: SyncPrimitive,
        /// Instructions between synchronization points.
        interval: u64,
        /// Operations per core.
        iterations: u32,
    },
    /// Coherence-based spin-lock benchmark on the simulated CPU (Table 1).
    SpinLock {
        /// Lock algorithm.
        kind: SpinKind,
        /// Number of active threads.
        threads: usize,
        /// Thread placement across sockets.
        placement: Placement,
        /// Lock acquisitions per thread.
        iterations: u32,
    },
    /// Coarse-lock stack comparing lock implementations (Figure 2).
    LockedStack {
        /// Which lock protects the stack.
        lock: StackLock,
        /// Push operations per core.
        pushes: u32,
    },
    /// One of the nine concurrent data structures (Figure 11), by name.
    DataStructure {
        /// Structure name (one of [`datastructures::ALL_NAMES`]).
        name: String,
        /// Operations per client core.
        ops_per_core: u32,
    },
    /// A graph application over a named synthetic input (Figures 12–15, 17, 19, 20).
    Graph {
        /// Algorithm.
        algo: GraphAlgo,
        /// Input name (one of the paper's abbreviations: wk, sl, sx, co).
        input: String,
        /// Vertex-to-unit placement.
        partitioning: Partitioning,
    },
    /// Matrix-profile time-series analysis (Figures 12–15, 18, 21).
    TimeSeries {
        /// Dataset name ("air" or "pow").
        input: String,
        /// Diagonals processed per client core.
        diagonals_per_core: u32,
    },
    /// Open-loop service workload with deterministic arrivals, Zipf-skewed keys
    /// and per-request tail-latency telemetry (beyond the paper's evaluation).
    Service {
        /// Service shape (sharded KV / per-key-lock KV / work-stealing deque /
        /// epoch reclamation).
        shape: ServiceShape,
        /// Per-core arrival process.
        arrival: ArrivalProcess,
        /// Key-space size.
        keys: u64,
        /// Zipf skew exponent (0 = uniform).
        zipf_s: f64,
        /// Open-loop requests per client core.
        requests: u32,
    },
}

impl WorkloadSpec {
    /// Short kind string used in documents and by `syncron-cli list`.
    pub fn kind(&self) -> &'static str {
        match self {
            WorkloadSpec::Micro { .. } => "micro",
            WorkloadSpec::SpinLock { .. } => "spinlock",
            WorkloadSpec::LockedStack { .. } => "locked-stack",
            WorkloadSpec::DataStructure { .. } => "data-structure",
            WorkloadSpec::Graph { .. } => "graph",
            WorkloadSpec::TimeSeries { .. } => "time-series",
            WorkloadSpec::Service { .. } => "service",
        }
    }

    /// Stable human-readable label identifying the workload (used in scenario labels
    /// and result keys).
    pub fn label(&self) -> String {
        match self {
            WorkloadSpec::Micro {
                primitive,
                interval,
                ..
            } => format!("{}-micro.i{}", primitive.name(), interval),
            WorkloadSpec::SpinLock {
                kind,
                threads,
                placement,
                ..
            } => format!(
                "{}.{}thr.{}",
                kind.name().to_ascii_lowercase(),
                threads,
                placement_name(*placement)
            ),
            WorkloadSpec::LockedStack { lock, .. } => {
                format!("locked-stack.{}", stack_lock_name(*lock))
            }
            WorkloadSpec::DataStructure { name, .. } => name.clone(),
            WorkloadSpec::Graph {
                algo,
                input,
                partitioning,
            } => match partitioning {
                Partitioning::Striped => format!("{}.{}", algo.name(), input),
                Partitioning::Greedy => format!("{}.{}.greedy", algo.name(), input),
            },
            WorkloadSpec::TimeSeries { input, .. } => format!("ts.{input}"),
            WorkloadSpec::Service {
                shape,
                arrival,
                zipf_s,
                ..
            } => format!(
                "svc-{}.{}.r{}.z{}",
                shape.name(),
                arrival.kind_name(),
                arrival.rate_per_us(),
                zipf_s
            ),
        }
    }

    /// Builds the concrete workload, validating every name.
    pub fn build(&self) -> Result<Box<dyn Workload + Send + Sync>, HarnessError> {
        match self {
            WorkloadSpec::Micro {
                primitive,
                interval,
                iterations,
            } => Ok(microbench(*primitive, *interval, *iterations)),
            WorkloadSpec::SpinLock {
                kind,
                threads,
                placement,
                iterations,
            } => Ok(Box::new(SpinLockBench::new(
                *kind,
                *threads,
                *placement,
                *iterations,
            ))),
            WorkloadSpec::LockedStack { lock, pushes } => {
                Ok(Box::new(LockedStack::new(*lock, *pushes)))
            }
            WorkloadSpec::DataStructure { name, ops_per_core } => {
                datastructures::by_name(name, *ops_per_core).ok_or_else(|| {
                    HarnessError::spec(format!(
                        "unknown data structure '{name}' (expected one of {:?})",
                        datastructures::ALL_NAMES
                    ))
                })
            }
            WorkloadSpec::Graph {
                algo,
                input,
                partitioning,
            } => {
                let input = GraphInput::by_name(input)
                    .ok_or_else(|| HarnessError::spec(format!("unknown graph input '{input}'")))?;
                Ok(Box::new(
                    GraphApp::new(*algo, input).with_partitioning(*partitioning),
                ))
            }
            WorkloadSpec::TimeSeries {
                input,
                diagonals_per_core,
            } => {
                let ts = TimeSeries::by_name(input)
                    .ok_or_else(|| HarnessError::spec(format!("unknown time series '{input}'")))?;
                Ok(Box::new(ts.with_diagonals_per_core(*diagonals_per_core)))
            }
            WorkloadSpec::Service {
                shape,
                arrival,
                keys,
                zipf_s,
                requests,
            } => {
                validate_arrival(arrival)?;
                if *keys == 0 {
                    return Err(HarnessError::spec("service 'keys' must be ≥ 1"));
                }
                if !(zipf_s.is_finite() && *zipf_s >= 0.0) {
                    return Err(HarnessError::spec(format!(
                        "service 'zipf_s' must be a finite value ≥ 0, got {zipf_s}"
                    )));
                }
                if *requests == 0 {
                    return Err(HarnessError::spec("service 'requests' must be ≥ 1"));
                }
                Ok(service_workload(
                    *shape,
                    ServiceParams {
                        arrival: *arrival,
                        keys: *keys,
                        zipf_s: *zipf_s,
                        requests: *requests,
                    },
                ))
            }
        }
    }

    /// Serializes the spec into a table value.
    pub fn to_value(&self) -> Value {
        match self {
            WorkloadSpec::Micro {
                primitive,
                interval,
                iterations,
            } => Value::table([
                ("kind", Value::str("micro")),
                ("primitive", Value::str(primitive.name())),
                ("interval", Value::Int(*interval as i64)),
                ("iterations", Value::Int(*iterations as i64)),
            ]),
            WorkloadSpec::SpinLock {
                kind,
                threads,
                placement,
                iterations,
            } => Value::table([
                ("kind", Value::str("spinlock")),
                ("lock", Value::str(kind.name())),
                ("threads", Value::Int(*threads as i64)),
                ("placement", Value::str(placement_name(*placement))),
                ("iterations", Value::Int(*iterations as i64)),
            ]),
            WorkloadSpec::LockedStack { lock, pushes } => Value::table([
                ("kind", Value::str("locked-stack")),
                ("lock", Value::str(stack_lock_name(*lock))),
                ("pushes", Value::Int(*pushes as i64)),
            ]),
            WorkloadSpec::DataStructure { name, ops_per_core } => Value::table([
                ("kind", Value::str("data-structure")),
                ("name", Value::str(name.clone())),
                ("ops_per_core", Value::Int(*ops_per_core as i64)),
            ]),
            WorkloadSpec::Graph {
                algo,
                input,
                partitioning,
            } => Value::table([
                ("kind", Value::str("graph")),
                ("algo", Value::str(algo.name())),
                ("input", Value::str(input.clone())),
                ("partitioning", Value::str(partitioning_name(*partitioning))),
            ]),
            WorkloadSpec::TimeSeries {
                input,
                diagonals_per_core,
            } => Value::table([
                ("kind", Value::str("time-series")),
                ("input", Value::str(input.clone())),
                ("diagonals_per_core", Value::Int(*diagonals_per_core as i64)),
            ]),
            WorkloadSpec::Service {
                shape,
                arrival,
                keys,
                zipf_s,
                requests,
            } => {
                let mut pairs = vec![
                    ("kind", Value::str("service")),
                    ("shape", Value::str(shape.name())),
                    ("arrival", Value::str(arrival.kind_name())),
                    ("rate_per_us", Value::Float(arrival.rate_per_us())),
                    ("keys", Value::Int(*keys as i64)),
                    ("zipf_s", Value::Float(*zipf_s)),
                    ("requests", Value::Int(*requests as i64)),
                ];
                match arrival {
                    ArrivalProcess::Poisson { .. } => {}
                    ArrivalProcess::Mmpp { on_us, off_us, .. } => {
                        pairs.push(("on_us", Value::Float(*on_us)));
                        pairs.push(("off_us", Value::Float(*off_us)));
                    }
                    ArrivalProcess::Diurnal {
                        amplitude,
                        period_us,
                        ..
                    } => {
                        pairs.push(("amplitude", Value::Float(*amplitude)));
                        pairs.push(("period_us", Value::Float(*period_us)));
                    }
                }
                Value::table(pairs)
            }
        }
    }

    /// Deserializes a spec from a table value (the inverse of [`Self::to_value`]).
    pub fn from_value(value: &Value) -> Result<WorkloadSpec, HarnessError> {
        let kind = value
            .get("kind")
            .and_then(Value::as_str)
            .ok_or_else(|| HarnessError::spec("workload table needs a string 'kind'"))?;
        match kind {
            "micro" => Ok(WorkloadSpec::Micro {
                primitive: parse_primitive(req_str(value, "primitive")?)?,
                interval: req_u64(value, "interval")?,
                iterations: opt_u32(value, "iterations")?.unwrap_or(24),
            }),
            "spinlock" => Ok(WorkloadSpec::SpinLock {
                kind: parse_spin_kind(req_str(value, "lock")?)?,
                threads: req_u64(value, "threads")? as usize,
                placement: parse_placement(
                    value
                        .get("placement")
                        .and_then(Value::as_str)
                        .unwrap_or("packed"),
                )?,
                iterations: opt_u32(value, "iterations")?.unwrap_or(200),
            }),
            "locked-stack" => Ok(WorkloadSpec::LockedStack {
                lock: parse_stack_lock(req_str(value, "lock")?)?,
                pushes: opt_u32(value, "pushes")?.unwrap_or(60),
            }),
            "data-structure" => Ok(WorkloadSpec::DataStructure {
                name: req_str(value, "name")?.to_string(),
                ops_per_core: opt_u32(value, "ops_per_core")?.unwrap_or(40),
            }),
            "graph" => Ok(WorkloadSpec::Graph {
                algo: GraphAlgo::by_name(req_str(value, "algo")?).ok_or_else(|| {
                    HarnessError::spec(format!(
                        "unknown graph algorithm '{}'",
                        req_str(value, "algo").unwrap_or_default()
                    ))
                })?,
                input: req_str(value, "input")?.to_string(),
                partitioning: parse_partitioning(
                    value
                        .get("partitioning")
                        .and_then(Value::as_str)
                        .unwrap_or("striped"),
                )?,
            }),
            "time-series" => Ok(WorkloadSpec::TimeSeries {
                input: req_str(value, "input")?.to_string(),
                diagonals_per_core: opt_u32(value, "diagonals_per_core")?.unwrap_or(6),
            }),
            "service" => {
                let shape = req_str(value, "shape")?;
                let shape = ServiceShape::by_name(shape).ok_or_else(|| {
                    HarnessError::spec(format!(
                        "unknown service shape '{shape}' (expected kv, kv-fine, steal or epoch)"
                    ))
                })?;
                let rate_per_us = req_f64(value, "rate_per_us")?;
                let arrival = match value
                    .get("arrival")
                    .and_then(Value::as_str)
                    .unwrap_or("poisson")
                {
                    "poisson" => ArrivalProcess::Poisson { rate_per_us },
                    "mmpp" => ArrivalProcess::Mmpp {
                        rate_per_us,
                        on_us: opt_f64(value, "on_us")?.unwrap_or(20.0),
                        off_us: opt_f64(value, "off_us")?.unwrap_or(80.0),
                    },
                    "diurnal" => ArrivalProcess::Diurnal {
                        rate_per_us,
                        amplitude: opt_f64(value, "amplitude")?.unwrap_or(0.8),
                        period_us: opt_f64(value, "period_us")?.unwrap_or(1000.0),
                    },
                    other => {
                        return Err(HarnessError::spec(format!(
                            "unknown arrival process '{other}' (expected poisson, mmpp or diurnal)"
                        )))
                    }
                };
                Ok(WorkloadSpec::Service {
                    shape,
                    arrival,
                    keys: value
                        .get("keys")
                        .and_then(Value::as_u64)
                        .unwrap_or(1_000_000),
                    zipf_s: opt_f64(value, "zipf_s")?.unwrap_or(0.99),
                    requests: opt_u32(value, "requests")?.unwrap_or(32),
                })
            }
            other => Err(HarnessError::spec(format!(
                "unknown workload kind '{other}' (expected micro, spinlock, locked-stack, \
                 data-structure, graph, time-series or service)"
            ))),
        }
    }

    /// Expands a workload table in which some scalar fields hold *arrays* into the
    /// cartesian product of concrete specs.
    ///
    /// This is what lets a scenario file write `interval = [50, 100, 200]` once
    /// instead of repeating the workload table per interval.
    pub fn expand_from_value(value: &Value) -> Result<Vec<WorkloadSpec>, HarnessError> {
        crate::scenario::expand_tables(value)?
            .iter()
            .map(WorkloadSpec::from_value)
            .collect()
    }

    /// One catalog line per workload kind for `syncron-cli list`.
    pub fn catalog() -> Vec<String> {
        let mut lines = vec![
            "micro           primitive=lock|barrier|semaphore|condvar interval=<instrs> iterations=<n>"
                .to_string(),
            "spinlock        lock=ttas|htl threads=<n> placement=packed|spread iterations=<n>"
                .to_string(),
            "locked-stack    lock=mesi-spin|sync-primitive pushes=<n>".to_string(),
        ];
        lines.push(format!(
            "data-structure  name={} ops_per_core=<n>",
            datastructures::ALL_NAMES.join("|")
        ));
        lines.push(format!(
            "graph           algo={} input={} partitioning=striped|greedy",
            GraphAlgo::ALL
                .iter()
                .map(|a| a.name())
                .collect::<Vec<_>>()
                .join("|"),
            GraphInput::ALL
                .iter()
                .map(|g| g.name)
                .collect::<Vec<_>>()
                .join("|")
        ));
        lines.push("time-series     input=air|pow diagonals_per_core=<n>".to_string());
        lines.push(
            "service         shape=kv|kv-fine|steal|epoch arrival=poisson|mmpp|diurnal \
             rate_per_us=<f> keys=<n> zipf_s=<f> requests=<n> [on_us/off_us | \
             amplitude/period_us]"
                .to_string(),
        );
        lines
    }
}

/// Validates the numeric parameters of an arrival process.
fn validate_arrival(arrival: &ArrivalProcess) -> Result<(), HarnessError> {
    let rate = arrival.rate_per_us();
    if !(rate.is_finite() && rate > 0.0) {
        return Err(HarnessError::spec(format!(
            "service 'rate_per_us' must be a finite value > 0, got {rate}"
        )));
    }
    match arrival {
        ArrivalProcess::Poisson { .. } => {}
        ArrivalProcess::Mmpp { on_us, off_us, .. } => {
            if !(on_us.is_finite() && *on_us > 0.0 && off_us.is_finite() && *off_us > 0.0) {
                return Err(HarnessError::spec(format!(
                    "mmpp 'on_us'/'off_us' must be finite values > 0, got {on_us}/{off_us}"
                )));
            }
        }
        ArrivalProcess::Diurnal {
            amplitude,
            period_us,
            ..
        } => {
            if !(amplitude.is_finite() && (0.0..1.0).contains(amplitude)) {
                return Err(HarnessError::spec(format!(
                    "diurnal 'amplitude' must be in [0, 1), got {amplitude}"
                )));
            }
            if !(period_us.is_finite() && *period_us > 0.0) {
                return Err(HarnessError::spec(format!(
                    "diurnal 'period_us' must be a finite value > 0, got {period_us}"
                )));
            }
        }
    }
    Ok(())
}

fn req_str<'v>(value: &'v Value, key: &str) -> Result<&'v str, HarnessError> {
    value
        .get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| HarnessError::spec(format!("workload table needs a string '{key}'")))
}

fn req_u64(value: &Value, key: &str) -> Result<u64, HarnessError> {
    value
        .get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| HarnessError::spec(format!("workload table needs an integer '{key}'")))
}

fn req_f64(value: &Value, key: &str) -> Result<f64, HarnessError> {
    value
        .get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| HarnessError::spec(format!("workload table needs a number '{key}'")))
}

fn opt_f64(value: &Value, key: &str) -> Result<Option<f64>, HarnessError> {
    match value.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_f64()
            .map(Some)
            .ok_or_else(|| HarnessError::spec(format!("'{key}' must be a number"))),
    }
}

fn opt_u32(value: &Value, key: &str) -> Result<Option<u32>, HarnessError> {
    match value.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_u64()
            .and_then(|n| u32::try_from(n).ok())
            .map(Some)
            .ok_or_else(|| HarnessError::spec(format!("'{key}' must be a u32"))),
    }
}

fn parse_primitive(name: &str) -> Result<SyncPrimitive, HarnessError> {
    SyncPrimitive::ALL
        .iter()
        .copied()
        .find(|p| p.name() == name)
        .ok_or_else(|| {
            HarnessError::spec(format!(
                "unknown primitive '{name}' (expected lock, barrier, semaphore or condvar)"
            ))
        })
}

fn parse_spin_kind(name: &str) -> Result<SpinKind, HarnessError> {
    match name.to_ascii_lowercase().as_str() {
        "ttas" => Ok(SpinKind::Ttas),
        "htl" | "hierarchical-ticket" => Ok(SpinKind::HierarchicalTicket),
        _ => Err(HarnessError::spec(format!(
            "unknown spin lock '{name}' (expected ttas or htl)"
        ))),
    }
}

fn placement_name(p: Placement) -> &'static str {
    match p {
        Placement::Packed => "packed",
        Placement::Spread => "spread",
    }
}

fn parse_placement(name: &str) -> Result<Placement, HarnessError> {
    match name {
        "packed" => Ok(Placement::Packed),
        "spread" => Ok(Placement::Spread),
        _ => Err(HarnessError::spec(format!(
            "unknown placement '{name}' (expected packed or spread)"
        ))),
    }
}

fn stack_lock_name(l: StackLock) -> &'static str {
    match l {
        StackLock::MesiSpin => "mesi-spin",
        StackLock::SyncPrimitive => "sync-primitive",
    }
}

fn parse_stack_lock(name: &str) -> Result<StackLock, HarnessError> {
    match name {
        "mesi-spin" => Ok(StackLock::MesiSpin),
        "sync-primitive" => Ok(StackLock::SyncPrimitive),
        _ => Err(HarnessError::spec(format!(
            "unknown stack lock '{name}' (expected mesi-spin or sync-primitive)"
        ))),
    }
}

fn partitioning_name(p: Partitioning) -> &'static str {
    match p {
        Partitioning::Striped => "striped",
        Partitioning::Greedy => "greedy",
    }
}

fn parse_partitioning(name: &str) -> Result<Partitioning, HarnessError> {
    match name {
        "striped" => Ok(Partitioning::Striped),
        "greedy" => Ok(Partitioning::Greedy),
        _ => Err(HarnessError::spec(format!(
            "unknown partitioning '{name}' (expected striped or greedy)"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_example_specs() -> Vec<WorkloadSpec> {
        let mut specs = Vec::new();
        for p in SyncPrimitive::ALL {
            specs.push(WorkloadSpec::Micro {
                primitive: p,
                interval: 100,
                iterations: 8,
            });
        }
        specs.push(WorkloadSpec::SpinLock {
            kind: SpinKind::Ttas,
            threads: 2,
            placement: Placement::Spread,
            iterations: 10,
        });
        specs.push(WorkloadSpec::LockedStack {
            lock: StackLock::MesiSpin,
            pushes: 10,
        });
        for name in datastructures::ALL_NAMES {
            specs.push(WorkloadSpec::DataStructure {
                name: name.to_string(),
                ops_per_core: 8,
            });
        }
        for algo in GraphAlgo::ALL {
            specs.push(WorkloadSpec::Graph {
                algo,
                input: "wk".into(),
                partitioning: Partitioning::Greedy,
            });
        }
        specs.push(WorkloadSpec::TimeSeries {
            input: "pow".into(),
            diagonals_per_core: 2,
        });
        for (shape, arrival) in [
            (
                ServiceShape::Kv,
                ArrivalProcess::Poisson { rate_per_us: 0.05 },
            ),
            (
                ServiceShape::Steal,
                ArrivalProcess::Mmpp {
                    rate_per_us: 0.05,
                    on_us: 20.0,
                    off_us: 80.0,
                },
            ),
            (
                ServiceShape::Epoch,
                ArrivalProcess::Diurnal {
                    rate_per_us: 0.05,
                    amplitude: 0.8,
                    period_us: 1000.0,
                },
            ),
        ] {
            specs.push(WorkloadSpec::Service {
                shape,
                arrival,
                keys: 100_000,
                zipf_s: 0.99,
                requests: 8,
            });
        }
        specs
    }

    #[test]
    fn every_spec_builds_and_round_trips() {
        for spec in all_example_specs() {
            let wl = spec.build().expect("spec should build");
            assert!(!wl.name().is_empty());
            let doc = spec.to_value();
            let back = WorkloadSpec::from_value(&doc).expect("round trip");
            assert_eq!(back, spec, "round trip changed {doc:?}");
            // Through JSON text too.
            let text = doc.to_json_pretty();
            let reparsed = crate::json::parse(&text).unwrap();
            assert_eq!(WorkloadSpec::from_value(&reparsed).unwrap(), spec);
        }
    }

    #[test]
    fn labels_are_unique_across_example_specs() {
        let specs = all_example_specs();
        let mut labels: Vec<String> = specs.iter().map(WorkloadSpec::label).collect();
        labels.sort();
        let before = labels.len();
        labels.dedup();
        assert_eq!(before, labels.len(), "duplicate workload labels");
    }

    #[test]
    fn bad_names_are_rejected() {
        assert!(WorkloadSpec::DataStructure {
            name: "nope".into(),
            ops_per_core: 1
        }
        .build()
        .is_err());
        assert!(WorkloadSpec::TimeSeries {
            input: "nope".into(),
            diagonals_per_core: 1
        }
        .build()
        .is_err());
        let bad = Value::table([("kind", Value::str("warp-drive"))]);
        assert!(WorkloadSpec::from_value(&bad).is_err());
    }

    #[test]
    fn service_spec_defaults_and_validation() {
        // Minimal table: shape + rate, everything else defaulted.
        let minimal = Value::table([
            ("kind", Value::str("service")),
            ("shape", Value::str("kv")),
            ("rate_per_us", Value::Float(0.1)),
        ]);
        let spec = WorkloadSpec::from_value(&minimal).expect("defaults fill in");
        match &spec {
            WorkloadSpec::Service {
                shape,
                arrival,
                keys,
                zipf_s,
                requests,
            } => {
                assert_eq!(*shape, ServiceShape::Kv);
                assert_eq!(*arrival, ArrivalProcess::Poisson { rate_per_us: 0.1 });
                assert_eq!(*keys, 1_000_000);
                assert_eq!(*zipf_s, 0.99);
                assert_eq!(*requests, 32);
            }
            other => panic!("wrong variant: {other:?}"),
        }
        assert!(spec.build().is_ok());

        // An integer rate is accepted (TOML writers may omit the decimal point).
        let int_rate = Value::table([
            ("kind", Value::str("service")),
            ("shape", Value::str("steal")),
            ("rate_per_us", Value::Int(2)),
        ]);
        assert!(WorkloadSpec::from_value(&int_rate).is_ok());

        // Build-time validation: `list --dry-run` style errors.
        let zero_rate = WorkloadSpec::Service {
            shape: ServiceShape::Kv,
            arrival: ArrivalProcess::Poisson { rate_per_us: 0.0 },
            keys: 10,
            zipf_s: 0.99,
            requests: 4,
        };
        assert!(zero_rate.build().is_err());
        let bad_amplitude = WorkloadSpec::Service {
            shape: ServiceShape::Epoch,
            arrival: ArrivalProcess::Diurnal {
                rate_per_us: 0.1,
                amplitude: 1.5,
                period_us: 100.0,
            },
            keys: 10,
            zipf_s: 0.99,
            requests: 4,
        };
        assert!(bad_amplitude.build().is_err());
        let bad_shape = Value::table([
            ("kind", Value::str("service")),
            ("shape", Value::str("warp")),
            ("rate_per_us", Value::Float(0.1)),
        ]);
        assert!(WorkloadSpec::from_value(&bad_shape).is_err());
        let bad_arrival = Value::table([
            ("kind", Value::str("service")),
            ("shape", Value::str("kv")),
            ("arrival", Value::str("constant")),
            ("rate_per_us", Value::Float(0.1)),
        ]);
        assert!(WorkloadSpec::from_value(&bad_arrival).is_err());
    }
}
