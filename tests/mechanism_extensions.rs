//! Differential coverage for the two schemes added on top of the
//! component-table / policy split: the MCS-style hardware queue lock and the
//! Adaptive (per-variable Central-to-Hier escalation) policy.
//!
//! `tests/scheduler_differential.rs` pins the original corpus; this suite
//! extends the same invariants — scheduler, message-batching and shard
//! invisibility — to the `mechanism_extensions.toml` sweep, which runs all
//! seven mechanism kinds over a contended lock and the fine-grained (per-key
//! lock) open-loop KV service. It also pins two scheme-specific contracts:
//!
//! * the MCS handoff chain wakes every waiter exactly once even when the
//!   queue is longer than the 64-entry Synchronization Table (128 waiters);
//! * the Adaptive policy always falls back to sequential execution under the
//!   sharded executor (its escalation set is fed by globally observed
//!   contention, which shards would partition).

use syncron::harness::toml;
use syncron::prelude::*;
use syncron::workloads::micro::{BarrierMicrobench, LockMicrobench};

/// Loads the `[sweep]` scenarios of a bundled file.
fn load_sweep(name: &str) -> Vec<Scenario> {
    let path = format!("{}/scenarios/{name}", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
    let doc = toml::parse(&text).unwrap_or_else(|e| panic!("{path}: {e}"));
    Sweep::scenarios_from_value(doc.get("sweep").expect("sweep table"))
        .unwrap_or_else(|e| panic!("{path}: {e}"))
}

/// The extension corpus must keep covering every mechanism kind: a scheme
/// silently dropped from the scenario file would otherwise shrink this suite
/// to a subset without failing anything.
fn load_extension_corpus() -> Vec<Scenario> {
    let scenarios = load_sweep("mechanism_extensions.toml");
    for kind in MechanismKind::ALL {
        assert!(
            scenarios.iter().any(|s| s.config.mechanism == kind),
            "mechanism_extensions.toml no longer covers {kind:?}"
        );
    }
    scenarios
}

#[test]
fn extension_corpus_is_scheduler_and_batching_invariant() {
    for scenario in load_extension_corpus() {
        let mut calendar = scenario.clone();
        calendar.config = calendar
            .config
            .with_scheduler(SchedulerKind::Calendar)
            .with_inline_step_budget(64);
        let mut heap = scenario.clone();
        heap.config = heap
            .config
            .with_scheduler(SchedulerKind::Heap)
            .with_inline_step_budget(0);
        let calendar_report = calendar.run().expect("calendar run");
        let heap_report = heap.run().expect("heap run");
        if let Some(field) = heap_report.divergence_from(&calendar_report) {
            panic!(
                "{}: calendar scheduler diverged from the heap reference in {field}",
                scenario.label
            );
        }

        let mut unbatched = scenario.clone();
        unbatched.config = unbatched.config.with_message_batching(false);
        let unbatched_report = unbatched.run().expect("unbatched run");
        if let Some(field) = unbatched_report.divergence_from(&calendar_report) {
            panic!(
                "{}: message batching diverged from the per-message reference in {field}",
                scenario.label
            );
        }
        assert!(
            calendar_report.completed,
            "{} did not complete",
            scenario.label
        );
    }
}

#[test]
fn extension_corpus_is_sharding_invariant() {
    // MCS is shard-safe (queue nodes live at the lock's master engine, so the
    // handoff chain is ordinary cross-unit messaging); Adaptive and Ideal must
    // fall back to one shard. Either way the report must be bit-identical to
    // the sequential reference.
    for scenario in load_extension_corpus() {
        let mut sequential = scenario.clone();
        sequential.config = sequential.config.with_sim_threads(1);
        let reference = sequential.run().expect("sequential run");
        assert_eq!(reference.perf.shards, 1, "{}", scenario.label);

        let falls_back = matches!(
            scenario.config.mechanism,
            MechanismKind::Ideal | MechanismKind::Adaptive
        );
        let mut sharded = scenario.clone();
        sharded.config = sharded.config.with_sim_threads(4);
        let report = sharded.run().expect("sharded run");
        assert_eq!(
            report.perf.shards,
            if falls_back {
                1
            } else {
                4.min(scenario.config.units)
            },
            "{}: unexpected shard count",
            scenario.label
        );
        if let Some(field) = reference.divergence_from(&report) {
            panic!(
                "{}: sharded run diverged from the sequential reference in {field}",
                scenario.label
            );
        }
    }
}

#[test]
fn mcs_handoff_wakes_more_waiters_than_the_st_holds_exactly_once() {
    // 8 units x 16 cores (one core per unit serves the engine, 120 clients),
    // every client spinning on one global lock: the MCS queue holds up to 119
    // waiters at once — nearly twice the Synchronization Table's 64 entries —
    // and the critical sections are empty, so the run only drains if every
    // tail handoff wakes its successor exactly once. A lost wakeup deadlocks
    // the chain (completed = false); a duplicate grant trips the owner
    // assertion in the master-lock component.
    let config = NdpConfig::builder()
        .units(8)
        .cores_per_unit(16)
        .mechanism(MechanismKind::Mcs)
        .build()
        .expect("valid config");
    let clients = (config.units * config.clients_per_unit()) as u64;
    assert!(clients > 100, "geometry must outnumber the 64-entry ST");
    let iterations = 4;
    let report = run_workload(&config, &LockMicrobench::new(10, iterations));
    assert!(report.completed, "MCS handoff chain lost a wakeup");
    let expected = clients * iterations as u64;
    assert_eq!(
        report.total_ops, expected,
        "every waiter must complete every acquisition exactly once"
    );
    assert!(
        report.sync.completions >= expected,
        "each acquisition completes through the queue exactly once"
    );
}

#[test]
fn adaptive_threshold_changes_the_protocol_deterministically() {
    // The escalation threshold is a real protocol knob: with it out of reach
    // the hot lock stays on the flat path for the whole run, at the floor it
    // escalates to hierarchical aggregation after the first contended grant —
    // and the two runs must time out differently. Same-threshold runs stay
    // bit-identical (the escalation set is simulation state, not host state).
    let run = |threshold: u32| {
        let config = NdpConfig::builder()
            .units(4)
            .cores_per_unit(4)
            .mechanism(MechanismKind::Adaptive)
            .adaptive_threshold(threshold)
            .build()
            .expect("valid config");
        run_workload(&config, &LockMicrobench::new(50, 16))
    };
    let cold = run(u32::MAX);
    let hot = run(1);
    assert!(cold.completed && hot.completed);
    assert_ne!(
        cold.sim_time, hot.sim_time,
        "escalating the hot lock must change the protocol's timing"
    );
    assert!(hot.same_simulation(&run(1)), "escalation is deterministic");
}

#[test]
fn ideal_barrier_release_resumes_120_waiters_exactly_once_through_bursts() {
    // 8 units x 16 cores, every client waiting on one global barrier under the
    // Ideal mechanism: each release wakes all 120 clients at the same
    // timestamp, which is exactly the storm the burst-resume path collapses
    // into one queued event per unit. The Ideal policy completes cores through
    // the same `ctx.complete` path as the message-based schemes, so its wake
    // fan-out must ride the burst path too — a lost member deadlocks the next
    // episode (completed = false), a duplicate trips the machine's
    // resumed-a-finished-core assertion. Burst on vs off must agree bit for
    // bit, with the burst run queueing strictly fewer events.
    let run = |burst: bool| {
        let config = NdpConfig::builder()
            .units(8)
            .cores_per_unit(16)
            .mechanism(MechanismKind::Ideal)
            .burst_resume(burst)
            .build()
            .expect("valid config");
        run_workload(&config, &BarrierMicrobench::new(10, 4))
    };
    let burst = run(true);
    let plain = run(false);
    assert!(burst.completed, "burst resume lost a barrier waiter");
    let clients = 8 * 15; // one core per unit serves the engine
    assert_eq!(
        burst.total_ops,
        clients * 4,
        "every waiter must pass every episode exactly once"
    );
    if let Some(field) = plain.divergence_from(&burst) {
        panic!("burst resume diverged from per-core resumes in {field}");
    }
    assert!(
        burst.perf.events_delivered < plain.perf.events_delivered,
        "120 same-time wake-ups must collapse into per-unit burst events"
    );
}
