//! Deterministic pseudo-random number generation.
//!
//! Simulations must be reproducible bit-for-bit across runs and platforms, so the
//! simulator uses its own tiny `xoshiro256**` generator seeded through `SplitMix64`
//! rather than a thread-local or OS-seeded source. Workload generation (graphs,
//! key-value operation streams, time series) in higher-level crates may additionally
//! use the `rand` crate seeded from values produced here.

/// A deterministic pseudo-random number generator (`xoshiro256**`).
///
/// # Example
///
/// ```
/// use syncron_sim::rng::SimRng;
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone, Debug)]
pub struct SimRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed. The full 256-bit state is expanded
    /// with SplitMix64, so nearby seeds produce unrelated streams.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Produces the next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Produces the next 32 random bits.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Returns a uniformly distributed value in `[0, bound)`.
    ///
    /// Uses Lemire's multiply-shift method with rejection to avoid modulo bias.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be non-zero");
        // Lemire's nearly-divisionless method.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut l = m as u64;
        if l < bound {
            let t = bound.wrapping_neg() % bound;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Returns a uniformly distributed `usize` in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn gen_index(&mut self, bound: usize) -> usize {
        self.gen_range(bound as u64) as usize
    }

    /// Returns a uniform floating-point value in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p.clamp(0.0, 1.0)
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        if slice.len() < 2 {
            return;
        }
        for i in (1..slice.len()).rev() {
            let j = self.gen_index(i + 1);
            slice.swap(i, j);
        }
    }

    /// Derives a new independent generator, useful for giving each simulated core its
    /// own stream while remaining reproducible.
    pub fn fork(&mut self) -> SimRng {
        SimRng::seed_from(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams from different seeds should differ");
    }

    #[test]
    fn gen_range_respects_bound() {
        let mut rng = SimRng::seed_from(99);
        for bound in [1u64, 2, 3, 7, 10, 1000, u64::MAX / 2] {
            for _ in 0..200 {
                assert!(rng.gen_range(bound) < bound);
            }
        }
    }

    #[test]
    fn gen_range_covers_small_domains() {
        let mut rng = SimRng::seed_from(5);
        let mut seen = [false; 8];
        for _ in 0..10_000 {
            seen[rng.gen_index(8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = SimRng::seed_from(11);
        for _ in 0..1000 {
            let x = rng.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_probability_roughly_respected() {
        let mut rng = SimRng::seed_from(123);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((frac - 0.25).abs() < 0.02, "observed {frac}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::seed_from(77);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..100).collect::<Vec<_>>(),
            "shuffle left input unchanged"
        );
    }

    #[test]
    fn fork_streams_are_independent_and_reproducible() {
        let mut a = SimRng::seed_from(31);
        let mut b = SimRng::seed_from(31);
        let mut fa = a.fork();
        let mut fb = b.fork();
        for _ in 0..32 {
            assert_eq!(fa.next_u64(), fb.next_u64());
        }
    }

    #[test]
    #[should_panic]
    fn zero_bound_panics() {
        SimRng::seed_from(0).gen_range(0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;

    // Deterministic stand-ins for proptest properties (no crates.io access).

    #[test]
    fn gen_range_always_below_bound() {
        let mut meta = SimRng::seed_from(0x5EED_CAFE);
        for _ in 0..64 {
            let seed = meta.next_u64();
            let bound = 1 + meta.gen_range(u64::MAX - 1);
            let mut rng = SimRng::seed_from(seed);
            for _ in 0..64 {
                assert!(rng.gen_range(bound) < bound);
            }
        }
    }

    #[test]
    fn shuffle_preserves_multiset() {
        let mut meta = SimRng::seed_from(0x5EED_F00D);
        for _ in 0..64 {
            let seed = meta.next_u64();
            let len = meta.gen_range(64) as usize;
            let mut v: Vec<u8> = (0..len).map(|_| meta.gen_range(256) as u8).collect();
            let mut rng = SimRng::seed_from(seed);
            let mut original = v.clone();
            rng.shuffle(&mut v);
            original.sort_unstable();
            v.sort_unstable();
            assert_eq!(original, v);
        }
    }
}
